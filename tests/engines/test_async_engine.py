"""Tests for the asynchronous computation model engine."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
)
from repro.cluster import make_cluster
from repro.core import GXPlug, MiddlewareConfig
from repro.engines import AsyncEngine, PowerGraphEngine
from repro.errors import EngineError
from repro.graph import load_dataset, rmat

GRAPH = rmat(256, 2048, seed=23)


def make_engine(config=None):
    cluster = make_cluster(3, gpus_per_node=1)
    plug = GXPlug(cluster, config) if config else GXPlug(cluster)
    return AsyncEngine.build(GRAPH, cluster, middleware=plug)


@pytest.mark.parametrize("alg_factory,reference", [
    (lambda: MultiSourceSSSP(sources=(0, 1)),
     lambda: MultiSourceSSSP(sources=(0, 1)).reference(GRAPH)),
    (lambda: BFS(source=0), lambda: BFS(source=0).reference(GRAPH)),
    (lambda: ConnectedComponents(),
     lambda: ConnectedComponents().reference(GRAPH)),
    (lambda: WidestPath(source=0),
     lambda: WidestPath(source=0).reference(GRAPH)),
])
def test_async_matches_reference(alg_factory, reference):
    result = make_engine().run(alg_factory())
    assert np.allclose(result.values, reference(), equal_nan=True)


def test_async_rejects_non_monotone():
    engine = make_engine()
    with pytest.raises(EngineError):
        engine.run(PageRank())
    with pytest.raises(EngineError):
        engine.run(LabelPropagation())


def test_async_requires_middleware():
    cluster = make_cluster(2, gpus_per_node=1)
    with pytest.raises(EngineError):
        AsyncEngine.build(GRAPH, cluster, middleware=None)


def test_async_combines_iterations_even_without_skip_flag():
    """force_async: the combined path runs regardless of sync_skip."""
    config = MiddlewareConfig(sync_skip=False)
    result = make_engine(config).run(MultiSourceSSSP(sources=(0,)))
    assert result.computation_iterations >= result.iterations


def test_async_fewer_supersteps_than_bsp_on_road_network():
    g = load_dataset("wrn")
    alg = lambda: MultiSourceSSSP(sources=(0, 1, 2, 3))

    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster, MiddlewareConfig(sync_skip=False))
    sync_engine = PowerGraphEngine.build(g, cluster, middleware=plug)
    synchronous = sync_engine.run(alg())

    cluster2 = make_cluster(4, gpus_per_node=1)
    plug2 = GXPlug(cluster2, MiddlewareConfig(sync_skip=False))
    async_engine = AsyncEngine.build(g, cluster2, middleware=plug2)
    asynchronous = async_engine.run(alg())

    assert np.allclose(synchronous.values, asynchronous.values,
                       equal_nan=True)
    assert asynchronous.iterations < synchronous.iterations


def test_async_engine_metadata():
    engine = make_engine()
    assert engine.model == "async"
    assert engine.name == "async"
    assert engine.force_async
