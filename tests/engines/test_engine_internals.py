"""Unit tests for engine internals and the validate debug mode."""

import numpy as np
import pytest

from repro.algorithms import MultiSourceSSSP, PageRank
from repro.cluster import make_cluster
from repro.core import GXPlug, MessageSet, MiddlewareConfig
from repro.engines import GraphXEngine, PowerGraphEngine
from repro.engines.base import RunResult
from repro.errors import MiddlewareError
from repro.graph import Graph, hash_partition, rmat

GRAPH = rmat(128, 1024, seed=31)


def test_select_edges_full_vs_frontier():
    cluster = make_cluster(2)
    bsp = GraphXEngine.build(GRAPH, cluster)       # full scan
    gas = PowerGraphEngine.build(GRAPH, cluster)   # frontier scan
    part = bsp.pgraph.parts[0]
    active = np.zeros(GRAPH.num_vertices, dtype=bool)
    active[part.src[0]] = True  # one active source on this node

    src_full, _, _ = bsp._select_edges(part, active)
    assert src_full.size == part.num_edges  # everything materializes

    gas_part = gas.pgraph.parts[0]
    gas_active = np.zeros(GRAPH.num_vertices, dtype=bool)
    gas_active[gas_part.src[0]] = True
    src_frontier, _, _ = gas._select_edges(gas_part, gas_active)
    assert 0 < src_frontier.size < gas_part.num_edges


def test_select_edges_force_frontier_overrides_full():
    cluster = make_cluster(2)
    bsp = GraphXEngine.build(GRAPH, cluster)
    part = bsp.pgraph.parts[0]
    active = np.zeros(GRAPH.num_vertices, dtype=bool)
    active[part.src[0]] = True
    src, _, _ = bsp._select_edges(part, active, force_frontier=True)
    assert src.size < part.num_edges


def test_select_edges_quiescent_partition_does_nothing():
    cluster = make_cluster(2)
    bsp = GraphXEngine.build(GRAPH, cluster)
    part = bsp.pgraph.parts[0]
    active = np.zeros(GRAPH.num_vertices, dtype=bool)
    src, dst, w = bsp._select_edges(part, active)
    assert src.size == dst.size == w.size == 0


def test_mirror_sync_cells_counts_replicas():
    cluster = make_cluster(3)
    gas = PowerGraphEngine.build(GRAPH, cluster)
    replicated = np.nonzero(gas._replica_count > 1)[0]
    assert replicated.size > 0  # vertex cut replicates something
    cells = gas._mirror_sync_cells(replicated[:5], width=2)
    expected = int((gas._replica_count[replicated[:5]] - 1).sum()) * 2
    assert cells == expected
    assert gas._mirror_sync_cells(np.empty(0, dtype=np.int64), 4) == 0
    # BSP engine has no mirror traffic
    bsp = GraphXEngine.build(GRAPH, cluster)
    assert bsp._mirror_sync_cells(replicated[:5], 2) == 0


def test_stored_local_true_for_edge_cut():
    cluster = make_cluster(3)
    bsp = GraphXEngine.build(GRAPH, cluster)
    assert bsp._stored_local.all()   # edges live at their source's master
    gas = PowerGraphEngine.build(GRAPH, cluster)
    assert not gas._stored_local.all()   # vertex cut spreads edges


def test_sync_cost_lazy_uploads_less():
    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster, MiddlewareConfig(sync_skip=False))
    engine = GraphXEngine.build(GRAPH, cluster, middleware=plug)
    changed = {p.node_id: p.masters[:20] for p in engine.pgraph.parts}
    everyone = np.ones(GRAPH.num_vertices, dtype=bool)
    lazy_ms, lazy_uploads, needed = engine._sync_cost(
        changed, everyone, width=1, use_lazy=True)
    eager_ms, eager_uploads, _ = engine._sync_cost(
        changed, everyone, width=1, use_lazy=False)
    assert lazy_uploads <= eager_uploads
    assert set(needed) == {0, 1, 2, 3}
    # nobody-needs-anything next iteration -> lazy uploads nothing
    nobody = np.zeros(GRAPH.num_vertices, dtype=bool)
    _, none_uploads, _ = engine._sync_cost(changed, nobody, width=1,
                                           use_lazy=True)
    assert none_uploads == 0


def test_run_result_properties():
    result = RunResult(
        values=np.zeros(3), iterations=0, total_ms=0.0, setup_ms=0.0,
        converged=False, stats=[], breakdown={}, engine_name="e",
        algorithm_name="a")
    assert result.middleware_ratio == 0.0
    assert result.computation_iterations == 0
    assert "e/a" in result.summary()


def test_validate_mode_clean_run():
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster, MiddlewareConfig(validate=True))
    engine = PowerGraphEngine.build(GRAPH, cluster, middleware=plug)
    alg = MultiSourceSSSP(sources=(0, 1))
    result = engine.run(alg)
    assert np.allclose(result.values, alg.reference(GRAPH),
                       equal_nan=True)


def test_validate_mode_catches_corruption():
    """A combine that drops data must trip the validator."""

    class BrokenSSSP(MultiSourceSSSP):
        def combine(self, a, b):
            # silently drop the second partial (a classic merge bug)
            return a if a.size else b

    cluster = make_cluster(1, gpus_per_node=1)
    plug = GXPlug(cluster, MiddlewareConfig(
        validate=True, block_size=64, sync_cache=False,
        lazy_upload=False, sync_skip=False))
    engine = PowerGraphEngine.build(GRAPH, cluster, middleware=plug)
    with pytest.raises(MiddlewareError):
        engine.run(BrokenSSSP(sources=(0, 1)))
