"""Tests for the JNI transmitter / data packager simulation."""

import pytest

from repro.engines import NAIVE_JNI, OPTIMIZED_JNI, JNIConfig, improvement_factor
from repro.engines.graphx import jvm_runtime_for
from repro.errors import EngineError


def test_paper_improvement_claim_3_to_10x():
    """§IV-B1: 'about 3 to 10 times of improvement' over naive invoking."""
    factor = improvement_factor(100_000)
    assert 3.0 <= factor <= 10.0


def test_improvement_holds_across_sizes():
    for n in (1_000, 10_000, 1_000_000):
        assert improvement_factor(n) > 2.0


def test_batching_amortizes_setup():
    cfg = JNIConfig(batched_transfer=True, data_packager=True,
                    batch_size=1000)
    one = cfg.transfer_ms(1)
    thousand = cfg.transfer_ms(1000)
    assert thousand < 1000 * one


def test_data_packager_removes_conversion_overhead():
    with_packager = JNIConfig(batched_transfer=True, data_packager=True)
    without = JNIConfig(batched_transfer=True, data_packager=False)
    assert without.transfer_ms(10_000) > with_packager.transfer_ms(10_000)


def test_zero_entities_free():
    assert NAIVE_JNI.transfer_ms(0) == 0.0


def test_validation():
    with pytest.raises(EngineError):
        JNIConfig(batch_size=0)
    with pytest.raises(EngineError):
        NAIVE_JNI.transfer_ms(-1)


def test_jvm_runtime_for_derives_transfer_slopes():
    runtime = jvm_runtime_for(OPTIMIZED_JNI)
    naive_runtime = jvm_runtime_for(NAIVE_JNI)
    assert runtime.download_ms_per_entity < \
        naive_runtime.download_ms_per_entity
    assert runtime.download_ms_per_entity == pytest.approx(
        OPTIMIZED_JNI.ms_per_entity())
