"""Cross-engine, cross-partitioner equivalence matrix.

Every (engine, partitioner) combination must produce the single-machine
reference — the strongest statement of the middleware's transparency.
"""

import numpy as np
import pytest

from repro.algorithms import MultiSourceSSSP
from repro.cluster import make_cluster
from repro.core import GXPlug
from repro.engines import AsyncEngine, GraphXEngine, PowerGraphEngine
from repro.graph import (
    clustering_partition,
    greedy_vertex_cut,
    hash_partition,
    range_partition,
    rmat,
)

GRAPH = rmat(160, 1280, seed=37)
PARTITIONERS = {
    "hash": lambda g, n: hash_partition(g, n),
    "range": lambda g, n: range_partition(g, n),
    "clustering": lambda g, n: clustering_partition(g, n, seed=1),
    "vertex-cut": lambda g, n: greedy_vertex_cut(g, n),
}


@pytest.mark.parametrize("engine_cls",
                         [GraphXEngine, PowerGraphEngine, AsyncEngine])
@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
def test_engine_partitioner_matrix(engine_cls, partitioner):
    alg = MultiSourceSSSP(sources=(0, 1))
    expected = alg.reference(GRAPH)
    cluster = make_cluster(3, gpus_per_node=1)
    plug = GXPlug(cluster)
    pgraph = PARTITIONERS[partitioner](GRAPH, 3)
    engine = engine_cls(pgraph, cluster, middleware=plug)
    result = engine.run(MultiSourceSSSP(sources=(0, 1)))
    assert np.allclose(result.values, expected, equal_nan=True), \
        (engine_cls.name, partitioner)
