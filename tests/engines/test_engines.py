"""Integration tests: distributed engines vs single-machine references.

The central invariant of the reproduction: for every engine (GraphX-like
BSP, PowerGraph-like GAS), every algorithm, and every middleware
configuration (none, baseline, full, each optimization toggled), the
distributed run produces *exactly* the single-machine reference values.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
)
from repro.cluster import JVM_RUNTIME, NATIVE_RUNTIME, make_cluster
from repro.core import BASELINE, FULL, GXPlug, MiddlewareConfig
from repro.engines import GraphXEngine, PowerGraphEngine
from repro.errors import EngineError
from repro.graph import clustered_communities, rmat

GRAPH = rmat(192, 1536, seed=21)


def reference_for(alg, max_iter):
    if isinstance(alg, PageRank):
        return alg.reference(GRAPH, iterations=max_iter)
    if isinstance(alg, LabelPropagation):
        return alg.reference(GRAPH, iterations=max_iter)
    return alg.reference(GRAPH)


def make_algorithms():
    return [
        (MultiSourceSSSP(sources=(0, 1, 2, 3)), None),
        (PageRank(), 10),
        (LabelPropagation(), 15),
        (BFS(source=0), None),
        (ConnectedComponents(), None),
    ]


@pytest.mark.parametrize("engine_cls", [GraphXEngine, PowerGraphEngine])
def test_host_mode_matches_reference(engine_cls):
    cluster = make_cluster(3, runtime=NATIVE_RUNTIME)
    for alg, cap in make_algorithms():
        engine = engine_cls.build(GRAPH, cluster)
        result = engine.run(alg, max_iterations=cap)
        expected = reference_for(alg, cap)
        assert np.allclose(result.values, expected, equal_nan=True), alg.name


@pytest.mark.parametrize("engine_cls", [GraphXEngine, PowerGraphEngine])
def test_full_middleware_matches_reference(engine_cls):
    cluster = make_cluster(3, gpus_per_node=1, runtime=NATIVE_RUNTIME)
    for alg, cap in make_algorithms():
        plug = GXPlug(cluster, FULL)
        engine = engine_cls.build(GRAPH, cluster, middleware=plug)
        result = engine.run(alg, max_iterations=cap)
        expected = reference_for(alg, cap)
        assert np.allclose(result.values, expected, equal_nan=True), alg.name


@pytest.mark.parametrize("config", [
    BASELINE,
    MiddlewareConfig(pipeline=False),
    MiddlewareConfig(sync_cache=False, lazy_upload=False, sync_skip=False),
    MiddlewareConfig(lazy_upload=False),
    MiddlewareConfig(sync_skip=False),
    MiddlewareConfig(block_size=64),
    MiddlewareConfig(runtime_isolation=False),
])
def test_every_config_is_result_invariant(config):
    """No optimization may change computed values, only costs."""
    alg_factory = lambda: MultiSourceSSSP(sources=(0, 1))
    expected = alg_factory().reference(GRAPH)
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(GRAPH, cluster, middleware=plug)
    result = engine.run(alg_factory())
    assert np.allclose(result.values, expected, equal_nan=True)


def test_multi_gpu_and_heterogeneous_nodes_match_reference():
    alg = PageRank()
    expected = alg.reference(GRAPH, iterations=8)
    cluster = make_cluster(2, gpus_per_node=2, cpu_accels_per_node=1)
    plug = GXPlug(cluster)
    engine = GraphXEngine.build(GRAPH, cluster, middleware=plug)
    result = engine.run(PageRank(), max_iterations=8)
    assert np.allclose(result.values, expected)


def test_single_node_cluster_works():
    alg = BFS(source=0)
    cluster = make_cluster(1, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = PowerGraphEngine.build(GRAPH, cluster, middleware=plug)
    result = engine.run(BFS(source=0))
    assert np.allclose(result.values, alg.reference(GRAPH), equal_nan=True)


def test_accelerated_beats_host_at_scale():
    """On a graph big enough to amortize device init, GPU+engine is
    faster in simulated time (the Fig. 8 direction)."""
    g = rmat(1024, 40_000, seed=5)
    host = GraphXEngine.build(g, make_cluster(4, runtime=JVM_RUNTIME))
    host_res = host.run(PageRank(), max_iterations=10)
    cluster = make_cluster(4, gpus_per_node=1, runtime=JVM_RUNTIME)
    plug = GXPlug(cluster)
    accel = GraphXEngine.build(g, cluster, middleware=plug)
    accel_res = accel.run(PageRank(), max_iterations=10)
    assert np.allclose(host_res.values, accel_res.values)
    assert accel_res.total_ms < host_res.total_ms


def test_convergence_flag_and_iteration_cap():
    cluster = make_cluster(2)
    engine = GraphXEngine.build(GRAPH, cluster)
    res = engine.run(MultiSourceSSSP(sources=(0,)))
    assert res.converged
    res_capped = engine.run(PageRank(), max_iterations=3)
    assert res_capped.iterations == 3
    assert not res_capped.converged


def test_iteration_stats_recorded():
    cluster = make_cluster(2)
    engine = GraphXEngine.build(GRAPH, cluster)
    res = engine.run(PageRank(), max_iterations=4)
    assert len(res.stats) == 4
    for s in res.stats:
        assert s.compute_ms >= 0 and s.sync_ms >= 0
        assert len(s.node_compute_ms) == 2
        assert s.total_ms == pytest.approx(
            s.compute_ms + s.apply_ms + s.sync_ms)
    assert res.total_ms == pytest.approx(
        res.setup_ms + sum(s.total_ms for s in res.stats))


def test_partition_count_must_match_cluster():
    from repro.graph import hash_partition
    pgraph = hash_partition(GRAPH, 3)
    cluster = make_cluster(2)
    with pytest.raises(EngineError):
        GraphXEngine(pgraph, cluster)


def test_middleware_cluster_mismatch_rejected():
    cluster_a = make_cluster(2, gpus_per_node=1)
    cluster_b = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster_a)
    with pytest.raises(EngineError):
        GraphXEngine.build(GRAPH, cluster_b, middleware=plug)


def test_sync_skipping_fires_on_clustered_graph():
    """Fig. 11(b): clustering-partitioned community graphs skip syncs."""
    from repro.graph import clustering_partition

    g = clustered_communities(4, 48, inter_edge_fraction=0.002, seed=3)
    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster)
    pgraph = clustering_partition(g, 4, seed=3)
    engine = PowerGraphEngine(pgraph, cluster, middleware=plug)
    alg = MultiSourceSSSP(sources=(0,))
    res = engine.run(alg)
    assert np.allclose(res.values, alg.reference(g), equal_nan=True)
    assert res.skipped_iterations > 0
    # skipped iterations pay no sync cost
    for s in res.stats:
        if s.skipped:
            assert s.sync_ms == 0.0


def test_sync_skipping_clustered_beats_uniform():
    """Fig. 11(b): the iteration decrease is large on clustered graphs
    with locality-preserving partitions and small on uniform graphs with
    hash partitions."""
    from repro.graph import (clustering_partition, hash_partition,
                             load_dataset, uniform_random)

    def decrease(g, pgraph_fn):
        results = {}
        for skip in (False, True):
            cluster = make_cluster(4, gpus_per_node=1)
            cfg = MiddlewareConfig(sync_skip=skip) if skip else \
                MiddlewareConfig(sync_skip=False)
            plug = GXPlug(cluster, cfg)
            engine = PowerGraphEngine(pgraph_fn(g), cluster,
                                      middleware=plug)
            results[skip] = engine.run(MultiSourceSSSP(sources=(0, 1, 2, 3)))
        assert np.allclose(results[False].values, results[True].values,
                           equal_nan=True)
        return 1.0 - results[True].iterations / results[False].iterations

    uniform = uniform_random(512, 4096, seed=6)
    road = load_dataset("wrn")
    uniform_dec = decrease(uniform, lambda g: hash_partition(g, 4))
    road_dec = decrease(road, lambda g: clustering_partition(g, 4, seed=3))
    assert road_dec >= 0.6            # the paper's 60-90% band
    assert road_dec > uniform_dec     # clustered >> uniform


def test_lazy_upload_reduces_uploads():
    g = rmat(256, 4096, seed=8)
    cluster = make_cluster(4, gpus_per_node=1)

    def run(lazy):
        plug = GXPlug(cluster_for[lazy],
                      MiddlewareConfig(lazy_upload=lazy, sync_skip=False))
        engine = GraphXEngine.build(g, cluster_for[lazy], middleware=plug)
        return engine.run(MultiSourceSSSP(sources=(0, 1)))

    cluster_for = {True: make_cluster(4, gpus_per_node=1),
                   False: make_cluster(4, gpus_per_node=1)}
    eager = run(False)
    lazy = run(True)
    assert np.allclose(eager.values, lazy.values, equal_nan=True)
    assert sum(s.uploads for s in lazy.stats) < \
        sum(s.uploads for s in eager.stats)


def test_breakdown_accounts_time():
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = GraphXEngine.build(GRAPH, cluster, middleware=plug)
    res = engine.run(PageRank(), max_iterations=5)
    assert res.breakdown["middleware"] > 0
    assert res.breakdown["device"] > 0
    assert res.breakdown["engine"] > 0
    assert 0.0 < res.middleware_ratio < 1.0


def test_powergraph_mirror_sync_payload_larger():
    """Vertex-cut replicas make PowerGraph's sync payload per changed
    vertex at least as large as the edge-cut engine's."""
    g = rmat(256, 4096, seed=9)
    cluster = make_cluster(4)
    bsp = GraphXEngine.build(g, cluster).run(PageRank(), max_iterations=3)
    gas = PowerGraphEngine.build(g, cluster).run(PageRank(),
                                                 max_iterations=3)
    assert np.allclose(bsp.values, gas.values)
