"""Tests for device cost models."""

import pytest

from repro.accel import (
    HOST_JVM,
    HOST_NATIVE,
    PRESETS,
    V100,
    XEON_ACCEL,
    DeviceCostModel,
)
from repro.errors import DeviceError


def model(**overrides):
    base = dict(name="t", init_ms=10.0, call_ms=1.0,
                compute_ms_per_entity=0.01, copy_ms_per_entity=0.005,
                threads=4, memory_bytes=1000)
    base.update(overrides)
    return DeviceCostModel(**base)


def test_kernel_ms_is_linear_eq2():
    m = model()
    assert m.kernel_ms(0) == pytest.approx(1.0)
    assert m.kernel_ms(100) == pytest.approx(1.0 + 100 * 0.015)


def test_per_entity_combines_compute_and_copy():
    assert model().per_entity_ms == pytest.approx(0.015)


def test_capacity_factor_is_reciprocal():
    m = model()
    assert m.capacity_factor() == pytest.approx(1.0 / 0.015)


def test_scaled_divides_per_entity_costs():
    m = model().scaled(2.0)
    assert m.per_entity_ms == pytest.approx(0.0075)
    assert m.call_ms == 1.0  # fixed costs unchanged
    assert m.name == "t-x2"


def test_scaled_rejects_nonpositive():
    with pytest.raises(DeviceError):
        model().scaled(0.0)


def test_validation():
    with pytest.raises(DeviceError):
        model(init_ms=-1)
    with pytest.raises(DeviceError):
        model(compute_ms_per_entity=-0.1)
    with pytest.raises(DeviceError):
        model(threads=0)
    with pytest.raises(DeviceError):
        model(memory_bytes=-1)
    with pytest.raises(DeviceError):
        model().kernel_ms(-5)


def test_presets_reflect_paper_hierarchy():
    """§V-A: GPU=1024-thread model, CPU accelerator=20-thread model;
    host JVM slower than host native; GPU fastest per entity."""
    assert V100.threads == 1024
    assert XEON_ACCEL.threads == 20
    assert V100.per_entity_ms < XEON_ACCEL.per_entity_ms
    assert XEON_ACCEL.per_entity_ms < HOST_NATIVE.per_entity_ms
    assert HOST_NATIVE.per_entity_ms < HOST_JVM.per_entity_ms
    assert set(PRESETS) == {"v100", "xeon-accel", "host-native", "host-jvm"}


def test_gpu_init_dominates_its_call_cost():
    """Fig 13 premise: device init is orders of magnitude above one call."""
    assert V100.init_ms > 50 * V100.call_ms
