"""Tests for the simulated Accelerator device."""

import numpy as np
import pytest

from repro.accel import Accelerator, make_cpu_accelerator, make_gpu
from repro.accel.costmodel import DeviceCostModel
from repro.errors import DeviceError, DeviceMemoryError


@pytest.fixture
def dev():
    model = DeviceCostModel("test", init_ms=50.0, call_ms=2.0,
                            compute_ms_per_entity=0.1,
                            copy_ms_per_entity=0.1, threads=8,
                            memory_bytes=1000)
    return Accelerator(model)


def test_init_returns_cost_and_marks_ready(dev):
    assert not dev.initialized
    assert dev.init() == pytest.approx(50.0)
    assert dev.initialized
    assert dev.init_count == 1


def test_compute_before_init_raises(dev):
    with pytest.raises(DeviceError):
        dev.run(lambda: 1, entities=1)


def test_run_executes_kernel_and_charges_time(dev):
    dev.init()
    result, dt = dev.run(np.sum, np.arange(10), entities=10)
    assert result == 45
    assert dt == pytest.approx(2.0 + 10 * 0.2)
    assert dev.kernel_count == 1
    assert dev.entities_processed == 10


def test_run_negative_entities_rejected(dev):
    dev.init()
    with pytest.raises(DeviceError):
        dev.run(lambda: 1, entities=-1)


def test_shutdown_forces_reinit(dev):
    dev.init()
    dev.shutdown()
    assert not dev.initialized
    with pytest.raises(DeviceError):
        dev.run(lambda: 1, entities=1)
    dev.init()
    assert dev.init_count == 2


def test_memory_admission(dev):
    dev.ensure_capacity(1000)
    with pytest.raises(DeviceMemoryError):
        dev.ensure_capacity(1001)


def test_allocate_accumulates_and_frees(dev):
    dev.allocate(600)
    dev.allocate(400)
    assert dev.resident_bytes == 1000
    with pytest.raises(DeviceMemoryError):
        dev.allocate(1)
    dev.free(500)
    assert dev.resident_bytes == 500
    dev.free()
    assert dev.resident_bytes == 0


def test_free_more_than_resident_raises(dev):
    dev.allocate(100)
    with pytest.raises(DeviceError):
        dev.free(200)


def test_negative_allocation_rejected(dev):
    with pytest.raises(DeviceError):
        dev.allocate(-5)


def test_factories():
    gpu = make_gpu(1)
    cpu = make_cpu_accelerator(2)
    assert gpu.model.threads == 1024
    assert gpu.device_id == 1
    assert cpu.model.threads == 20
    # GPU strictly faster per entity, CPU has more memory headroom scaled in
    assert gpu.model.per_entity_ms < cpu.model.per_entity_ms


def test_twitter_twin_overflows_single_gpu():
    """Fig 9(b): Twitter/UK-2007 cannot fit a single GPU."""
    from repro.accel.costmodel import BYTES_PER_EDGE, BYTES_PER_VERTEX
    from repro.graph import load_dataset

    gpu = make_gpu()
    for name in ("twitter", "uk-2007-02"):
        g = load_dataset(name)
        with pytest.raises(DeviceMemoryError):
            gpu.ensure_capacity(
                g.memory_footprint(BYTES_PER_EDGE, BYTES_PER_VERTEX))
    orkut = load_dataset("orkut")
    gpu.ensure_capacity(
        orkut.memory_footprint(BYTES_PER_EDGE, BYTES_PER_VERTEX))
