"""Tests for the rack topology and its link-level gray failures.

The load-bearing property is pinned first: a single-rack
:class:`Topology` with default links is *bit-identical* to the flat
:class:`NetworkModel` on every cost method — the fault-free figures
rely on it.  Then multi-rack pricing, per-link overrides, the
transport's link gray-faults, and the per-link straggler detector.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    DEFAULT_CROSS_BYTE_FACTOR,
    DEFAULT_CROSS_LATENCY_FACTOR,
    LinkModel,
    NetworkModel,
    ResilientTransport,
    Topology,
    make_cluster,
)
from repro.errors import SimulationError
from repro.fault import StragglerDetector

# -- spec parsing ------------------------------------------------------------


def test_parse_spec_rack():
    assert Topology.parse_spec("rack:2x4") == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert Topology.parse_spec("rack:1x1") == [[0]]
    assert Topology.parse_spec("rack:3x2") == [[0, 1], [2, 3], [4, 5]]


def test_parse_spec_flat():
    assert Topology.parse_spec("flat:4") == [[0, 1, 2, 3]]
    assert Topology.parse_spec("flat:1") == [[0]]


@pytest.mark.parametrize("bad", [
    "rack", "rack:", "rack:2", "rack:2x", "rack:x4", "rack:0x4",
    "rack:2x0", "rack:2x-1", "rack:axb", "flat:", "flat:0", "flat:-3",
    "mesh:2x2", "", "rack2x4",
])
def test_parse_spec_rejects_malformed(bad):
    with pytest.raises(SimulationError):
        Topology.parse_spec(bad)


def test_racks_must_cover_node_ids_exactly():
    with pytest.raises(SimulationError):
        Topology([[0, 1], [3]])          # gap
    with pytest.raises(SimulationError):
        Topology([[0, 1], [1, 2]])       # duplicate
    with pytest.raises(SimulationError):
        Topology([[0], []])              # empty rack
    with pytest.raises(SimulationError):
        Topology([])


def test_cross_factors_must_be_at_least_one():
    with pytest.raises(SimulationError):
        Topology([[0, 1]], cross_latency_factor=0.5)
    with pytest.raises(SimulationError):
        Topology([[0, 1]], cross_byte_factor=0.0)


def test_link_override_names_must_exist():
    with pytest.raises(SimulationError):
        Topology([[0, 1]], overrides={(0, 7): LinkModel(1.0, 1e-5)})


# -- degenerate single rack == NetworkModel, bit-exactly ---------------------

NETS = [
    NetworkModel(),
    NetworkModel(latency_ms=0.5, ms_per_byte=3e-4, coord_ms_per_node=0.7),
    NetworkModel(latency_ms=0.0, ms_per_byte=0.0, coord_ms_per_node=0.0),
]


@pytest.mark.parametrize("net", NETS)
def test_single_rack_equals_network_model_grid(net):
    """Exhaustive: every cost method bit-identical across a small grid."""
    for n in range(1, 17):
        topo = Topology.single_rack(n, base=net)
        for nbytes in (0, 1, 17, 4096, 1_000_003):
            assert topo.sync_ms(n, nbytes) == net.sync_ms(n, nbytes)
            assert topo.broadcast_ms(n, nbytes) == net.broadcast_ms(n, nbytes)
            assert topo.transfer_ms(nbytes) == net.transfer_ms(nbytes)
            assert (topo.p2p_fallback_ms(n, nbytes)
                    == net.p2p_fallback_ms(n, nbytes))


@settings(max_examples=200, deadline=None)
@given(n=st.integers(1, 24), nbytes=st.integers(0, 10**9),
       latency=st.floats(0, 10, allow_nan=False),
       mspb=st.floats(0, 1e-2, allow_nan=False),
       coord=st.floats(0, 5, allow_nan=False))
def test_single_rack_equals_network_model_property(n, nbytes, latency,
                                                   mspb, coord):
    net = NetworkModel(latency_ms=latency, ms_per_byte=mspb,
                       coord_ms_per_node=coord)
    topo = Topology.single_rack(n, base=net)
    assert topo.sync_ms(n, nbytes) == net.sync_ms(n, nbytes)
    assert topo.broadcast_ms(n, nbytes) == net.broadcast_ms(n, nbytes)
    assert topo.p2p_fallback_ms(n, nbytes) == net.p2p_fallback_ms(n, nbytes)


def test_single_rack_weighted_sync_matches_uniform():
    """Uniform weights are the same split as no weights — bit-exact."""
    net = NetworkModel()
    topo = Topology.single_rack(4, base=net)
    assert (topo.sync_ms(4, 8192, bytes_by_node=[1.0] * 4)
            == topo.sync_ms(4, 8192))
    # all-zero weights fall back to the uniform split
    assert (topo.sync_ms(4, 8192, bytes_by_node=[0.0] * 4)
            == topo.sync_ms(4, 8192))


# -- multi-rack pricing ------------------------------------------------------


def test_cross_rack_defaults_scale_intra():
    topo = Topology.from_spec("rack:2x2")
    assert topo.cross.latency_ms == pytest.approx(
        topo.intra.latency_ms * DEFAULT_CROSS_LATENCY_FACTOR)
    assert topo.cross.ms_per_byte == pytest.approx(
        topo.intra.ms_per_byte * DEFAULT_CROSS_BYTE_FACTOR)


def test_link_resolution_intra_vs_cross_vs_override():
    pinned = LinkModel(9.0, 1e-3)
    topo = Topology.from_spec("rack:2x2", overrides={(3, 2): pinned})
    assert topo.link(0, 1) is topo.intra
    assert topo.link(1, 1) is topo.intra          # local bus
    assert topo.link(0, 2) is topo.cross
    assert topo.link(3, 2) is pinned              # directed override...
    assert topo.link(2, 3) is topo.intra          # ...other direction not


def test_multi_rack_sync_costs_more_than_flat():
    net = NetworkModel()
    flat = Topology.single_rack(8, base=net)
    racked = Topology.from_spec("rack:2x4", base=net)
    for nbytes in (1024, 65536, 10**6):
        assert racked.sync_ms(8, nbytes) > flat.sync_ms(8, nbytes)
        assert racked.broadcast_ms(8, nbytes) > flat.broadcast_ms(8, nbytes)


def test_sync_monotone_in_cross_byte_factor():
    costs = [Topology.from_spec("rack:2x4",
                                cross_byte_factor=f).sync_ms(8, 10**6)
             for f in (1.0, 2.0, 4.0, 8.0)]
    assert all(a < b for a, b in zip(costs, costs[1:]))


def test_uplink_path_root_rack_vs_remote_rack():
    topo = Topology.from_spec("rack:2x2")
    # root rack members never touch the spine
    assert topo.path_ms_per_byte(0) == pytest.approx(topo.intra.ms_per_byte)
    assert topo.path_ms_per_byte(1) == pytest.approx(topo.intra.ms_per_byte)
    # remote rack members pay member->leader plus leader->root
    expected = topo.intra.ms_per_byte + topo.cross.ms_per_byte
    assert topo.path_ms_per_byte(2) == pytest.approx(expected)
    assert topo.path_ms_per_byte(3) == pytest.approx(expected)
    assert len(topo.uplink_legs(0)) == 1
    assert len(topo.uplink_legs(3)) == 2


def test_weighted_sync_charges_the_bad_uplink():
    """Shifting bytes onto a node behind the spine costs more."""
    topo = Topology.from_spec("rack:2x1")
    onto_root = topo.sync_ms(2, 10**6, bytes_by_node=[3.0, 1.0])
    onto_remote = topo.sync_ms(2, 10**6, bytes_by_node=[1.0, 3.0])
    assert onto_remote > onto_root


def test_collective_span_is_checked():
    topo = Topology.from_spec("rack:2x2")
    with pytest.raises(SimulationError):
        topo.sync_ms(3, 1024)
    with pytest.raises(SimulationError):
        topo.sync_ms(4, -1)
    with pytest.raises(SimulationError):
        topo.sync_ms(4, 1024, bytes_by_node=[1.0, 1.0])
    with pytest.raises(SimulationError):
        topo.sync_ms(4, 1024, bytes_by_node=[1.0, 1.0, 1.0, -1.0])


# -- cluster integration -----------------------------------------------------


def test_cluster_collectives_prefers_topology():
    topo = Topology.from_spec("rack:2x2")
    c = make_cluster(4, gpus_per_node=1, topology=topo)
    assert c.collectives is topo
    flat = make_cluster(4, gpus_per_node=1)
    assert flat.topology is None
    assert flat.collectives is flat.network


def test_cluster_topology_span_validated():
    with pytest.raises(SimulationError):
        make_cluster(4, topology=Topology.from_spec("rack:2x3"))


def test_repartition_cost_prices_links_crossed():
    """Migrating bytes out of a remote rack costs more than in-rack."""
    topo = Topology.from_spec("rack:2x1")
    c = make_cluster(2, gpus_per_node=1, topology=topo)
    flat = make_cluster(2, gpus_per_node=1)
    nbytes = 10**6
    from_remote = c.repartition_cost_ms(
        nbytes, moved_by_node=[0.0, float(nbytes)])
    from_root = c.repartition_cost_ms(
        nbytes, moved_by_node=[float(nbytes), 0.0])
    assert from_remote > from_root
    assert from_remote > flat.repartition_cost_ms(nbytes)


# -- transport link gray-faults ----------------------------------------------


def _transport(topology=None):
    return ResilientTransport(NetworkModel(), topology=topology)


def test_link_pass_free_when_nothing_armed():
    """No slow links, no observer: flat cost, bit-identical."""
    topo = Topology.from_spec("rack:2x2")
    t = _transport(topo)
    assert t.sync_ms(4, 4096) == topo.sync_ms(4, 4096)
    assert t.link_slow_ms == 0.0


def test_link_slow_inflates_duration_only():
    topo = Topology.from_spec("rack:2x1")
    t = _transport(topo)
    healthy = t.sync_ms(2, 10**5)
    t2 = _transport(topo)
    t2.arm_link_slow(1, factor=4.0, passes=3)
    slow = t2.sync_ms(2, 10**5)
    frag = topo.fragment_ms(1, topo.node_bytes(10**5)[1])
    assert slow == pytest.approx(healthy + 3.0 * frag)
    assert t2.link_slow_ms == pytest.approx(3.0 * frag)
    assert t2.link_inflations == 1


def test_link_slow_expires_after_passes():
    topo = Topology.from_spec("rack:2x1")
    t = _transport(topo)
    t.arm_link_slow(1, factor=2.0, passes=2)
    healthy = topo.sync_ms(2, 4096)
    assert t.sync_ms(2, 4096) > healthy
    assert t.sync_ms(2, 4096) > healthy
    assert t.sync_ms(2, 4096) == healthy   # budget spent
    assert t.faults_armed == 0


def test_link_flaky_fires_every_other_pass():
    topo = Topology.from_spec("rack:2x1")
    t = _transport(topo)
    t.arm_link_flaky(1, factor=4.0, passes=4)
    healthy = topo.sync_ms(2, 4096)
    costs = [t.sync_ms(2, 4096) for _ in range(4)]
    assert costs[0] > healthy and costs[2] > healthy
    assert costs[1] == healthy and costs[3] == healthy


def test_link_slow_validation():
    t = _transport(Topology.from_spec("rack:2x1"))
    with pytest.raises(SimulationError):
        t.arm_link_slow(1, factor=0.5)
    with pytest.raises(SimulationError):
        t.arm_link_slow(1, passes=0)


def test_observer_sees_every_node_per_collective():
    topo = Topology.from_spec("rack:2x2")
    t = _transport(topo)
    det = StragglerDetector()
    t.set_link_observer(det)
    t.sync_ms(4, 4096)
    assert det.link_observations == 4
    assert det.flagged_links == []


# -- per-link straggler detection --------------------------------------------


def test_detector_flags_then_unflags_slow_link():
    det = StragglerDetector(ratio=3.0, patience=2)
    verdicts = []
    for _ in range(4):
        for node in range(4):
            obs = 40.0 if node == 3 else 10.0
            v = det.observe_link(node, obs, 10.0)
            if v is not None:
                verdicts.append(v)
    assert det.is_slow_link(3)
    assert det.flagged_links == [3]
    assert det.link_verdicts == 1
    assert [v.daemon_id for v in verdicts] == [3]
    assert verdicts[0].phase == "link"
    assert det.link_inflation(3) > det.link_ratio
    # healthy observations for `patience` rounds clear the flag
    for _ in range(8):
        for node in range(4):
            det.observe_link(node, 10.0, 10.0)
    assert not det.is_slow_link(3)
    assert det.link_recoveries == 1


def test_exclude_self_median_catches_lone_slow_link_of_two():
    """With 2 links an inclusive median would mask the slow one."""
    det = StragglerDetector(ratio=3.0, patience=2)
    for _ in range(4):
        det.observe_link(0, 10.0, 10.0)
        det.observe_link(1, 40.0, 10.0)
    assert det.flagged_links == [1]


def test_link_ratio_knob_is_independent():
    det = StragglerDetector(ratio=10.0, link_ratio=2.0, patience=1)
    for _ in range(3):
        det.observe_link(0, 10.0, 10.0)
        det.observe_link(1, 25.0, 10.0)
    assert det.is_slow_link(1)


# -- per-link override clauses on spec strings -------------------------------


def test_parse_link_overrides_on_spec():
    spec = "rack:2x2;link=2-0:5.0:0.02;link=3-2:0.1:0.001"
    assert Topology.parse_spec(spec) == [[0, 1], [2, 3]]
    overrides = Topology.parse_link_overrides(spec)
    assert overrides == {(2, 0): LinkModel(5.0, 0.02),
                         (3, 2): LinkModel(0.1, 0.001)}
    topo = Topology.from_spec(spec)
    assert topo.link(2, 0) == LinkModel(5.0, 0.02)
    assert topo.link(3, 2) == LinkModel(0.1, 0.001)
    # unpinned links keep the intra/cross defaults
    assert topo.link(0, 1) == topo.intra
    assert topo.link(1, 2) == topo.cross


def test_spec_without_clauses_has_no_overrides():
    assert Topology.parse_link_overrides("rack:2x4") == {}
    assert Topology.parse_link_overrides("flat:3") == {}


def test_spec_override_prices_the_pinned_uplink():
    slow = "rack:2x1;link=1-0:8.0:0.08"
    fast = "rack:2x1"
    payload = 10_000
    slow_ms = Topology.from_spec(slow).sync_ms(2, payload)
    fast_ms = Topology.from_spec(fast).sync_ms(2, payload)
    assert slow_ms > fast_ms


@pytest.mark.parametrize("bad", [
    "rack:2x2;link=",
    "rack:2x2;links=1-0:1:1",
    "rack:2x2;link=1:1:1",
    "rack:2x2;link=1-0:1",
    "rack:2x2;link=a-0:1:1",
    "rack:2x2;link=1-0:fast:1",
    "rack:2x2;link=1-0:1:1;link=1-0:2:2",
    "rack:2x2;link=1-0:-1:1",
])
def test_malformed_link_clauses_rejected(bad):
    with pytest.raises(SimulationError):
        Topology.from_spec(bad)


def test_explicit_overrides_win_over_spec_clauses():
    topo = Topology.from_spec("rack:2x1;link=1-0:9.0:0.9",
                              overrides={(1, 0): LinkModel(1.0, 0.1)})
    assert topo.link(1, 0) == LinkModel(1.0, 0.1)


def test_cluster_spec_accepts_and_validates_link_clauses():
    from repro.core import ClusterSpec
    from repro.errors import MiddlewareError
    spec = ClusterSpec(nodes=4, topology="rack:2x2;link=2-0:5.0:0.02")
    topo = spec.build_topology()
    assert topo.link(2, 0) == LinkModel(5.0, 0.02)
    assert spec.to_dict()["topology"] == "rack:2x2;link=2-0:5.0:0.02"
    with pytest.raises(MiddlewareError):
        ClusterSpec(nodes=4, topology="rack:2x2;link=9-0:5.0:0.02")
