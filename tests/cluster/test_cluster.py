"""Tests for the cluster substrate."""

import pytest

from repro.cluster import (
    Cluster,
    DistributedNode,
    JVM_RUNTIME,
    NATIVE_RUNTIME,
    NetworkModel,
    make_cluster,
    make_heterogeneous_cluster,
)
from repro.accel import make_cpu_accelerator, make_gpu
from repro.errors import SimulationError


def test_network_transfer_linear():
    net = NetworkModel(latency_ms=1.0, ms_per_byte=0.01, coord_ms_per_node=0.0)
    assert net.transfer_ms(0) == pytest.approx(1.0)
    assert net.transfer_ms(100) == pytest.approx(2.0)


def test_network_sync_grows_with_nodes():
    net = NetworkModel()
    costs = [net.sync_ms(n, 1000) for n in (1, 2, 4, 8, 16, 32)]
    assert all(a < b for a, b in zip(costs, costs[1:]))


def test_network_single_node_no_hops():
    net = NetworkModel(latency_ms=5.0, ms_per_byte=0.0, coord_ms_per_node=1.0)
    assert net.sync_ms(1, 0) == pytest.approx(1.0)
    assert net.sync_ms(2, 0) == pytest.approx(5.0 + 2.0)


def test_network_validation():
    with pytest.raises(SimulationError):
        NetworkModel(latency_ms=-1.0)
    net = NetworkModel()
    with pytest.raises(SimulationError):
        net.transfer_ms(-1)
    with pytest.raises(SimulationError):
        net.sync_ms(0, 10)
    with pytest.raises(SimulationError):
        net.broadcast_ms(2, -1)
    with pytest.raises(SimulationError):
        net.sync_ms(2, -1)


def test_jvm_runtime_costlier_than_native():
    """§IV-B1: crossing the JVM/JNI boundary costs more per entity."""
    assert (JVM_RUNTIME.download_ms_per_entity
            > NATIVE_RUNTIME.download_ms_per_entity)
    assert (JVM_RUNTIME.compute.per_entity_ms
            > NATIVE_RUNTIME.compute.per_entity_ms)


def test_node_capacity_sums_accelerators():
    gpu, cpu = make_gpu(), make_cpu_accelerator()
    node = DistributedNode(0, NATIVE_RUNTIME, [gpu, cpu])
    expected = gpu.model.capacity_factor() + cpu.model.capacity_factor()
    assert node.capacity_factor() == pytest.approx(expected)


def test_node_without_accelerators_uses_host():
    node = DistributedNode(0, NATIVE_RUNTIME, [])
    assert node.capacity_factor() == pytest.approx(
        NATIVE_RUNTIME.compute.capacity_factor())


def test_make_cluster_homogeneous():
    c = make_cluster(3, gpus_per_node=2, cpu_accels_per_node=1)
    assert c.num_nodes == 3
    assert c.total_gpu_count() == 6
    for node in c.nodes:
        assert len(node.accelerators) == 3
    # device ids unique across the cluster
    ids = [a.device_id for n in c.nodes for a in n.accelerators]
    assert len(set(ids)) == len(ids)


def test_make_heterogeneous_cluster_fig12a_shape():
    c = make_heterogeneous_cluster([["gpu", "cpu"],
                                    ["gpu", "gpu", "gpu", "cpu"]])
    assert c.num_nodes == 2
    caps = c.capacity_factors()
    assert caps[1] > caps[0]


def test_cluster_validation():
    with pytest.raises(SimulationError):
        make_cluster(0)
    with pytest.raises(SimulationError):
        make_cluster(1, gpus_per_node=-1)
    with pytest.raises(SimulationError):
        make_heterogeneous_cluster([])
    with pytest.raises(SimulationError):
        make_heterogeneous_cluster([["tpu"]])
    with pytest.raises(SimulationError):
        Cluster([])
    with pytest.raises(SimulationError):
        Cluster([DistributedNode(5, NATIVE_RUNTIME, [])])
