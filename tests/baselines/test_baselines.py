"""Tests for the Gunrock-like and Lux-like comparator systems."""

import numpy as np
import pytest

from repro.algorithms import MultiSourceSSSP, PageRank
from repro.baselines import (
    GunrockSystem,
    LuxSystem,
    distributed_gpu_fits,
    global_iteration,
)
from repro.errors import DeviceMemoryError, SimulationError
from repro.graph import load_dataset, rmat

GRAPH = rmat(256, 4096, seed=13)


def test_gunrock_computes_correct_results():
    alg = MultiSourceSSSP(sources=(0, 1))
    res = GunrockSystem(GRAPH).run(alg)
    assert np.allclose(res.values, alg.reference(GRAPH), equal_nan=True)
    assert res.converged
    assert res.system == "gunrock"


def test_lux_computes_correct_results():
    alg = PageRank()
    res = LuxSystem(GRAPH, num_gpus=4).run(alg, max_iterations=10)
    assert np.allclose(res.values, alg.reference(GRAPH, 10))


def test_gunrock_fastest_on_single_gpu():
    """Fig. 9(a): 'Gunrock performs the best on the single-GPU setting'."""
    alg = PageRank()
    gunrock = GunrockSystem(GRAPH).run(PageRank(), max_iterations=10)
    lux = LuxSystem(GRAPH, num_gpus=1).run(PageRank(), max_iterations=10)
    assert gunrock.total_ms < lux.total_ms


def test_gunrock_overflows_on_large_twins():
    """Fig. 9(b): Twitter and UK-2007 exceed a single GPU."""
    for name in ("twitter", "uk-2007-02"):
        system = GunrockSystem(load_dataset(name))
        assert not system.fits()
        with pytest.raises(DeviceMemoryError):
            system.run(PageRank(), max_iterations=1)
    assert GunrockSystem(load_dataset("orkut")).fits()


def test_uk2007_distributed_fit_boundary():
    """Fig. 9(b): UK-2007 runs at 2-3 GPUs but not 4, for all systems."""
    uk = load_dataset("uk-2007-02")
    assert distributed_gpu_fits(uk, 2)
    assert distributed_gpu_fits(uk, 3)
    assert not distributed_gpu_fits(uk, 4)
    twitter = load_dataset("twitter")
    for g in (2, 3, 4):
        assert distributed_gpu_fits(twitter, g)


def test_lux_oom_raises():
    uk = load_dataset("uk-2007-02")
    with pytest.raises(DeviceMemoryError):
        LuxSystem(uk, num_gpus=4).run(PageRank(), max_iterations=1)


def test_lux_scales_down_with_gpus_initially():
    """More GPUs reduce compute time (until sync dominates)."""
    alg_runs = {}
    for g in (1, 2):
        alg_runs[g] = LuxSystem(GRAPH, num_gpus=g).run(
            PageRank(), max_iterations=10)
    # identical results regardless of GPU count
    assert np.allclose(alg_runs[1].values, alg_runs[2].values)


def test_lux_sync_overhead_grows_with_gpus():
    """Per-iteration sync+coordination cost rises with GPU count."""
    big = rmat(512, 30_000, seed=2)
    times = {g: LuxSystem(big, num_gpus=g).run(
        PageRank(), max_iterations=5).total_ms for g in (2, 8, 16)}
    # at high GPU counts the eager exchange overwhelms compute savings
    assert times[16] > times[8]


def test_validation():
    with pytest.raises(SimulationError):
        LuxSystem(GRAPH, num_gpus=0)
    with pytest.raises(SimulationError):
        distributed_gpu_fits(GRAPH, 0)


def test_global_iteration_helper():
    alg = MultiSourceSSSP(sources=(0,))
    state = alg.init_state(GRAPH)
    values, changed, d, n_msgs = global_iteration(
        alg, GRAPH, state.values, state.active)
    # only source-out edges were active
    assert d == GRAPH.out_degrees()[0]
    assert changed.size > 0 or d == 0


def test_iteration_ms_recorded():
    res = GunrockSystem(GRAPH).run(PageRank(), max_iterations=7)
    assert len(res.iteration_ms) == 7
    assert res.total_ms > sum(res.iteration_ms)  # setup included
