"""Tests for the extension algorithms (BFS, connected components)."""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents
from repro.errors import AlgorithmError
from repro.graph import Graph, cycle, path, rmat


def test_bfs_levels_on_path():
    dist = BFS(source=0).reference(path(5))
    assert dist.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_bfs_unreachable_inf():
    g = Graph.from_edges(3, [0], [1])
    dist = BFS(source=0).reference(g)
    assert np.isinf(dist[2])


def test_bfs_ignores_weights():
    g = Graph.from_edges(3, [0, 1], [1, 2], [100.0, 100.0])
    dist = BFS(source=0).reference(g)
    assert dist.tolist() == [0.0, 1.0, 2.0]


def test_bfs_source_validation():
    with pytest.raises(AlgorithmError):
        BFS(source=10).init_state(path(3))


def test_bfs_matches_networkx():
    nx = pytest.importorskip("networkx")
    g = rmat(64, 400, seed=6)
    dist = BFS(source=0).reference(g)
    ng = nx.DiGraph()
    ng.add_nodes_from(range(64))
    ng.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
    expected = nx.single_source_shortest_path_length(ng, 0)
    for v in range(64):
        if v in expected:
            assert dist[v] == expected[v]
        else:
            assert np.isinf(dist[v])


def test_cc_on_undirected_components():
    # two components: {0,1,2} and {3,4}
    g = Graph.from_edges(5, [0, 1, 3], [1, 2, 4]).to_undirected()
    labels = ConnectedComponents().reference(g)
    assert labels.tolist() == [0.0, 0.0, 0.0, 3.0, 3.0]


def test_cc_matches_networkx_components():
    nx = pytest.importorskip("networkx")
    g = rmat(80, 160, seed=9).to_undirected()
    labels = ConnectedComponents().reference(g)
    ng = nx.Graph()
    ng.add_nodes_from(range(80))
    ng.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
    for comp in nx.connected_components(ng):
        comp = sorted(comp)
        assert len(set(labels[comp].tolist())) == 1
        assert labels[comp[0]] == float(comp[0])


def test_cc_cycle_single_component():
    labels = ConnectedComponents().reference(cycle(7))
    assert np.all(labels == 0.0)
