"""Property-based tests on the algorithm-template invariants.

The middleware depends on two algebraic properties of every algorithm:

1. **combine is associative and commutative** — blocks may be merged in
   any grouping/order by the pipeline and across daemons/nodes;
2. **block-split equivalence** — processing edges in arbitrary blocks and
   combining partials gives exactly the monolithic result.

These hold for all five shipped algorithms and are what make the
distributed execution provably equal to the single-machine reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
)
from repro.graph import Graph

N_VERTICES = 12


@st.composite
def small_graphs(draw):
    m = draw(st.integers(min_value=1, max_value=40))
    src = draw(st.lists(st.integers(0, N_VERTICES - 1),
                        min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, N_VERTICES - 1),
                        min_size=m, max_size=m))
    weights = draw(st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=m, max_size=m))
    return Graph.from_edges(N_VERTICES, src, dst, weights)


def make_algorithms():
    return [
        MultiSourceSSSP(sources=(0, 1)),
        PageRank(),
        LabelPropagation(),
        BFS(source=0),
        ConnectedComponents(),
    ]


def canonical(alg, ms):
    """Order-independent canonical form of a message set."""
    rows = sorted(
        (int(i),) + tuple(round(float(x), 9) for x in row)
        for i, row in zip(ms.ids, np.atleast_2d(ms.data))
    )
    return rows


def gen_and_merge(alg, g, values, lo, hi):
    msgs = alg.msg_gen(g.src[lo:hi], g.dst[lo:hi], g.weights[lo:hi], values)
    return alg.msg_merge(g.dst[lo:hi], msgs)


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), cut=st.integers(0, 40), seed=st.integers(0, 100))
def test_block_split_equals_whole(g, cut, seed):
    """Partials over any 2-way edge split combine to the monolithic merge."""
    for alg in make_algorithms():
        values = alg.init_state(g).values
        m = g.num_edges
        k = min(cut, m)
        whole = gen_and_merge(alg, g, values, 0, m)
        combined = alg.combine(gen_and_merge(alg, g, values, 0, k),
                               gen_and_merge(alg, g, values, k, m))
        assert canonical(alg, whole) == canonical(alg, combined), alg.name


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), order=st.permutations([0, 1, 2]))
def test_combine_grouping_invariance(g, order):
    """(a+b)+c == a+(b+c) == any permutation, for 3-way splits."""
    for alg in make_algorithms():
        values = alg.init_state(g).values
        m = g.num_edges
        cuts = [0, m // 3, 2 * m // 3, m]
        parts = [gen_and_merge(alg, g, values, cuts[i], cuts[i + 1])
                 for i in range(3)]
        left = alg.combine(alg.combine(parts[0], parts[1]), parts[2])
        permuted = [parts[i] for i in order]
        right = alg.combine(permuted[0],
                            alg.combine(permuted[1], permuted[2]))
        assert canonical(alg, left) == canonical(alg, right), alg.name


@settings(max_examples=30, deadline=None)
@given(g=small_graphs())
def test_apply_is_pure(g):
    """msg_apply never mutates its inputs."""
    for alg in make_algorithms():
        values = alg.init_state(g).values
        msgs = alg.msg_gen(g.src, g.dst, g.weights, values)
        merged = alg.msg_merge(g.dst, msgs)
        values_before = values.copy()
        ids_before = merged.ids.copy()
        data_before = merged.data.copy()
        alg.msg_apply(values, merged)
        assert np.array_equal(values, values_before), alg.name
        assert np.array_equal(merged.ids, ids_before), alg.name
        assert np.array_equal(merged.data, data_before), alg.name


@settings(max_examples=30, deadline=None)
@given(g=small_graphs())
def test_empty_messageset_is_identity_for_combine(g):
    for alg in make_algorithms():
        values = alg.init_state(g).values
        ms = gen_and_merge(alg, g, values, 0, g.num_edges)
        empty = alg.empty_messages()
        assert canonical(alg, alg.combine(ms, empty)) == canonical(alg, ms)
        assert canonical(alg, alg.combine(empty, ms)) == canonical(alg, ms)


@settings(max_examples=25, deadline=None)
@given(g=small_graphs())
def test_sssp_triangle_inequality_at_fixpoint(g):
    """At the Bellman-Ford fixed point, no edge can still relax."""
    alg = MultiSourceSSSP(sources=(0,))
    dist = alg.reference(g)
    lhs = dist[g.dst, 0]
    rhs = dist[g.src, 0] + g.weights
    assert np.all(lhs <= rhs + 1e-9)


@settings(max_examples=25, deadline=None)
@given(g=small_graphs())
def test_pagerank_total_mass_bounded(g):
    """Ranks stay positive and bounded by n (no mass creation)."""
    ranks = PageRank().reference(g, iterations=10)
    assert np.all(ranks >= 0.15 - 1e-12)
    assert ranks.sum() <= g.num_vertices + 1e-9


@settings(max_examples=25, deadline=None)
@given(g=small_graphs())
def test_cc_labels_are_component_minima(g):
    """CC on the symmetrized graph labels each vertex with a component
    member <= its own id, and endpoints of every edge agree."""
    u = g.to_undirected()
    labels = ConnectedComponents().reference(u)
    assert np.all(labels <= np.arange(u.num_vertices))
    assert np.all(labels[u.src] == labels[u.dst])
