"""combine_many (one-shot segment-reduced merge) vs the pairwise fold.

The engines merge collector partials with ``combine_many``; for every
shipped algorithm that declares ``concat_combine`` it concatenates all
parts and runs a single ``msg_merge``.  Because ``msg_merge`` accumulates
in element order, this must be **bit-identical** (not just approximately
equal) to folding ``combine`` pairwise — floats included.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
)
from repro.core import MessageSet
from repro.graph import Graph

N_VERTICES = 12


@st.composite
def small_graphs(draw):
    m = draw(st.integers(min_value=1, max_value=40))
    src = draw(st.lists(st.integers(0, N_VERTICES - 1),
                        min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, N_VERTICES - 1),
                        min_size=m, max_size=m))
    weights = draw(st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=m, max_size=m))
    return Graph.from_edges(N_VERTICES, src, dst, weights)


def make_algorithms():
    return [
        MultiSourceSSSP(sources=(0, 1)),
        PageRank(),
        LabelPropagation(),
        BFS(source=0),
        ConnectedComponents(),
        WidestPath(source=0),
    ]


def make_parts(alg, g, n_parts):
    values = alg.init_state(g).values
    m = g.num_edges
    cuts = [m * i // n_parts for i in range(n_parts + 1)]
    parts = []
    for lo, hi in zip(cuts, cuts[1:]):
        msgs = alg.msg_gen(g.src[lo:hi], g.dst[lo:hi],
                           g.weights[lo:hi], values)
        parts.append(alg.msg_merge(g.dst[lo:hi], msgs))
    return parts


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), n_parts=st.integers(1, 5))
def test_combine_many_is_bit_identical_to_fold(g, n_parts):
    for alg in make_algorithms():
        parts = make_parts(alg, g, n_parts)
        folded = alg.empty_messages()
        for p in parts:
            folded = alg.combine(folded, p)
        fast = alg.combine_many(parts)
        np.testing.assert_array_equal(fast.ids, folded.ids,
                                      err_msg=alg.name)
        np.testing.assert_array_equal(fast.data, folded.data,
                                      err_msg=alg.name)


def test_combine_many_of_empty_and_single():
    for alg in make_algorithms():
        empty = alg.combine_many([])
        assert empty.ids.size == 0
        ms = alg.msg_merge(np.array([1, 2, 1]),
                           alg.msg_gen(np.array([0, 0, 3]),
                                       np.array([1, 2, 1]),
                                       np.array([1.0, 1.0, 2.0]),
                                       alg.init_state(
                                           Graph.from_edges(
                                               N_VERTICES,
                                               [0, 0, 3], [1, 2, 1],
                                               [1.0, 1.0, 2.0])).values))
        only = alg.combine_many([alg.empty_messages(), ms])
        np.testing.assert_array_equal(only.ids, ms.ids)
        np.testing.assert_array_equal(only.data, ms.data)


class DroppingSSSP(MultiSourceSSSP):
    """Overrides combine *without* re-declaring concat_combine: the
    fast path must not bypass the subclass's (deliberately lossy)
    combine, exactly like the validator-bait subclass in the engine
    tests."""

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        return b if a.ids.size == 0 or b.ids.size else a


def test_subclass_overriding_combine_keeps_fold_semantics():
    g = Graph.from_edges(N_VERTICES,
                         [0, 1, 2, 3, 4], [1, 2, 3, 4, 5],
                         [1.0] * 5)
    alg = DroppingSSSP(sources=(0, 1))
    parts = make_parts(alg, g, 3)
    folded = alg.empty_messages()
    for p in parts:
        folded = alg.combine(folded, p)
    got = alg.combine_many(parts)
    np.testing.assert_array_equal(got.ids, folded.ids)
    np.testing.assert_array_equal(got.data, folded.data)
    # and the lossy override really did drop something vs a true merge
    true_merge = MultiSourceSSSP(sources=(0, 1)).combine_many(
        make_parts(MultiSourceSSSP(sources=(0, 1)), g, 3))
    assert not np.array_equal(got.ids, true_merge.ids)
