"""Tests for PageRank on the template."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.errors import AlgorithmError
from repro.graph import Graph, cycle, rmat, star


def test_cycle_is_fixed_point_at_one():
    """On a cycle every vertex has in=out=1, so rank 1.0 is stationary."""
    g = cycle(6)
    ranks = PageRank().reference(g, iterations=50)
    assert np.allclose(ranks, 1.0)


def test_star_center_gets_no_rank_leaves_equal():
    g = star(4)  # 0 -> 1..4
    ranks = PageRank().reference(g, iterations=20)
    assert ranks[0] == pytest.approx(0.15)
    leaf = ranks[1]
    assert np.allclose(ranks[1:], leaf)
    assert leaf > ranks[0]


def test_matches_power_iteration_direct():
    """Reference agrees with a direct dense power iteration."""
    g = rmat(32, 256, seed=3)
    d = 0.85
    n = g.num_vertices
    outdeg = g.out_degrees().astype(float)
    ranks = np.ones(n)
    for _ in range(10):
        incoming = np.zeros(n)
        contrib = np.where(outdeg[g.src] > 0,
                           ranks[g.src] / np.maximum(outdeg[g.src], 1), 0.0)
        np.add.at(incoming, g.dst, contrib)
        ranks = (1 - d) + d * incoming
    assert np.allclose(PageRank().reference(g, iterations=10), ranks)


def test_dangling_vertices_send_nothing():
    g = Graph.from_edges(3, [0], [1], [1.0])  # 1 and 2 dangle
    ranks = PageRank().reference(g, iterations=30)
    assert ranks[2] == pytest.approx(0.15)


def test_merge_sums_contributions():
    alg = PageRank()
    alg.init_state(cycle(3))
    merged = alg.msg_merge(np.array([1, 1, 2]),
                           np.array([[0.5], [0.25], [1.0]]))
    assert merged.ids.tolist() == [1, 2]
    assert merged.data[:, 0].tolist() == [0.75, 1.0]


def test_all_vertices_stay_active():
    g = cycle(4)
    alg = PageRank()
    alg.init_state(g)
    active = alg.next_active(g, np.array([1]), 4)
    assert active.all()


def test_msg_gen_before_init_raises():
    with pytest.raises(AlgorithmError):
        PageRank().msg_gen(np.array([0]), np.array([1]),
                           np.array([1.0]), np.array([1.0, 1.0]))


def test_param_validation():
    with pytest.raises(AlgorithmError):
        PageRank(damping=1.5)
    with pytest.raises(AlgorithmError):
        PageRank(damping=0.0)
    with pytest.raises(AlgorithmError):
        PageRank(tolerance=-1.0)


def test_vertex_with_no_inedges_gets_base_rank():
    g = Graph.from_edges(2, [0], [1], [1.0])
    ranks = PageRank().reference(g, iterations=5)
    assert ranks[0] == pytest.approx(0.15)
