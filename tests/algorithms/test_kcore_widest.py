"""Tests for the k-core and widest-path extension algorithms."""

import numpy as np
import pytest

from repro.algorithms import KCore, WidestPath
from repro.cluster import make_cluster
from repro.core import GXPlug
from repro.engines import GraphXEngine, PowerGraphEngine
from repro.errors import AlgorithmError
from repro.graph import Graph, complete, path, rmat


# -- k-core ---------------------------------------------------------------------


def test_kcore_complete_graph_survives():
    """K_6 (undirected) has degree 10 per vertex in multigraph form."""
    g = complete(6).to_undirected()
    values = KCore(k=5).reference(g)
    assert KCore.core_members(values).size == 6


def test_kcore_path_has_no_2core():
    g = path(10).to_undirected()
    values = KCore(k=2).reference(g)
    # a path peels away entirely from its endpoints inward... except that
    # undirected doubling gives every interior vertex degree 4
    # (two neighbours x two directions); use k=5 to peel everything
    values = KCore(k=5).reference(g)
    assert KCore.core_members(values).size == 0


def test_kcore_triangle_with_tail():
    # triangle 0-1-2 plus tail 2-3: the triangle is the 2-core
    g = Graph.from_edges(4, [0, 1, 2, 2], [1, 2, 0, 3]).to_undirected()
    values = KCore(k=2).reference(g)
    assert KCore.core_members(values).tolist() == [0, 1, 2]
    assert values[3, 1] == 1.0   # tail removed


def test_kcore_matches_networkx():
    nx = pytest.importorskip("networkx")
    g = rmat(150, 900, seed=2, weighted=False)
    # build a simple graph (no parallel edges / self loops) so degrees
    # match networkx semantics, then symmetrize
    pairs = {(min(s, d), max(s, d)) for s, d, _ in g.edges() if s != d}
    src = [p[0] for p in pairs] + [p[1] for p in pairs]
    dst = [p[1] for p in pairs] + [p[0] for p in pairs]
    simple = Graph.from_edges(150, src, dst)
    for k in (2, 3, 5):
        values = KCore(k=k).reference(simple)
        mine = set(KCore.core_members(values).tolist())
        ng = nx.Graph()
        ng.add_nodes_from(range(150))
        ng.add_edges_from(pairs)
        theirs = set(nx.k_core(ng, k).nodes())
        assert mine == theirs, k


def test_kcore_distributed_matches_reference():
    g = rmat(200, 1600, seed=4).to_undirected()
    ref = KCore(k=8).reference(g)
    for engine_cls in (GraphXEngine, PowerGraphEngine):
        cluster = make_cluster(3, gpus_per_node=1)
        plug = GXPlug(cluster)
        res = engine_cls.build(g, cluster, middleware=plug).run(KCore(k=8))
        assert np.array_equal(res.values, ref), engine_cls.name


def test_kcore_validation():
    with pytest.raises(AlgorithmError):
        KCore(k=0)


def test_kcore_messages_are_events():
    assert KCore(k=2).requires_frontier_scan
    assert not KCore(k=2).monotone   # counts are not replay-safe


# -- widest path -------------------------------------------------------------------


def test_widest_path_simple():
    #  0 -5-> 1 -3-> 2  and a narrow shortcut 0 -1-> 2
    g = Graph.from_edges(3, [0, 1, 0], [1, 2, 2], [5.0, 3.0, 1.0])
    widths = WidestPath(source=0).reference(g)
    assert widths[0] == np.inf
    assert widths[1] == 5.0
    assert widths[2] == 3.0   # through 1, not the width-1 shortcut


def test_widest_path_unreachable_is_zero():
    g = Graph.from_edges(3, [0], [1], [2.0])
    widths = WidestPath(source=0).reference(g)
    assert widths[2] == 0.0


def test_widest_path_prefers_bottleneck_over_hops():
    # long wide path beats short narrow one
    g = Graph.from_edges(4, [0, 1, 2, 0], [1, 2, 3, 3],
                         [9.0, 8.0, 7.0, 2.0])
    widths = WidestPath(source=0).reference(g)
    assert widths[3] == 7.0


def test_widest_path_distributed_matches_reference():
    g = rmat(256, 2048, seed=11)
    ref = WidestPath(source=0).reference(g)
    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster)
    res = PowerGraphEngine.build(g, cluster, middleware=plug).run(
        WidestPath(source=0))
    assert np.allclose(res.values, ref)


def test_widest_path_source_validation():
    with pytest.raises(AlgorithmError):
        WidestPath(source=5).init_state(path(3))


def test_widest_path_is_replay_safe():
    assert WidestPath().monotone
