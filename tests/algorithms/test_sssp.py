"""Tests for multi-source Bellman-Ford on the template."""

import numpy as np
import pytest

from repro.algorithms import MultiSourceSSSP
from repro.errors import AlgorithmError
from repro.graph import Graph, path, rmat


def line_graph():
    # 0 -1-> 1 -2-> 2 -3-> 3
    return Graph.from_edges(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])


def test_init_state_sources_zero_rest_inf():
    alg = MultiSourceSSSP(sources=(0, 2))
    state = alg.init_state(line_graph())
    assert state.values.shape == (4, 2)
    assert state.values[0, 0] == 0.0
    assert state.values[2, 1] == 0.0
    assert np.isinf(state.values[1, 0])
    assert state.active.tolist() == [True, False, True, False]


def test_reference_distances_line():
    alg = MultiSourceSSSP(sources=(0,))
    dist = alg.reference(line_graph())
    assert dist[:, 0].tolist() == [0.0, 1.0, 3.0, 6.0]


def test_reference_multi_source_columns_independent():
    g = line_graph()
    multi = MultiSourceSSSP(sources=(0, 1)).reference(g)
    s0 = MultiSourceSSSP(sources=(0,)).reference(g)
    s1 = MultiSourceSSSP(sources=(1,)).reference(g)
    assert np.allclose(multi[:, 0], s0[:, 0], equal_nan=True)
    assert np.allclose(multi[:, 1], s1[:, 0], equal_nan=True)


def test_unreachable_stays_inf():
    g = Graph.from_edges(3, [0], [1], [1.0])
    dist = MultiSourceSSSP(sources=(0,)).reference(g)
    assert np.isinf(dist[2, 0])


def test_matches_networkx_on_random_graph():
    nx = pytest.importorskip("networkx")
    g = rmat(64, 512, seed=11)
    dist = MultiSourceSSSP(sources=(0,)).reference(g)
    ng = nx.DiGraph()
    ng.add_nodes_from(range(64))
    for s, d, w in g.edges():
        # keep the minimum weight for parallel edges, like BF does
        if ng.has_edge(s, d):
            ng[s][d]["weight"] = min(ng[s][d]["weight"], w)
        else:
            ng.add_edge(s, d, weight=w)
    expected = nx.single_source_dijkstra_path_length(ng, 0)
    for v in range(64):
        if v in expected:
            assert dist[v, 0] == pytest.approx(expected[v])
        else:
            assert np.isinf(dist[v, 0])


def test_msg_merge_takes_columnwise_min():
    alg = MultiSourceSSSP(sources=(0, 1))
    dst = np.array([5, 5, 7])
    msgs = np.array([[3.0, 9.0], [4.0, 2.0], [1.0, 1.0]])
    merged = alg.msg_merge(dst, msgs)
    assert merged.ids.tolist() == [5, 7]
    assert merged.data[0].tolist() == [3.0, 2.0]


def test_msg_apply_reports_only_improvements():
    alg = MultiSourceSSSP(sources=(0,))
    values = np.array([[0.0], [5.0], [2.0]])
    merged = alg.msg_merge(np.array([1, 2]), np.array([[4.0], [3.0]]))
    new_values, changed = alg.msg_apply(values, merged)
    assert changed.tolist() == [1]  # vertex 2 not improved (3 > 2)
    assert new_values[1, 0] == 4.0
    assert new_values[2, 0] == 2.0
    assert values[1, 0] == 5.0  # input untouched


def test_empty_messages_apply_is_noop():
    alg = MultiSourceSSSP(sources=(0,))
    values = np.array([[0.0], [1.0]])
    new_values, changed = alg.msg_apply(values, alg.empty_messages())
    assert changed.size == 0
    assert np.array_equal(new_values, values)


def test_validation():
    with pytest.raises(AlgorithmError):
        MultiSourceSSSP(sources=())
    with pytest.raises(AlgorithmError):
        MultiSourceSSSP(sources=(9,)).init_state(line_graph())


def test_paper_default_four_sources():
    from repro.algorithms import paper_workloads
    alg = paper_workloads()["sssp-bf"]
    assert len(alg.sources) == 4
