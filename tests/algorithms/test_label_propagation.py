"""Tests for Label Propagation on the template."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagation
from repro.graph import Graph, clustered_communities, complete


def test_init_labels_are_vertex_ids():
    g = complete(4)
    state = LabelPropagation().init_state(g)
    assert state.values.tolist() == [0.0, 1.0, 2.0, 3.0]
    assert state.active.all()


def test_complete_graph_converges_to_smallest_label():
    g = complete(5)
    labels = LabelPropagation().reference(g, iterations=30)
    # in a clique everyone eventually adopts one community label
    assert len(set(labels.tolist())) == 1


def test_majority_wins():
    # three vertices vote label onto vertex 3: two have label 7, one label 9
    g = Graph.from_edges(4, [0, 1, 2], [3, 3, 3])
    alg = LabelPropagation()
    values = np.array([7.0, 7.0, 9.0, 3.0])
    msgs = alg.msg_gen(g.src, g.dst, g.weights, values)
    merged = alg.msg_merge(g.dst, msgs)
    new_values, changed = alg.msg_apply(values, merged)
    assert new_values[3] == 7.0
    assert changed.tolist() == [3]


def test_tie_breaks_toward_smaller_label():
    g = Graph.from_edges(3, [0, 1], [2, 2])
    alg = LabelPropagation()
    values = np.array([5.0, 4.0, 2.0])
    msgs = alg.msg_gen(g.src, g.dst, g.weights, values)
    merged = alg.msg_merge(g.dst, msgs)
    new_values, _ = alg.msg_apply(values, merged)
    assert new_values[2] == 4.0


def test_histogram_merge_sums_counts():
    alg = LabelPropagation()
    dst = np.array([1, 1, 1, 2])
    msgs = np.array([[7.0, 1.0], [7.0, 1.0], [9.0, 1.0], [7.0, 1.0]])
    merged = alg.msg_merge(dst, msgs)
    rows = {(int(i), float(l)): float(c)
            for i, (l, c) in zip(merged.ids, merged.data)}
    assert rows[(1, 7.0)] == 2.0
    assert rows[(1, 9.0)] == 1.0
    assert rows[(2, 7.0)] == 1.0


def test_combine_equals_single_merge():
    """Partial histograms combined across blocks equal one big merge."""
    alg = LabelPropagation()
    rng = np.random.default_rng(0)
    dst = rng.integers(0, 10, 100)
    msgs = np.column_stack([rng.integers(0, 5, 100).astype(float),
                            np.ones(100)])
    whole = alg.msg_merge(dst, msgs)
    half = 50
    combined = alg.combine(alg.msg_merge(dst[:half], msgs[:half]),
                           alg.msg_merge(dst[half:], msgs[half:]))
    key = lambda ms: sorted(zip(ms.ids.tolist(),
                                ms.data[:, 0].tolist(),
                                ms.data[:, 1].tolist()))
    assert key(whole) == key(combined)


def test_communities_detected_on_clustered_graph():
    g = clustered_communities(4, 30, inter_edge_fraction=0.0, seed=1)
    labels = LabelPropagation().reference(g, iterations=15)
    comm = np.arange(g.num_vertices) // 30
    # labels must never cross communities when there are no inter edges
    for c in range(4):
        members = labels[comm == c]
        assert set(np.unique(members) // 30) == {c}


def test_default_cap_is_fifteen():
    assert LabelPropagation().default_max_iterations == 15


def test_isolated_vertex_keeps_label():
    g = Graph.from_edges(3, [0], [1])
    labels = LabelPropagation().reference(g, iterations=5)
    assert labels[2] == 2.0
