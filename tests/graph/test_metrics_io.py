"""Tests for graph metrics and the IO formats."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    clustered_communities,
    clustering_partition,
    degree_histogram,
    degree_skew,
    edge_cut,
    edge_cut_fraction,
    hash_partition,
    load_edge_list,
    load_imbalance,
    load_npz,
    partition_report,
    rmat,
    save_edge_list,
    save_npz,
    skip_potential,
    uniform_random,
    weighted_imbalance,
)


# -- metrics -------------------------------------------------------------------


def test_degree_skew_discriminates_distributions():
    skew_rmat = degree_skew(rmat(1024, 16384, seed=0))
    skew_uniform = degree_skew(uniform_random(1024, 16384, seed=0))
    assert skew_rmat > 2 * skew_uniform
    assert degree_skew(Graph.empty(4)) == 0.0


def test_degree_histogram_counts_all_vertices():
    g = rmat(256, 2048, seed=1)
    hist = degree_histogram(g)
    assert hist["counts"].sum() == g.num_vertices
    with pytest.raises(GraphError):
        degree_histogram(g, bins=0)


def test_edge_cut_single_partition_is_zero():
    g = rmat(128, 512, seed=2)
    pg = hash_partition(g, 1)
    assert edge_cut(pg) == 0
    assert edge_cut_fraction(pg) == 0.0
    assert skip_potential(pg) == 1.0


def test_edge_cut_matches_locality():
    g = rmat(128, 512, seed=2)
    pg = hash_partition(g, 4)
    assert edge_cut_fraction(pg) == pytest.approx(
        1.0 - pg.local_edge_fraction())


def test_clustering_partition_scores_better():
    g = clustered_communities(8, 64, seed=5)
    hashed = partition_report(hash_partition(g, 8))
    clustered = partition_report(clustering_partition(g, 8, seed=5))
    assert clustered["edge_cut_fraction"] < hashed["edge_cut_fraction"]
    assert clustered["skip_potential"] > hashed["skip_potential"]


def test_load_imbalance_bounds():
    g = rmat(256, 2048, seed=3)
    pg = hash_partition(g, 4)
    imbalance = load_imbalance(pg)
    assert imbalance >= 1.0
    # single partition is trivially balanced
    assert load_imbalance(hash_partition(g, 1)) == 1.0


def test_weighted_imbalance_ideal_when_proportional():
    g = rmat(512, 8192, seed=4)
    from repro.graph import range_partition
    pg = range_partition(g, 2, shares=[0.75, 0.25])
    # capacities proportional to the shares -> near-ideal balance
    assert weighted_imbalance(pg, [3.0, 1.0]) == pytest.approx(1.0,
                                                               abs=0.1)
    # equal capacities see the skew
    assert weighted_imbalance(pg, [1.0, 1.0]) > 1.3


def test_weighted_imbalance_validation():
    g = rmat(64, 256, seed=5)
    pg = hash_partition(g, 2)
    with pytest.raises(GraphError):
        weighted_imbalance(pg, [1.0])
    with pytest.raises(GraphError):
        weighted_imbalance(pg, [1.0, 0.0])


def test_partition_report_keys():
    g = rmat(128, 512, seed=6)
    report = partition_report(hash_partition(g, 4))
    assert set(report) == {
        "partitions", "edge_cut_fraction", "local_edge_fraction",
        "replication_factor", "load_imbalance", "skip_potential",
    }


# -- IO --------------------------------------------------------------------------


def test_edge_list_roundtrip(tmp_path):
    g = rmat(64, 256, seed=7)
    path = tmp_path / "g.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path, num_vertices=64, name="g")
    assert loaded.num_edges == g.num_edges
    assert np.array_equal(loaded.src, g.src)
    assert np.array_equal(loaded.dst, g.dst)
    assert np.allclose(loaded.weights, g.weights, rtol=1e-5)


def test_edge_list_unweighted(tmp_path):
    g = rmat(32, 128, seed=8, weighted=False)
    path = tmp_path / "g.txt"
    save_edge_list(g, path, write_weights=False)
    loaded = load_edge_list(path)
    assert np.all(loaded.weights == 1.0)


def test_edge_list_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\nnot numbers\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
    path.write_text("0\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
    path.write_text("0 1 zap\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_npz_roundtrip_exact(tmp_path):
    g = rmat(128, 1024, seed=9)
    path = tmp_path / "g.npz"
    save_npz(g, path)
    loaded = load_npz(path)
    assert loaded == g
    assert loaded.name == g.name


def test_npz_missing_field(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, src=np.array([0]))
    with pytest.raises(GraphError):
        load_npz(path)


def test_empty_graph_roundtrips(tmp_path):
    g = Graph.empty(5, name="empty5")
    save_npz(g, tmp_path / "e.npz")
    assert load_npz(tmp_path / "e.npz").num_vertices == 5
