"""Mutation batches: apply semantics, round trips, warm-start policy."""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponents, KCore, PageRank
from repro.api import mutate
from repro.errors import GraphError
from repro.graph import Graph, uniform_random
from repro.graph.mutations import (
    MutationBatch,
    MutationLog,
    MutationRecord,
    plan_warm_start,
)


def small_graph():
    # 0 -> 1 -> 2 -> 0 plus a pendant 2 -> 3
    return Graph.from_edges(4, [0, 1, 2, 2], [1, 2, 0, 3],
                            [1.0, 2.0, 3.0, 4.0])


# -- construction / validation ------------------------------------------------


def test_batch_validates_array_lengths():
    with pytest.raises(GraphError, match="add_src has 2"):
        MutationBatch(add_src=[0, 1], add_dst=[2])
    with pytest.raises(GraphError, match="negative"):
        MutationBatch(remove_src=[-1], remove_dst=[0])
    with pytest.raises(GraphError, match="update edges need"):
        MutationBatch(update_src=[0], update_dst=[1])
    with pytest.raises(GraphError, match="add_vertices"):
        MutationBatch(add_vertices=-1)


def test_num_changes_and_emptiness():
    assert MutationBatch().is_empty
    b = MutationBatch(add_src=[0], add_dst=[1], add_vertices=2,
                      remove_vertices=[3])
    assert b.num_changes == 4
    assert not b.is_empty
    assert not MutationBatch(add_src=[0], add_dst=[1]).shrinking
    assert MutationBatch(remove_vertices=[0]).shrinking


def test_fingerprint_is_content_addressed():
    a = MutationBatch(add_src=[0], add_dst=[1])
    b = MutationBatch(add_src=[0], add_dst=[1])
    c = MutationBatch(add_src=[0], add_dst=[2])
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_doc_round_trip_preserves_fingerprint():
    b = MutationBatch(add_src=[0, 3], add_dst=[1, 2],
                      add_weights=[0.5, 2.5],
                      remove_src=[1], remove_dst=[2],
                      update_src=[2], update_dst=[0],
                      update_weights=[9.0],
                      add_vertices=1, remove_vertices=[3])
    back = MutationBatch.from_doc(b.to_doc())
    assert back.fingerprint() == b.fingerprint()


@pytest.mark.parametrize("doc,match", [
    ([1], "must be an object"),
    ({"frobnicate": {}}, "unknown mutation batch field"),
    ({"add": [1]}, "must be an object"),
    ({"add": {"src": [0]}}, "needs src and dst"),
    ({"add": {"src": [0], "dst": [1], "extra": 1}}, "unknown field"),
    ({"remove": {"src": [0], "dst": [1], "weights": [1.0]}},
     "unknown field"),
    ({"add_vertices": "two"}, "must be an integer"),
    ({"add_vertices": True}, "must be an integer"),
])
def test_from_doc_rejects_malformed(doc, match):
    with pytest.raises(GraphError, match=match):
        MutationBatch.from_doc(doc)


# -- apply semantics ----------------------------------------------------------


def test_apply_is_functional_and_stable_ids():
    g = small_graph()
    batch = MutationBatch(add_src=[3], add_dst=[0], add_vertices=1)
    g2, eff = batch.apply(g)
    assert g.num_edges == 4 and g.num_vertices == 4  # untouched
    assert g2.num_vertices == 5
    assert g2.num_edges == 5
    assert eff.from_vertices == 4 and eff.to_vertices == 5
    assert eff.edges_added == 1 and eff.edges_removed == 0
    # dirty frontier: endpoints of the added edge + the new vertex
    assert set(eff.touched.tolist()) == {0, 3, 4}


def test_apply_removes_vertex_edges_without_renumbering():
    g = small_graph()
    g2, eff = MutationBatch(remove_vertices=[2]).apply(g)
    assert g2.num_vertices == 4              # id kept, vertex isolated
    assert g2.num_edges == 1                 # only 0 -> 1 survives
    assert eff.edges_removed == 3
    assert eff.shrinking and not eff.monotone_safe


def test_apply_update_weights_last_wins():
    g = small_graph()
    batch = MutationBatch(update_src=[0, 0], update_dst=[1, 1],
                          update_weights=[5.0, 0.25])
    g2, eff = batch.apply(g)
    e = int(np.nonzero((g2.src == 0) & (g2.dst == 1))[0][0])
    assert g2.weights[e] == 0.25             # last update to a pair wins
    assert eff.weight_increases == 0
    assert eff.monotone_safe
    assert set(eff.touched.tolist()) == {0, 1}   # a decrease is dirty


def test_apply_weight_increase_poisons_monotone_safety():
    g = small_graph()
    _, eff = MutationBatch(update_src=[0], update_dst=[1],
                           update_weights=[100.0]).apply(g)
    assert eff.weight_increases == 1
    assert not eff.monotone_safe
    assert eff.touched.size == 0             # increases are not frontier


def test_apply_missing_edge_is_corruption():
    g = small_graph()
    with pytest.raises(GraphError, match="remove targets missing"):
        MutationBatch(remove_src=[3], remove_dst=[0]).apply(g)
    with pytest.raises(GraphError, match="update targets missing"):
        MutationBatch(update_src=[3], update_dst=[0],
                      update_weights=[1.0]).apply(g)
    with pytest.raises(GraphError, match="out of range"):
        MutationBatch(add_src=[9], add_dst=[0]).apply(g)
    with pytest.raises(GraphError, match="removes and updates"):
        MutationBatch(remove_src=[0], remove_dst=[1],
                      update_src=[0], update_dst=[1],
                      update_weights=[1.0]).apply(g)


def test_edge_origin_tracks_surviving_edges():
    g = uniform_random(50, 300, seed=3)
    batch = MutationBatch(remove_src=g.src[:5].copy(),
                          remove_dst=g.dst[:5].copy(),
                          add_src=[1, 2], add_dst=[3, 4])
    g2, eff = batch.apply(g)
    assert eff.edge_origin.shape == (g2.num_edges,)
    survived = eff.edge_origin >= 0
    assert int((~survived).sum()) == 2       # exactly the added edges
    # each surviving edge maps back to the identical old edge
    orig = eff.edge_origin[survived]
    assert np.array_equal(g2.src[survived], g.src[orig])
    assert np.array_equal(g2.dst[survived], g.dst[orig])
    assert np.array_equal(g2.weights[survived], g.weights[orig])


def test_pure_update_preserves_edge_order_exactly():
    g = uniform_random(200, 1500, seed=9)
    batch = MutationBatch(update_src=g.src[:15].copy(),
                          update_dst=g.dst[:15].copy(),
                          update_weights=g.weights[:15] * 0.5)
    g2, eff = batch.apply(g)
    assert np.array_equal(g.src, g2.src)
    assert np.array_equal(g.dst, g2.dst)
    assert np.array_equal(eff.edge_origin,
                          np.arange(g.num_edges))


def test_api_mutate_accepts_docs():
    g = small_graph()
    g2, eff = mutate(g, {"add": {"src": [3], "dst": [0]}})
    assert g2.num_edges == 5
    assert eff.edges_added == 1


# -- warm-start policy --------------------------------------------------------


def grown_effect(graph):
    _, eff = MutationBatch(add_src=[0], add_dst=[1]).apply(graph)
    return eff


def shrunk_effect(graph):
    batch = MutationBatch(remove_src=graph.src[:1].copy(),
                          remove_dst=graph.dst[:1].copy())
    _, eff = batch.apply(graph)
    return eff


def test_plan_fixpoint_seeds_every_vertex():
    g = small_graph()
    old = np.full(4, 0.5)
    warm = plan_warm_start(PageRank(), old, [shrunk_effect(g)], g)
    assert warm is not None                  # safe under ANY mutation
    assert warm.iteration == 0
    assert warm.active.all()
    assert np.array_equal(warm.values, old)


def test_plan_frontier_seeds_only_touched():
    g = small_graph()
    old = np.arange(4, dtype=np.float64)
    warm = plan_warm_start(ConnectedComponents(), old,
                           [grown_effect(g)], g)
    assert warm is not None
    assert np.array_equal(warm.values, old)
    assert set(np.nonzero(warm.active)[0].tolist()) == {0, 1}


def test_plan_frontier_refuses_shrinking_chains():
    g = small_graph()
    old = np.zeros(4)
    effects = [grown_effect(g), shrunk_effect(g)]
    assert plan_warm_start(ConnectedComponents(), old, effects, g) is None


def test_plan_refuses_non_incremental_algorithms():
    g = small_graph()
    assert plan_warm_start(KCore(k=2), np.zeros(4),
                           [grown_effect(g)], g) is None


def test_plan_refuses_shape_mismatch():
    g = small_graph()
    # a 2-D multi-source seed cannot feed a 1-D value state
    assert plan_warm_start(PageRank(), np.zeros((4, 2)),
                           [grown_effect(g)], g) is None


def test_plan_pads_grown_vertices_with_init_state():
    g = small_graph()
    batch = MutationBatch(add_vertices=2)
    g2, eff = batch.apply(g)
    old = np.full(4, 0.25)
    warm = plan_warm_start(PageRank(), old, [eff], g2)
    assert warm.values.shape == (6,)
    assert np.array_equal(warm.values[:4], old)
    init = PageRank().init_state(g2).values
    assert np.array_equal(warm.values[4:], init[4:])


# -- the mutation log ---------------------------------------------------------


def make_record(bid, from_v, graph):
    batch = MutationBatch(add_src=[0], add_dst=[1])
    _, eff = batch.apply(graph)
    return MutationRecord(batch_id=bid, from_version=from_v,
                          to_version=from_v + 1, batch=batch, effect=eff)


def test_log_dedupes_and_chains():
    g = small_graph()
    log = MutationLog()
    r1, r2 = make_record("a", 1, g), make_record("b", 2, g)
    log.record("g", r1)
    log.record("g", r2)
    assert log.applied("g", "a") is r1
    assert log.applied("g", "zzz") is None
    assert log.effects_between("g", 1, 3) == [r1.effect, r2.effect]
    assert log.effects_between("g", 2, 3) == [r2.effect]
    assert log.effects_between("g", 3, 3) == []
    assert log.effects_between("g", 1, 9) is None    # chain broken
    log.drop("g")
    assert log.applied("g", "a") is None
    assert log.effects_between("g", 1, 2) is None
