"""Tests for the Table I dataset twins."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    DATASETS,
    DEFAULT_DATASET,
    dataset_names,
    load_dataset,
    load_synthetic_clustered,
    load_synthetic_uniform,
)


def test_all_six_table1_datasets_present():
    assert dataset_names() == [
        "orkut", "wiki-topcats", "livejournal", "wrn", "twitter", "uk-2007-02",
    ]


def test_default_is_orkut_highest_degree():
    """Paper: 'By default, Orkut is used, since it has the highest vertex
    degree among the 6' — true of the metadata ratios (excluding the two
    larger graphs used only for scalability? No: Orkut's |E|/|V| is the
    max of all six)."""
    assert DEFAULT_DATASET == "orkut"
    ratios = {name: spec.average_degree for name, spec in DATASETS.items()}
    assert max(ratios, key=ratios.get) == "orkut"


def test_paper_sizes_match_table1():
    ork = DATASETS["orkut"]
    assert ork.paper_vertices == 3_072_441
    assert ork.paper_edges == 117_185_083
    tw = DATASETS["twitter"]
    assert round(tw.paper_edges / 1e9, 3) == 1.468


def test_scaled_twins_preserve_degree_ratio():
    for name, spec in DATASETS.items():
        g = load_dataset(name)
        paper_ratio = spec.average_degree
        twin_ratio = g.average_degree()
        # twins should be within 2x of the paper's |E|/|V| ratio
        assert twin_ratio == pytest.approx(paper_ratio, rel=1.0), name


def test_twins_are_deterministic():
    assert load_dataset("orkut") == load_dataset("orkut")


def test_twitter_and_uk_are_the_two_largest():
    sizes = {name: load_dataset(name).num_edges for name in dataset_names()}
    ordered = sorted(sizes, key=sizes.get)
    assert set(ordered[-2:]) == {"twitter", "uk-2007-02"}


def test_road_twin_is_sparse():
    g = load_dataset("wrn")
    assert g.average_degree() < 3.0


def test_social_twin_is_skewed():
    g = load_dataset("orkut")
    assert g.max_degree() > 10 * g.average_degree()


def test_unknown_dataset_raises():
    with pytest.raises(GraphError):
        load_dataset("facebook")


def test_synthetic_helpers():
    uni = load_synthetic_uniform(500, 5000)
    assert uni.num_vertices == 500
    clu = load_synthetic_clustered(4, 100)
    assert clu.num_vertices == 400
