"""Unit tests for the CSR Graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph


def small_graph():
    #  0 -> 1 (w=2), 0 -> 2 (w=3), 1 -> 2 (w=1), 2 -> 0 (w=5)
    return Graph.from_edges(3, [0, 0, 1, 2], [1, 2, 2, 0], [2.0, 3.0, 1.0, 5.0])


def test_basic_counts():
    g = small_graph()
    assert g.num_vertices == 3
    assert g.num_edges == 4


def test_out_degrees_and_in_degrees():
    g = small_graph()
    assert g.out_degrees().tolist() == [2, 1, 1]
    assert g.in_degrees().tolist() == [1, 1, 2]
    assert g.max_degree() == 2
    assert g.average_degree() == pytest.approx(4 / 3)


def test_out_edges_returns_dst_and_weights():
    g = small_graph()
    dst, w = g.out_edges(0)
    assert sorted(dst.tolist()) == [1, 2]
    assert sorted(w.tolist()) == [2.0, 3.0]
    assert g.out_neighbors(1).tolist() == [2]


def test_out_edges_out_of_range():
    g = small_graph()
    with pytest.raises(GraphError):
        g.out_edges(3)
    with pytest.raises(GraphError):
        g.out_edges(-1)


def test_edges_iterator_matches_csr_arrays():
    g = small_graph()
    triples = list(g.edges())
    assert len(triples) == 4
    assert (0, 1, 2.0) in triples
    assert (2, 0, 5.0) in triples


def test_reverse_swaps_directions():
    g = small_graph()
    r = g.reverse()
    assert r.num_edges == g.num_edges
    assert sorted(zip(r.src.tolist(), r.dst.tolist())) == sorted(
        zip(g.dst.tolist(), g.src.tolist()))
    assert r.in_degrees().tolist() == g.out_degrees().tolist()


def test_to_undirected_doubles_edges():
    g = small_graph()
    u = g.to_undirected()
    assert u.num_edges == 2 * g.num_edges


def test_default_weights_are_one():
    g = Graph.from_edges(2, [0], [1])
    assert g.weights.tolist() == [1.0]


def test_input_validation():
    with pytest.raises(GraphError):
        Graph.from_edges(2, [0, 1], [1])  # length mismatch
    with pytest.raises(GraphError):
        Graph.from_edges(2, [0], [5])  # out of range
    with pytest.raises(GraphError):
        Graph.from_edges(2, [-1], [0])  # negative id
    with pytest.raises(GraphError):
        Graph.from_edges(-1, [], [])
    with pytest.raises(GraphError):
        Graph.from_edges(2, [0], [1], [1.0, 2.0])  # weights mismatch


def test_empty_graph():
    g = Graph.empty(5)
    assert g.num_vertices == 5
    assert g.num_edges == 0
    assert g.out_degrees().tolist() == [0] * 5
    assert g.average_degree() == 0.0
    assert Graph.empty().max_degree() == 0


def test_self_loops_and_parallel_edges_allowed():
    g = Graph.from_edges(2, [0, 0, 1], [0, 1, 1], [1, 2, 3])
    assert g.num_edges == 3
    assert g.out_degrees().tolist() == [2, 1]


def test_csr_invariant_src_sorted():
    g = Graph.from_edges(4, [3, 0, 2, 0, 1], [0, 1, 3, 2, 2])
    assert np.all(np.diff(g.src) >= 0)
    # indptr consistent with src
    for v in range(4):
        lo, hi = g.indptr[v], g.indptr[v + 1]
        assert np.all(g.src[lo:hi] == v)


def test_subgraph_edges():
    g = small_graph()
    src, dst, w = g.subgraph_edges(np.array([0, 3]))
    assert src.size == 2
    with pytest.raises(GraphError):
        g.subgraph_edges(np.array([99]))


def test_memory_footprint():
    g = small_graph()
    assert g.memory_footprint(bytes_per_edge=10, bytes_per_vertex=2) == 46


def test_equality():
    assert small_graph() == small_graph()
    assert small_graph() != Graph.empty(3)
