"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    clustered_communities,
    complete,
    cycle,
    path,
    rmat,
    road_network,
    star,
    uniform_random,
)


def test_rmat_shape_and_determinism():
    g1 = rmat(256, 2048, seed=3)
    g2 = rmat(256, 2048, seed=3)
    assert g1.num_vertices == 256
    assert g1.num_edges == 2048
    assert g1 == g2


def test_rmat_different_seeds_differ():
    assert rmat(256, 2048, seed=1) != rmat(256, 2048, seed=2)


def test_rmat_is_skewed():
    """R-MAT should concentrate edges on few vertices (power-law-ish)."""
    g = rmat(1024, 16384, seed=0)
    deg = np.sort(g.out_degrees())[::-1]
    top_share = deg[: len(deg) // 20].sum() / deg.sum()  # top 5% of vertices
    assert top_share > 0.25


def test_uniform_is_not_skewed():
    g = uniform_random(1024, 16384, seed=0)
    deg = np.sort(g.out_degrees())[::-1]
    top_share = deg[: len(deg) // 20].sum() / deg.sum()
    assert top_share < 0.15


def test_uniform_determinism():
    assert uniform_random(100, 500, seed=9) == uniform_random(100, 500, seed=9)


def test_road_network_low_degree_and_sparse():
    g = road_network(30, 30, seed=1)
    assert g.num_vertices == 900
    assert 0.9 <= g.average_degree() <= 2.5
    assert g.max_degree() <= 8


def test_star():
    g = star(5)
    assert g.num_vertices == 6
    assert g.out_degrees()[0] == 5
    assert g.in_degrees().tolist() == [0, 1, 1, 1, 1, 1]


def test_path_and_cycle():
    p = path(4)
    assert p.num_edges == 3
    c = cycle(4)
    assert c.num_edges == 4
    assert c.out_degrees().tolist() == [1, 1, 1, 1]


def test_complete():
    g = complete(4)
    assert g.num_edges == 12
    assert not any(s == d for s, d, _ in g.edges())


def test_clustered_communities_mostly_intra():
    g = clustered_communities(8, 50, seed=2)
    assert g.num_vertices == 400
    comm = np.arange(400) // 50
    same = comm[g.src] == comm[g.dst]
    assert same.mean() > 0.9


def test_generator_input_validation():
    with pytest.raises(GraphError):
        rmat(0, 10)
    with pytest.raises(GraphError):
        rmat(10, 10, a=0.5, b=0.3, c=0.3)  # a+b+c >= 1
    with pytest.raises(GraphError):
        uniform_random(0, 10)
    with pytest.raises(GraphError):
        road_network(0, 5)
    with pytest.raises(GraphError):
        star(-1)
    with pytest.raises(GraphError):
        path(0)
    with pytest.raises(GraphError):
        cycle(0)
    with pytest.raises(GraphError):
        complete(0)
    with pytest.raises(GraphError):
        clustered_communities(0, 5)


def test_unweighted_option():
    g = rmat(64, 256, seed=0, weighted=False)
    assert np.all(g.weights == 1.0)
