"""Tests for graph partitioners."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import (
    Graph,
    clustered_communities,
    clustering_partition,
    greedy_vertex_cut,
    hash_partition,
    partition,
    range_partition,
    rmat,
    uniform_random,
)

STRATEGIES = ["hash", "range", "clustering", "greedy-vertex-cut"]


@pytest.fixture(scope="module")
def g():
    return rmat(512, 4096, seed=5)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_edge_assigned_exactly_once(g, strategy):
    pg = partition(g, 4, strategy=strategy)
    all_ids = np.concatenate([p.edge_ids for p in pg.parts])
    assert np.sort(all_ids).tolist() == list(range(g.num_edges))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_vertex_has_exactly_one_master(g, strategy):
    pg = partition(g, 4, strategy=strategy)
    assert pg.master_of.size == g.num_vertices
    assert pg.master_of.min() >= 0
    assert pg.master_of.max() < 4
    master_union = np.concatenate([p.masters for p in pg.parts])
    assert np.sort(master_union).tolist() == list(range(g.num_vertices))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_subgraph_edges_match_graph(g, strategy):
    pg = partition(g, 3, strategy=strategy)
    for p in pg.parts:
        assert np.array_equal(p.src, g.src[p.edge_ids])
        assert np.array_equal(p.dst, g.dst[p.edge_ids])
        assert np.array_equal(p.weights, g.weights[p.edge_ids])


@pytest.mark.parametrize("strategy", ["hash", "range", "clustering"])
def test_edge_cut_places_edges_at_source_master(g, strategy):
    pg = partition(g, 4, strategy=strategy)
    for p in pg.parts:
        assert np.all(pg.master_of[p.src] == p.node_id)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_mirrors_disjoint_from_masters(g, strategy):
    pg = partition(g, 4, strategy=strategy)
    for p in pg.parts:
        assert not set(p.mirrors.tolist()) & set(p.masters.tolist())
        assert set(p.referenced.tolist()) >= set(p.mirrors.tolist())


def test_single_partition_trivial(g):
    pg = hash_partition(g, 1)
    assert pg.num_partitions == 1
    assert pg.parts[0].num_edges == g.num_edges
    assert pg.local_edge_fraction() == 1.0
    assert pg.out_local_mask().all()


def test_balanced_edge_counts_roughly_even(g):
    pg = range_partition(g, 4)
    counts = pg.edge_counts()
    assert counts.sum() == g.num_edges
    assert counts.max() <= 2.0 * counts.min() + 64


def test_shares_skew_partition_sizes(g):
    pg = range_partition(g, 2, shares=[0.75, 0.25])
    counts = pg.edge_counts()
    assert counts[0] > 2.0 * counts[1]


def test_shares_validation(g):
    with pytest.raises(PartitionError):
        range_partition(g, 2, shares=[1.0])
    with pytest.raises(PartitionError):
        range_partition(g, 2, shares=[-1.0, 2.0])
    with pytest.raises(PartitionError):
        range_partition(g, 2, shares=[0.0, 0.0])


def test_clustering_beats_hash_on_locality():
    g = clustered_communities(8, 64, seed=3)
    hash_pg = hash_partition(g, 8)
    clus_pg = clustering_partition(g, 8, seed=3)
    assert clus_pg.local_edge_fraction() > hash_pg.local_edge_fraction()


def test_out_local_mask_definition(g):
    pg = hash_partition(g, 4)
    mask = pg.out_local_mask()
    # verify against direct computation for a sample of vertices
    for v in range(0, g.num_vertices, 37):
        nbrs = g.out_neighbors(v)
        expected = bool(np.all(pg.master_of[nbrs] == pg.master_of[v]))
        assert mask[v] == expected


def test_vertex_cut_replicates_high_degree_vertices():
    g = rmat(256, 4096, seed=1)
    pg = greedy_vertex_cut(g, 4)
    assert pg.replication_factor() > 1.0
    # highest-degree vertex should appear on multiple nodes
    hub = int(np.argmax(g.out_degrees() + g.in_degrees()))
    appearances = sum(hub in p.referenced for p in pg.parts)
    assert appearances >= 2


def test_vertex_cut_lower_replication_than_random():
    """Greedy placement should replicate less than scattering edges."""
    g = rmat(256, 2048, seed=2)
    greedy = greedy_vertex_cut(g, 4)
    # a random edge scatter baseline
    rng = np.random.default_rng(0)
    owner = rng.integers(0, 4, g.num_edges)
    appearances = 0
    for node in range(4):
        ids = np.nonzero(owner == node)[0]
        appearances += np.union1d(g.src[ids], g.dst[ids]).size
    random_rep = appearances / g.num_vertices
    assert greedy.replication_factor() < random_rep


def test_unknown_strategy_raises(g):
    with pytest.raises(PartitionError):
        partition(g, 2, strategy="metis")


def test_invalid_partition_count(g):
    with pytest.raises(PartitionError):
        partition(g, 0)


def test_uniform_graph_hash_locality_matches_expectation():
    g = uniform_random(1000, 10000, seed=4)
    pg = hash_partition(g, 4)
    # endpoints are independent => local fraction ~ 1/4
    assert pg.local_edge_fraction() == pytest.approx(0.25, abs=0.05)
