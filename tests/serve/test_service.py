"""GraphService end to end: identity, coalescing, isolation, budgets."""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponents, PageRank
from repro.api import (
    ClusterSpec,
    GraphService,
    JobSpec,
    RuntimeConfig,
    deploy,
)
from repro.bench.trace import read_json
from repro.engines import PowerGraphEngine
from repro.errors import AdmissionError, ServeError
from repro.fault import CRASH, FaultPlan
from repro.graph import load_dataset

SPEC = ClusterSpec(nodes=2, gpus_per_node=1)


def solo_run(algorithm, max_iter=8):
    plug = deploy(SPEC, RuntimeConfig())
    engine = PowerGraphEngine.build(load_dataset("wrn"), plug.cluster,
                                    middleware=plug)
    return engine.run(algorithm, max_iterations=max_iter)


@pytest.fixture
def svc():
    service = GraphService(SPEC, cache_entries=8)
    service.load_graph("g", dataset="wrn")
    return service


def pagerank_spec(**kw):
    kw.setdefault("graph", "g")
    kw.setdefault("algorithm", "pagerank")
    kw.setdefault("max_iterations", 8)
    return JobSpec(**kw)


def test_served_job_matches_solo_run_exactly(svc):
    job = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    solo = solo_run(PageRank())
    assert job.state == "done"
    assert np.array_equal(job.values, solo.values)
    assert job.result.total_ms == solo.total_ms
    assert job.consumed_ms == solo.total_ms   # full cost charged
    assert job.fault_report.clean


def test_unknown_graph_rejected_at_submit(svc):
    with pytest.raises(ServeError, match="unknown graph"):
        svc.submit(pagerank_spec(graph="nope"))


def test_time_slicing_interleaves_tenants(svc):
    a = svc.submit(pagerank_spec(tenant="alice", use_cache=False))
    b = svc.submit(JobSpec(graph="g", algorithm="cc", tenant="bob",
                           use_cache=False))
    svc.run()
    assert a.state == b.state == "done"
    # both consumed service and both latencies include the other's
    # slices — neither ran to completion before the other started
    assert a.latency_ms > a.consumed_ms
    assert b.latency_ms > b.consumed_ms
    snap = svc.ledger.snapshot()
    assert snap["alice"]["slices"] > 1 and snap["bob"]["slices"] > 1


def test_priority_weighted_fair_share(svc):
    lo = svc.submit(pagerank_spec(tenant="lo", priority=1,
                                  use_cache=False))
    hi = svc.submit(pagerank_spec(tenant="hi", priority=3,
                                  use_cache=False))
    svc.run()
    # same work, but the weighted tenant drains first
    assert hi.finished_ms < lo.finished_ms
    assert np.array_equal(lo.values, hi.values)


def test_identical_inflight_queries_coalesce(svc):
    first = svc.submit(pagerank_spec(tenant="alice"))
    second = svc.submit(pagerank_spec(tenant="bob"))
    svc.run()
    assert not first.from_cache and second.from_cache
    assert svc.coalesced == 1
    assert np.array_equal(first.values, second.values)
    # the follower paid lookup cost, not an engine run
    assert second.consumed_ms < first.consumed_ms / 100


def test_repeated_query_hits_the_cache(svc):
    cold = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    warm = svc.submit(pagerank_spec(tenant="bob"))
    svc.run()
    assert warm.from_cache and not cold.from_cache
    assert np.array_equal(warm.values, cold.values)
    assert svc.cache.hit_rate > 0.0
    # >= 10x is the acceptance bar; lookup vs engine run is ~10000x
    assert cold.consumed_ms / warm.consumed_ms >= 10.0


def test_crash_in_one_tenant_never_perturbs_the_others(svc):
    plan = FaultPlan.single(CRASH, superstep=1, node_id=0, repeat=3)
    chaos = svc.submit(pagerank_spec(
        tenant="chaos", use_cache=False,
        runtime=RuntimeConfig.preset("resilient").with_(
            fault_plan=plan)))
    clean_pr = svc.submit(pagerank_spec(tenant="alice"))
    clean_cc = svc.submit(JobSpec(graph="g", algorithm="cc",
                                  tenant="bob"))
    svc.run()
    assert chaos.state == "done" and not chaos.fault_report.clean
    assert clean_pr.fault_report.clean and clean_cc.fault_report.clean
    # the isolation invariant: concurrent tenants' values are
    # byte-identical to their solo runs despite the injected crashes
    assert np.array_equal(clean_pr.values, solo_run(PageRank()).values)
    assert np.array_equal(clean_cc.values,
                          solo_run(ConnectedComponents(),
                                   max_iter=None).values)


def test_unrecoverable_job_fails_alone(svc):
    # repeated crashes on the no-recovery baseline stack kill the job
    plan = FaultPlan.single(CRASH, superstep=1, node_id=0, repeat=50)
    doomed = svc.submit(pagerank_spec(
        tenant="chaos", use_cache=False,
        runtime=RuntimeConfig.preset("baseline").with_(
            fault_plan=plan)))
    bystander = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    assert doomed.state == "failed"
    assert doomed.error is not None
    assert bystander.state == "done"
    assert np.array_equal(bystander.values, solo_run(PageRank()).values)


def test_cancel_pending_and_running(svc):
    a = svc.submit(pagerank_spec(tenant="a", use_cache=False))
    b = svc.submit(pagerank_spec(tenant="b", use_cache=False))
    for _ in range(3):
        svc.step()
    assert svc.cancel(b.job_id)
    assert b.state == "cancelled"
    svc.run()
    assert a.state == "done"
    assert not svc.cancel(a.job_id)        # already finished
    with pytest.raises(ServeError):
        svc.cancel(999)
    assert svc.store.get("g").attached == 0


def test_cancelled_leader_hands_off_to_waiters(svc):
    leader = svc.submit(pagerank_spec(tenant="a"))
    follower = svc.submit(pagerank_spec(tenant="b"))
    for _ in range(2):
        svc.step()
    assert svc.coalesced == 1
    assert svc.cancel(leader.job_id)
    svc.run()
    assert leader.state == "cancelled"
    assert follower.state == "done"
    assert np.array_equal(follower.values, solo_run(PageRank()).values)


def test_admission_budgets_serialize_excess_jobs():
    svc = GraphService(SPEC, daemon_budget=2)   # one job's worth
    svc.load_graph("g", dataset="wrn")
    a = svc.submit(pagerank_spec(tenant="a", use_cache=False))
    b = svc.submit(pagerank_spec(tenant="b", use_cache=False))
    svc.run()
    assert a.state == b.state == "done"
    assert svc.admission.deferrals > 0
    # serialized: b waited for a's daemons, so its latency includes
    # a's full run
    assert b.queue_ms >= a.consumed_ms


def test_impossible_job_rejected_at_submit():
    svc = GraphService(SPEC, memory_budget_mb=1e-6)
    svc.load_graph("g", dataset="wrn")
    with pytest.raises(AdmissionError, match="memory budget"):
        svc.submit(pagerank_spec())
    assert len(svc.queue) == 0                 # nothing stranded


def test_per_job_traces_written(tmp_path, svc_factory=None):
    svc = GraphService(SPEC, trace_dir=str(tmp_path))
    svc.load_graph("g", dataset="wrn")
    cold = svc.submit(JobSpec(graph="g", algorithm="pagerank",
                              tenant="alice", max_iterations=4))
    svc.run()
    warm = svc.submit(JobSpec(graph="g", algorithm="pagerank",
                              tenant="bob", max_iterations=4))
    svc.run()
    cold_doc = read_json(tmp_path / f"job-{cold.job_id}.json")
    assert cold_doc["job"]["tenant"] == "alice"
    assert cold_doc["job"]["from_cache"] is False
    assert cold_doc["summary"]["algorithm"] == "pagerank"
    assert len(cold_doc["iterations"]) == cold.result.iterations
    assert cold_doc["summary"]["cluster_spec"]["nodes"] == 2
    warm_doc = read_json(tmp_path / f"job-{warm.job_id}.json")
    assert warm_doc["job"]["from_cache"] is True
    assert "summary" not in warm_doc       # no engine run to record


def test_metrics_snapshot(svc):
    svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    m = svc.metrics()
    assert m["jobs"] == {"done": 1}
    assert m["latency"]["count"] == 1
    assert m["store"]["graphs"]["g"]["attached"] == 0
    assert m["cache"]["entries"] == 1
    assert m["now_ms"] > 0


def test_service_is_deterministic():
    def session():
        svc = GraphService(SPEC)
        svc.load_graph("g", dataset="wrn")
        jobs = [svc.submit(pagerank_spec(tenant=f"t{i}",
                                         use_cache=False))
                for i in range(3)]
        svc.run()
        return [(j.latency_ms, j.consumed_ms) for j in jobs], svc.now_ms

    assert session() == session()
