"""GraphService end to end: identity, coalescing, isolation, budgets."""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponents, PageRank
from repro.api import (
    ClusterSpec,
    GraphService,
    JobSpec,
    RuntimeConfig,
    deploy,
)
from repro.bench.trace import read_json
from repro.engines import PowerGraphEngine
from repro.errors import AdmissionError, ServeError
from repro.fault import CRASH, FaultPlan
from repro.graph import load_dataset

SPEC = ClusterSpec(nodes=2, gpus_per_node=1)


def solo_run(algorithm, max_iter=8):
    plug = deploy(SPEC, RuntimeConfig())
    engine = PowerGraphEngine.build(load_dataset("wrn"), plug.cluster,
                                    middleware=plug)
    return engine.run(algorithm, max_iterations=max_iter)


@pytest.fixture
def svc():
    service = GraphService(SPEC, cache_entries=8)
    service.load_graph("g", dataset="wrn")
    return service


def pagerank_spec(**kw):
    kw.setdefault("graph", "g")
    kw.setdefault("algorithm", "pagerank")
    kw.setdefault("max_iterations", 8)
    return JobSpec(**kw)


def test_served_job_matches_solo_run_exactly(svc):
    job = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    solo = solo_run(PageRank())
    assert job.state == "done"
    assert np.array_equal(job.values, solo.values)
    assert job.result.total_ms == solo.total_ms
    assert job.consumed_ms == solo.total_ms   # full cost charged
    assert job.fault_report.clean


def test_unknown_graph_rejected_at_submit(svc):
    with pytest.raises(ServeError, match="unknown graph"):
        svc.submit(pagerank_spec(graph="nope"))


def test_time_slicing_interleaves_tenants(svc):
    a = svc.submit(pagerank_spec(tenant="alice", use_cache=False))
    b = svc.submit(JobSpec(graph="g", algorithm="cc", tenant="bob",
                           use_cache=False))
    svc.run()
    assert a.state == b.state == "done"
    # both consumed service and both latencies include the other's
    # slices — neither ran to completion before the other started
    assert a.latency_ms > a.consumed_ms
    assert b.latency_ms > b.consumed_ms
    snap = svc.ledger.snapshot()
    assert snap["alice"]["slices"] > 1 and snap["bob"]["slices"] > 1


def test_priority_weighted_fair_share(svc):
    lo = svc.submit(pagerank_spec(tenant="lo", priority=1,
                                  use_cache=False))
    hi = svc.submit(pagerank_spec(tenant="hi", priority=3,
                                  use_cache=False))
    svc.run()
    # same work, but the weighted tenant drains first
    assert hi.finished_ms < lo.finished_ms
    assert np.array_equal(lo.values, hi.values)


def test_identical_inflight_queries_coalesce(svc):
    first = svc.submit(pagerank_spec(tenant="alice"))
    second = svc.submit(pagerank_spec(tenant="bob"))
    svc.run()
    assert not first.from_cache and second.from_cache
    assert svc.coalesced == 1
    assert np.array_equal(first.values, second.values)
    # the follower paid lookup cost, not an engine run
    assert second.consumed_ms < first.consumed_ms / 100


def test_repeated_query_hits_the_cache(svc):
    cold = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    warm = svc.submit(pagerank_spec(tenant="bob"))
    svc.run()
    assert warm.from_cache and not cold.from_cache
    assert np.array_equal(warm.values, cold.values)
    assert svc.cache.hit_rate > 0.0
    # >= 10x is the acceptance bar; lookup vs engine run is ~10000x
    assert cold.consumed_ms / warm.consumed_ms >= 10.0


def test_crash_in_one_tenant_never_perturbs_the_others(svc):
    plan = FaultPlan.single(CRASH, superstep=1, node_id=0, repeat=3)
    chaos = svc.submit(pagerank_spec(
        tenant="chaos", use_cache=False,
        runtime=RuntimeConfig.preset("resilient").with_(
            fault_plan=plan)))
    clean_pr = svc.submit(pagerank_spec(tenant="alice"))
    clean_cc = svc.submit(JobSpec(graph="g", algorithm="cc",
                                  tenant="bob"))
    svc.run()
    assert chaos.state == "done" and not chaos.fault_report.clean
    assert clean_pr.fault_report.clean and clean_cc.fault_report.clean
    # the isolation invariant: concurrent tenants' values are
    # byte-identical to their solo runs despite the injected crashes
    assert np.array_equal(clean_pr.values, solo_run(PageRank()).values)
    assert np.array_equal(clean_cc.values,
                          solo_run(ConnectedComponents(),
                                   max_iter=None).values)


def test_unrecoverable_job_fails_alone(svc):
    # repeated crashes on the no-recovery baseline stack kill the job
    plan = FaultPlan.single(CRASH, superstep=1, node_id=0, repeat=50)
    doomed = svc.submit(pagerank_spec(
        tenant="chaos", use_cache=False,
        runtime=RuntimeConfig.preset("baseline").with_(
            fault_plan=plan)))
    bystander = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    assert doomed.state == "failed"
    assert doomed.error is not None
    assert bystander.state == "done"
    assert np.array_equal(bystander.values, solo_run(PageRank()).values)


def test_cancel_pending_and_running(svc):
    a = svc.submit(pagerank_spec(tenant="a", use_cache=False))
    b = svc.submit(pagerank_spec(tenant="b", use_cache=False))
    for _ in range(3):
        svc.step()
    assert svc.cancel(b.job_id)
    assert b.state == "cancelled"
    svc.run()
    assert a.state == "done"
    assert not svc.cancel(a.job_id)        # already finished
    with pytest.raises(ServeError):
        svc.cancel(999)
    assert svc.store.get("g").attached == 0


def test_cancelled_leader_hands_off_to_waiters(svc):
    leader = svc.submit(pagerank_spec(tenant="a"))
    follower = svc.submit(pagerank_spec(tenant="b"))
    for _ in range(2):
        svc.step()
    assert svc.coalesced == 1
    assert svc.cancel(leader.job_id)
    svc.run()
    assert leader.state == "cancelled"
    assert follower.state == "done"
    assert np.array_equal(follower.values, solo_run(PageRank()).values)


def test_admission_budgets_serialize_excess_jobs():
    svc = GraphService(SPEC, daemon_budget=2)   # one job's worth
    svc.load_graph("g", dataset="wrn")
    a = svc.submit(pagerank_spec(tenant="a", use_cache=False))
    b = svc.submit(pagerank_spec(tenant="b", use_cache=False))
    svc.run()
    assert a.state == b.state == "done"
    assert svc.admission.deferrals > 0
    # serialized: b waited for a's daemons, so its latency includes
    # a's full run
    assert b.queue_ms >= a.consumed_ms


def test_impossible_job_rejected_at_submit():
    svc = GraphService(SPEC, memory_budget_mb=1e-6)
    svc.load_graph("g", dataset="wrn")
    with pytest.raises(AdmissionError, match="memory budget"):
        svc.submit(pagerank_spec())
    assert len(svc.queue) == 0                 # nothing stranded


def test_per_job_traces_written(tmp_path, svc_factory=None):
    svc = GraphService(SPEC, trace_dir=str(tmp_path))
    svc.load_graph("g", dataset="wrn")
    cold = svc.submit(JobSpec(graph="g", algorithm="pagerank",
                              tenant="alice", max_iterations=4))
    svc.run()
    warm = svc.submit(JobSpec(graph="g", algorithm="pagerank",
                              tenant="bob", max_iterations=4))
    svc.run()
    cold_doc = read_json(tmp_path / f"job-{cold.job_id}.json")
    assert cold_doc["job"]["tenant"] == "alice"
    assert cold_doc["job"]["from_cache"] is False
    assert cold_doc["summary"]["algorithm"] == "pagerank"
    assert len(cold_doc["iterations"]) == cold.result.iterations
    assert cold_doc["summary"]["cluster_spec"]["nodes"] == 2
    warm_doc = read_json(tmp_path / f"job-{warm.job_id}.json")
    assert warm_doc["job"]["from_cache"] is True
    assert "summary" not in warm_doc       # no engine run to record


def test_metrics_snapshot(svc):
    svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    m = svc.metrics()
    assert m["jobs"] == {"done": 1}
    assert m["latency"]["count"] == 1
    assert m["store"]["graphs"]["g"]["attached"] == 0
    assert m["cache"]["entries"] == 1
    assert m["now_ms"] > 0


def test_service_is_deterministic():
    def session():
        svc = GraphService(SPEC)
        svc.load_graph("g", dataset="wrn")
        jobs = [svc.submit(pagerank_spec(tenant=f"t{i}",
                                         use_cache=False))
                for i in range(3)]
        svc.run()
        return [(j.latency_ms, j.consumed_ms) for j in jobs], svc.now_ms

    assert session() == session()


# -- deadlines, retries, quarantine (crash-safe serving) ---------------------------------

def test_deadline_blown_while_running_fails_terminally(svc):
    job = svc.submit(pagerank_spec(tenant="alice", use_cache=False,
                                   deadline_ms=0.5, max_retries=3))
    svc.run()
    # the deadline is terminal even with a retry budget left
    assert job.state == "failed"
    assert "deadline exceeded" in job.error
    assert job.retries == 0


def test_deadline_blown_while_queued_fails_before_dispatch():
    svc = GraphService(SPEC, daemon_budget=2)   # one job at a time
    svc.load_graph("g", dataset="wrn")
    first = svc.submit(pagerank_spec(tenant="a", use_cache=False))
    starved = svc.submit(pagerank_spec(tenant="b", use_cache=False,
                                       deadline_ms=1.0))
    svc.run()
    assert first.state == "done"
    assert starved.state == "failed"
    assert "deadline exceeded while queued" in starved.error
    assert starved.consumed_ms == 0.0           # never dispatched


def test_unmeetable_deadline_shed_at_admission():
    svc = GraphService(SPEC, daemon_budget=2)
    svc.load_graph("g", dataset="wrn")
    svc.submit(pagerank_spec(tenant="warmup", use_cache=False))
    svc.run()                                   # seeds the EWMA
    svc.submit(pagerank_spec(tenant="a", use_cache=False))
    svc.submit(JobSpec(graph="g", algorithm="cc", tenant="b",
                       use_cache=False))
    with pytest.raises(AdmissionError, match="deadline .* unmeetable"):
        svc.submit(pagerank_spec(tenant="c", deadline_ms=0.001))
    assert svc.admission.sheds == 1
    assert any("unmeetable" in r for r in svc.admission.shed_reasons)
    svc.run()                                   # backlog still drains


def test_overload_sheds_on_queue_depth_and_tenant_cap():
    svc = GraphService(SPEC, daemon_budget=2, max_queue_depth=3,
                       max_pending_per_tenant=1)
    svc.load_graph("g", dataset="wrn")
    svc.submit(pagerank_spec(tenant="a", use_cache=False))
    svc.submit(pagerank_spec(tenant="b", use_cache=False))
    with pytest.raises(AdmissionError, match="has 1/1 jobs pending"):
        svc.submit(pagerank_spec(tenant="b", use_cache=False))
    svc.submit(JobSpec(graph="g", algorithm="cc", tenant="c"))
    with pytest.raises(AdmissionError, match="queue depth 3/3"):
        svc.submit(pagerank_spec(tenant="d", use_cache=False))
    assert svc.admission.sheds == 2
    assert len(svc.queue) == 3                  # sheds left no residue


def test_transient_failure_retries_from_checkpoint(svc):
    runtime = RuntimeConfig().with_(checkpoint_interval=2)
    job = svc.submit(pagerank_spec(tenant="alice", use_cache=False,
                                   max_retries=2, retry_backoff_ms=4.0,
                                   runtime=runtime))
    for _ in range(5):                          # past the iteration-4 ckpt
        svc.step()
    rj = svc.scheduler.find(job.job_id)
    rj.stepper.close()
    svc._fail(rj, ServeError("transient glitch"))  # simulated blip
    assert job.state == "pending" and job.retries == 1
    assert job.resume_from is not None
    assert job.not_before_ms == svc.now_ms + 4.0   # backoff window
    resumed_at = job.resume_from.iteration
    svc.run()
    assert job.state == "done"
    assert svc.retries == 1 and svc.metrics()["retries"] == 1
    # the retry resumed mid-run, recomputing only the tail
    assert len(job.result.stats) == job.result.iterations - resumed_at
    assert np.array_equal(job.values, solo_run(PageRank()).values)


def test_poison_job_quarantined_after_retry_budget(svc):
    plan = FaultPlan.single(CRASH, superstep=1, node_id=0, repeat=50)
    doomed = svc.submit(pagerank_spec(
        tenant="chaos", use_cache=False, max_retries=2,
        runtime=RuntimeConfig.preset("baseline").with_(
            fault_plan=plan)))
    bystander = svc.submit(pagerank_spec(tenant="alice"))
    svc.run()
    assert doomed.state == "quarantined"
    assert doomed.retries == 2
    assert "poison: failed 3 times (budget 2)" in \
        doomed.quarantine_reason
    assert bystander.state == "done"
    assert np.array_equal(bystander.values, solo_run(PageRank()).values)
    assert svc.metrics()["jobs"] == {"done": 1, "quarantined": 1}


# -- drain and journal recovery ----------------------------------------------------------

def test_drain_finishes_running_sheds_pending(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = GraphService(SPEC, daemon_budget=2, journal=jpath)
    svc.load_graph("g", dataset="wrn")
    running = svc.submit(pagerank_spec(tenant="a", use_cache=False))
    pending = svc.submit(pagerank_spec(tenant="b", use_cache=False))
    svc.step()                                  # a is in flight
    svc.drain()
    assert running.state == "done"
    assert pending.state == "cancelled"
    assert pending.error == "shed: service draining"
    assert svc.admission.sheds == 1
    with pytest.raises(AdmissionError, match="draining"):
        svc.submit(pagerank_spec(tenant="late"))
    assert svc.journal.closed
    from repro.serve import replay_journal, read_journal
    state = replay_journal(read_journal(jpath))
    assert state.clean_shutdown
    assert state.unfinished == []


def test_recover_resumes_inflight_jobs_bit_identically(tmp_path):
    def submit_all(service):
        return [service.submit(pagerank_spec(
                    tenant="a", use_cache=False, max_iterations=10)),
                service.submit(JobSpec(graph="g", algorithm="cc",
                                       tenant="b", use_cache=False))]

    base = GraphService(SPEC, journal=str(tmp_path / "base.jsonl"))
    base.load_graph("g", dataset="wrn")
    base_jobs = submit_all(base)
    base.run()
    cold_steps = [len(j.result.stats) for j in base_jobs]

    jpath = str(tmp_path / "crash.jsonl")
    svc = GraphService(SPEC, journal=jpath)
    svc.load_graph("g", dataset="wrn")
    submit_all(svc)
    for _ in range(9):                          # killed mid-flight
        svc.step()
    del svc                                     # nothing is flushed

    rec = GraphService.recover(jpath)
    assert rec.recovered_jobs == 2
    assert rec.resumed_from_checkpoint >= 1
    resumed = {j.job_id for j in rec.queue.jobs()
               if j.resume_from is not None}
    rec.run()
    for base_job, steps in zip(base_jobs, cold_steps):
        job = rec.job(base_job.job_id)
        assert job.state == "done"
        assert np.array_equal(job.values, base_job.values)
        if job.job_id in resumed:
            assert len(job.result.stats) < steps


def test_recover_restores_terminal_jobs_and_cache(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = GraphService(SPEC, journal=jpath)
    svc.load_graph("g", dataset="wrn")
    done = svc.submit(pagerank_spec(tenant="a"))
    svc.run()
    svc.submit(pagerank_spec(tenant="late", deadline_ms=0.5,
                             use_cache=False))
    svc.run()                                   # fails on its deadline
    from repro.serve import read_journal
    before = len(read_journal(jpath))

    rec = GraphService.recover(jpath)
    # replay appended nothing — recovery is idempotent
    assert len(read_journal(jpath)) == before
    assert rec.recovered_jobs == 0              # nothing to re-queue
    assert rec.job(done.job_id).state == "done"
    assert np.array_equal(rec.job(done.job_id).values, done.values)
    assert rec.job(2).state == "failed"
    assert "deadline exceeded" in rec.job(2).error
    # the finished answer re-entered the result cache from its sidecar:
    # an identical query is served at lookup cost, byte-identically
    warm = rec.submit(pagerank_spec(tenant="b"))
    rec.run()
    assert warm.from_cache
    assert np.array_equal(warm.values, done.values)


def test_journaling_never_moves_values(tmp_path):
    def session(journal):
        svc = GraphService(SPEC, journal=journal)
        svc.load_graph("g", dataset="wrn")
        jobs = [svc.submit(pagerank_spec(tenant=f"t{i}",
                                         use_cache=False))
                for i in range(2)]
        svc.run()
        return jobs

    plain = session(None)
    logged = session(str(tmp_path / "svc.jsonl"))
    for a, b in zip(plain, logged):
        # the forced checkpoint interval costs time, never values
        assert np.array_equal(a.values, b.values)


# -- idempotency keys (exactly-once submits) ---------------------------------------------

def test_idempotency_key_dedupes_resubmit(svc):
    first = svc.submit(pagerank_spec(tenant="a"), idempotency_key="k1")
    again = svc.submit(pagerank_spec(tenant="a"), idempotency_key="k1")
    assert again is first
    assert svc.deduped_submits == 1
    assert svc.metrics()["deduped_submits"] == 1
    assert svc.idempotent_job_id("k1") == first.job_id
    assert svc.idempotent_job_id("other") is None


def test_idempotency_key_must_be_nonempty_string(svc):
    with pytest.raises(ServeError, match="idempotency_key"):
        svc.submit(pagerank_spec(tenant="a"), idempotency_key="")
    with pytest.raises(ServeError, match="idempotency_key"):
        svc.submit(pagerank_spec(tenant="a"), idempotency_key=7)


def test_shed_submit_does_not_consume_the_key():
    service = GraphService(SPEC, max_queue_depth=1)
    service.load_graph("g", dataset="wrn")
    service.submit(pagerank_spec(tenant="a"))
    with pytest.raises(AdmissionError):
        service.submit(pagerank_spec(tenant="b"), idempotency_key="kb")
    # the refused submit never committed: the key is free to retry
    assert service.idempotent_job_id("kb") is None
    service.run()
    retry = service.submit(pagerank_spec(tenant="b"),
                           idempotency_key="kb")
    assert service.idempotent_job_id("kb") == retry.job_id


def test_idempotency_map_survives_crash_and_recover(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    service = GraphService(SPEC, journal=jpath)
    service.load_graph("g", dataset="wrn")
    job = service.submit(pagerank_spec(tenant="a"),
                         idempotency_key="crashkey")
    for _ in range(3):
        service.step()                  # killed mid-flight
    del service

    rec = GraphService.recover(jpath)
    dedup = rec.submit(pagerank_spec(tenant="a"),
                       idempotency_key="crashkey")
    assert dedup.job_id == job.job_id
    assert rec.deduped_submits == 1
    rec.run()
    assert dedup.state == "done"


# -- drain: idempotent, concurrent-safe, reasoned ----------------------------------------

def test_drain_is_idempotent(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    service = GraphService(SPEC, journal=jpath)
    service.load_graph("g", dataset="wrn")
    service.submit(pagerank_spec(tenant="a"))
    first = service.drain(reason="test")
    second = service.drain(reason="other")
    assert second is first              # cached, nothing re-shed
    from repro.serve import read_journal
    records = read_journal(jpath)
    shutdowns = [r for r in records if r["rec"] == "shutdown"]
    assert len(shutdowns) == 1
    assert shutdowns[0]["reason"] == "test"


def test_concurrent_drains_journal_one_shutdown(tmp_path):
    import threading

    jpath = str(tmp_path / "svc.jsonl")
    service = GraphService(SPEC, journal=jpath)
    service.load_graph("g", dataset="wrn")
    service.submit(pagerank_spec(tenant="a", use_cache=False))
    results = []
    threads = [threading.Thread(
        target=lambda: results.append(service.drain(reason="race")))
        for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert len(results) == 4
    assert all(r is results[0] for r in results)
    from repro.serve import read_journal
    records = read_journal(jpath)
    assert sum(r["rec"] == "shutdown" for r in records) == 1


def test_step_refuses_after_drain(svc):
    svc.submit(pagerank_spec(tenant="a"))
    svc.drain()
    assert svc.step() is False


def test_drain_suspend_mode_keeps_jobs_resumable(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    service = GraphService(SPEC, journal=jpath)
    service.load_graph("g", dataset="wrn")
    job = service.submit(pagerank_spec(tenant="a", use_cache=False,
                                       max_iterations=10))
    for _ in range(4):
        service.step()                  # mid-flight, checkpointed
    service.drain(reason="sigterm", finish_running=False)
    assert job.state != "done"          # suspended, not completed

    from repro.serve import read_journal, replay_journal
    state = replay_journal(read_journal(jpath))
    assert state.clean_shutdown and state.shutdown_reason == "sigterm"
    assert state.unfinished             # nothing terminal was forged

    rec = GraphService.recover(jpath)
    assert rec.recovered_jobs == 1
    assert rec.resumed_from_checkpoint == 1
    rec.run()
    resumed = rec.job(job.job_id)
    assert resumed.state == "done"
    assert len(resumed.result.stats) < 10   # resume beat cold restart
    assert np.array_equal(resumed.values, solo_run(PageRank(), 10).values)


def test_recovery_stats_counts_terminal_and_inflight(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    service = GraphService(SPEC, journal=jpath)
    service.load_graph("g", dataset="wrn")
    finished = service.submit(pagerank_spec(tenant="a"))
    service.run()
    inflight = service.submit(pagerank_spec(tenant="b", use_cache=False,
                                            algorithm="cc"))
    for _ in range(3):
        service.step()
    del service

    rec = GraphService.recover(jpath)
    stats = rec.recovery_stats()
    assert stats["recovered"] == 2      # one terminal + one re-queued
    assert stats["requeued"] == 1
    assert stats["resumed"] in (0, 1)
    assert stats == rec.metrics()["recovery"]
    fresh = GraphService(SPEC)
    assert fresh.recovery_stats() == {"recovered": 0, "requeued": 0,
                                      "resumed": 0, "handoffs": 0}
