"""Fair-share scheduler: stride picks, vtime floors, the ledger."""

import pytest

from repro.serve import FairShareLedger, FairShareScheduler, RunningJob
from repro.serve.job import Job, JobSpec


def running(job_id, priority=1):
    job = Job(job_id, JobSpec(graph="g", priority=priority,
                              tenant=f"t{job_id}"), submitted_ms=0.0)
    return RunningJob(job, middleware=None, engine=None, stepper=None)


def test_pick_min_vtime_ties_broken_by_job_id():
    sched = FairShareScheduler()
    a, b = running(1), running(2)
    sched.add(a)
    sched.add(b)
    assert sched.pick() is a          # tie at vtime 0 -> lowest id
    a.virtual_ms = 10.0
    assert sched.pick() is b


def test_weighted_vtime_prefers_high_priority():
    sched = FairShareScheduler()
    lo, hi = running(1, priority=1), running(2, priority=2)
    sched.add(lo)
    sched.add(hi)
    lo.virtual_ms = 10.0              # vtime 10
    hi.virtual_ms = 15.0              # vtime 7.5: same work, half cost
    assert sched.pick() is hi


def test_equal_priorities_alternate():
    sched = FairShareScheduler()
    a, b = running(1), running(2)
    sched.add(a)
    sched.add(b)
    order = []
    for _ in range(4):
        rj = sched.pick()
        order.append(rj.job.job_id)
        rj.virtual_ms += 5.0          # equal-cost slices
    assert order == [1, 2, 1, 2]


def test_newcomer_starts_at_the_vtime_floor():
    sched = FairShareScheduler()
    old = running(1)
    sched.add(old)
    old.virtual_ms = 100.0
    late = running(2, priority=2)
    sched.add(late)
    # joins at the floor (vtime 100), scaled by its weight
    assert late.virtual_ms == 200.0
    assert late.vtime == 100.0


def test_remove_and_find():
    sched = FairShareScheduler()
    a = running(1)
    sched.add(a)
    assert sched.find(1) is a and sched.find(2) is None
    sched.remove(a)
    assert len(sched) == 0 and sched.pick() is None


def test_ledger_accounting_and_shares():
    ledger = FairShareLedger()
    ledger.charge("alice", 30.0)
    ledger.charge("bob", 10.0)
    ledger.charge("alice", 30.0)
    ledger.finish("alice")
    ledger.finish("bob", from_cache=True)
    snap = ledger.snapshot()
    assert snap["alice"]["consumed_ms"] == 60.0
    assert snap["alice"]["slices"] == 2
    assert snap["bob"]["cache_hits"] == 1
    assert ledger.share_of("alice") == pytest.approx(60.0 / 70.0)
    assert ledger.share_of("nobody") == 0.0
