"""Admission control + queue ordering: budgets, priorities, backfill."""

import pytest

from repro.errors import AdmissionError, ServeError
from repro.serve import AdmissionControl, JobQueue, JobSpec, ResourceUsage
from repro.serve.job import Job


def job(job_id, priority=1, graph="g", tenant="t"):
    return Job(job_id, JobSpec(graph=graph, priority=priority,
                               tenant=tenant), submitted_ms=0.0)


def test_budget_validation():
    with pytest.raises(ServeError):
        AdmissionControl(memory_budget_bytes=0)
    with pytest.raises(ServeError):
        AdmissionControl(daemon_budget=-1)
    with pytest.raises(ServeError):
        AdmissionControl(max_running=0)


def test_infeasible_jobs_are_rejected_outright():
    ac = AdmissionControl(memory_budget_bytes=100, daemon_budget=4,
                          daemons_per_job=2)
    ac.check_feasible(job(1), graph_bytes=100)        # exactly fits
    with pytest.raises(AdmissionError, match="memory budget"):
        ac.check_feasible(job(2), graph_bytes=101)
    big = AdmissionControl(daemon_budget=4, daemons_per_job=8)
    with pytest.raises(AdmissionError, match="daemons"):
        big.check_feasible(job(3), graph_bytes=0)
    assert ac.rejections == 1 and big.rejections == 1


def test_defer_on_daemon_pool_exhaustion():
    ac = AdmissionControl(daemon_budget=4, daemons_per_job=2)
    free = ResourceUsage()
    assert ac.defer_reason(job(1), 0, free) is None
    busy = ResourceUsage(daemons=4, running=2)
    assert "daemon pool" in ac.defer_reason(job(1), 0, busy)


def test_defer_on_max_running():
    ac = AdmissionControl(max_running=1)
    assert "concurrent jobs" in ac.defer_reason(
        job(1), 0, ResourceUsage(running=1))


def test_memory_counts_shared_graphs_once():
    ac = AdmissionControl(memory_budget_bytes=100, daemons_per_job=1)
    # 90 of 100 bytes attached, and the new job's graph IS the
    # attached one: admission is memory-free
    usage = ResourceUsage(memory_bytes=90, attached_graphs={"g"})
    assert ac.defer_reason(job(1, graph="g"), 90, usage) is None
    # a different graph of 90 bytes would bust the budget
    assert "memory budget" in ac.defer_reason(job(2, graph="h"), 90,
                                              usage)


def test_priority_order_fifo_within_class():
    q = JobQueue(AdmissionControl())
    lo1, hi, lo2 = job(1, priority=1), job(2, priority=3), job(3,
                                                               priority=1)
    for j in (lo1, hi, lo2):
        q.push(j)
    free = ResourceUsage()
    sizes = {"g": 0}
    assert q.pop_admissible(free, sizes) is hi
    assert q.pop_admissible(free, sizes) is lo1   # FIFO among equals
    assert q.pop_admissible(free, sizes) is lo2
    assert q.pop_admissible(free, sizes) is None


def test_backfill_past_a_job_that_does_not_fit():
    ac = AdmissionControl(memory_budget_bytes=100, daemons_per_job=1)
    q = JobQueue(ac)
    big = job(1, priority=5, graph="big")
    small = job(2, priority=1, graph="small")
    q.push(big)
    q.push(small)
    usage = ResourceUsage(memory_bytes=60, attached_graphs={"other"})
    sizes = {"big": 80, "small": 10}
    # big (priority 5) cannot fit now; small backfills past it
    assert q.pop_admissible(usage, sizes) is small
    assert q.last_defer_reason is not None
    assert "1" in q.last_defer_reason
    assert ac.deferrals >= 1
    # big is still queued, not lost
    assert q.jobs() == [big]


def test_cancel_pending():
    q = JobQueue(AdmissionControl())
    a, b = job(1), job(2)
    q.push(a)
    q.push(b)
    assert q.cancel(1) is a
    assert a.state == "cancelled"
    assert q.cancel(99) is None
    assert len(q) == 1
