"""Versioned snapshots + streaming mutations through the service.

The isolation property under test: a job is pinned to the store
version current at submit time, and its results are bit-identical
whether or not mutations land while it runs.  Plus the machinery
around it — copy-on-write retention, snapshot GC, exactly-once
mutation replay, warm starts, cache invalidation, and the deprecated
attach/reload shims.
"""

import warnings

import numpy as np
import pytest

from repro.api import ClusterSpec
from repro.engines import PowerGraphEngine
from repro.errors import ServeError
from repro.graph import Graph, uniform_random
from repro.graph.mutations import MutationBatch
from repro.serve import GraphService, GraphSnapshot, GraphStore, JobSpec
from repro.serve.journal import read_journal

SPEC = ClusterSpec(nodes=2, gpus_per_node=1)
CLUSTER = SPEC.build()


def ring(n, name="ring"):
    src = np.arange(n, dtype=np.int64)
    return Graph.from_edges(n, src, (src + 1) % n, name=name)


def add_edge_batch(s, d):
    return MutationBatch(add_src=[s], add_dst=[d])


@pytest.fixture
def store():
    s = GraphStore()
    s.load("g", ring(16))
    return s


# -- snapshot lifecycle -------------------------------------------------------


def test_snapshot_pins_and_releases(store):
    snap = store.snapshot("g")
    assert isinstance(snap, GraphSnapshot)
    assert snap.version == 1 and not snap.released
    assert store.pinned_versions("g") == {1}
    snap.release()
    assert snap.released
    assert store.pinned_versions("g") == set()
    snap.release()                             # idempotent
    assert store.stats()["snapshots"] == 1


def test_snapshot_is_a_context_manager(store):
    with store.snapshot("g") as snap:
        assert store.pinned_versions("g") == {snap.version}
    assert snap.released


def test_pinned_version_survives_mutation_cow(store):
    snap = store.snapshot("g")
    store.mutate("g", add_edge_batch(0, 8))
    assert store.get("g").version == 2         # new submits see v2
    assert snap.graph.num_edges == 16          # the pin still sees v1
    assert store.stats()["retained_versions"] == 1
    snap.release()                             # last pin dropped -> GC
    assert store.stats()["retained_versions"] == 0
    with pytest.raises(ServeError, match="no longer retained"):
        store.snapshot("g", version=1)


def test_unpinned_old_version_is_not_retained(store):
    store.mutate("g", add_edge_batch(0, 8))
    assert store.stats()["retained_versions"] == 0


def test_released_snapshot_refuses_engine_builds(store):
    snap = store.snapshot("g")
    snap.release()
    with pytest.raises(ServeError, match="released"):
        snap.build_engine(PowerGraphEngine, CLUSTER)


def test_store_mutate_is_idempotent_by_batch_id(store):
    batch = add_edge_batch(0, 8)
    rec = store.mutate("g", batch, "bid-1")
    again = store.mutate("g", batch, "bid-1")
    assert again is rec
    assert store.get("g").version == 2         # applied exactly once
    assert store.stats()["mutations"] == 1


def test_partition_delta_avoids_full_repartition(store):
    store.build_engine("g", PowerGraphEngine, CLUSTER)
    assert store.stats()["partition_builds"] == 1
    snap = store.snapshot("g")                 # keeps v1's partition alive
    store.mutate("g", add_edge_batch(0, 8))
    assert store.stats()["partition_deltas"] == 1
    store.build_engine("g", PowerGraphEngine, CLUSTER)   # v2: delta reused
    store.build_engine("g", PowerGraphEngine, CLUSTER,
                       version=snap.version)             # v1: memo reused
    assert store.stats()["partition_builds"] == 1
    assert store.stats()["partition_hits"] == 2


def test_partition_delta_preserves_float_summation_order():
    # the money property: a delta-carried partition computes PageRank
    # bit-identically to a from-scratch build of the mutated graph,
    # because surviving edges keep their placement
    from repro.algorithms import PageRank
    g = uniform_random(400, 3200, seed=5)
    batch = MutationBatch(update_src=g.src[:32].copy(),
                          update_dst=g.dst[:32].copy(),
                          update_weights=g.weights[:32] * 0.5)
    store = GraphStore()
    store.load("g", g)
    store.build_engine("g", PowerGraphEngine, CLUSTER)   # memoize v1
    store.mutate("g", batch)
    delta_eng = store.build_engine("g", PowerGraphEngine, CLUSTER)
    fresh = GraphStore()
    fresh.load("g", store.get("g").graph)
    fresh_eng = fresh.build_engine("g", PowerGraphEngine, CLUSTER)
    alg = PageRank(tolerance=0.0)
    r_delta = delta_eng.run(alg, max_iterations=500)
    r_fresh = fresh_eng.run(alg, max_iterations=500)
    assert store.stats()["partition_deltas"] == 1
    assert np.array_equal(r_delta.values, r_fresh.values)


# -- deprecated shims ---------------------------------------------------------


def test_attach_detach_shims_warn_but_count(store):
    with pytest.warns(DeprecationWarning, match="attach.*deprecated"):
        store.attach("g")
    assert store.get("g").attached == 1
    assert store.pinned_versions("g") == {1}   # shim holds a real pin
    with pytest.warns(DeprecationWarning, match="release"):
        store.detach("g")
    assert store.get("g").attached == 0
    assert store.pinned_versions("g") == set()


def test_legacy_detach_releases_oldest_pin_first(store):
    # anonymous legacy detaches straddling a mutation: the attacher
    # that has been around longest (v1) leaves first, so FIFO release
    # frees the superseded version instead of the live one
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        store.attach("g")                      # pins v1
        store.mutate("g", add_edge_batch(0, 8))
        store.attach("g")                      # pins v2
        store.detach("g")                      # the v1 attacher leaves
    assert store.pinned_versions("g") == {2}
    assert store.stats()["retained_versions"] == 0   # v1 was GC'd
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        store.detach("g")
    assert store.pinned_versions("g") == set()


def test_partition_delta_from_zero_edge_graph():
    empty = Graph.from_edges(8, np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64), name="empty")
    store = GraphStore()
    store.load("g", empty)
    store.build_engine("g", PowerGraphEngine, CLUSTER)   # memoize v1
    store.mutate("g", add_edge_batch(0, 1))    # every edge is new
    assert store.stats()["partition_deltas"] == 1
    store.build_engine("g", PowerGraphEngine, CLUSTER)   # v2 delta reused
    assert store.stats()["partition_hits"] == 1
    assert store.get("g").graph.num_edges == 1


def test_reload_shim_warns_and_routes_through_replace(store):
    g2 = ring(16, name="ring-v2")
    with pytest.warns(DeprecationWarning, match="replace"):
        entry = store.load("g", g2)
    assert entry.version == 2
    assert store.get("g").graph is g2
    # a wholesale replace severs the mutation chain
    assert store.effects_between("g", 1, 2) is None


# -- service-level mutation + isolation ---------------------------------------


def pr_spec(**kw):
    kw.setdefault("graph", "g")
    kw.setdefault("algorithm", "pagerank")
    kw.setdefault("max_iterations", 12)
    kw.setdefault("tenant", "t0")
    return JobSpec(**kw)


def make_service(graph=None, **kw):
    svc = GraphService(SPEC, cache_entries=8, **kw)
    svc.load_graph("g", graph if graph is not None else ring(16))
    return svc


def test_submit_pins_snapshot_and_terminal_releases():
    svc = make_service()
    job = svc.submit(pr_spec())
    assert job.snapshot_version == 1
    svc.run()
    assert job.state == "done"
    assert job.snapshot.released
    assert svc.store.pinned_versions("g") == set()


def test_mutation_midrun_leaves_pinned_job_bit_identical():
    # baseline: the same query on an unmutated service
    base = make_service()
    base_job = base.submit(pr_spec())
    base.run()

    svc = make_service()
    job = svc.submit(pr_spec())
    svc.step()                                 # job is mid-flight
    svc.mutate("g", add_edge_batch(0, 8))      # world changes under it
    svc.step()
    svc.mutate("g", add_edge_batch(1, 9))      # ...twice
    svc.run()
    assert job.state == "done"
    assert job.snapshot_version == 1           # stayed pinned to v1
    assert svc.store.get("g").version == 3
    assert np.array_equal(job.values, base_job.values)

    # a submit after the mutations sees the new world
    after = svc.submit(pr_spec())
    svc.run()
    assert after.snapshot_version == 3
    assert not np.array_equal(after.values, base_job.values)


def test_service_mutate_validates():
    svc = make_service()
    with pytest.raises(ServeError, match="unknown graph"):
        svc.mutate("nope", add_edge_batch(0, 1))
    with pytest.raises(ServeError, match="empty mutation"):
        svc.mutate("g", MutationBatch())
    summary = svc.mutate("g", {"add": {"src": [0], "dst": [8]}})
    assert summary["version"] == 2 and not summary["deduped"]
    assert svc.metrics()["mutations"] == 1


def test_service_mutate_dedupes_by_idempotency_key():
    svc = make_service()
    s1 = svc.mutate("g", add_edge_batch(0, 8), idempotency_key="k1")
    s2 = svc.mutate("g", add_edge_batch(0, 8), idempotency_key="k1")
    assert not s1["deduped"] and s2["deduped"]
    assert s2["version"] == s1["version"] == 2
    assert svc.store.get("g").version == 2
    assert svc.metrics()["deduped_mutations"] == 1


def test_mutation_invalidates_cache_for_stale_versions():
    svc = make_service()
    svc.submit(pr_spec())
    svc.run()
    assert len(svc.cache) == 1
    evictions_before = svc.cache.evictions
    svc.mutate("g", add_edge_batch(0, 8))
    assert len(svc.cache) == 0                 # stale entry really gone
    assert svc.cache.invalidations == 1
    assert svc.cache.evictions == evictions_before   # not an eviction
    # the fresh version recomputes, it does not hit the stale answer
    svc.submit(pr_spec())
    svc.run()
    assert svc.cache.hits == 0
    assert len(svc.cache) == 1


def test_warm_start_resumes_from_previous_fixpoint():
    svc = make_service(uniform_random(500, 4000, seed=2))
    spec = pr_spec(max_iterations=2000,
                   params={"tolerance": 0.0})
    first = svc.submit(spec)
    svc.run()
    cold_steps = len(first.result.stats)
    svc.mutate("g", add_edge_batch(0, 8))
    second = svc.submit(spec)
    svc.run()
    assert second.warm_started
    assert svc.metrics()["warm_starts"] == 1
    assert len(second.result.stats) < cold_steps
    # a structural change perturbs the float update map, so warm and
    # cold trajectories agree to round-off (bit-identity is the pure
    # reweight / monotone min-plus guarantee, tested below)
    cold = make_service(svc.store.get("g").graph)
    ref = cold.submit(spec)
    cold.run()
    np.testing.assert_allclose(second.values, ref.values,
                               rtol=1e-12, atol=1e-12)


def test_reweight_warm_start_is_bit_identical():
    g = uniform_random(500, 4000, seed=2)
    svc = make_service(g)
    spec = pr_spec(max_iterations=2000, params={"tolerance": 0.0})
    first = svc.submit(spec)
    svc.run()
    cold_steps = len(first.result.stats)
    # PageRank weighs by out-degree, not edge weight: a pure reweight
    # leaves the float map unchanged, so the old fixpoint IS the new
    # one and the warm run just re-verifies it
    svc.mutate("g", MutationBatch(update_src=g.src[:40].copy(),
                                  update_dst=g.dst[:40].copy(),
                                  update_weights=g.weights[:40] * 0.5))
    second = svc.submit(spec)
    svc.run()
    assert second.warm_started
    assert len(second.result.stats) == 1
    assert len(second.result.stats) < cold_steps
    cold = make_service(svc.store.get("g").graph)
    ref = cold.submit(spec)
    cold.run()
    assert np.array_equal(second.values, ref.values)


def test_warm_start_refused_for_shrinking_mutations():
    g = ring(64)
    svc = make_service(g)
    spec = pr_spec(algorithm="cc", max_iterations=2000, params={})
    svc.submit(spec)
    svc.run()
    svc.mutate("g", MutationBatch(remove_src=[0], remove_dst=[1]))
    second = svc.submit(spec)
    svc.run()
    assert not second.warm_started             # planner fell back to cold
    assert svc.metrics()["warm_starts"] == 0
    cold = make_service(svc.store.get("g").graph)
    ref = cold.submit(spec)
    cold.run()
    assert np.array_equal(second.values, ref.values)


def test_unload_reload_clears_stale_warm_seeds():
    # a seed harvested from one incarnation of a key must never chain-
    # match a later incarnation: unload + load restarts versioning at 1,
    # so a stale (key, algo, params) seed with seed_version=1 would
    # otherwise warm-start a monotone algorithm from an unrelated
    # graph's fixpoint — an invalid bound it can never recover from
    svc = make_service(ring(64))
    spec = pr_spec(algorithm="cc", max_iterations=2000, params={})
    svc.submit(spec)
    svc.run()
    svc.mutate("g", add_edge_batch(0, 8))      # harvests a v1 seed
    assert svc._warm
    svc.unload_graph("g")
    assert not svc._warm
    assert "g" not in svc.store
    assert len(svc.cache) == 0
    # the new incarnation, mutated so the version chain (1 -> 2) lines
    # up exactly as the stale seed's chain would have
    svc.load_graph("g", uniform_random(64, 256, seed=9))
    svc.mutate("g", add_edge_batch(0, 8))
    job = svc.submit(spec)
    svc.run()
    assert not job.warm_started                # cold start, not chained
    cold = make_service(svc.store.get("g").graph)
    ref = cold.submit(spec)
    cold.run()
    assert np.array_equal(job.values, ref.values)


def test_warm_seed_harvest_is_bounded():
    svc = make_service()                       # cache_entries=8
    assert svc._warm_cap == 8
    for i in range(12):
        svc._warm_put(("g", f"alg{i}", "fp"), 1, object())
    assert len(svc._warm) == 8                 # oldest harvests evicted
    assert ("g", "alg0", "fp") not in svc._warm
    assert ("g", "alg11", "fp") in svc._warm


# -- journaled mutations across crash + recover -------------------------------


def test_journaled_mutation_replays_exactly_once(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = GraphService(SPEC, journal=jpath)
    g = ring(16)
    svc.load_graph("g", g)
    batch = add_edge_batch(0, 8)
    summary = svc.mutate("g", batch, idempotency_key="wire-key")
    assert summary["version"] == 2

    rec = GraphService.recover(jpath, graphs={"g": g})
    assert rec.store.get("g").version == 2     # mutation replayed
    assert rec.store.get("g").graph.num_edges == 17
    before = len(read_journal(jpath))
    # a second application of the same journaled batch is a no-op
    redo = rec.mutate("g", batch, idempotency_key="wire-key")
    assert redo["deduped"] and redo["version"] == 2
    assert rec.store.get("g").version == 2
    assert len(read_journal(jpath)) == before


def test_rejected_mutation_is_not_journaled(tmp_path):
    # a batch that fails apply-time validation must refuse cleanly: no
    # journal record, no version bump — and recovery of the journal
    # afterwards must not be poisoned by the bad request
    from repro.errors import GraphError
    jpath = str(tmp_path / "svc.jsonl")
    svc = GraphService(SPEC, journal=jpath)
    g = ring(16)
    svc.load_graph("g", g)
    with pytest.raises(GraphError, match="missing edge"):
        svc.mutate("g", MutationBatch(remove_src=[3], remove_dst=[9]))
    assert svc.store.get("g").version == 1
    assert not [r for r in read_journal(jpath)
                if r["rec"] == "mutation"]
    del svc
    rec = GraphService.recover(jpath, graphs={"g": g})
    assert rec.store.get("g").version == 1
    assert rec.skipped_mutations == 0
    job = rec.submit(pr_spec())
    rec.run()
    assert job.state == "done"


def test_recover_skips_unappliable_journaled_mutation(tmp_path):
    # defense in depth: a journal written before the validate-then-
    # journal ordering may carry a batch the graph can no longer
    # apply; replay skips it instead of wedging recovery forever
    jpath = str(tmp_path / "svc.jsonl")
    svc = GraphService(SPEC, journal=jpath)
    g = ring(16)
    svc.load_graph("g", g)
    svc.mutate("g", add_edge_batch(0, 8))      # a good batch, v2
    bad = MutationBatch(remove_src=[3], remove_dst=[9])
    name = svc.journal.save_mutation(99, bad)
    svc.journal.append("mutation", svc.now_ms, key="g",
                       batch_id="poison", from_version=2,
                       to_version=3, file=name)
    del svc
    rec = GraphService.recover(jpath, graphs={"g": g})
    assert rec.skipped_mutations == 1
    assert rec.metrics()["skipped_mutations"] == 1
    assert rec.store.get("g").version == 2     # good batch replayed
    assert rec.store.get("g").graph.num_edges == 17
    job = rec.submit(pr_spec())
    rec.run()
    assert job.state == "done"


def test_recovered_jobs_repin_their_journaled_version(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = GraphService(SPEC, journal=jpath)
    g = ring(16)
    svc.load_graph("g", g)
    pinned = svc.submit(pr_spec())             # pinned to v1, never run
    svc.mutate("g", add_edge_batch(0, 8))      # store moves to v2
    assert pinned.snapshot_version == 1

    rec = GraphService.recover(jpath, graphs={"g": g})
    jobs = {j.spec.tenant: j for j in rec.jobs()}
    assert rec.recovered_jobs == 1
    replayed = jobs["t0"]
    assert replayed.snapshot_version == 1      # not silently re-pinned
    rec.run()
    assert replayed.state == "done"
    # and its answer matches a v1 run, not a v2 run
    base = make_service(g)
    ref = base.submit(pr_spec())
    base.run()
    assert np.array_equal(replayed.values, ref.values)
