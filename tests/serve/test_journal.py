"""Unit tests for the write-ahead job journal and its replay fold."""

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.fault.checkpoint import Checkpoint
from repro.serve.journal import (
    JOURNAL_VERSION,
    JobJournal,
    read_journal,
    replay_journal,
)


@pytest.fixture
def jpath(tmp_path):
    return str(tmp_path / "svc.jsonl")


def test_append_read_roundtrip(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION,
               cluster={"nodes": 2})
    jrn.append("submitted", 0.0, job_id=1, spec={"graph": "g"},
               submitted_ms=0.0)
    jrn.append("admitted", 1.5, job_id=1, resume_iteration=0)
    jrn.close()
    records = read_journal(jpath)
    assert [r["rec"] for r in records] == ["service_start", "submitted",
                                           "admitted"]
    assert records[2]["now_ms"] == 1.5
    assert jrn.records_written == 3


def test_append_jsonifies_tuples_and_numpy(jpath):
    jrn = JobJournal(jpath)
    jrn.append("finished", np.float64(3.0), job_id=np.int64(1),
               cache_key=("g", 1, "pagerank", "abc"),
               consumed_ms=np.float64(2.5), from_cache=np.bool_(False))
    jrn.close()
    (rec,) = read_journal(jpath)
    assert rec["cache_key"] == ["g", 1, "pagerank", "abc"]
    assert rec["job_id"] == 1 and rec["consumed_ms"] == 2.5
    assert rec["from_cache"] is False


def test_unknown_kind_and_closed_journal_raise(jpath):
    jrn = JobJournal(jpath)
    with pytest.raises(ServeError, match="unknown journal record kind"):
        jrn.append("reticulated", 0.0)
    jrn.close()
    assert jrn.closed
    with pytest.raises(ServeError, match="closed"):
        jrn.append("shutdown", 0.0, clean=True)


def test_torn_trailing_line_is_dropped(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("submitted", 0.0, job_id=1, spec={})
    jrn.close()
    with open(jpath, "a", encoding="utf-8") as f:
        f.write('{"rec": "admitted", "job_id')  # killed mid-append
    records = read_journal(jpath)
    assert [r["rec"] for r in records] == ["service_start", "submitted"]


def test_mid_file_corruption_raises(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("submitted", 0.0, job_id=1, spec={})
    jrn.close()
    lines = open(jpath, encoding="utf-8").readlines()
    lines[0] = lines[0][:20] + "\n"
    open(jpath, "w", encoding="utf-8").writelines(lines)
    with pytest.raises(ServeError, match="corrupt at line 1"):
        read_journal(jpath)


def test_non_record_line_raises(jpath):
    with open(jpath, "w", encoding="utf-8") as f:
        f.write(json.dumps({"no_rec": True}) + "\n")
        f.write(json.dumps({"rec": "shutdown"}) + "\n")
    with pytest.raises(ServeError, match="not a record"):
        read_journal(jpath)


def test_missing_file_raises(tmp_path):
    with pytest.raises(ServeError, match="cannot read journal"):
        read_journal(str(tmp_path / "nope.jsonl"))


def test_checkpoint_sidecar_roundtrip(jpath):
    jrn = JobJournal(jpath)
    ckpt = Checkpoint(iteration=4,
                      values=np.array([1.0, 2.5, -3.0]),
                      active=np.array([True, False, True]),
                      cost_ms=7.0)
    name = jrn.save_checkpoint(7, ckpt)
    assert name == "job-7-ckpt.npz"
    back = jrn.load_checkpoint(7)
    assert back.iteration == 4
    np.testing.assert_array_equal(back.values, ckpt.values)
    np.testing.assert_array_equal(back.active, ckpt.active)
    assert back.cost_ms == 0.0  # resume seeding is free
    assert jrn.load_checkpoint(99) is None
    # overwrite: only the newest durable state survives
    jrn.save_checkpoint(7, Checkpoint(iteration=6, values=ckpt.values,
                                      active=ckpt.active, cost_ms=0.0))
    assert jrn.load_checkpoint(7).iteration == 6
    jrn.close()


def test_result_sidecar_roundtrip(jpath):
    jrn = JobJournal(jpath)
    values = np.linspace(0.0, 1.0, 17)
    jrn.save_result(3, values, iterations=9, converged=True,
                    compute_ms=123.5, engine="powergraph",
                    algorithm="pagerank")
    back = jrn.load_result(3)
    np.testing.assert_array_equal(back.values, values)
    assert back.iterations == 9 and back.converged
    assert back.compute_ms == 123.5
    assert back.engine == "powergraph" and back.algorithm == "pagerank"
    assert jrn.load_result(4) is None
    jrn.close()


def test_append_mode_preserves_history(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.close()
    again = JobJournal(jpath)  # recovery reopens in append mode
    again.append("submitted", 1.0, job_id=1, spec={})
    again.close()
    assert [r["rec"] for r in read_journal(jpath)] == ["service_start",
                                                       "submitted"]
    # fresh=True truncates instead
    JobJournal(jpath, fresh=True).close()
    assert read_journal(jpath) == []


def _lifecycle_records():
    return [
        {"rec": "service_start", "now_ms": 0.0, "version": 1,
         "cluster": {"nodes": 2}},
        {"rec": "graph_loaded", "now_ms": 0.0, "key": "g",
         "dataset": "wrn", "version": 1},
        {"rec": "submitted", "now_ms": 0.0, "job_id": 1,
         "spec": {"graph": "g"}, "submitted_ms": 0.0},
        {"rec": "submitted", "now_ms": 0.0, "job_id": 2,
         "spec": {"graph": "g"}, "submitted_ms": 0.0},
        {"rec": "admitted", "now_ms": 1.0, "job_id": 1,
         "resume_iteration": 0},
        {"rec": "slice", "now_ms": 2.0, "job_id": 1, "iteration": 1},
        {"rec": "slice", "now_ms": 3.0, "job_id": 1, "iteration": 2},
        {"rec": "checkpointed", "now_ms": 3.0, "job_id": 1,
         "iteration": 2, "file": "job-1-ckpt.npz"},
        {"rec": "shed", "now_ms": 3.5, "tenant": "t9",
         "reason": "queue depth 2/2 (overload)"},
    ]


def test_replay_tracks_progress_and_checkpoints():
    state = replay_journal(_lifecycle_records())
    assert state.meta["version"] == 1
    assert state.graph_loads == [("g", "wrn")]
    assert state.now_ms == 3.5
    assert state.sheds == 1
    assert not state.clean_shutdown
    one, two = state.jobs[1], state.jobs[2]
    assert one.state == "running" and not one.terminal
    assert one.last_iteration == 2 and one.slices == 2
    assert one.checkpoint_iteration == 2
    assert two.state == "pending" and two.checkpoint_iteration is None
    assert [j.job_id for j in state.unfinished] == [1, 2]


def test_replay_terminal_states_and_retry():
    records = _lifecycle_records() + [
        {"rec": "retry", "now_ms": 4.0, "job_id": 1, "attempt": 1,
         "backoff_ms": 1.0, "error": "boom", "resume_iteration": 2},
        {"rec": "admitted", "now_ms": 5.0, "job_id": 1,
         "resume_iteration": 2},
        {"rec": "finished", "now_ms": 9.0, "job_id": 1,
         "from_cache": False, "cache_key": ["g", 1, "pagerank", "x"],
         "file": "job-1-result.npz", "consumed_ms": 8.5},
        {"rec": "admitted", "now_ms": 9.0, "job_id": 2,
         "resume_iteration": 0},
        {"rec": "quarantined", "now_ms": 12.0, "job_id": 2,
         "reason": "poison: failed 3 times"},
        {"rec": "shutdown", "now_ms": 12.0, "clean": True},
    ]
    state = replay_journal(records)
    one, two = state.jobs[1], state.jobs[2]
    assert one.state == "done" and one.terminal
    assert one.retries == 1
    assert one.cache_key == ("g", 1, "pagerank", "x")
    assert one.result_file == "job-1-result.npz"
    assert one.finished_ms == 9.0 and one.consumed_ms == 8.5
    assert two.state == "quarantined" and two.terminal
    assert two.quarantine_reason == "poison: failed 3 times"
    assert state.unfinished == []
    assert state.clean_shutdown


def test_replay_is_idempotent():
    records = _lifecycle_records()
    first = replay_journal(records)
    second = replay_journal(records)
    assert first == second


def test_replay_rejects_orphan_records():
    with pytest.raises(ServeError, match="before its submitted record"):
        replay_journal([{"rec": "slice", "now_ms": 1.0, "job_id": 5,
                         "iteration": 1}])
