"""Unit tests for the write-ahead job journal and its replay fold."""

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.fault.checkpoint import Checkpoint
from repro.serve.journal import (
    JOURNAL_VERSION,
    JobJournal,
    read_journal,
    replay_journal,
)


@pytest.fixture
def jpath(tmp_path):
    return str(tmp_path / "svc.jsonl")


def test_append_read_roundtrip(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION,
               cluster={"nodes": 2})
    jrn.append("submitted", 0.0, job_id=1, spec={"graph": "g"},
               submitted_ms=0.0)
    jrn.append("admitted", 1.5, job_id=1, resume_iteration=0)
    jrn.close()
    records = read_journal(jpath)
    assert [r["rec"] for r in records] == ["service_start", "submitted",
                                           "admitted"]
    assert records[2]["now_ms"] == 1.5
    assert jrn.records_written == 3


def test_append_jsonifies_tuples_and_numpy(jpath):
    jrn = JobJournal(jpath)
    jrn.append("finished", np.float64(3.0), job_id=np.int64(1),
               cache_key=("g", 1, "pagerank", "abc"),
               consumed_ms=np.float64(2.5), from_cache=np.bool_(False))
    jrn.close()
    (rec,) = read_journal(jpath)
    assert rec["cache_key"] == ["g", 1, "pagerank", "abc"]
    assert rec["job_id"] == 1 and rec["consumed_ms"] == 2.5
    assert rec["from_cache"] is False


def test_unknown_kind_and_closed_journal_raise(jpath):
    jrn = JobJournal(jpath)
    with pytest.raises(ServeError, match="unknown journal record kind"):
        jrn.append("reticulated", 0.0)
    jrn.close()
    assert jrn.closed
    with pytest.raises(ServeError, match="closed"):
        jrn.append("shutdown", 0.0, clean=True)


def test_torn_trailing_line_is_dropped(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("submitted", 0.0, job_id=1, spec={})
    jrn.close()
    with open(jpath, "a", encoding="utf-8") as f:
        f.write('{"rec": "admitted", "job_id')  # killed mid-append
    records = read_journal(jpath)
    assert [r["rec"] for r in records] == ["service_start", "submitted"]


def test_mid_file_corruption_raises(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("submitted", 0.0, job_id=1, spec={})
    jrn.close()
    lines = open(jpath, encoding="utf-8").readlines()
    lines[0] = lines[0][:20] + "\n"
    open(jpath, "w", encoding="utf-8").writelines(lines)
    with pytest.raises(ServeError, match="corrupt at line 1"):
        read_journal(jpath)


def test_non_record_line_raises(jpath):
    with open(jpath, "w", encoding="utf-8") as f:
        f.write(json.dumps({"no_rec": True}) + "\n")
        f.write(json.dumps({"rec": "shutdown"}) + "\n")
    with pytest.raises(ServeError, match="not a record"):
        read_journal(jpath)


def test_missing_file_raises(tmp_path):
    with pytest.raises(ServeError, match="cannot read journal"):
        read_journal(str(tmp_path / "nope.jsonl"))


def test_checkpoint_sidecar_roundtrip(jpath):
    jrn = JobJournal(jpath)
    ckpt = Checkpoint(iteration=4,
                      values=np.array([1.0, 2.5, -3.0]),
                      active=np.array([True, False, True]),
                      cost_ms=7.0)
    name = jrn.save_checkpoint(7, ckpt)
    assert name == "job-7-ckpt.npz"
    back = jrn.load_checkpoint(7)
    assert back.iteration == 4
    np.testing.assert_array_equal(back.values, ckpt.values)
    np.testing.assert_array_equal(back.active, ckpt.active)
    assert back.cost_ms == 0.0  # resume seeding is free
    assert jrn.load_checkpoint(99) is None
    # overwrite: only the newest durable state survives
    jrn.save_checkpoint(7, Checkpoint(iteration=6, values=ckpt.values,
                                      active=ckpt.active, cost_ms=0.0))
    assert jrn.load_checkpoint(7).iteration == 6
    jrn.close()


def test_result_sidecar_roundtrip(jpath):
    jrn = JobJournal(jpath)
    values = np.linspace(0.0, 1.0, 17)
    jrn.save_result(3, values, iterations=9, converged=True,
                    compute_ms=123.5, engine="powergraph",
                    algorithm="pagerank")
    back = jrn.load_result(3)
    np.testing.assert_array_equal(back.values, values)
    assert back.iterations == 9 and back.converged
    assert back.compute_ms == 123.5
    assert back.engine == "powergraph" and back.algorithm == "pagerank"
    assert jrn.load_result(4) is None
    jrn.close()


def test_append_mode_preserves_history(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.close()
    again = JobJournal(jpath)  # recovery reopens in append mode
    again.append("submitted", 1.0, job_id=1, spec={})
    again.close()
    assert [r["rec"] for r in read_journal(jpath)] == ["service_start",
                                                       "submitted"]
    # fresh=True truncates instead
    JobJournal(jpath, fresh=True).close()
    assert read_journal(jpath) == []


def _lifecycle_records():
    return [
        {"rec": "service_start", "now_ms": 0.0, "version": 1,
         "cluster": {"nodes": 2}},
        {"rec": "graph_loaded", "now_ms": 0.0, "key": "g",
         "dataset": "wrn", "version": 1},
        {"rec": "submitted", "now_ms": 0.0, "job_id": 1,
         "spec": {"graph": "g"}, "submitted_ms": 0.0},
        {"rec": "submitted", "now_ms": 0.0, "job_id": 2,
         "spec": {"graph": "g"}, "submitted_ms": 0.0},
        {"rec": "admitted", "now_ms": 1.0, "job_id": 1,
         "resume_iteration": 0},
        {"rec": "slice", "now_ms": 2.0, "job_id": 1, "iteration": 1},
        {"rec": "slice", "now_ms": 3.0, "job_id": 1, "iteration": 2},
        {"rec": "checkpointed", "now_ms": 3.0, "job_id": 1,
         "iteration": 2, "file": "job-1-ckpt.npz"},
        {"rec": "shed", "now_ms": 3.5, "tenant": "t9",
         "reason": "queue depth 2/2 (overload)"},
    ]


def test_replay_tracks_progress_and_checkpoints():
    state = replay_journal(_lifecycle_records())
    assert state.meta["version"] == 1
    assert state.graph_loads == [("g", "wrn")]
    assert state.now_ms == 3.5
    assert state.sheds == 1
    assert not state.clean_shutdown
    one, two = state.jobs[1], state.jobs[2]
    assert one.state == "running" and not one.terminal
    assert one.last_iteration == 2 and one.slices == 2
    assert one.checkpoint_iteration == 2
    assert two.state == "pending" and two.checkpoint_iteration is None
    assert [j.job_id for j in state.unfinished] == [1, 2]


def test_replay_terminal_states_and_retry():
    records = _lifecycle_records() + [
        {"rec": "retry", "now_ms": 4.0, "job_id": 1, "attempt": 1,
         "backoff_ms": 1.0, "error": "boom", "resume_iteration": 2},
        {"rec": "admitted", "now_ms": 5.0, "job_id": 1,
         "resume_iteration": 2},
        {"rec": "finished", "now_ms": 9.0, "job_id": 1,
         "from_cache": False, "cache_key": ["g", 1, "pagerank", "x"],
         "file": "job-1-result.npz", "consumed_ms": 8.5},
        {"rec": "admitted", "now_ms": 9.0, "job_id": 2,
         "resume_iteration": 0},
        {"rec": "quarantined", "now_ms": 12.0, "job_id": 2,
         "reason": "poison: failed 3 times"},
        {"rec": "shutdown", "now_ms": 12.0, "clean": True},
    ]
    state = replay_journal(records)
    one, two = state.jobs[1], state.jobs[2]
    assert one.state == "done" and one.terminal
    assert one.retries == 1
    assert one.cache_key == ("g", 1, "pagerank", "x")
    assert one.result_file == "job-1-result.npz"
    assert one.finished_ms == 9.0 and one.consumed_ms == 8.5
    assert two.state == "quarantined" and two.terminal
    assert two.quarantine_reason == "poison: failed 3 times"
    assert state.unfinished == []
    assert state.clean_shutdown


def test_replay_is_idempotent():
    records = _lifecycle_records()
    first = replay_journal(records)
    second = replay_journal(records)
    assert first == second


def test_replay_rejects_orphan_records():
    with pytest.raises(ServeError, match="before its submitted record"):
        replay_journal([{"rec": "slice", "now_ms": 1.0, "job_id": 5,
                         "iteration": 1}])


# -- torn tails across every record kind (satellite: full coverage) ----------

#: A representative full-bodied record per kind; the torn-tail
#: guarantee must hold whatever kind the crash interrupts.
KIND_EXEMPLARS = {
    "service_start": {"version": JOURNAL_VERSION,
                      "cluster": {"nodes": 2}},
    "graph_loaded": {"key": "g", "dataset": "wrn", "version": 1},
    "mutation": {"key": "g", "batch_id": "b" * 16, "from_version": 1,
                 "to_version": 2, "file": "mutation-1.npz"},
    "submitted": {"job_id": 9, "spec": {"graph": "g"},
                  "submitted_ms": 1.0, "snapshot_version": 1},
    "admitted": {"job_id": 9, "resume_iteration": 0},
    "slice": {"job_id": 9, "iteration": 1},
    "checkpointed": {"job_id": 9, "iteration": 1,
                     "file": "job-9-ckpt.npz"},
    "finished": {"job_id": 9, "from_cache": False,
                 "cache_key": ["g", 1, "pagerank", "x"],
                 "file": "job-9-result.npz", "consumed_ms": 2.0},
    "failed": {"job_id": 9, "error": "boom"},
    "retry": {"job_id": 9, "attempt": 1, "backoff_ms": 1.0,
              "error": "boom", "resume_iteration": 1},
    "quarantined": {"job_id": 9, "reason": "poison"},
    "cancelled": {"job_id": 9},
    "shed": {"tenant": "t9", "reason": "queue depth 2/2 (overload)"},
    "idempotency": {"key": "k-1", "job_id": 9},
    "shutdown": {"clean": True, "reason": "drain"},
}


def test_every_record_kind_has_a_torn_tail_exemplar():
    from repro.serve.journal import RECORD_KINDS
    assert set(KIND_EXEMPLARS) == set(RECORD_KINDS)


@pytest.mark.parametrize("kind", sorted(KIND_EXEMPLARS))
def test_torn_tail_tolerated_for_every_record_kind(jpath, kind):
    """A crash mid-append of *any* record kind loses only that line."""
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("submitted", 0.0, job_id=9, spec={"graph": "g"},
               submitted_ms=0.0)
    jrn.close()
    full = json.dumps(dict(KIND_EXEMPLARS[kind], rec=kind, now_ms=5.0))
    for cut in (1, len(full) // 2, len(full) - 1):
        with open(jpath, "a", encoding="utf-8") as f:
            f.write(full[:cut])  # no trailing newline: torn mid-write
        records = read_journal(jpath)
        assert [r["rec"] for r in records] == ["service_start",
                                               "submitted"], \
            f"{kind} torn at byte {cut} leaked into the replay"
        # restore the file for the next cut
        with open(jpath, "w", encoding="utf-8") as f:
            f.write(json.dumps({"rec": "service_start", "now_ms": 0.0,
                                "version": JOURNAL_VERSION}) + "\n")
            f.write(json.dumps({"rec": "submitted", "now_ms": 0.0,
                                "job_id": 9, "spec": {"graph": "g"},
                                "submitted_ms": 0.0}) + "\n")


@pytest.mark.parametrize("kind", sorted(KIND_EXEMPLARS))
def test_intact_append_of_every_kind_survives_replay(jpath, kind):
    """The exemplars are real: appended intact, each kind replays."""
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("submitted", 0.0, job_id=9, spec={"graph": "g"},
               submitted_ms=0.0)
    jrn.append(kind, 5.0, **KIND_EXEMPLARS[kind])
    jrn.close()
    state = replay_journal(read_journal(jpath))
    assert 9 in state.jobs or kind in ("service_start", "graph_loaded",
                                       "shed", "shutdown")


# -- the idempotency record (new in v2) --------------------------------------

def test_idempotency_record_roundtrip(jpath):
    jrn = JobJournal(jpath)
    jrn.append("service_start", 0.0, version=JOURNAL_VERSION)
    jrn.append("idempotency", 0.0, key="client-77", job_id=1)
    jrn.append("submitted", 0.0, job_id=1, spec={"graph": "g"},
               submitted_ms=0.0)
    jrn.close()
    state = replay_journal(read_journal(jpath))
    assert state.idempotency == {"client-77": 1}


def test_orphan_idempotency_key_is_dropped():
    """Key journaled, crash before the submitted record: the submit
    never committed, so replay must forget the key (a resubmit should
    run, not dedupe against a job that does not exist)."""
    state = replay_journal([
        {"rec": "service_start", "now_ms": 0.0,
         "version": JOURNAL_VERSION},
        {"rec": "idempotency", "now_ms": 0.0, "key": "k-orphan",
         "job_id": 3},
        {"rec": "idempotency", "now_ms": 0.0, "key": "k-live",
         "job_id": 1},
        {"rec": "submitted", "now_ms": 0.0, "job_id": 1,
         "spec": {"graph": "g"}, "submitted_ms": 0.0},
    ])
    assert state.idempotency == {"k-live": 1}
    assert 3 not in state.jobs


def test_idempotency_last_write_wins():
    # the service never reuses a key, but replay must still be a fold
    state = replay_journal([
        {"rec": "idempotency", "now_ms": 0.0, "key": "k", "job_id": 1},
        {"rec": "submitted", "now_ms": 0.0, "job_id": 1, "spec": {},
         "submitted_ms": 0.0},
        {"rec": "idempotency", "now_ms": 1.0, "key": "k", "job_id": 2},
        {"rec": "submitted", "now_ms": 1.0, "job_id": 2, "spec": {},
         "submitted_ms": 1.0},
    ])
    assert state.idempotency == {"k": 2}


# -- shutdown reason (new in v2) ---------------------------------------------

def test_shutdown_reason_replayed():
    state = replay_journal([
        {"rec": "shutdown", "now_ms": 2.0, "clean": True,
         "reason": "sigterm"},
    ])
    assert state.clean_shutdown and state.shutdown_reason == "sigterm"


def test_v1_shutdown_without_reason_still_replays():
    state = replay_journal([
        {"rec": "shutdown", "now_ms": 2.0, "clean": True},
    ])
    assert state.clean_shutdown and state.shutdown_reason is None
