"""JobSpec validation, wire decoding, and the cache-params contract."""

import pytest

from repro.algorithms import KCore, MultiSourceSSSP
from repro.errors import ServeError
from repro.serve import JobSpec
from repro.serve.cache import params_fingerprint
from repro.serve.job import Job


def test_unknown_algorithm_and_engine_rejected():
    with pytest.raises(ServeError, match="unknown algorithm"):
        JobSpec(graph="g", algorithm="pagerankk")
    with pytest.raises(ServeError, match="unknown engine"):
        JobSpec(graph="g", engine="spark")
    with pytest.raises(ServeError, match="priority"):
        JobSpec(graph="g", priority=0)


def test_build_algorithm_converts_lists_to_tuples():
    spec = JobSpec(graph="g", algorithm="sssp-bf",
                   params={"sources": [0, 1, 2]})
    algo = spec.build_algorithm()
    assert isinstance(algo, MultiSourceSSSP)
    assert list(algo.sources) == [0, 1, 2]


def test_build_algorithm_passes_scalars():
    algo = JobSpec(graph="g", algorithm="kcore",
                   params={"k": 4}).build_algorithm()
    assert isinstance(algo, KCore)
    assert algo.k == 4


def test_bad_params_raise_serve_error():
    with pytest.raises(ServeError, match="bad params"):
        JobSpec(graph="g", algorithm="pagerank",
                params={"bogus": 1}).build_algorithm()


def test_cache_params_cover_engine_and_iteration_cap():
    base = JobSpec(graph="g", max_iterations=5)
    other_engine = JobSpec(graph="g", max_iterations=5, engine="graphx")
    other_cap = JobSpec(graph="g", max_iterations=9)
    fp = params_fingerprint
    assert fp(base.cache_params()) != fp(other_engine.cache_params())
    assert fp(base.cache_params()) != fp(other_cap.cache_params())
    # but tenant/priority/runtime never change the answer -> same key
    alias = JobSpec(graph="g", max_iterations=5, tenant="x", priority=7)
    assert fp(base.cache_params()) == fp(alias.cache_params())


def test_from_dict_roundtrip_and_defaults():
    spec = JobSpec.from_dict({"graph": "g"})
    assert spec.algorithm == "pagerank" and spec.engine == "powergraph"
    assert spec.tenant == "default" and spec.use_cache

    spec = JobSpec.from_dict({
        "graph": "g", "algorithm": "sssp-bf",
        "params": {"sources": [0, 1]}, "tenant": "alice",
        "priority": 2, "max_iterations": 6, "use_cache": False,
        "preset": "resilient",
        "fault": {"kind": "crash", "superstep": 2, "node": 1,
                  "repeat": 3}})
    assert spec.priority == 2 and not spec.use_cache
    assert spec.runtime.middleware().fault_plan is not None


def test_from_dict_rejects_unknown_keys_and_missing_graph():
    with pytest.raises(ServeError, match="unknown job keys"):
        JobSpec.from_dict({"graph": "g", "colour": "red"})
    with pytest.raises(ServeError, match="'graph'"):
        JobSpec.from_dict({"algorithm": "pagerank"})


def test_job_latency_properties():
    job = Job(1, JobSpec(graph="g"), submitted_ms=10.0)
    assert job.latency_ms is None and job.queue_ms is None
    assert not job.finished and job.values is None
    job.started_ms = 15.0
    job.finished_ms = 40.0
    assert job.queue_ms == 5.0 and job.latency_ms == 30.0
    doc = job.describe()
    assert doc["tenant"] == "default" and doc["latency_ms"] == 30.0


def test_deadline_and_retry_fields_validate_eagerly():
    for bad in (0, -1.0, True, "soon"):
        with pytest.raises(ServeError, match="deadline_ms"):
            JobSpec(graph="g", deadline_ms=bad)
    for bad in (-1, True, 1.5, "two"):
        with pytest.raises(ServeError, match="max_retries"):
            JobSpec(graph="g", max_retries=bad)
    for bad in (-0.5, True, "fast"):
        with pytest.raises(ServeError, match="retry_backoff_ms"):
            JobSpec(graph="g", retry_backoff_ms=bad)
    # the happy path keeps them verbatim
    spec = JobSpec(graph="g", deadline_ms=250.0, max_retries=3,
                   retry_backoff_ms=0.0)
    assert spec.deadline_ms == 250.0 and spec.max_retries == 3
    assert spec.retry_backoff_ms == 0.0


def test_from_dict_accepts_deadline_and_retry_keys():
    spec = JobSpec.from_dict({"graph": "g", "deadline_ms": 90.0,
                              "max_retries": 2,
                              "retry_backoff_ms": 5.0})
    assert spec.deadline_ms == 90.0
    assert spec.max_retries == 2 and spec.retry_backoff_ms == 5.0
    with pytest.raises(ServeError, match="deadline_ms"):
        JobSpec.from_dict({"graph": "g", "deadline_ms": -3})


def test_to_doc_from_doc_roundtrip_is_lossless():
    spec = JobSpec.from_dict({
        "graph": "g", "algorithm": "sssp-bf",
        "params": {"sources": [0, 1]}, "tenant": "alice",
        "priority": 2, "max_iterations": 6, "use_cache": False,
        "deadline_ms": 400.0, "max_retries": 2,
        "retry_backoff_ms": 7.5, "preset": "resilient",
        "fault": {"kind": "crash", "superstep": 2, "node": 1,
                  "repeat": 3}})
    back = JobSpec.from_doc(spec.to_doc())
    assert back == spec
    # the resolved runtime survives, fault plan included
    assert back.runtime == spec.runtime
    assert back.runtime.middleware().fault_plan is not None
    # and the doc is JSON-clean (journal lines are json.dumps'd)
    import json
    assert JobSpec.from_doc(
        json.loads(json.dumps(spec.to_doc()))) == spec
