"""Graph store: versioning, attach lifecycle, partition memoization."""

import pytest

from repro.api import ClusterSpec
from repro.engines import GraphXEngine, PowerGraphEngine
from repro.errors import ServeError
from repro.graph import load_dataset
from repro.serve import GraphStore


@pytest.fixture
def store():
    s = GraphStore()
    s.load("g", dataset="wrn")
    return s


def test_load_requires_exactly_one_source(store):
    with pytest.raises(ServeError):
        store.load("x")
    with pytest.raises(ServeError):
        store.load("x", load_dataset("wrn"), dataset="wrn")


def test_reload_bumps_version(store):
    assert store.get("g").version == 1
    store.load("g", dataset="wrn")
    assert store.get("g").version == 2


def test_reload_refused_while_attached(store):
    store.attach("g")
    with pytest.raises(ServeError, match="attached"):
        store.load("g", dataset="wrn")
    store.detach("g")
    store.load("g", dataset="wrn")   # fine once drained


def test_unknown_key_raises(store):
    with pytest.raises(ServeError, match="unknown graph"):
        store.get("nope")
    with pytest.raises(ServeError):
        store.detach("nope")


def test_attach_detach_counting(store):
    store.attach("g")
    store.attach("g")
    assert store.get("g").attached == 2
    assert store.get("g").total_attaches == 2
    store.detach("g")
    store.detach("g")
    assert store.get("g").attached == 0
    with pytest.raises(ServeError):
        store.detach("g")


def test_partitions_are_memoized_per_engine_and_nodes(store):
    cluster = ClusterSpec(nodes=2, gpus_per_node=1).build()
    e1 = store.build_engine("g", PowerGraphEngine, cluster)
    e2 = store.build_engine("g", PowerGraphEngine, cluster)
    assert e2.pgraph is e1.pgraph          # shared immutable partition
    assert e2 is not e1                    # fresh engine state
    assert store.partition_builds == 1 and store.partition_hits == 1

    # different strategy or node count -> its own partition
    store.build_engine("g", GraphXEngine, cluster)
    four = ClusterSpec(nodes=4, gpus_per_node=1).build()
    e4 = store.build_engine("g", PowerGraphEngine, four)
    assert e4.pgraph is not e1.pgraph
    assert store.partition_builds == 3


def test_reload_drops_memoized_partitions(store):
    cluster = ClusterSpec(nodes=2, gpus_per_node=1).build()
    e1 = store.build_engine("g", PowerGraphEngine, cluster)
    store.load("g", dataset="wrn")
    e2 = store.build_engine("g", PowerGraphEngine, cluster)
    assert e2.pgraph is not e1.pgraph
    assert store.partition_builds == 2


def test_unload(store):
    store.attach("g")
    with pytest.raises(ServeError, match="attached"):
        store.unload("g")
    store.detach("g")
    store.unload("g")
    assert "g" not in store and len(store) == 0


def test_bytes_accounting(store):
    entry = store.get("g")
    g = entry.graph
    expected = (g.indptr.nbytes + g.src.nbytes + g.dst.nbytes
                + g.weights.nbytes)
    assert entry.nbytes == expected
    assert store.total_bytes() == expected
    assert store.attached_bytes() == 0     # nothing attached yet
    store.attach("g")
    assert store.attached_bytes() == expected
    store.attach("g")                      # second job: counted once
    assert store.attached_bytes() == expected


def test_stats_shape(store):
    stats = store.stats()
    assert stats["graphs"]["g"]["version"] == 1
    assert stats["total_bytes"] > 0
    assert stats["partitions"] == 0
