"""The wire protocol server: frames, sessions, sheds, drain."""

import json
import socket
import time

import numpy as np
import pytest

from repro.api import ClusterSpec, GraphService, JobSpec
from repro.errors import WireProtocolError
from repro.serve import GraphClient, GraphServiceServer, replay_journal
from repro.serve.journal import read_journal
from repro.serve.wire import PROTOCOL_VERSION, validate_frame

SPEC = ClusterSpec(nodes=2, gpus_per_node=1)


def make_service(**kw):
    svc = GraphService(SPEC, cache_entries=8, **kw)
    svc.load_graph("g", dataset="wrn")
    return svc


def pagerank_spec(**kw):
    kw.setdefault("graph", "g")
    kw.setdefault("algorithm", "pagerank")
    kw.setdefault("max_iterations", 6)
    return JobSpec(**kw)


@pytest.fixture
def served():
    svc = make_service()
    server = GraphServiceServer(svc)
    thread = server.serve_in_thread()
    yield svc, server
    server.crash()
    thread.join(timeout=10)


def connect(server, **kw):
    host, port = server.address
    kw.setdefault("jitter_seed", 7)
    return GraphClient(host, port, **kw)


# -- frame validation ---------------------------------------------------------

GOOD = {"op": "ping", "v": PROTOCOL_VERSION, "req": 1, "session": "s1"}


def test_validate_accepts_every_documented_op():
    frames = [
        {"op": "hello", "client": "c"},
        {"op": "ping", "session": "s"},
        {"op": "submit", "session": "s", "job": {"graph": "g"},
         "idempotency_key": "k"},
        {"op": "poll", "session": "s", "job_id": 1, "values": True},
        {"op": "watch", "session": "s", "job_id": 1},
        {"op": "cancel", "session": "s", "job_id": 1},
        {"op": "stats", "session": "s"},
        {"op": "drain", "session": "s", "mode": "now"},
    ]
    for frame in frames:
        frame.update(v=PROTOCOL_VERSION, req=1)
        assert validate_frame(frame) == frame["op"]


@pytest.mark.parametrize("mutate,match", [
    (lambda f: f.pop("op"), "unknown op"),
    (lambda f: f.update(op="frobnicate"), "unknown op"),
    (lambda f: f.update(v=99), "version mismatch"),
    (lambda f: f.pop("v"), "version mismatch"),
    (lambda f: f.pop("req"), "'req' must be an int"),
    (lambda f: f.update(req="one"), "'req' must be an int"),
    (lambda f: f.pop("session"), "missing field 'session'"),
    (lambda f: f.update(session=7), "must be str"),
    (lambda f: f.update(surprise=1), r"unknown fields \['surprise'\]"),
])
def test_validate_rejects_malformed_frames(mutate, match):
    frame = dict(GOOD)
    mutate(frame)
    with pytest.raises(WireProtocolError, match=match):
        validate_frame(frame)


def test_validate_rejects_non_object():
    with pytest.raises(WireProtocolError, match="not an object"):
        validate_frame([1, 2, 3])


# -- raw-socket behaviour: errors answered, never a closed socket -------------

def raw_roundtrip(server, payload: bytes) -> dict:
    with socket.create_connection(server.address, timeout=5) as sock:
        sock.sendall(payload)
        buf = b""
        while b"\n" not in buf:
            data = sock.recv(65536)
            assert data, "server closed the socket instead of answering"
            buf += data
    return json.loads(buf.split(b"\n", 1)[0])


def test_unparseable_json_answered_not_closed(served):
    _, server = served
    resp = raw_roundtrip(server, b'{"op": nope}\n')
    assert resp["ok"] is False and resp["code"] == "bad-json"


def test_unknown_op_answered_with_bad_frame(served):
    _, server = served
    frame = {"op": "frobnicate", "v": PROTOCOL_VERSION, "req": 3}
    resp = raw_roundtrip(server, json.dumps(frame).encode() + b"\n")
    assert resp["ok"] is False and resp["code"] == "bad-frame"
    assert resp["re"] == 3
    assert server.counters.bad_frames >= 1


def test_version_mismatch_named_in_error(served):
    _, server = served
    frame = {"op": "ping", "v": 99, "req": 1, "session": "s"}
    resp = raw_roundtrip(server, json.dumps(frame).encode() + b"\n")
    assert resp["code"] == "bad-frame"
    assert "version mismatch" in resp["error"]


def test_unknown_session_gets_no_session_code(served):
    _, server = served
    frame = {"op": "ping", "v": PROTOCOL_VERSION, "req": 1,
             "session": "s999"}
    resp = raw_roundtrip(server, json.dumps(frame).encode() + b"\n")
    assert resp["ok"] is False and resp["code"] == "no-session"


# -- sessions and jobs over the wire ------------------------------------------

def test_hello_submit_poll_values_bit_identical(served):
    svc, server = served
    with connect(server) as client:
        assert client.session_id == "s1"
        resp = client.submit(pagerank_spec(tenant="alice"))
        assert resp["deduped"] is False
        done = client.wait(resp["job_id"], timeout_s=30)
        assert done["state"] == "done"
        values = client.result_values(resp["job_id"])
    # JSON must round-trip float64 exactly: repr is shortest-roundtrip
    assert values.dtype == np.float64
    assert np.array_equal(values, svc.job(resp["job_id"]).values)


def test_idempotent_resubmit_dedupes(served):
    _, server = served
    with connect(server) as client:
        first = client.submit(pagerank_spec(tenant="a"),
                              idempotency_key="k1")
        again = client.submit(pagerank_spec(tenant="a"),
                              idempotency_key="k1")
    assert again["job_id"] == first["job_id"]
    assert again["deduped"] is True
    assert server.counters.deduped_submits == 1


def test_session_resume_on_reconnect(served):
    _, server = served
    with connect(server) as client:
        sid = client.session_id
        client._teardown_socket()       # drop the TCP connection
        client.ping()                   # transparently reconnects
        assert client.session_id == sid
        assert client.session_resumed is True
    assert server.counters.sessions_resumed == 1


def test_watch_streams_terminal_event(served):
    _, server = served
    with connect(server) as client:
        resp = client.submit(pagerank_spec(tenant="w", use_cache=False))
        events = list(client.watch(resp["job_id"], timeout_s=30))
    assert events[-1]["terminal"] is True
    assert events[-1]["state"] == "done"
    assert all(e["job_id"] == resp["job_id"] for e in events)


def test_watch_on_finished_job_answers_terminally(served):
    _, server = served
    with connect(server) as client:
        resp = client.submit(pagerank_spec(tenant="w"))
        client.wait(resp["job_id"], timeout_s=30)
        events = list(client.watch(resp["job_id"]))
    assert len(events) == 1 and events[0]["terminal"] is True


def test_cancel_over_the_wire():
    svc = make_service()
    server = GraphServiceServer(svc, auto_step=False)  # stays pending
    thread = server.serve_in_thread()
    try:
        with connect(server) as client:
            resp = client.submit(pagerank_spec(tenant="c"))
            out = client.cancel(resp["job_id"])
        assert out["cancelled"] is True and out["state"] == "cancelled"
        assert svc.job(resp["job_id"]).state == "cancelled"
    finally:
        server.crash()
        thread.join(timeout=10)


def test_stats_frame_carries_metrics_recovery_and_wire(served):
    _, server = served
    with connect(server) as client:
        client.submit(pagerank_spec(tenant="s"))
        stats = client.stats()
    assert stats["metrics"]["jobs"]
    assert set(stats["recovery"]) == {"recovered", "requeued",
                                      "resumed", "handoffs"}
    wire = stats["wire"]
    assert wire["protocol_version"] == PROTOCOL_VERSION
    assert wire["sessions_opened"] == 1
    assert wire["frames_in"] >= 2 and wire["connections_live"] == 1


# -- overload sheds -----------------------------------------------------------

def test_overload_answered_with_retry_after_not_a_reset():
    svc = make_service(max_queue_depth=1)
    server = GraphServiceServer(svc, auto_step=False)
    thread = server.serve_in_thread()
    try:
        with connect(server) as client:
            client.submit(pagerank_spec(tenant="a"))  # fills the queue
            from repro.errors import WireShed
            with pytest.raises(WireShed) as exc_info:
                client.submit(pagerank_spec(tenant="b"))
            shed = exc_info.value
            assert shed.retry_after_ms > 0
            assert shed.draining is False
            # the connection survived the refusal
            assert client.ping()["ok"]
        assert server.counters.sheds_sent == 1
    finally:
        server.crash()
        thread.join(timeout=10)


def test_shed_retry_after_resubmits_until_admitted():
    svc = make_service(max_queue_depth=1)
    server = GraphServiceServer(svc, auto_step=False)
    thread = server.serve_in_thread()
    try:
        naps = []

        def nap(seconds):
            naps.append(seconds)
            server.auto_step = True     # backlog drains while we sleep
            time.sleep(0.2)

        with connect(server, sleep=nap) as client:
            client.submit(pagerank_spec(tenant="a", use_cache=False))
            resp = client.submit(
                pagerank_spec(tenant="b", use_cache=False), retries=8)
        assert resp["deduped"] is False
        assert naps, "client never honoured retry_after_ms"
    finally:
        server.crash()
        thread.join(timeout=10)


# -- leases and the half-open reaper ------------------------------------------

def test_half_open_session_reaped_after_lease_lapses():
    svc = make_service()
    server = GraphServiceServer(svc, lease_ms=120.0,
                                select_interval_s=0.01)
    thread = server.serve_in_thread()
    try:
        client = connect(server, heartbeat=False, lease_ms=120.0)
        sid = client.session_id
        deadline = time.monotonic() + 10
        while server.counters.sessions_reaped == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.counters.sessions_reaped == 1
        # the client recovers by transparently re-helloing
        client.ping()
        assert client.session_id != sid or client.rehellos >= 1
        client.close()
    finally:
        server.crash()
        thread.join(timeout=10)


def test_heartbeat_keeps_idle_session_alive():
    svc = make_service()
    server = GraphServiceServer(svc, lease_ms=300.0,
                                select_interval_s=0.01)
    thread = server.serve_in_thread()
    try:
        with connect(server, lease_ms=300.0) as client:
            time.sleep(1.2)             # several lease periods idle
            assert server.counters.sessions_reaped == 0
            client.ping()               # still the same live session
            assert client.rehellos == 0
    finally:
        server.crash()
        thread.join(timeout=10)


# -- graceful drain -----------------------------------------------------------

def test_drain_frame_finishes_jobs_and_journals_reason(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = make_service(journal=jpath)
    server = GraphServiceServer(svc)
    thread = server.serve_in_thread()
    with connect(server) as client:
        resp = client.submit(pagerank_spec(tenant="d", use_cache=False))
        out = client.drain()
        assert out["draining"] is True
    thread.join(timeout=30)
    assert svc.job(resp["job_id"]).state == "done"
    state = replay_journal(read_journal(jpath))
    assert state.clean_shutdown
    assert state.shutdown_reason == "drain frame"


def test_drain_now_suspends_and_recovery_resumes(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = make_service(journal=jpath)
    # pace the scheduler so the drain frame reliably lands mid-job
    orig_step = svc.step

    def slow_step():
        time.sleep(0.02)
        return orig_step()

    svc.step = slow_step
    server = GraphServiceServer(svc, step_burst=1)
    thread = server.serve_in_thread()
    with connect(server) as client:
        resp = client.submit(pagerank_spec(tenant="d", use_cache=False,
                                           max_iterations=10))
        # let it make some checkpointed progress, then suspend
        deadline = time.monotonic() + 10
        while server.steps_taken < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        client.drain(mode="now")
    thread.join(timeout=30)

    state = replay_journal(read_journal(jpath))
    assert state.clean_shutdown          # clean *and* mid-flight:
    assert state.unfinished              # jobs suspended, not lost
    rec = GraphService.recover(jpath)
    assert rec.recovered_jobs == 1
    rec.run()
    job = rec.job(resp["job_id"])
    assert job.state == "done"
    # the resume actually helped: strictly fewer recomputed supersteps
    assert len(job.result.stats) < 10


def test_draining_submits_shed_with_draining_flag():
    from repro.errors import WireShed
    svc = make_service()
    server = GraphServiceServer(svc, auto_step=False)
    thread = server.serve_in_thread()
    try:
        with connect(server) as client:
            # mark the *service* draining without tearing the loop
            # down, so the shed answer itself is deterministic
            svc.draining = True
            with pytest.raises(WireShed) as exc_info:
                client.submit(pagerank_spec(tenant="late"))
            assert exc_info.value.draining is True
            assert exc_info.value.retry_after_ms > 0
    finally:
        server.crash()
        thread.join(timeout=10)


# -- streaming mutations over the wire ----------------------------------------


def test_mutate_frame_validates():
    frame = {"op": "mutate", "session": "s", "graph": "g",
             "batch": {"add": {"src": [0], "dst": [1]}},
             "idempotency_key": "k", "v": PROTOCOL_VERSION, "req": 1}
    assert validate_frame(frame) == "mutate"
    bad = dict(frame)
    del bad["batch"]
    with pytest.raises(WireProtocolError, match="missing field 'batch'"):
        validate_frame(bad)


def test_mutate_applies_and_new_submits_see_it(served):
    svc, server = served
    edges_before = svc.store.get("g").graph.num_edges
    with connect(server) as client:
        resp = client.mutate(
            "g", {"add": {"src": [0], "dst": [5]}},
            idempotency_key="wire-mut-1")
        assert resp["version"] == 2 and not resp["deduped"]
        assert resp["changes"] == 1
        job = client.submit(pagerank_spec(tenant="after"))
        doc = client.wait(job["job_id"])
        assert doc["state"] == "done"
    assert svc.store.get("g").version == 2
    assert svc.store.get("g").graph.num_edges == edges_before + 1
    assert svc.job(job["job_id"]).snapshot_version == 2


def test_mutate_replay_applies_exactly_once(served):
    svc, server = served
    batch = {"add": {"src": [1], "dst": [6]}}
    with connect(server) as client:
        first = client.mutate("g", batch, idempotency_key="dup-key")
        again = client.mutate("g", batch, idempotency_key="dup-key")
    assert not first["deduped"] and again["deduped"]
    assert again["version"] == first["version"] == 2
    assert svc.store.get("g").version == 2
    assert svc.metrics()["mutations"] == 1
    assert svc.metrics()["deduped_mutations"] == 1


def test_mutate_bad_batch_answered_not_closed(served):
    from repro.errors import ServeError
    _, server = served
    with connect(server) as client:
        with pytest.raises(ServeError, match=r"\[bad-batch\]"):
            client.mutate("g", {"frobnicate": {}})
        with pytest.raises(ServeError, match=r"\[bad-batch\].*unknown "
                                             "graph"):
            client.mutate("nope", {"add": {"src": [0], "dst": [1]}})
        # the session survived both refusals
        assert client.ping()


def test_mutate_shed_while_draining():
    from repro.errors import WireShed
    svc = make_service()
    server = GraphServiceServer(svc, auto_step=False)
    thread = server.serve_in_thread()
    try:
        with connect(server) as client:
            svc.draining = True
            with pytest.raises(WireShed) as exc_info:
                client.mutate("g", {"add": {"src": [0], "dst": [1]}})
            assert exc_info.value.draining is True
    finally:
        server.crash()
        thread.join(timeout=10)
