"""GraphClient robustness: timeouts, backoff, reconnects, retry safety."""

import socket
import threading
import time

import numpy as np
import pytest

from repro.api import ClusterSpec, GraphService, JobSpec
from repro.errors import (ServeError, WireError, WireTimeout,
                          WireUnavailable)
from repro.serve import GraphClient, GraphServiceServer

SPEC = ClusterSpec(nodes=2, gpus_per_node=1)


def make_service(**kw):
    svc = GraphService(SPEC, cache_entries=8, **kw)
    svc.load_graph("g", dataset="wrn")
    return svc


def pagerank_spec(**kw):
    kw.setdefault("graph", "g")
    kw.setdefault("algorithm", "pagerank")
    kw.setdefault("max_iterations", 6)
    return JobSpec(**kw)


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


# -- dead server: timeout + backoff schedule, never a hang --------------------

def test_dead_server_yields_backoff_schedule_not_a_hang():
    naps = []
    started = time.monotonic()
    with pytest.raises(WireUnavailable) as exc_info:
        GraphClient("127.0.0.1", free_port(), connect_attempts=4,
                    backoff_base_s=0.01, jitter_seed=3,
                    sleep=naps.append)
    assert time.monotonic() - started < 5.0, "client hung"
    schedule = exc_info.value.backoff_schedule
    # one delay between each of the 4 attempts
    assert len(schedule) == 3
    assert tuple(naps) == schedule
    # exponential shape survives the jitter: full-jitter scales each
    # base delay by [0.5, 1.5), so 4x base growth always dominates
    assert schedule[2] > schedule[0]
    assert all(d > 0 for d in schedule)


def test_backoff_jitter_is_seeded_and_deterministic():
    def schedule_for(seed):
        with pytest.raises(WireUnavailable) as exc_info:
            GraphClient("127.0.0.1", free_port(), connect_attempts=3,
                        backoff_base_s=0.01, jitter_seed=seed,
                        sleep=lambda _s: None)
        return exc_info.value.backoff_schedule

    assert schedule_for(1) == schedule_for(1)
    assert schedule_for(1) != schedule_for(2)


def test_silent_server_times_out_per_request():
    """A server that accepts but never answers must cost the timeout
    budget per attempt, not an unbounded hang."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    try:
        started = time.monotonic()
        with pytest.raises(WireUnavailable) as exc_info:
            GraphClient("127.0.0.1", listener.getsockname()[1],
                        timeout_s=0.2, connect_attempts=2,
                        backoff_base_s=0.01, jitter_seed=0,
                        sleep=lambda _s: None)
        assert time.monotonic() - started < 5.0
        assert "no response within" in str(exc_info.value)
    finally:
        listener.close()


def test_constructor_validates_budgets():
    with pytest.raises(ServeError, match="timeout_s must be positive"):
        GraphClient("127.0.0.1", 1, timeout_s=0)
    with pytest.raises(ServeError, match="connect_attempts"):
        GraphClient("127.0.0.1", 1, connect_attempts=0)


# -- reconnect across a server restart ----------------------------------------

def test_client_survives_server_restart_and_dedupes(tmp_path):
    jpath = str(tmp_path / "svc.jsonl")
    svc = make_service(journal=jpath)
    server = GraphServiceServer(svc, auto_step=False)
    thread = server.serve_in_thread()
    host, port = server.address

    client = GraphClient(host, port, jitter_seed=9, connect_attempts=6,
                         backoff_base_s=0.01)
    try:
        first = client.submit(pagerank_spec(tenant="a"),
                              idempotency_key="restart-key")

        server.crash()                   # abrupt: nothing drained
        thread.join(timeout=10)

        svc2 = GraphService.recover(jpath)
        server2 = GraphServiceServer(svc2, host, port)
        thread2 = server2.serve_in_thread()
        try:
            again = client.submit(pagerank_spec(tenant="a"),
                                  idempotency_key="restart-key")
            assert again["job_id"] == first["job_id"]
            assert again["deduped"] is True
            assert client.reconnects >= 1
            done = client.wait(first["job_id"], timeout_s=30)
            assert done["state"] == "done"
            values = client.result_values(first["job_id"])
            assert np.array_equal(values,
                                  svc2.job(first["job_id"]).values)
        finally:
            server2.crash()
            thread2.join(timeout=10)
    finally:
        client.close()


def test_unsafe_submit_is_not_replayed_after_drop():
    """A submit WITHOUT an idempotency key must surface a dropped
    connection instead of blindly resubmitting (caller can't know
    whether the first attempt landed)."""
    svc = make_service()
    server = GraphServiceServer(svc, auto_step=False)
    thread = server.serve_in_thread()
    client = GraphClient(*server.address, jitter_seed=4,
                         connect_attempts=3, backoff_base_s=0.01,
                         heartbeat=False)
    try:
        server.crash()
        thread.join(timeout=10)
        with pytest.raises((WireError, OSError)):
            client.submit(pagerank_spec(tenant="x"))
        assert client.retried_ops == 0
    finally:
        client.close()


def test_closed_client_refuses_requests():
    svc = make_service()
    server = GraphServiceServer(svc)
    thread = server.serve_in_thread()
    try:
        client = GraphClient(*server.address, jitter_seed=2)
        client.close()
        with pytest.raises(WireError, match="closed"):
            client.ping()
    finally:
        server.crash()
        thread.join(timeout=10)


def test_retarget_follows_a_moved_server():
    svc = make_service()
    server = GraphServiceServer(svc)
    thread = server.serve_in_thread()
    client = GraphClient(*server.address, jitter_seed=6)
    try:
        client.ping()
        server.crash()
        thread.join(timeout=10)

        svc2 = make_service()
        server2 = GraphServiceServer(svc2)
        thread2 = server2.serve_in_thread()
        try:
            client.retarget(*server2.address)
            resp = client.submit(pagerank_spec(tenant="m"),
                                 idempotency_key="moved")
            assert client.wait(resp["job_id"],
                               timeout_s=30)["state"] == "done"
        finally:
            server2.crash()
            thread2.join(timeout=10)
    finally:
        client.close()


def test_client_stats_counters():
    svc = make_service()
    server = GraphServiceServer(svc)
    thread = server.serve_in_thread()
    try:
        with GraphClient(*server.address, jitter_seed=8) as client:
            client.ping()
            stats = client.client_stats()
        assert set(stats) == {"reconnects", "retried_ops", "rehellos",
                              "sheds_seen", "timeouts",
                              "last_backoff_schedule"}
        assert stats["reconnects"] == 0
        assert stats["last_backoff_schedule"] == []
    finally:
        server.crash()
        thread.join(timeout=10)


def test_wait_times_out_on_stuck_job():
    svc = make_service()
    server = GraphServiceServer(svc, auto_step=False)  # never runs
    thread = server.serve_in_thread()
    try:
        with GraphClient(*server.address, jitter_seed=5) as client:
            resp = client.submit(pagerank_spec(tenant="stuck"))
            with pytest.raises(WireTimeout, match="not terminal"):
                client.wait(resp["job_id"], timeout_s=0.3,
                            poll_interval_s=0.05)
    finally:
        server.crash()
        thread.join(timeout=10)
