"""Result-cache key semantics: hashing, invalidation, LRU, identity."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.api import ClusterSpec, GraphService, JobSpec, RuntimeConfig, deploy
from repro.engines import PowerGraphEngine
from repro.errors import ServeError
from repro.graph import load_dataset
from repro.serve import ResultCache, params_fingerprint


def run_result(max_iter=4):
    plug = deploy(ClusterSpec(nodes=2, gpus_per_node=1), RuntimeConfig())
    engine = PowerGraphEngine.build(load_dataset("wrn"), plug.cluster,
                                    middleware=plug)
    return engine.run(PageRank(), max_iterations=max_iter)


# -- params hashing ---------------------------------------------------------------------

def test_fingerprint_is_order_independent():
    assert params_fingerprint({"a": 1, "b": 2}) == \
        params_fingerprint({"b": 2, "a": 1})


def test_fingerprint_treats_tuples_and_lists_alike():
    assert params_fingerprint({"sources": (0, 1, 2)}) == \
        params_fingerprint({"sources": [0, 1, 2]})


def test_fingerprint_distinguishes_values_and_keys():
    base = params_fingerprint({"sources": (0, 1)})
    assert params_fingerprint({"sources": (0, 2)}) != base
    assert params_fingerprint({"roots": (0, 1)}) != base
    assert params_fingerprint({}) != base


def test_fingerprint_canonicalizes_numpy_scalars():
    assert params_fingerprint({"k": np.int64(3)}) == \
        params_fingerprint({"k": 3})


def test_key_includes_graph_version():
    params = {"x": 1}
    k1 = ResultCache.key("g", 1, "pagerank", params)
    k2 = ResultCache.key("g", 2, "pagerank", params)
    assert k1 != k2
    assert ResultCache.key("g", 1, "pagerank", params) == k1


# -- get/put identity -------------------------------------------------------------------

def test_cache_hit_is_byte_identical_to_recompute():
    result = run_result()
    cache = ResultCache(4)
    key = cache.key("g", 1, "pagerank", {})
    cache.put(key, result)
    hit = cache.get(key)
    assert np.array_equal(hit.values, result.values)
    assert hit.values.dtype == result.values.dtype
    assert hit.iterations == result.iterations
    assert hit.converged == result.converged
    assert hit.compute_ms == result.total_ms


def test_cache_copies_defensively_on_put_and_get():
    result = run_result()
    cache = ResultCache(4)
    key = cache.key("g", 1, "pagerank", {})
    cache.put(key, result)
    original = result.values.copy()
    result.values[:] = -1.0          # caller mutates after put
    first = cache.get(key)
    assert np.array_equal(first.values, original)
    first.values[:] = -2.0           # caller mutates a hit
    assert np.array_equal(cache.get(key).values, original)


# -- LRU eviction -----------------------------------------------------------------------

def test_lru_evicts_least_recently_used_first():
    result = run_result()
    cache = ResultCache(2)
    ka = cache.key("g", 1, "a", {})
    kb = cache.key("g", 1, "b", {})
    kc = cache.key("g", 1, "c", {})
    cache.put(ka, result)
    cache.put(kb, result)
    assert cache.get(ka) is not None   # refresh a; b is now LRU
    cache.put(kc, result)              # evicts b
    assert kb not in cache and ka in cache and kc in cache
    assert cache.evictions == 1


def test_lru_put_refreshes_recency():
    result = run_result()
    cache = ResultCache(2)
    ka, kb, kc = (ResultCache.key("g", 1, n, {}) for n in "abc")
    cache.put(ka, result)
    cache.put(kb, result)
    cache.put(ka, result)              # re-put refreshes a
    cache.put(kc, result)              # evicts b, not a
    assert ka in cache and kb not in cache


def test_capacity_must_be_positive():
    with pytest.raises(ServeError):
        ResultCache(0)


# -- graph-version invalidation through the service -------------------------------------

def test_reload_invalidates_cached_answers():
    svc = GraphService(ClusterSpec(nodes=2, gpus_per_node=1))
    svc.load_graph("g", dataset="wrn")
    spec = JobSpec(graph="g", algorithm="pagerank", max_iterations=4)
    svc.submit(spec)
    svc.run()
    warm = svc.submit(spec)
    svc.run()
    assert warm.from_cache

    svc.load_graph("g", dataset="wrn")   # version bump
    cold = svc.submit(spec)
    svc.run()
    assert not cold.from_cache           # recomputed against v2
    assert svc.cache.invalidations >= 1
    # and the recompute was still byte-identical (same dataset)
    assert np.array_equal(cold.values, warm.values)


def test_stats_track_hits_misses_and_rate():
    result = run_result()
    cache = ResultCache(4)
    key = cache.key("g", 1, "pagerank", {})
    assert cache.get(key) is None
    cache.put(key, result)
    cache.get(key)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5


# -- singleflight coalescing edge cases -------------------------------------------------

def _service(**kw):
    svc = GraphService(ClusterSpec(nodes=2, gpus_per_node=1), **kw)
    svc.load_graph("g", dataset="wrn")
    return svc


def _query(tenant):
    return JobSpec(graph="g", algorithm="pagerank", tenant=tenant,
                   max_iterations=6)


def test_cancelled_leader_with_multiple_waiters_hands_off():
    svc = _service()
    leader = svc.submit(_query("a"))
    w1 = svc.submit(_query("b"))
    w2 = svc.submit(_query("c"))
    for _ in range(2):
        svc.step()
    assert svc.coalesced == 2                   # both parked behind a
    assert svc.cancel(leader.job_id)
    svc.run()
    assert leader.state == "cancelled" and leader.values is None
    # the group recomputed: one waiter became the new leader, the
    # other coalesced onto it — everyone still gets the answer
    assert w1.state == w2.state == "done"
    assert np.array_equal(w1.values, w2.values)
    assert w2.from_cache or svc.coalesced >= 2


def test_waiter_cancelled_while_coalesced_leaves_group_intact():
    svc = _service()
    leader = svc.submit(_query("a"))
    doomed = svc.submit(_query("b"))
    kept = svc.submit(_query("c"))
    for _ in range(2):
        svc.step()
    assert svc.cancel(doomed.job_id)
    assert doomed.state == "cancelled"
    svc.run()
    assert leader.state == "done" and kept.state == "done"
    assert np.array_equal(kept.values, leader.values)
    assert doomed.values is None                # never served
    assert kept.consumed_ms < leader.consumed_ms  # still coalesced


def test_hung_leader_times_out_and_waiters_recompute():
    from repro.fault import HANG, FaultPlan

    # the leader's run carries a long mid-run daemon hang; the waiter
    # group abandons it after waiter_timeout_ms and recomputes
    hang = FaultPlan.single(HANG, superstep=2, node_id=0,
                            duration_ms=50_000.0)
    svc = _service(waiter_timeout_ms=500.0)
    leader = svc.submit(JobSpec(
        graph="g", algorithm="pagerank", tenant="slow",
        max_iterations=6,
        runtime=RuntimeConfig.preset("resilient").with_(
            fault_plan=hang)))
    waiter = svc.submit(_query("b"))
    svc.run()
    assert svc.handoffs == 1
    assert waiter.state == "done" and leader.state == "done"
    assert np.array_equal(waiter.values, leader.values)
    # the waiter abandoned the hung leader and recomputed on its own;
    # it was not served from the stale leader's publish
    assert not waiter.from_cache


def test_put_entry_is_idempotent_and_defensive():
    result = run_result()
    cache = ResultCache(4)
    key = cache.key("g", 1, "pagerank", {})
    from repro.serve import CachedResult
    entry = CachedResult(result.values.copy(), 4, True, 10.0,
                         "powergraph", "pagerank")
    assert cache.put_entry(key, entry)
    assert not cache.put_entry(key, CachedResult(
        result.values * 2, 9, False, 1.0, "graphx", "pagerank"))
    hit = cache.get(key)                        # first write wins
    assert hit.iterations == 4 and hit.engine == "powergraph"
    np.testing.assert_array_equal(hit.values, result.values)
    entry.values[:] = -1.0                      # caller-side mutation
    np.testing.assert_array_equal(cache.get(key).values, result.values)
