"""Tests for run telemetry export."""

import csv
import json

import pytest

from repro.algorithms import PageRank
from repro.bench import (
    iteration_records,
    read_json,
    run_summary,
    write_csv,
    write_json,
)
from repro.bench.trace import FIELDS
from repro.cluster import make_cluster
from repro.core import GXPlug
from repro.engines import PowerGraphEngine
from repro.graph import rmat


@pytest.fixture(scope="module")
def result():
    g = rmat(128, 1024, seed=3)
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = PowerGraphEngine.build(g, cluster, middleware=plug)
    return engine.run(PageRank(), max_iterations=4)


def test_iteration_records_shape(result):
    records = iteration_records(result)
    assert len(records) == result.iterations
    for i, record in enumerate(records):
        assert record["iteration"] == i
        assert set(record) == set(FIELDS)
        assert record["total_ms"] == pytest.approx(
            record["compute_ms"] + record["apply_ms"] + record["sync_ms"],
            abs=1e-5)


def test_run_summary_contents(result):
    summary = run_summary(result)
    assert summary["engine"] == "powergraph"
    assert summary["algorithm"] == "pagerank"
    assert summary["iterations"] == 4
    assert summary["total_ms"] > 0
    assert 0 <= summary["middleware_ratio"] <= 1
    assert "setup" in summary["breakdown"]


def test_csv_roundtrip(result, tmp_path):
    path = tmp_path / "run.csv"
    write_csv(result, path)
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    assert len(rows) == result.iterations
    assert float(rows[0]["compute_ms"]) >= 0


def test_json_roundtrip(result, tmp_path):
    path = tmp_path / "run.json"
    write_json(result, path)
    doc = read_json(path)
    assert doc["summary"]["iterations"] == result.iterations
    assert len(doc["iterations"]) == result.iterations
    # valid JSON end to end
    json.dumps(doc)
