"""Tests for run telemetry export."""

import csv
import json

import pytest

from repro.algorithms import PageRank
from repro.bench import (
    iteration_records,
    read_json,
    run_summary,
    write_csv,
    write_json,
)
from repro.bench.trace import FIELDS
from repro.cluster import make_cluster
from repro.core import GXPlug
from repro.engines import PowerGraphEngine
from repro.graph import rmat


@pytest.fixture(scope="module")
def result():
    g = rmat(128, 1024, seed=3)
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = PowerGraphEngine.build(g, cluster, middleware=plug)
    return engine.run(PageRank(), max_iterations=4)


def test_iteration_records_shape(result):
    records = iteration_records(result)
    assert len(records) == result.iterations
    for i, record in enumerate(records):
        assert record["iteration"] == i
        assert set(record) == set(FIELDS)
        assert record["total_ms"] == pytest.approx(
            record["compute_ms"] + record["apply_ms"] + record["sync_ms"]
            + record["checkpoint_ms"], abs=1e-5)
        # a fault-free run's fault telemetry is all-zero
        assert record["faults_injected"] == 0
        assert record["retries"] == 0
        assert record["recoveries"] == 0
        assert record["checkpoint_ms"] == 0


def test_run_summary_contents(result):
    summary = run_summary(result)
    assert summary["engine"] == "powergraph"
    assert summary["algorithm"] == "pagerank"
    assert summary["iterations"] == 4
    assert summary["total_ms"] > 0
    assert 0 <= summary["middleware_ratio"] <= 1
    assert "setup" in summary["breakdown"]


def test_csv_roundtrip(result, tmp_path):
    path = tmp_path / "run.csv"
    write_csv(result, path)
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    assert len(rows) == result.iterations
    assert float(rows[0]["compute_ms"]) >= 0


def test_json_roundtrip(result, tmp_path):
    path = tmp_path / "run.json"
    write_json(result, path)
    doc = read_json(path)
    assert doc["summary"]["iterations"] == result.iterations
    assert len(doc["iterations"]) == result.iterations
    # valid JSON end to end
    json.dumps(doc)


@pytest.fixture(scope="module")
def faulty_result():
    from repro.core import RESILIENT
    from repro.fault import CRASH, FaultPlan

    g = rmat(128, 1024, seed=3)
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster, RESILIENT.with_(
        fault_plan=FaultPlan.single(CRASH, 1)))
    engine = PowerGraphEngine.build(g, cluster, middleware=plug)
    return engine.run(PageRank(), max_iterations=4)


def test_fault_counters_recorded_and_roundtrip(faulty_result, tmp_path):
    records = iteration_records(faulty_result)
    assert sum(r["faults_injected"] for r in records) == 1
    assert sum(r["retries"] for r in records) >= 1
    assert sum(r["recoveries"] for r in records) >= 1
    assert any(r["checkpoint_ms"] > 0 for r in records)
    for record in records:
        assert set(record) == set(FIELDS)
        assert record["total_ms"] == pytest.approx(
            record["compute_ms"] + record["apply_ms"] + record["sync_ms"]
            + record["checkpoint_ms"], abs=1e-5)

    summary = run_summary(faulty_result)
    assert summary["rollbacks"] == 0
    assert summary["degraded_nodes"] == []

    # every FIELDS column survives both export formats
    jpath = tmp_path / "run.json"
    write_json(faulty_result, jpath)
    doc = read_json(jpath)
    assert doc["iterations"] == records
    cpath = tmp_path / "run.csv"
    write_csv(faulty_result, cpath)
    with open(cpath, newline="") as f:
        rows = list(csv.DictReader(f))
    assert list(rows[0]) == FIELDS
    for row, record in zip(rows, records):
        for key in ("faults_injected", "retries", "recoveries"):
            assert int(row[key]) == record[key]
        assert float(row["checkpoint_ms"]) == pytest.approx(
            record["checkpoint_ms"])
