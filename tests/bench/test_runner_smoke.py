"""Smoke tests for the experiment runners (small parameters).

The full-size experiments live in ``benchmarks/``; these runs shrink the
sweeps so ``pytest tests/`` also exercises every runner end to end.
"""

import pytest

from repro.bench import (
    algorithm_factories,
    paper_fig15_analysis,
    run_fig9a,
    run_fig9d,
    run_fig11b,
    run_fig12a,
    run_fig13,
    run_fig14,
    run_table1,
)
from repro.bench.reporting import format_table, speedup


def test_algorithm_factories_fresh_instances():
    factories = algorithm_factories()
    assert set(factories) == {"pagerank", "sssp-bf", "lp"}
    a = factories["pagerank"][0]()
    b = factories["pagerank"][0]()
    assert a is not b
    assert len(factories["sssp-bf"][0]().sources) == 4
    assert factories["lp"][1] == 15


def test_table1_runner():
    rows = run_table1()
    assert len(rows) == 6
    for row in rows:
        assert row[1] > row[4]  # paper size > twin size


def test_fig9a_runner_small():
    rows = run_fig9a(gpu_counts=(1, 2))
    systems = {r[0] for r in rows}
    assert systems == {"gx-plug", "lux", "gunrock"}


def test_fig9d_runner():
    rows = run_fig9d()
    assert len(rows) == 5
    assert all(r[2] > 0 for r in rows)


def test_fig11b_runner():
    rows = run_fig11b(num_nodes=2)
    assert {r[0] for r in rows} == {"synthetic", "real-wrn",
                                    "real-clustered"}
    for _label, base, skipped, decrease in rows:
        assert skipped <= base
        assert decrease == pytest.approx(1 - skipped / base)


def test_fig12a_runner():
    rows = dict(run_fig12a())
    assert set(rows) == {"not-balanced", "balanced", "theoretical"}


def test_fig13_runner_param():
    rows = run_fig13(iterations=2)
    inits = {r[0]: r[2] for r in rows}
    assert inits["daemon-agent"] == 1
    assert inits["direct-call"] > 2


def test_fig14_runner_small():
    rows = run_fig14(node_counts=(1, 2), engines=("powergraph",))
    assert len(rows) == 6  # 3 algorithms x 2 node counts
    assert all(0 <= r[3] <= 1 for r in rows)


def test_paper_fig15_analysis_rows():
    rows = paper_fig15_analysis()
    assert {r[0] for r in rows} == {"sssp-bf", "pagerank", "lp"}


# -- reporting helpers ----------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["a", "bb"], [(1, 2.5), (None, 10000.0)],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "OOM" in text          # None renders as OOM
    assert "10,000" in text       # thousands separator
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1       # all rows aligned


def test_speedup_helper():
    assert speedup(100.0, 50.0) == 2.0
    assert speedup(100.0, 0.0) == float("inf")


def test_bar_chart_rendering():
    from repro.bench import bar_chart

    text = bar_chart([("gx-plug", 100.0), ("lux", 200.0),
                      ("gunrock", None)], width=10, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "OOM" in lines[3]
    # lux bar is twice gx-plug's
    assert lines[2].count("#") == 2 * lines[1].count("#")


def test_bar_chart_zero_and_empty():
    from repro.bench import bar_chart

    assert bar_chart([]) == ""
    text = bar_chart([("a", 0.0)])
    assert "#" not in text
