"""Model-based property test: LRUVertexCache vs a reference model.

Drives the cache with random operation sequences and checks it against a
straightforward dictionary model implementing the same policy (decaying
recency weights, dirty pinning, lowest-weight eviction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sync_cache import LRUVertexCache
from repro.errors import MiddlewareError


class ModelCache:
    """Reference implementation: plain dicts, no cleverness."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.values = {}
        self.weights = {}
        self.dirty = set()
        self.gen = 0.0

    def tick(self):
        self.gen += 1.0

    def lookup(self, v):
        if v in self.values:
            self.weights[v] = self.gen
            return self.values[v]
        return None

    def _evict(self):
        candidates = [(w, v) for v, w in self.weights.items()
                      if v not in self.dirty]
        if not candidates:
            raise MiddlewareError("full of dirty")
        _, victim = min(candidates)
        del self.values[victim]
        del self.weights[victim]

    def insert(self, v, value):
        if v not in self.values and len(self.values) >= self.capacity:
            self._evict()
        self.values[v] = value
        self.weights[v] = self.gen

    def update(self, v, value, dirty=True):
        self.insert(v, value)
        if dirty:
            self.dirty.add(v)

    def invalidate(self, v):
        self.values.pop(v, None)
        self.weights.pop(v, None)
        self.dirty.discard(v)

    def take_dirty(self):
        out = {v: self.values[v] for v in self.dirty}
        self.dirty.clear()
        return out


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("tick")),
        st.tuples(st.just("lookup"), st.integers(0, 15)),
        st.tuples(st.just("insert"), st.integers(0, 15)),
        st.tuples(st.just("update"), st.integers(0, 15),
                  st.booleans()),
        st.tuples(st.just("invalidate"), st.integers(0, 15)),
        st.tuples(st.just("flush")),
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=OPS, capacity=st.integers(1, 8))
def test_cache_matches_model(ops, capacity):
    real = LRUVertexCache(capacity)
    model = ModelCache(capacity)
    counter = 0
    for op in ops:
        counter += 1
        value = np.array([float(counter)])
        kind = op[0]
        try:
            if kind == "tick":
                real.tick()
                model.tick()
            elif kind == "lookup":
                got = real.lookup(op[1])
                expected = model.lookup(op[1])
                assert (got is None) == (expected is None)
                if got is not None:
                    assert got[0] == expected[0]
            elif kind == "insert":
                real.insert(op[1], value)
                model.insert(op[1], value)
            elif kind == "update":
                real.update(op[1], value, dirty=op[2])
                model.update(op[1], value, dirty=op[2])
            elif kind == "invalidate":
                real.invalidate(op[1])
                model.invalidate(op[1])
            elif kind == "flush":
                got = real.take_dirty()
                expected = model.take_dirty()
                assert set(got) == set(expected)
        except MiddlewareError:
            # both must agree the cache is wedged full of dirty entries
            with pytest.raises(MiddlewareError):
                model._evict()
            return
        # invariants after every step
        assert len(real) == len(model.values)
        assert set(real.dirty_ids()) == model.dirty
        assert len(real) <= capacity
        for v in model.values:
            assert v in real
