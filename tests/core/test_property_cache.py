"""Model-based property test: LRUVertexCache vs a reference model.

Drives the cache with random operation sequences and checks it against a
straightforward dictionary model implementing the same policy (decaying
recency weights, dirty pinning, lowest-weight eviction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sync_cache import LRUVertexCache
from repro.errors import MiddlewareError


class ModelCache:
    """Reference implementation: plain dicts, no cleverness."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.values = {}
        self.weights = {}
        self.dirty = set()
        self.gen = 0.0

    def tick(self):
        self.gen += 1.0

    def lookup(self, v):
        if v in self.values:
            self.weights[v] = self.gen
            return self.values[v]
        return None

    def _evict(self):
        candidates = [(w, v) for v, w in self.weights.items()
                      if v not in self.dirty]
        if not candidates:
            raise MiddlewareError("full of dirty")
        _, victim = min(candidates)
        del self.values[victim]
        del self.weights[victim]

    def insert(self, v, value):
        if v not in self.values and len(self.values) >= self.capacity:
            self._evict()
        self.values[v] = value
        self.weights[v] = self.gen

    def update(self, v, value, dirty=True):
        self.insert(v, value)
        if dirty:
            self.dirty.add(v)

    def invalidate(self, v):
        self.values.pop(v, None)
        self.weights.pop(v, None)
        self.dirty.discard(v)

    def take_dirty(self):
        out = {v: self.values[v] for v in self.dirty}
        self.dirty.clear()
        return out


class BulkModel(ModelCache):
    """Per-item reference for the vectorized bulk operations."""

    def insert_many(self, ids, rows, dirty):
        for v, row in zip(ids, rows):        # duplicate ids: last wins
            self.insert(int(v), row)
            if dirty:
                self.dirty.add(int(v))

    def lookup_many(self, ids):
        return [self.lookup(int(v)) for v in ids]

    def contains_many(self, ids):
        return [int(v) in self.values for v in ids]

    def touch(self, ids):
        for v in ids:
            self.lookup(int(v))

    def invalidate_many(self, ids):
        for v in ids:
            self.invalidate(int(v))

    def take_dirty_subset(self, ids):
        picked = {int(v) for v in ids} & self.dirty
        out = {v: self.values[v] for v in picked}
        self.dirty -= picked
        return out

    def clear_dirty(self):
        n = len(self.dirty)
        self.dirty.clear()
        return n


IDS = st.lists(st.integers(0, 15), min_size=0, max_size=6)

BULK_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("tick")),
        st.tuples(st.just("insert_many"), IDS, st.booleans()),
        st.tuples(st.just("lookup_many"), IDS),
        st.tuples(st.just("contains_many"), IDS),
        st.tuples(st.just("touch"), IDS),
        st.tuples(st.just("invalidate_many"), IDS),
        st.tuples(st.just("take_dirty"), IDS),
        st.tuples(st.just("flush")),
        st.tuples(st.just("clear_dirty")),
    ),
    min_size=1, max_size=50,
)


@settings(max_examples=120, deadline=None)
@given(ops=BULK_OPS)
def test_bulk_ops_match_model(ops):
    """The vectorized whole-array operations agree with per-item
    semantics.  Capacity covers the id universe, so the (deliberately
    different) bulk eviction order never kicks in — it has its own
    deterministic tests below."""
    capacity = 16
    real = LRUVertexCache(capacity)
    model = BulkModel(capacity)
    counter = 0
    for op in ops:
        kind = op[0]
        if kind == "tick":
            real.tick()
            model.tick()
        elif kind == "insert_many":
            counter += 1
            ids = np.asarray(op[1], dtype=np.int64)
            rows = np.array([[counter * 100.0 + i]
                             for i in range(ids.size)])
            real.insert_many(ids, rows, dirty=op[2])
            model.insert_many(ids, rows, dirty=op[2])
        elif kind == "lookup_many":
            ids = np.asarray(op[1], dtype=np.int64)
            mask, rows = real.lookup_many(ids)
            expected = model.lookup_many(ids)
            assert list(mask) == [e is not None for e in expected]
            got = iter(rows)
            for e in expected:
                if e is not None:
                    assert next(got)[0] == e[0]
        elif kind == "contains_many":
            ids = np.asarray(op[1], dtype=np.int64)
            assert (list(real.contains_many(ids))
                    == model.contains_many(ids))
        elif kind == "touch":
            real.touch(np.asarray(op[1], dtype=np.int64))
            model.touch(op[1])
        elif kind == "invalidate_many":
            real.invalidate_many(np.asarray(op[1], dtype=np.int64))
            model.invalidate_many(op[1])
        elif kind == "take_dirty":
            got = real.take_dirty(np.asarray(op[1], dtype=np.int64))
            expected = model.take_dirty_subset(op[1])
            assert set(got) == set(expected)
            for v in got:
                assert got[v][0] == expected[v][0]
        elif kind == "flush":
            got = real.take_dirty()
            expected = model.take_dirty()
            assert set(got) == set(expected)
        elif kind == "clear_dirty":
            assert real.clear_dirty() == model.clear_dirty()
        # invariants after every step
        assert len(real) == len(model.values)
        assert set(real.dirty_ids()) == model.dirty
        for v in model.values:
            assert v in real
            assert real.lookup(v)[0] == model.values[v][0]


def fill(cache, ids, dirty=False):
    for v in ids:
        cache.update(v, np.array([float(v)]), dirty=dirty)


def test_bulk_insert_evicts_stalest_clean_first():
    cache = LRUVertexCache(4)
    fill(cache, [0, 1, 2, 3])
    cache.tick()
    cache.touch(np.array([0, 1]))            # 2 and 3 are now stalest
    evicted = cache.insert_many(np.array([10, 11]), np.zeros((2, 1)))
    assert sorted(evicted.tolist()) == [2, 3]
    assert sorted(v for v in range(20) if v in cache) == [0, 1, 10, 11]


def test_bulk_insert_batch_members_never_evict_each_other():
    cache = LRUVertexCache(4)
    assert cache.insert_many(np.arange(4), np.zeros((4, 1))).size == 0
    # in-place refresh of resident entries evicts nothing either
    assert cache.insert_many(np.arange(4), np.ones((4, 1))).size == 0
    assert cache.lookup(0)[0] == 1.0


def test_bulk_insert_pins_dirty_entries():
    cache = LRUVertexCache(3)
    fill(cache, [0, 1], dirty=True)
    fill(cache, [2])
    evicted = cache.insert_many(np.array([5]), np.zeros((1, 1)))
    assert evicted.tolist() == [2]           # the only clean entry
    assert cache.dirty_ids() == [0, 1]


def test_bulk_insert_writeback_evicts_dirty_when_all_pinned():
    cache = LRUVertexCache(2, writeback=True)
    fill(cache, [0, 1], dirty=True)
    evicted = cache.insert_many(np.array([5, 6]), np.zeros((2, 1)))
    assert sorted(evicted.tolist()) == [0, 1]
    assert cache.writebacks == 2
    strict = LRUVertexCache(2)
    fill(strict, [0, 1], dirty=True)
    with pytest.raises(MiddlewareError):
        strict.insert_many(np.array([5, 6]), np.zeros((2, 1)))


def test_bulk_insert_larger_than_capacity_matches_sequential():
    bulk = LRUVertexCache(2)
    seq = LRUVertexCache(2)
    ids = np.array([4, 5, 6, 7])
    rows = np.arange(4, dtype=float).reshape(4, 1)
    evicted = bulk.insert_many(ids, rows)
    seq_evicted = [e for v, row in zip(ids, rows)
                   if (e := seq.insert(int(v), row)) is not None]
    assert evicted.tolist() == seq_evicted
    for v in ids:
        assert (v in bulk) == (v in seq)


def test_bulk_insert_duplicate_ids_keep_last():
    cache = LRUVertexCache(4)
    cache.insert_many(np.array([3, 3]), np.array([[1.0], [2.0]]))
    assert len(cache) == 1
    assert cache.lookup(3)[0] == 2.0


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("tick")),
        st.tuples(st.just("lookup"), st.integers(0, 15)),
        st.tuples(st.just("insert"), st.integers(0, 15)),
        st.tuples(st.just("update"), st.integers(0, 15),
                  st.booleans()),
        st.tuples(st.just("invalidate"), st.integers(0, 15)),
        st.tuples(st.just("flush")),
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=OPS, capacity=st.integers(1, 8))
def test_cache_matches_model(ops, capacity):
    real = LRUVertexCache(capacity)
    model = ModelCache(capacity)
    counter = 0
    for op in ops:
        counter += 1
        value = np.array([float(counter)])
        kind = op[0]
        try:
            if kind == "tick":
                real.tick()
                model.tick()
            elif kind == "lookup":
                got = real.lookup(op[1])
                expected = model.lookup(op[1])
                assert (got is None) == (expected is None)
                if got is not None:
                    assert got[0] == expected[0]
            elif kind == "insert":
                real.insert(op[1], value)
                model.insert(op[1], value)
            elif kind == "update":
                real.update(op[1], value, dirty=op[2])
                model.update(op[1], value, dirty=op[2])
            elif kind == "invalidate":
                real.invalidate(op[1])
                model.invalidate(op[1])
            elif kind == "flush":
                got = real.take_dirty()
                expected = model.take_dirty()
                assert set(got) == set(expected)
        except MiddlewareError:
            # both must agree the cache is wedged full of dirty entries
            with pytest.raises(MiddlewareError):
                model._evict()
            return
        # invariants after every step
        assert len(real) == len(model.values)
        assert set(real.dirty_ids()) == model.dirty
        assert len(real) <= capacity
        for v in model.values:
            assert v in real
