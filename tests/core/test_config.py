"""Tests for MiddlewareConfig."""

import pytest

from repro.core.config import BASELINE, FULL, MiddlewareConfig
from repro.errors import MiddlewareError


def test_full_default_everything_on():
    assert FULL.pipeline and FULL.sync_cache and FULL.lazy_upload
    assert FULL.sync_skip and FULL.balance and FULL.runtime_isolation
    assert FULL.block_size is None  # Pipeline*: Lemma-1 optimal


def test_baseline_everything_off():
    assert not BASELINE.pipeline
    assert not BASELINE.sync_cache
    assert not BASELINE.sync_skip
    assert BASELINE.runtime_isolation  # isolation is framework, not opt


def test_with_returns_modified_copy():
    c = FULL.with_(pipeline=False)
    assert not c.pipeline
    assert FULL.pipeline  # original untouched


def test_block_size_validation():
    with pytest.raises(MiddlewareError):
        MiddlewareConfig(block_size=0)
    MiddlewareConfig(block_size=1)  # ok


def test_cache_capacity_validation():
    with pytest.raises(MiddlewareError):
        MiddlewareConfig(cache_capacity=0)


def test_lazy_upload_requires_cache():
    with pytest.raises(MiddlewareError):
        MiddlewareConfig(sync_cache=False, lazy_upload=True, sync_skip=False)


def test_sync_skip_requires_cache():
    with pytest.raises(MiddlewareError):
        MiddlewareConfig(sync_cache=False, lazy_upload=False, sync_skip=True)


def test_frozen():
    with pytest.raises(Exception):
        FULL.pipeline = False
