"""Back-to-back runs in one process must be perfectly repeatable.

The serving layer keeps one Python process alive across many jobs, so
nothing middleware-scoped may leak through module or class globals
between ``deploy()`` calls: daemon ids (and therefore SysV key layouts),
simulated costs and values must all come out identical run over run.
"""

import numpy as np

from repro.algorithms import PageRank
from repro.api import ClusterSpec, RuntimeConfig, deploy
from repro.core.daemon import DAEMON_KEY_BASE
from repro.engines import PowerGraphEngine
from repro.fault import CRASH, FaultPlan
from repro.graph import load_dataset


def _deploy_and_run(config=RuntimeConfig()):
    plug = deploy(ClusterSpec(nodes=2, gpus_per_node=2), config)
    engine = PowerGraphEngine.build(load_dataset("wrn"), plug.cluster,
                                    middleware=plug)
    result = engine.run(PageRank(), max_iterations=8)
    return plug, result


def daemon_ids(plug):
    return [d.daemon_id for node_id in sorted(plug.agents)
            for d in plug.agents[node_id].daemons]


def test_daemon_ids_restart_from_zero_every_deploy():
    first, _ = _deploy_and_run()
    second, _ = _deploy_and_run()
    assert daemon_ids(first) == [0, 1, 2, 3]
    assert daemon_ids(second) == [0, 1, 2, 3]
    # ... and the SysV key layout is the same table both times
    assert [d.key for a in second.agents.values() for d in a.daemons] == \
        [DAEMON_KEY_BASE + i for i in range(4)]


def test_back_to_back_runs_are_bit_identical():
    _, first = _deploy_and_run()
    _, second = _deploy_and_run()
    assert np.array_equal(first.values, second.values)
    assert first.total_ms == second.total_ms
    assert first.iterations == second.iterations
    assert [s.total_ms for s in first.stats] == \
        [s.total_ms for s in second.stats]


def test_faulted_run_does_not_perturb_the_next_deploy():
    _, clean_before = _deploy_and_run()
    plan = FaultPlan.single(CRASH, superstep=1, node_id=0, repeat=5)
    faulted_cfg = (RuntimeConfig.preset("resilient")
                   .with_(fault_plan=plan))
    plug, faulted = _deploy_and_run(faulted_cfg)
    assert not plug.fault_report(faulted).clean
    # the faulted deployment's daemon ids were still 0..3, and the next
    # clean deployment is bit-identical to the one before the fault
    assert daemon_ids(plug) == [0, 1, 2, 3]
    _, clean_after = _deploy_and_run()
    assert np.array_equal(clean_before.values, clean_after.values)
    assert clean_before.total_ms == clean_after.total_ms
