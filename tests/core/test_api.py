"""Tests for the unified public configuration API (:mod:`repro.api`).

Three contracts: the blessed surface is complete and importable; the
new builders (:class:`ClusterSpec` / :class:`RuntimeConfig`) resolve to
exactly the objects the legacy constructors built; and the legacy
calling conventions still work but warn :class:`DeprecationWarning` —
with bit-identical run results either way.
"""

import warnings

import numpy as np
import pytest

import repro.api as api
from repro.api import (
    BASELINE,
    FULL,
    NETWORK_RESILIENT,
    RESILIENT,
    PRESETS,
    ClusterSpec,
    GXPlug,
    MiddlewareConfig,
    NetworkModel,
    PageRank,
    PowerGraphEngine,
    RuntimeConfig,
    deploy,
    load_synthetic_uniform,
    make_cluster,
    make_heterogeneous_cluster,
)
from repro.cluster import DEFAULT_NETWORK
from repro.errors import MiddlewareError, ReproError


def small_graph():
    return load_synthetic_uniform(num_vertices=300, num_edges=2000, seed=7)


# -- surface completeness ----------------------------------------------------


def test_api_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_api_exports_the_blessed_builders():
    for name in ("ClusterSpec", "RuntimeConfig", "deploy", "GXPlug",
                 "Topology", "LinkModel", "FaultPlan", "LINK_SLOW",
                 "LINK_FLAKY", "PRESETS"):
        assert name in api.__all__


# -- RuntimeConfig presets and builder methods -------------------------------


@pytest.mark.parametrize("name,constant", sorted(
    PRESETS.items(), key=lambda kv: kv[0]))
def test_preset_builders_equal_legacy_constants(name, constant):
    assert RuntimeConfig.preset(name).middleware() == constant


def test_preset_unknown_name():
    with pytest.raises(MiddlewareError):
        RuntimeConfig.preset("turbo")


def test_runtime_config_is_immutable_chain():
    base = RuntimeConfig.preset("full")
    tuned = base.with_pipeline(block_size=64).with_sync(skip=False)
    assert base.middleware() == FULL            # original untouched
    assert tuned.middleware().block_size == 64
    assert not tuned.middleware().sync_skip


def test_runtime_config_grouped_builders():
    cfg = (RuntimeConfig.preset("full")
           .with_network(resilient=True, ack_timeout_ms=2.0)
           .with_straggler(True, reestimate=True, link_ratio=2.5)
           .with_faults(checkpoint_interval=3)).middleware()
    assert cfg.network_resilient
    assert cfg.net_ack_timeout_ms == 2.0
    assert cfg.straggler.enabled and cfg.straggler.reestimate
    assert cfg.straggler.link_ratio == 2.5
    assert cfg.monitor_heartbeats and cfg.checkpoint_interval == 3


def test_gxplug_accepts_runtime_config_directly():
    cluster = ClusterSpec(nodes=2, gpus_per_node=1).build()
    plug = deploy(ClusterSpec(nodes=2, gpus_per_node=1),
                  RuntimeConfig.preset("resilient"))
    assert plug.config == RESILIENT
    assert GXPlug(cluster, RuntimeConfig.preset("full")).config == FULL


# -- ClusterSpec -------------------------------------------------------------


def test_cluster_spec_build_matches_make_cluster():
    spec = ClusterSpec(nodes=3, gpus_per_node=2, cpus_per_node=1)
    built = spec.build()
    with warnings.catch_warnings():
        warnings.simplefilter("error")          # must not warn
        legacy = make_cluster(3, gpus_per_node=2, cpu_accels_per_node=1)
    assert built.num_nodes == legacy.num_nodes
    assert built.network == legacy.network == DEFAULT_NETWORK
    assert built.topology is None
    assert built.capacity_factors() == legacy.capacity_factors()
    assert ([len(n.accelerators) for n in built.nodes]
            == [len(n.accelerators) for n in legacy.nodes])


def test_cluster_spec_runtime_strings():
    assert (ClusterSpec(nodes=1, runtime="jvm").build()
            .nodes[0].runtime.name == "jvm")
    assert (ClusterSpec(nodes=1).build()
            .nodes[0].runtime.name == "native")


def test_cluster_spec_network_overrides():
    spec = ClusterSpec(nodes=2, ms_per_byte=2e-4)
    net = spec.network_model()
    assert net.ms_per_byte == 2e-4
    assert net.latency_ms == DEFAULT_NETWORK.latency_ms
    # no overrides: the shared default instance, not a copy
    assert ClusterSpec(nodes=2).network_model() is DEFAULT_NETWORK


def test_cluster_spec_topology_resolution():
    spec = ClusterSpec(nodes=8, topology="rack:2x4",
                       cross_byte_factor=8.0)
    cluster = spec.build()
    assert cluster.topology is not None
    assert cluster.topology.num_racks == 2
    assert cluster.collectives is cluster.topology
    assert cluster.topology.cross.ms_per_byte == pytest.approx(
        cluster.topology.intra.ms_per_byte * 8.0)


@pytest.mark.parametrize("kwargs", [
    dict(nodes=0),
    dict(nodes=2, gpus_per_node=-1),
    dict(nodes=2, runtime="rust"),
    dict(nodes=2, ms_per_byte=-1.0),
    dict(nodes=2, cross_byte_factor=0.5),
    dict(nodes=4, topology="rack:2x4"),        # span mismatch
    dict(nodes=4, topology="mesh:4"),          # malformed spec
])
def test_cluster_spec_validation(kwargs):
    # span mismatches raise MiddlewareError; a malformed topology spec
    # surfaces the parser's SimulationError — both are ReproError
    with pytest.raises(ReproError):
        ClusterSpec(**kwargs)


def test_cluster_spec_to_dict_round_trip():
    spec = ClusterSpec(nodes=8, topology="rack:2x4", ms_per_byte=2e-4)
    doc = spec.to_dict()
    assert doc["nodes"] == 8 and doc["topology"] == "rack:2x4"
    assert ClusterSpec(**doc) == spec
    import json
    json.dumps(doc)                             # plain JSON types only


def test_cluster_spec_with_():
    spec = ClusterSpec(nodes=4)
    assert spec.with_(nodes=8, topology="rack:2x4").nodes == 8
    assert spec.nodes == 4


# -- deprecation shims -------------------------------------------------------


def test_gxplug_loose_kwargs_warn_and_match_config():
    graph = small_graph()
    cluster = ClusterSpec(nodes=2, gpus_per_node=1).build()
    with pytest.warns(DeprecationWarning):
        old = GXPlug(cluster, sync_skip=False, pipeline=False)
    new = GXPlug(ClusterSpec(nodes=2, gpus_per_node=1).build(),
                 MiddlewareConfig(sync_skip=False, pipeline=False))
    assert old.config == new.config
    # and the runs are bit-identical
    a = PowerGraphEngine.build(graph, old.cluster, middleware=old).run(
        PageRank(), max_iterations=5)
    b = PowerGraphEngine.build(graph, new.cluster, middleware=new).run(
        PageRank(), max_iterations=5)
    assert np.array_equal(a.values, b.values)
    assert a.total_ms == b.total_ms


def test_make_cluster_network_kwarg_warns():
    with pytest.warns(DeprecationWarning):
        make_cluster(2, gpus_per_node=1, network=NetworkModel())
    with pytest.warns(DeprecationWarning):
        make_heterogeneous_cluster([["gpu"]], network=NetworkModel())


def test_old_and_new_surface_runs_bit_identical():
    """The load-bearing shim property: a full legacy-style run equals
    the ClusterSpec/RuntimeConfig run bit-for-bit."""
    graph = small_graph()
    legacy_cluster = make_cluster(2, gpus_per_node=1)
    legacy = PowerGraphEngine.build(
        graph, legacy_cluster,
        middleware=GXPlug(legacy_cluster, FULL)).run(
            PageRank(), max_iterations=8)
    plug = deploy(ClusterSpec(nodes=2, gpus_per_node=1),
                  RuntimeConfig.preset("full"))
    blessed = PowerGraphEngine.build(
        graph, plug.cluster, middleware=plug).run(
            PageRank(), max_iterations=8)
    assert np.array_equal(legacy.values, blessed.values)
    assert legacy.total_ms == blessed.total_ms
    assert legacy.iterations == blessed.iterations
