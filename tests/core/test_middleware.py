"""Tests for the GXPlug facade and the agent operation interfaces."""

import numpy as np
import pytest

from repro.accel import make_gpu
from repro.algorithms import PageRank
from repro.cluster import DistributedNode, NATIVE_RUNTIME, Cluster, make_cluster
from repro.core import FULL, GXPlug, MiddlewareConfig
from repro.core.agent import Agent
from repro.errors import MiddlewareError, ProtocolError
from repro.graph import rmat
from repro.ipc import ShmRegistry


def test_gxplug_creates_one_agent_per_node():
    cluster = make_cluster(3, gpus_per_node=2)
    plug = GXPlug(cluster)
    assert len(plug.agents) == 3
    for node in cluster.nodes:
        agent = plug.agent_for(node.node_id)
        assert len(agent.daemons) == 2


def test_gxplug_rejects_accelerator_free_cluster():
    with pytest.raises(MiddlewareError):
        GXPlug(make_cluster(2))


def test_gxplug_rejects_partially_equipped_cluster():
    nodes = [DistributedNode(0, NATIVE_RUNTIME, [make_gpu(0)]),
             DistributedNode(1, NATIVE_RUNTIME, [])]
    with pytest.raises(MiddlewareError):
        GXPlug(Cluster(nodes))


def test_connect_all_pays_slowest_node_once():
    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster)
    cost = plug.connect_all()
    # parallel init: one V100 init, not four
    assert cost == pytest.approx(make_gpu().model.init_ms)
    assert plug.connected
    with pytest.raises(MiddlewareError):
        plug.connect_all()


def test_disconnect_all_idempotent():
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    plug.connect_all()
    plug.disconnect_all()
    assert not plug.connected
    plug.disconnect_all()  # no-op


def test_agent_for_unknown_node():
    plug = GXPlug(make_cluster(2, gpus_per_node=1))
    with pytest.raises(MiddlewareError):
        plug.agent_for(99)


def test_total_middleware_ms_accumulates():
    g = rmat(64, 256, seed=1)
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    plug.connect_all()
    alg = PageRank()
    values = alg.init_state(g).values
    agent = plug.agent_for(0)
    before = plug.total_middleware_ms()
    agent.edge_pass(g.src, g.dst, g.weights, values, alg)
    assert plug.total_middleware_ms() > before


# -- the paper's operation interfaces (§IV-A2) ----------------------------------


@pytest.fixture
def connected_agent():
    node = DistributedNode(0, NATIVE_RUNTIME, [make_gpu()])
    agent = Agent(node, ShmRegistry(), FULL)
    agent.connect()
    return agent


def test_update_download_warms_cache(connected_agent):
    alg = PageRank()
    g = rmat(32, 128, seed=3)
    values = alg.init_state(g).values
    ids = np.arange(10)
    cost = connected_agent.update(ids, values, alg, direction="download")
    assert cost == pytest.approx(
        10 * NATIVE_RUNTIME.download_ms_per_entity)
    for v in range(10):
        assert v in connected_agent.cache


def test_update_upload_flushes_dirty(connected_agent):
    alg = PageRank()
    g = rmat(32, 128, seed=3)
    values = alg.init_state(g).values
    connected_agent.note_master_updates(values, np.array([1, 2]), alg)
    assert connected_agent.cache.dirty_count == 2
    cost = connected_agent.update(np.array([1, 2]), values, alg,
                                  direction="upload")
    assert cost == pytest.approx(2 * NATIVE_RUNTIME.upload_ms_per_entity)
    assert connected_agent.cache.dirty_count == 0


def test_update_validates_direction(connected_agent):
    alg = PageRank()
    with pytest.raises(ProtocolError):
        connected_agent.update(np.array([1]), np.ones((5, 1)), alg,
                               direction="sideways")


def test_update_requires_connection():
    node = DistributedNode(0, NATIVE_RUNTIME, [make_gpu()])
    agent = Agent(node, ShmRegistry(), FULL)
    with pytest.raises(ProtocolError):
        agent.update(np.array([1]), np.ones((5, 1)), PageRank())


def test_transfer_places_data_in_daemon_shm(connected_agent):
    payload = {"weights": [1, 2, 3]}
    connected_agent.transfer(0, "scratch", payload, nbytes=24)
    daemon = connected_agent.daemons[0]
    assert daemon.segment.get("scratch") is payload  # zero copy
    assert daemon.segment.bytes_written >= 24


def test_transfer_bad_daemon_index(connected_agent):
    with pytest.raises(ProtocolError):
        connected_agent.transfer(5, "x", 1)


def test_paper_call_sequence_end_to_end():
    """connect -> update -> requestGen/Merge/Apply -> update -> disconnect."""
    g = rmat(64, 512, seed=9)
    alg = PageRank()
    values = alg.init_state(g).values
    node = DistributedNode(0, NATIVE_RUNTIME, [make_gpu()])
    agent = Agent(node, ShmRegistry(), FULL)

    agent.connect()
    agent.update(np.arange(g.num_vertices), values, alg,
                 direction="download")
    gen = agent.request_gen(g.src, g.dst, g.weights, values, alg)
    merged, _ = agent.request_merge([gen.partial], alg)
    new_values, changed, _ = agent.request_apply(values, merged, alg)
    agent.update(changed, new_values, alg, direction="upload")
    agent.disconnect()

    expected, _ = alg.msg_apply(values, alg.msg_merge(
        g.dst, alg.msg_gen(g.src, g.dst, g.weights, values)))
    assert np.allclose(new_values, expected)
