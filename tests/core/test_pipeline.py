"""Tests for the pipeline cost model, Eq. 1 and Lemma 1."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import (
    PAPER_FIG15_COEFFICIENTS,
    PipelineCoefficients,
    coefficients_for,
    pipeline_makespan_from_stage_times,
)
from repro.errors import MiddlewareError


def coeffs(k1=0.03, k2=0.51, k3=0.09, a=100.0):
    return PipelineCoefficients(k1=k1, k2=k2, k3=k3, a=a)


# -- Equation 1 ----------------------------------------------------------------


def test_total_time_single_block_is_sequential_sum():
    c = coeffs()
    d = 1000
    expected = c.t_n(d) + c.t_c(d) + c.t_u(d)
    assert c.total_time(d, 1) == pytest.approx(expected)


def test_total_time_two_blocks_matches_eq1():
    c = coeffs()
    d, s = 1000, 2
    b = d / s
    expected = (c.t_n(b) + max(c.t_n(b), c.t_c(b))
                + max(c.t_c(b), c.t_u(b)) + c.t_u(b))
    assert c.total_time(d, s) == pytest.approx(expected)


def test_total_time_generic_eq1():
    c = coeffs()
    d, s = 1200, 6
    b = d / s
    tn, tc, tu = c.t_n(b), c.t_c(b), c.t_u(b)
    expected = tn + max(tn, tc) + (s - 2) * max(tn, tc, tu) + max(tc, tu) + tu
    assert c.total_time(d, s) == pytest.approx(expected)


def test_total_time_zero_entities():
    assert coeffs().total_time(0, 5) == 0.0


def test_total_time_validation():
    c = coeffs()
    with pytest.raises(MiddlewareError):
        c.total_time(-1, 2)
    with pytest.raises(MiddlewareError):
        c.total_time(10, 0)


def test_pipeline_beats_sequential_when_balanced():
    """Overlap always wins over the strictly serial flow (s >= 2)."""
    c = coeffs()
    d = 10_000
    for s in (2, 5, 10, 50):
        assert c.total_time(d, s) < c.sequential_time(d, s)


def test_u_shape_in_s():
    """Fig. 15: time first decreases then increases with s."""
    c = coeffs(k1=0.03, k2=0.51, k3=0.09, a=500.0)
    d = 100_000
    s_values = [1, 2, 5, 10, 50, 100, 1000, 10_000, 100_000]
    times = [c.total_time(d, min(s, d)) for s in s_values]
    best = min(range(len(times)), key=times.__getitem__)
    assert 0 < best < len(times) - 1  # interior minimum -> U shape


# -- simulated-pipeline equivalence --------------------------------------------------


def test_stage_time_simulator_matches_eq1_uniform_blocks():
    c = coeffs()
    d, s = 3000, 6
    b = d / s
    makespan = pipeline_makespan_from_stage_times(
        [c.t_n(b)] * s, [c.t_c(b)] * s, [c.t_u(b)] * s)
    assert makespan == pytest.approx(c.total_time(d, s))


def test_stage_time_simulator_empty():
    assert pipeline_makespan_from_stage_times([], [], []) == 0.0


def test_stage_time_simulator_validation():
    with pytest.raises(MiddlewareError):
        pipeline_makespan_from_stage_times([1.0], [1.0], [])


def test_stage_time_simulator_single_block():
    assert pipeline_makespan_from_stage_times([2.0], [3.0], [4.0]) == 9.0


# -- Lemma 1 ------------------------------------------------------------------------


def test_lemma1_case_k2_max_gives_q():
    c = coeffs(k1=0.03, k2=0.51, k3=0.09, a=1000.0)
    d = 1_000_000
    b_opt, t_min = c.lemma1_optimal(d)
    q = math.sqrt(c.a * d / (c.k1 + c.k3))
    assert b_opt == pytest.approx(q)
    assert t_min == pytest.approx(c.k2 * d + 2 * math.sqrt(
        (c.k1 + c.k3) * c.a * d))


def test_lemma1_case_k1_max_corner():
    c = coeffs(k1=1.0, k2=0.1, k3=0.2, a=10.0)
    d = 1_000_000
    b_opt, t_min = c.lemma1_optimal(d)
    corner = c.a / (c.k1 - c.k2)
    q = math.sqrt(c.a * d / (c.k1 + c.k3))
    assert corner < q
    assert b_opt == pytest.approx(corner)
    assert t_min == pytest.approx(c.k1 * d + (c.k1 + c.k3) * c.a / (c.k1 - c.k2))


def test_lemma1_case_k3_max_corner():
    c = coeffs(k1=0.2, k2=0.1, k3=1.0, a=10.0)
    d = 1_000_000
    b_opt, t_min = c.lemma1_optimal(d)
    corner = c.a / (c.k3 - c.k2)
    assert b_opt == pytest.approx(corner)
    assert t_min == pytest.approx(c.k3 * d + (c.k1 + c.k3) * c.a / (c.k3 - c.k2))


def test_lemma1_zero_call_cost_degenerates():
    c = coeffs(a=0.0)
    b_opt, _ = c.lemma1_optimal(1000)
    assert b_opt == 1.0


@settings(max_examples=60, deadline=None)
@given(
    k1=st.floats(0.01, 2.0),
    k2=st.floats(0.01, 2.0),
    k3=st.floats(0.01, 2.0),
    a=st.floats(0.1, 500.0),
    d=st.integers(10, 2000),
)
def test_choose_num_blocks_matches_brute_force(k1, k2, k3, a, d):
    """The integer selector finds the exhaustive-search optimum of Eq. 1."""
    c = PipelineCoefficients(k1=k1, k2=k2, k3=k3, a=a)
    s_best, t_best = c.brute_force_best(d)
    s_chosen = c.choose_num_blocks(d)
    assert c.total_time(d, s_chosen) == pytest.approx(t_best, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    k1=st.floats(0.01, 2.0),
    k2=st.floats(0.01, 2.0),
    k3=st.floats(0.01, 2.0),
    a=st.floats(0.1, 500.0),
    d=st.integers(100, 100_000),
)
def test_lemma1_is_continuous_lower_bound(k1, k2, k3, a, d):
    """The closed-form minimum never exceeds any discrete Eq. 1 value."""
    c = PipelineCoefficients(k1=k1, k2=k2, k3=k3, a=a)
    _, t_min = c.lemma1_optimal(d)
    for s in (1, 2, 3, 5, 10, 100, min(1000, d)):
        assert t_min <= c.total_time(d, s) * (1 + 1e-9)


def test_paper_fig15_coefficients_present():
    assert set(PAPER_FIG15_COEFFICIENTS) == {"sssp-bf", "pagerank", "lp"}
    sssp = PAPER_FIG15_COEFFICIENTS["sssp-bf"]
    assert (sssp.k1, sssp.k2, sssp.k3, sssp.a) == (0.03, 0.51, 0.09, 84671.0)


def test_coefficients_for_helper():
    c = coefficients_for(0.1, 5.0, 0.2, 0.3)
    assert (c.k1, c.k2, c.k3, c.a) == (0.1, 0.2, 0.3, 5.0)


def test_coefficient_validation():
    with pytest.raises(MiddlewareError):
        PipelineCoefficients(k1=0.0, k2=1.0, k3=1.0, a=1.0)
    with pytest.raises(MiddlewareError):
        PipelineCoefficients(k1=1.0, k2=1.0, k3=1.0, a=-1.0)
    with pytest.raises(MiddlewareError):
        coeffs().lemma1_optimal(0)
    with pytest.raises(MiddlewareError):
        coeffs().choose_num_blocks(0)
    with pytest.raises(MiddlewareError):
        coeffs().brute_force_best(-1)
    with pytest.raises(MiddlewareError):
        coeffs().sequential_time(-1, 1)
    with pytest.raises(MiddlewareError):
        coeffs().sequential_time(1, 0)
