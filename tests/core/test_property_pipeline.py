"""Property-based tests: the daemon-agent pipeline vs the Eq. 1 model.

For random device coefficients and block sizes (cache off so stage times
are exactly linear), the simulated protocol of Algorithms 1-2 must
realize the rotation-synchronized pipeline makespan — Eq. 1 for uniform
blocks, the stage-time simulator for the ragged last block.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import Accelerator
from repro.accel.costmodel import DeviceCostModel
from repro.algorithms import MultiSourceSSSP
from repro.cluster import DistributedNode, HostRuntime
from repro.cluster.node import NATIVE_RUNTIME
from repro.core.agent import Agent, LOCAL_ACCESS_FACTOR
from repro.core.config import MiddlewareConfig
from repro.core.pipeline import pipeline_makespan_from_stage_times
from repro.ipc import ShmRegistry

from dataclasses import replace


def make_chain(d):
    """d edges with distinct sources and destinations (block partials
    have exactly block-size entries, and per-block unique-vertex fetch
    counts equal the block size)."""
    src = np.arange(d, dtype=np.int64)
    dst = np.arange(d, dtype=np.int64) + d
    weights = np.ones(d)
    values = np.zeros((2 * d, 1))
    return src, dst, weights, values


@settings(max_examples=30, deadline=None)
@given(
    d=st.integers(10, 200),
    block=st.integers(1, 80),
    k1=st.floats(0.001, 0.5),
    k2=st.floats(0.001, 0.5),
    k3=st.floats(0.001, 0.5),
    a=st.floats(0.0, 5.0),
)
def test_mechanism_matches_stage_time_model(d, block, k1, k2, k3, a):
    src, dst, weights, values = make_chain(d)
    model = DeviceCostModel("t", init_ms=0.0, call_ms=a,
                            compute_ms_per_entity=k2,
                            copy_ms_per_entity=0.0, threads=1,
                            memory_bytes=10**9)
    runtime = replace(NATIVE_RUNTIME, download_ms_per_entity=k1,
                      upload_ms_per_entity=k3)
    node = DistributedNode(0, runtime, [Accelerator(model)])
    agent = Agent(node, ShmRegistry(), MiddlewareConfig(
        block_size=block, sync_cache=False, lazy_upload=False,
        sync_skip=False))
    agent.connect()
    res = agent.edge_pass(src, dst, weights, values,
                          MultiSourceSSSP(sources=(0,)))

    sizes = [min(block, d - lo) for lo in range(0, d, block)]
    # distinct sources: every triplet is a unique-vertex fetch, plus the
    # per-triplet local join cost
    times_n = [k1 * b + k1 * LOCAL_ACCESS_FACTOR * b for b in sizes]
    times_c = [a + k2 * b for b in sizes]
    times_u = [k3 * b for b in sizes]
    expected = pipeline_makespan_from_stage_times(times_n, times_c,
                                                  times_u)
    assert res.blocks == len(sizes)
    assert res.elapsed_ms == pytest.approx(expected, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    d=st.integers(20, 150),
    block=st.integers(2, 60),
    k1=st.floats(0.001, 0.3),
    k2=st.floats(0.001, 0.3),
    k3=st.floats(0.001, 0.3),
    a=st.floats(0.0, 2.0),
)
def test_pipeline_never_slower_than_sequential(d, block, k1, k2, k3, a):
    """Overlap can only help: pipelined <= 5-step sequential, always."""
    src, dst, weights, values = make_chain(d)
    model = DeviceCostModel("t", init_ms=0.0, call_ms=a,
                            compute_ms_per_entity=k2,
                            copy_ms_per_entity=0.0, threads=1,
                            memory_bytes=10**9)
    runtime = replace(NATIVE_RUNTIME, download_ms_per_entity=k1,
                      upload_ms_per_entity=k3)

    def run(pipeline):
        node = DistributedNode(0, runtime, [Accelerator(model)])
        agent = Agent(node, ShmRegistry(), MiddlewareConfig(
            pipeline=pipeline, block_size=block, sync_cache=False,
            lazy_upload=False, sync_skip=False))
        agent.connect()
        return agent.edge_pass(src, dst, weights, values,
                               MultiSourceSSSP(sources=(0,)))

    with_pipe = run(True)
    without = run(False)
    assert with_pipe.elapsed_ms <= without.elapsed_ms * (1 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(
    times=st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10), st.floats(0, 10)),
        min_size=0, max_size=12),
)
def test_stage_time_simulator_bounds(times):
    """The rotation-synchronized makespan is bounded below by every
    single stage's busy time and above by the sum of all stage times."""
    times_n = [t[0] for t in times]
    times_c = [t[1] for t in times]
    times_u = [t[2] for t in times]
    makespan = pipeline_makespan_from_stage_times(times_n, times_c,
                                                  times_u)
    for stage in (times_n, times_c, times_u):
        assert makespan >= sum(stage) - 1e-9
    assert makespan <= sum(times_n) + sum(times_c) + sum(times_u) + 1e-9
