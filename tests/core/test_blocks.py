"""Tests for triplet blocks, block areas and pointer rotation."""

import numpy as np
import pytest

from repro.core.blocks import (
    AreaSet,
    BlockArea,
    TripletBlock,
    VertexEdgeMap,
    build_blocks,
)
from repro.errors import MiddlewareError


def make_block(n=4, index=0):
    return TripletBlock(
        index=index,
        src_ids=np.arange(n),
        dst_ids=np.arange(n) + 1,
        weights=np.ones(n),
        src_values=np.ones((n, 2)),
    )


def test_triplet_block_counts():
    b = make_block(5)
    assert b.num_entities == 5


def test_triplet_block_validation():
    with pytest.raises(MiddlewareError):
        TripletBlock(0, np.arange(3), np.arange(2), np.ones(3),
                     np.ones((3, 1)))
    with pytest.raises(MiddlewareError):
        TripletBlock(0, np.arange(3), np.arange(3), np.ones(3),
                     np.ones((2, 1)))


def test_build_blocks_sizes_and_order():
    src = np.arange(10)
    blocks = list(build_blocks(src, src + 1, np.ones(10),
                               np.ones((10, 1)), block_size=4))
    assert [b.num_entities for b in blocks] == [4, 4, 2]
    assert [b.index for b in blocks] == [0, 1, 2]
    assert np.concatenate([b.src_ids for b in blocks]).tolist() == \
        src.tolist()


def test_build_blocks_views_not_copies():
    """Blocks must be numpy views: zero-copy slicing."""
    src = np.arange(8)
    blocks = list(build_blocks(src, src, np.ones(8), np.ones((8, 1)), 3))
    assert blocks[0].src_ids.base is src


def test_build_blocks_validation():
    with pytest.raises(MiddlewareError):
        list(build_blocks(np.arange(3), np.arange(3), np.ones(3),
                          np.ones((3, 1)), 0))


def test_area_set_initial_roles_distinct():
    areas = AreaSet()
    assert areas.n is not areas.c
    assert areas.c is not areas.u
    assert areas.n is not areas.u


def test_rotation_moves_roles_not_data():
    """The §III-A2 guarantee: rotation is pointer shuffling, no copies."""
    areas = AreaSet()
    block = make_block()
    areas.n.block = block
    n_area, c_area, u_area = areas.n, areas.c, areas.u
    areas.rotate()
    # the physical area that held the download is now the compute area
    assert areas.c is n_area
    assert areas.c.block is block          # identical object: no copy
    assert areas.u is c_area
    assert areas.n is u_area
    assert areas.rotations == 1


def test_three_rotations_return_to_start():
    areas = AreaSet()
    start = (areas.n, areas.c, areas.u)
    for _ in range(3):
        areas.rotate()
    assert (areas.n, areas.c, areas.u) == start


def test_block_area_clear():
    area = BlockArea("x")
    assert area.empty
    area.block = make_block()
    assert not area.empty
    area.clear()
    assert area.empty


def test_vertex_edge_map_lookup():
    src = np.array([3, 1, 3, 0, 1, 3])
    vem = VertexEdgeMap.build(src)
    assert vem.sources().tolist() == [0, 1, 3]
    assert sorted(src[vem.edges_of(3)].tolist()) == [3, 3, 3]
    assert vem.edges_of(3).size == 3
    assert vem.edges_of(1).size == 2
    assert vem.edges_of(0).size == 1
    assert vem.edges_of(2).size == 0
    assert vem.edges_of(99).size == 0
    # positions actually point at the right edges
    for v in (0, 1, 3):
        assert np.all(src[vem.edges_of(v)] == v)
