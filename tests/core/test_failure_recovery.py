"""Failure-injection tests: device faults and daemon-agent recovery."""

import numpy as np
import pytest

from repro.accel import Accelerator, make_gpu
from repro.algorithms import MultiSourceSSSP, PageRank
from repro.cluster import NATIVE_RUNTIME, DistributedNode, make_cluster
from repro.core import GXPlug, MiddlewareConfig
from repro.core.agent import Agent, MAX_RECOVERY_ATTEMPTS
from repro.engines import PowerGraphEngine
from repro.errors import DeviceError, DeviceFailure
from repro.graph import rmat
from repro.ipc import ShmRegistry


def make_agent():
    node = DistributedNode(0, NATIVE_RUNTIME, [make_gpu()])
    # small fixed blocks so a pass runs many kernels (faults can land
    # mid-pipeline)
    agent = Agent(node, ShmRegistry(), MiddlewareConfig(
        block_size=100, sync_cache=False, lazy_upload=False,
        sync_skip=False))
    agent.connect()
    return agent


@pytest.fixture
def graph():
    return rmat(128, 1024, seed=17)


def test_injected_failure_raises_on_device():
    gpu = make_gpu()
    gpu.init()
    gpu.inject_failure(after_kernels=2)
    gpu.run(lambda: 1, entities=1)
    gpu.run(lambda: 1, entities=1)
    with pytest.raises(DeviceFailure):
        gpu.run(lambda: 1, entities=1)
    # the crash loses the device context
    assert not gpu.initialized
    assert gpu.failure_count == 1
    with pytest.raises(DeviceError):
        gpu.run(lambda: 1, entities=1)


def test_injection_validation():
    with pytest.raises(DeviceError):
        make_gpu().inject_failure(after_kernels=-1)


def test_edge_pass_recovers_from_single_fault(graph):
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((graph.num_vertices, 1))
    healthy = make_agent()
    expected = healthy.edge_pass(graph.src, graph.dst, graph.weights,
                                 values, alg)

    agent = make_agent()
    agent.daemons[0].accelerator.inject_failure(after_kernels=3)
    result = agent.edge_pass(graph.src, graph.dst, graph.weights, values,
                             alg)
    assert agent.recoveries == 1
    assert agent.daemons[0].accelerator.failure_count == 1
    # recovery preserved correctness
    assert sorted(result.partial.ids.tolist()) == \
        sorted(expected.partial.ids.tolist())
    assert np.allclose(np.sort(result.partial.data, axis=0),
                       np.sort(expected.partial.data, axis=0))
    # ... and the lost attempt's time was charged
    assert result.elapsed_ms > expected.elapsed_ms


def test_recovery_gives_up_after_max_attempts(graph):
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((graph.num_vertices, 1))
    agent = make_agent()

    accel = agent.daemons[0].accelerator
    original_init = accel.init

    def faulty_init():
        cost = original_init()
        accel.inject_failure(after_kernels=0)  # re-arm on every re-init
        return cost

    accel.init = faulty_init
    accel.shutdown()
    with pytest.raises(DeviceFailure):
        agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    assert agent.recoveries == MAX_RECOVERY_ATTEMPTS + 1


def test_protocol_reset_clears_state(graph):
    agent = make_agent()
    daemon = agent.daemons[0]
    daemon.areas.n.block = "stale"
    old_channel = daemon.to_daemon
    daemon.reset_protocol()
    assert daemon.areas.n.empty
    assert daemon.to_daemon is not old_channel


def test_engine_run_survives_mid_run_fault(graph):
    """A fault during a full distributed run recovers transparently and
    the results still match the reference."""
    alg_factory = lambda: PageRank()
    expected = alg_factory().reference(graph, iterations=5)

    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    # arm a fault that fires somewhere in the middle of the run
    plug.agent_for(0).daemons[0].accelerator.inject_failure(
        after_kernels=5)
    result = engine.run(alg_factory(), max_iterations=5)
    assert np.allclose(result.values, expected)
    assert plug.agent_for(0).recoveries >= 1
