"""Unit tests for the synchronization-skipping detector."""

import numpy as np
import pytest

from repro.core import MessageSet, SkipDetector
from repro.graph import Graph, hash_partition, clustering_partition


def two_island_graph():
    """Vertices 0-3 and 4-7 form two islands with one bridge 3->4."""
    src = [0, 1, 2, 4, 5, 6, 3]
    dst = [1, 2, 3, 5, 6, 7, 4]
    return Graph.from_edges(8, src, dst)


def island_partition():
    g = two_island_graph()
    master_of = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    from repro.graph.partition import _build_edge_cut
    return _build_edge_cut(g, master_of, "manual")


def ms(ids, width=1):
    ids = np.asarray(ids, dtype=np.int64)
    return MessageSet(ids, np.zeros((ids.size, width)))


def empty_changed(pg):
    return {p.node_id: np.empty(0, dtype=np.int64) for p in pg.parts}


def test_local_messages_allow_skip():
    pg = island_partition()
    det = SkipDetector(pg)
    partials = {0: ms([1, 2]), 1: ms([5, 6])}
    changed = {0: np.array([1, 2]), 1: np.array([5, 6])}
    assert det.messages_are_local(partials)
    assert det.can_skip(partials, changed)
    assert det.stats.skipped_iterations == 1


def test_foreign_message_blocks_skip():
    pg = island_partition()
    det = SkipDetector(pg)
    partials = {0: ms([4]), 1: ms([5])}  # node 0 targets island 2's master
    assert not det.messages_are_local(partials)
    assert not det.can_skip(partials, empty_changed(pg))
    assert det.stats.total_iterations == 1
    assert det.stats.skipped_iterations == 0


def test_bridge_vertex_update_blocks_skip():
    """Vertex 3's out-edge crosses to node 1, so updating 3 forbids the
    skip (the paper's 'updated vertex and its outer edges in the same
    node' check)."""
    pg = island_partition()
    det = SkipDetector(pg)
    partials = {0: ms([3]), 1: ms([])}
    changed = {0: np.array([3]), 1: np.empty(0, dtype=np.int64)}
    assert det.messages_are_local(partials)
    assert not det.updates_are_local(changed)
    assert not det.can_skip(partials, changed)


def test_foreign_mastered_update_blocks_skip():
    pg = island_partition()
    det = SkipDetector(pg)
    changed = {0: np.array([5]), 1: np.empty(0, dtype=np.int64)}
    assert not det.updates_are_local(changed)


def test_empty_iteration_skips():
    pg = island_partition()
    det = SkipDetector(pg)
    partials = {0: ms([]), 1: ms([])}
    assert det.can_skip(partials, empty_changed(pg))


def test_skip_fraction():
    pg = island_partition()
    det = SkipDetector(pg)
    det.can_skip({0: ms([1])}, {0: np.array([1])})    # skip
    det.can_skip({0: ms([4])}, {0: np.array([4])})    # no skip
    assert det.stats.skip_fraction == pytest.approx(0.5)
    assert SkipDetector(pg).stats.skip_fraction == 0.0


def test_clustering_partition_skips_more_than_hash():
    from repro.graph import clustered_communities
    g = clustered_communities(4, 32, inter_edge_fraction=0.0, seed=1)
    clus = SkipDetector(clustering_partition(g, 4, seed=1))
    hashed = SkipDetector(hash_partition(g, 4))
    assert clus._out_local.mean() > hashed._out_local.mean()
