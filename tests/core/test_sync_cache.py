"""Tests for the LRU-weighted vertex cache and the lazy-upload queues."""

import numpy as np
import pytest

from repro.core.sync_cache import GlobalQueues, LRUVertexCache
from repro.errors import MiddlewareError


def row(x):
    return np.array([float(x)])


def test_lookup_hit_and_miss_counting():
    c = LRUVertexCache(4)
    c.insert(1, row(10))
    assert c.lookup(1) is not None
    assert c.lookup(2) is None
    assert c.hits == 1 and c.misses == 1
    assert c.hit_rate() == pytest.approx(0.5)


def test_capacity_evicts_least_recently_used():
    c = LRUVertexCache(2)
    c.insert(1, row(1))
    c.tick()
    c.insert(2, row(2))
    c.tick()
    c.lookup(1)          # bump 1's weight above 2's
    c.insert(3, row(3))  # must evict 2 (stalest)
    assert 1 in c and 3 in c and 2 not in c
    assert c.evictions == 1


def test_weights_age_with_iterations():
    """An entry untouched for many iterations is evicted before a fresh
    one, even if it was used more often long ago."""
    c = LRUVertexCache(2)
    c.insert(1, row(1))
    c.lookup(1)
    c.lookup(1)          # heavily used ... now
    for _ in range(5):
        c.tick()
    c.insert(2, row(2))  # fresh entry
    c.insert(3, row(3))  # evict 1: its recency decayed
    assert 1 not in c and 2 in c and 3 in c


def test_dirty_entries_never_evicted():
    c = LRUVertexCache(2)
    c.update(1, row(1), dirty=True)
    c.tick()
    c.insert(2, row(2))
    c.insert(3, row(3))  # can only evict 2
    assert 1 in c and 3 in c and 2 not in c


def test_cache_full_of_dirty_raises():
    c = LRUVertexCache(1)
    c.update(1, row(1), dirty=True)
    with pytest.raises(MiddlewareError):
        c.insert(2, row(2))


def test_take_dirty_flushes():
    c = LRUVertexCache(4)
    c.update(1, row(1))
    c.update(2, row(2))
    assert c.dirty_count == 2
    out = c.take_dirty()
    assert set(out) == {1, 2}
    assert c.dirty_count == 0
    assert 1 in c  # stays cached, now clean


def test_take_dirty_subset():
    c = LRUVertexCache(4)
    c.update(1, row(1))
    c.update(2, row(2))
    out = c.take_dirty(np.array([2, 9]))
    assert set(out) == {2}
    assert c.dirty_ids() == [1]


def test_partition_ids_and_touch():
    c = LRUVertexCache(4)
    c.insert(1, row(1))
    c.insert(2, row(2))
    hit, miss = c.partition_ids(np.array([1, 2, 3]))
    assert hit.tolist() == [1, 2]
    assert miss.tolist() == [3]
    c.touch(hit)
    assert c.hits == 2


def test_invalidate_removes_entry():
    c = LRUVertexCache(4)
    c.update(1, row(1), dirty=True)
    c.invalidate(1)
    assert 1 not in c
    assert c.dirty_count == 0
    c.invalidate(99)  # no-op


def test_insert_returns_evicted_id():
    c = LRUVertexCache(1)
    assert c.insert(1, row(1)) is None
    assert c.insert(2, row(2)) == 1


def test_capacity_validation():
    with pytest.raises(MiddlewareError):
        LRUVertexCache(0)


# -- global queues (Algorithm 3) -------------------------------------------------


def test_query_union_excludes_own_node():
    q = GlobalQueues()
    q.push_query(0, np.array([1, 2]))
    q.push_query(1, np.array([2, 3]))
    assert q.query_union().tolist() == [1, 2, 3]
    assert q.query_union(exclude_node=0).tolist() == [2, 3]
    assert q.query_union(exclude_node=1).tolist() == [1, 2]


def test_data_queue_fetch():
    q = GlobalQueues()
    q.push_data(0, {5: row(50)})
    q.push_data(1, {6: row(60), 7: row(70)})
    got = q.fetch(np.array([5, 7, 9]))
    assert set(got) == {5, 7}
    assert got[5][0] == 50.0


def test_clear_resets_queues():
    q = GlobalQueues()
    q.push_query(0, np.array([1]))
    q.push_data(0, {1: row(1)})
    q.clear()
    assert q.query_union().size == 0
    assert q.fetch(np.array([1])) == {}


def test_empty_union():
    assert GlobalQueues().query_union().size == 0
