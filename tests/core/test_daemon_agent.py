"""Integration tests for the daemon-agent protocol (Algorithms 1-2).

The two standing invariants:

1. **Correctness** — the pipelined, blocked, multi-daemon edge pass
   produces exactly the same merged messages as a monolithic
   gen+merge over the same triplets.
2. **Timing fidelity** — with a fixed block size, uniform costs and no
   cache, the simulated pipeline's makespan equals the paper's Eq. 1.
"""

import numpy as np
import pytest

from repro.accel import Accelerator, make_cpu_accelerator, make_gpu
from repro.accel.costmodel import DeviceCostModel
from repro.algorithms import MultiSourceSSSP, PageRank
from repro.cluster import NATIVE_RUNTIME, DistributedNode
from repro.core.agent import Agent
from repro.core.config import MiddlewareConfig
from repro.errors import MiddlewareError, ProtocolError
from repro.graph import rmat
from repro.ipc import ShmRegistry


def make_agent(accels=None, **config_kwargs):
    node = DistributedNode(0, NATIVE_RUNTIME,
                           accels if accels is not None else [make_gpu()])
    config = MiddlewareConfig(**config_kwargs)
    return Agent(node, ShmRegistry(), config)


def no_opt(**kw):
    base = dict(sync_cache=False, lazy_upload=False, sync_skip=False)
    base.update(kw)
    return base


@pytest.fixture
def graph():
    return rmat(128, 1024, seed=7)


def canonical(ms):
    return sorted(
        (int(i),) + tuple(round(float(x), 9) for x in row)
        for i, row in zip(ms.ids, np.atleast_2d(ms.data)))


def direct_partial(alg, g, values):
    msgs = alg.msg_gen(g.src, g.dst, g.weights, values)
    return alg.msg_merge(g.dst, msgs)


def test_edge_pass_matches_direct_computation(graph):
    alg = MultiSourceSSSP(sources=(0, 1, 2, 3))
    values = alg.init_state(graph).values
    values[:, :] = np.random.default_rng(0).uniform(0, 50,
                                                    size=values.shape)
    agent = make_agent(**no_opt())
    agent.connect()
    result = agent.edge_pass(graph.src, graph.dst, graph.weights, values,
                             alg)
    expected = direct_partial(alg, graph, values)
    assert canonical(result.partial) == canonical(expected)
    assert result.entities == graph.num_edges
    assert result.elapsed_ms > 0


def test_edge_pass_multi_daemon_same_result(graph):
    alg = PageRank()
    values = alg.init_state(graph).values
    single = make_agent([make_gpu(0)], **no_opt())
    multi = make_agent([make_gpu(1), make_gpu(2), make_cpu_accelerator(3)],
                       **no_opt())
    single.connect()
    multi.connect()
    r1 = single.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    r2 = multi.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    assert canonical(r1.partial) == canonical(r2.partial)
    # three devices working in parallel should be faster
    assert r2.elapsed_ms < r1.elapsed_ms


def test_pipeline_makespan_matches_eq1():
    """With uniform stage times the mechanism realizes Eq. 1 exactly."""
    # distinct dsts so every block's partial has exactly b entries
    d = 120
    src = np.zeros(d, dtype=np.int64)
    dst = np.arange(1, d + 1, dtype=np.int64)
    weights = np.ones(d)
    n = d + 1
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((n, 1))

    model = DeviceCostModel("t", init_ms=0.0, call_ms=2.0,
                            compute_ms_per_entity=0.05,
                            copy_ms_per_entity=0.05, threads=1,
                            memory_bytes=10**9)
    accel = Accelerator(model)
    agent = make_agent([accel], block_size=30, **no_opt())
    agent.connect()
    result = agent.edge_pass(src, dst, weights, values, alg)

    coeffs = agent.coefficients_for(agent.daemons[0])
    expected = coeffs.total_time(d, 4)  # 120 entities / block 30 = 4 blocks
    assert result.blocks == 4
    assert result.elapsed_ms == pytest.approx(expected, rel=1e-9)


def test_sequential_flow_slower_than_pipeline():
    d = 400
    src = np.zeros(d, dtype=np.int64)
    dst = np.arange(1, d + 1, dtype=np.int64)
    weights = np.ones(d)
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((d + 1, 1))

    def run(pipeline):
        agent = make_agent([make_gpu()], pipeline=pipeline, block_size=50,
                           **no_opt())
        agent.connect()
        return agent.edge_pass(src, dst, weights, values, alg)

    with_pipe = run(True)
    without = run(False)
    assert canonical(with_pipe.partial) == canonical(without.partial)
    assert with_pipe.elapsed_ms < without.elapsed_ms


def test_empty_edge_pass_is_free(graph):
    alg = PageRank()
    values = alg.init_state(graph).values
    agent = make_agent(**no_opt())
    agent.connect()
    empty = np.empty(0, dtype=np.int64)
    result = agent.edge_pass(empty, empty, np.empty(0), values, alg)
    assert result.elapsed_ms == 0.0
    assert result.partial.size == 0


def test_connect_required(graph):
    alg = PageRank()
    values = alg.init_state(graph).values
    agent = make_agent(**no_opt())
    with pytest.raises(ProtocolError):
        agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)


def test_double_connect_rejected():
    agent = make_agent(**no_opt())
    agent.connect()
    with pytest.raises(ProtocolError):
        agent.connect()


def test_agent_needs_accelerators():
    node = DistributedNode(0, NATIVE_RUNTIME, [])
    with pytest.raises(MiddlewareError):
        Agent(node, ShmRegistry(), MiddlewareConfig())


def test_runtime_isolation_inits_once(graph):
    alg = PageRank()
    values = alg.init_state(graph).values
    agent = make_agent(**no_opt())
    agent.connect()
    for _ in range(5):
        agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    assert agent.daemons[0].accelerator.init_count == 1


def test_no_isolation_reinits_every_pass(graph):
    alg = PageRank()
    values = alg.init_state(graph).values
    agent = make_agent(runtime_isolation=False, **no_opt())
    agent.connect()
    for _ in range(5):
        agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    assert agent.daemons[0].accelerator.init_count == 5


def test_cache_reduces_downloads_on_repeat(graph):
    """Second identical pass over unchanged vertices hits the cache and
    gets cheaper download stages (Fig. 11(a) mechanism)."""
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((graph.num_vertices, 1))
    agent = make_agent(sync_cache=True, lazy_upload=False, sync_skip=False)
    agent.connect()
    r1 = agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    r2 = agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    assert r1.cache_misses > 0
    assert r2.cache_misses == 0
    assert r2.cache_hits == graph.num_edges
    assert r2.breakdown.get("middleware.download", 0.0) < \
        r1.breakdown.get("middleware.download", 0.0)


def test_invalidation_forces_refetch(graph):
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((graph.num_vertices, 1))
    agent = make_agent(sync_cache=True, lazy_upload=False, sync_skip=False)
    agent.connect()
    agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    unique_srcs = np.unique(graph.src)
    agent.invalidate_cache(unique_srcs)
    r = agent.edge_pass(graph.src, graph.dst, graph.weights, values, alg)
    # every distinct source vertex re-fetches (misses count vertex
    # fetches, not triplets); a few extra fetches occur when a vertex's
    # triplets straddle a block boundary
    assert r.cache_misses >= unique_srcs.size


def test_request_apply_matches_direct(graph):
    alg = MultiSourceSSSP(sources=(0,))
    state = alg.init_state(graph)
    values = state.values
    merged = direct_partial(alg, graph, values)
    agent = make_agent(**no_opt())
    agent.connect()
    new_values, changed, cost = agent.request_apply(values, merged, alg)
    exp_values, exp_changed = alg.msg_apply(values, merged)
    assert np.allclose(new_values, exp_values)
    assert changed.tolist() == exp_changed.tolist()
    assert cost > 0


def test_request_merge_combines_partials(graph):
    alg = PageRank()
    values = alg.init_state(graph).values
    m = graph.num_edges // 2
    p1 = alg.msg_merge(graph.dst[:m],
                       alg.msg_gen(graph.src[:m], graph.dst[:m],
                                   graph.weights[:m], values))
    p2 = alg.msg_merge(graph.dst[m:],
                       alg.msg_gen(graph.src[m:], graph.dst[m:],
                                   graph.weights[m:], values))
    agent = make_agent(**no_opt())
    agent.connect()
    merged, cost = agent.request_merge([p1, p2], alg)
    assert canonical(merged) == canonical(direct_partial(alg, graph, values))


def test_disconnect_releases_devices():
    agent = make_agent(**no_opt())
    agent.connect()
    assert agent.daemons[0].accelerator.initialized
    agent.disconnect()
    assert not agent.daemons[0].accelerator.initialized
    assert not agent.connected


def test_shared_memory_holds_areas():
    agent = make_agent(**no_opt())
    daemon = agent.daemons[0]
    assert "areas" in daemon.segment
    assert daemon.segment.get("areas") is daemon.areas
