"""Tests for the agent's self-adaptive pipeline coefficients."""

import numpy as np
import pytest

from repro.accel import make_gpu
from repro.algorithms import MultiSourceSSSP
from repro.cluster import DistributedNode, NATIVE_RUNTIME
from repro.core import MiddlewareConfig
from repro.core.agent import LOCAL_ACCESS_FACTOR, Agent
from repro.graph import rmat
from repro.ipc import ShmRegistry


def make_agent(**kw):
    node = DistributedNode(0, NATIVE_RUNTIME, [make_gpu()])
    agent = Agent(node, ShmRegistry(), MiddlewareConfig(**kw))
    agent.connect()
    return agent


def test_k1_adapts_to_warm_cache():
    g = rmat(128, 2048, seed=41)
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((g.num_vertices, 1))
    agent = make_agent(sync_skip=False)
    daemon = agent.daemons[0]

    cold_k1 = agent.coefficients_for(daemon).k1
    raw = NATIVE_RUNTIME.download_ms_per_entity
    # fresh agent assumes worst-case fetch ratio (1.0) plus join cost
    assert cold_k1 == pytest.approx(raw * (1.0 + LOCAL_ACCESS_FACTOR))

    agent.edge_pass(g.src, g.dst, g.weights, values, alg)
    after_cold = agent.coefficients_for(daemon).k1
    assert after_cold < cold_k1      # rmat dedup already helps

    agent.edge_pass(g.src, g.dst, g.weights, values, alg)
    warm_k1 = agent.coefficients_for(daemon).k1
    # fully warm: only the local join cost remains
    assert warm_k1 == pytest.approx(raw * LOCAL_ACCESS_FACTOR)


def test_k3_reflects_lazy_upload():
    lazy = make_agent(lazy_upload=True, sync_skip=False)
    eager = make_agent(lazy_upload=False, sync_skip=False)
    k3_lazy = lazy.coefficients_for(lazy.daemons[0]).k3
    k3_eager = eager.coefficients_for(eager.daemons[0]).k3
    assert k3_lazy == pytest.approx(k3_eager * LOCAL_ACCESS_FACTOR)


def test_adaptation_shrinks_block_count():
    """Warm caches shift the Lemma-1 optimum toward fewer, larger blocks."""
    g = rmat(256, 8192, seed=42)
    alg = MultiSourceSSSP(sources=(0,))
    values = np.zeros((g.num_vertices, 1))
    agent = make_agent(sync_skip=False)
    first = agent.edge_pass(g.src, g.dst, g.weights, values, alg)
    agent.edge_pass(g.src, g.dst, g.weights, values, alg)
    third = agent.edge_pass(g.src, g.dst, g.weights, values, alg)
    assert third.blocks <= first.blocks
    assert third.elapsed_ms < first.elapsed_ms
