"""Tests for workload balancing (Lemmas 2 and 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import make_cpu_accelerator, make_gpu
from repro.cluster import NATIVE_RUNTIME, DistributedNode
from repro.core.balance import (
    accelerators_for_load,
    balancing_factors,
    cluster_coefficients,
    makespan,
    node_coefficient,
    optimal_capacity_factors,
    optimal_makespan,
    optimal_partition_sizes,
)
from repro.errors import MiddlewareError


# -- Lemma 2 ------------------------------------------------------------------


def test_lemma2_equalizes_finish_times():
    coeffs = [0.5, 1.0, 2.0]
    sizes = optimal_partition_sizes(700.0, coeffs)
    finish = np.asarray(coeffs) * sizes
    assert np.allclose(finish, finish[0])
    assert sizes.sum() == pytest.approx(700.0)


def test_lemma2_optimum_value():
    coeffs = [0.5, 1.0, 2.0]
    sizes = optimal_partition_sizes(700.0, coeffs)
    assert makespan(sizes, coeffs) == pytest.approx(
        optimal_makespan(700.0, coeffs))


@settings(max_examples=60, deadline=None)
@given(
    coeffs=st.lists(st.floats(0.05, 5.0), min_size=1, max_size=6),
    total=st.floats(1.0, 1e6),
)
def test_lemma2_beats_random_partitions(coeffs, total):
    """No random partition does better than the Lemma-2 sizes."""
    optimal = optimal_makespan(total, coeffs)
    rng = np.random.default_rng(0)
    for _ in range(10):
        raw = rng.random(len(coeffs)) + 1e-6
        sizes = raw / raw.sum() * total
        assert makespan(sizes, coeffs) >= optimal * (1 - 1e-9)


def test_balancing_factors_sum_to_one():
    f = balancing_factors([0.5, 1.0, 2.0])
    assert f.sum() == pytest.approx(1.0)
    # the fastest node (smallest c) takes the largest share
    assert f[0] > f[1] > f[2]


def test_even_split_is_suboptimal_for_heterogeneous_nodes():
    coeffs = [0.2, 1.0]
    even = makespan([500.0, 500.0], coeffs)
    best = optimal_makespan(1000.0, coeffs)
    assert best < even


# -- Lemma 3 ------------------------------------------------------------------


def test_lemma3_scales_capacity_with_load():
    sizes = [100.0, 400.0]
    factors = optimal_capacity_factors(sizes, max_factor=8.0)
    assert factors[1] == pytest.approx(8.0)       # largest load: full pool
    assert factors[0] == pytest.approx(2.0)       # quarter load: quarter cap


def test_lemma3_equalizes_finish_times():
    sizes = np.array([100.0, 250.0, 400.0])
    factors = optimal_capacity_factors(sizes, max_factor=10.0)
    finish = sizes / factors
    assert np.allclose(finish, finish[0])


def test_lemma3_optimum_is_dstar_over_f():
    sizes = [100.0, 400.0]
    f = 8.0
    factors = optimal_capacity_factors(sizes, f)
    assert makespan(sizes, 1.0 / factors) == pytest.approx(400.0 / f)


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.floats(1.0, 1e5), min_size=1, max_size=6),
    f=st.floats(0.5, 50.0),
)
def test_lemma3_no_feasible_assignment_beats_it(sizes, f):
    """Any capacity assignment bounded by f finishes no earlier."""
    factors = optimal_capacity_factors(sizes, f)
    best = makespan(sizes, 1.0 / np.maximum(factors, 1e-12))
    rng = np.random.default_rng(1)
    for _ in range(10):
        trial = rng.uniform(1e-3, f, len(sizes))
        assert makespan(sizes, 1.0 / trial) >= best * (1 - 1e-9)


def test_lemma3_zero_loads():
    factors = optimal_capacity_factors([0.0, 0.0], 4.0)
    assert np.all(factors == 0.0)


def test_accelerators_for_load_rounds_up():
    counts = accelerators_for_load([100.0, 400.0], max_factor=8.0,
                                   unit_factor=3.0)
    assert counts == [1, 3]  # ideal 2.0 -> 1 unit, ideal 8.0 -> 3 units


# -- node coefficient estimation -----------------------------------------------------


def test_node_coefficient_prefers_more_accelerators():
    one_gpu = node_coefficient(NATIVE_RUNTIME, [make_gpu()])
    two_gpu = node_coefficient(NATIVE_RUNTIME, [make_gpu(), make_gpu(1)])
    host = node_coefficient(NATIVE_RUNTIME, [])
    assert two_gpu < one_gpu < host


def test_cluster_coefficients_match_nodes():
    nodes = [
        DistributedNode(0, NATIVE_RUNTIME, [make_gpu(0)]),
        DistributedNode(1, NATIVE_RUNTIME, [make_gpu(1), make_cpu_accelerator(2)]),
    ]
    coeffs = cluster_coefficients(nodes)
    assert len(coeffs) == 2
    assert coeffs[1] < coeffs[0]


# -- validation ------------------------------------------------------------------------


def test_validation():
    with pytest.raises(MiddlewareError):
        makespan([1.0], [1.0, 2.0])
    with pytest.raises(MiddlewareError):
        makespan([], [])
    with pytest.raises(MiddlewareError):
        optimal_partition_sizes(10.0, [0.0, 1.0])
    with pytest.raises(MiddlewareError):
        optimal_partition_sizes(-1.0, [1.0])
    with pytest.raises(MiddlewareError):
        optimal_partition_sizes(1.0, [])
    with pytest.raises(MiddlewareError):
        optimal_makespan(1.0, [-1.0])
    with pytest.raises(MiddlewareError):
        optimal_capacity_factors([], 1.0)
    with pytest.raises(MiddlewareError):
        optimal_capacity_factors([1.0], 0.0)
    with pytest.raises(MiddlewareError):
        optimal_capacity_factors([-1.0], 1.0)
    with pytest.raises(MiddlewareError):
        accelerators_for_load([1.0], 1.0, 0.0)
    with pytest.raises(MiddlewareError):
        balancing_factors([0.0])
