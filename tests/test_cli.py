"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, FIGURES, build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_datasets_lists_all_six(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("orkut", "wiki-topcats", "livejournal", "wrn", "twitter",
                 "uk-2007-02"):
        assert name in out


def test_run_default_job(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "powergraph/pagerank" in out
    assert "middleware ratio" in out


def test_run_without_middleware(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--no-middleware", "--max-iterations", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "middleware ratio" not in out


def test_run_middleware_without_accelerators_errors(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--gpus", "0"])
    assert rc == 2
    assert "accelerators" in capsys.readouterr().err


def test_run_every_algorithm(capsys):
    for alg in sorted(ALGORITHMS):
        rc = main(["run", "--algorithm", alg, "--dataset", "wiki-topcats",
                   "--nodes", "2", "--max-iterations", "2",
                   "--sources", "0"])
        assert rc == 0, alg
        assert alg.split("-")[0] in capsys.readouterr().out or True


def test_run_graphx_engine(capsys):
    rc = main(["run", "--engine", "graphx", "--dataset", "wiki-topcats",
               "--nodes", "2", "--max-iterations", "2"])
    assert rc == 0
    assert "graphx/pagerank" in capsys.readouterr().out


def test_run_ablation_flags(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "2", "--no-pipeline", "--no-cache",
               "--block-size", "512"])
    assert rc == 0


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    assert "orkut" in capsys.readouterr().out


def test_figure_fig13(capsys):
    assert main(["figure", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "daemon-agent" in out and "direct-call" in out


def test_figure_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_all_figures_registered():
    assert set(FIGURES) == {
        "table1", "fig8", "fig9a", "fig9b", "fig9c", "fig9d", "fig10",
        "fig11a", "fig11b", "fig12a", "fig12b", "fig13", "fig14", "fig15",
        "fault_soak", "straggler_soak", "topology_soak",
    }


def test_fault_kinds_unknown_rejected_eagerly(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--fault-seed", "3",
               "--fault-kinds", "crash", "bogus", "also-bogus"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown fault kind(s): also-bogus, bogus" in err
    # the error teaches the valid vocabulary
    from repro.fault import ALL_KINDS
    for kind in ALL_KINDS:
        assert kind in err


def test_fault_kinds_require_seed(capsys):
    rc = main(["run", "--dataset", "wiki-topcats",
               "--fault-kinds", "crash"])
    assert rc == 2
    assert "--fault-seed" in capsys.readouterr().err


def test_straggler_flags_require_seed(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--speculate"])
    assert rc == 2
    assert "--fault-seed" in capsys.readouterr().err
    rc = main(["run", "--dataset", "wiki-topcats",
               "--straggler-ratio", "4.0"])
    assert rc == 2
    assert "--fault-seed" in capsys.readouterr().err


def test_straggler_ratio_must_exceed_one(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--fault-seed", "3",
               "--straggler-ratio", "0.5"])
    assert rc == 2
    assert "must be > 1" in capsys.readouterr().err


def test_speculate_requires_pipeline(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--fault-seed", "3",
               "--speculate", "--no-pipeline"])
    assert rc == 2
    assert "pipelined" in capsys.readouterr().err


def test_run_gray_campaign_with_speculation(capsys, tmp_path):
    json_path = tmp_path / "gray.json"
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--gpus", "2", "--max-iterations", "4",
               "--fault-seed", "5", "--fault-rate", "0.4",
               "--fault-kinds", "slowdown",
               "--straggler-ratio", "2.5", "--speculate",
               "--trace-json", str(json_path)])
    assert rc == 0
    assert "fault report:" in capsys.readouterr().out
    import json as _json
    doc = _json.loads(json_path.read_text())
    assert doc["fault_campaign"]["straggler_ratio"] == 2.5
    assert doc["fault_campaign"]["speculate"] is True
    assert doc["fault_campaign"]["kinds"] == ["slowdown"]
    assert "straggler_verdicts" in doc["summary"]
    assert "speculative_wins" in doc["summary"]


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.algorithm == "pagerank"
    assert args.dataset == "orkut"
    assert args.nodes == 4
    assert args.gpus == 1


def test_run_async_engine(capsys):
    rc = main(["run", "--engine", "async", "--algorithm", "bfs",
               "--dataset", "wiki-topcats", "--nodes", "2",
               "--sources", "0"])
    assert rc == 0
    assert "async/bfs" in capsys.readouterr().out


def test_run_async_requires_middleware(capsys):
    rc = main(["run", "--engine", "async", "--no-middleware",
               "--dataset", "wiki-topcats"])
    assert rc == 2
    assert "middleware" in capsys.readouterr().err


def test_run_trace_export(tmp_path, capsys):
    json_path = tmp_path / "t.json"
    csv_path = tmp_path / "t.csv"
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "2",
               "--trace-json", str(json_path),
               "--trace-csv", str(csv_path)])
    assert rc == 0
    assert json_path.exists() and csv_path.exists()
    import json as _json
    doc = _json.loads(json_path.read_text())
    assert doc["summary"]["iterations"] == 2
