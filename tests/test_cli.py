"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, FIGURES, build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_datasets_lists_all_six(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("orkut", "wiki-topcats", "livejournal", "wrn", "twitter",
                 "uk-2007-02"):
        assert name in out


def test_run_default_job(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "powergraph/pagerank" in out
    assert "middleware ratio" in out


def test_run_without_middleware(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--no-middleware", "--max-iterations", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "middleware ratio" not in out


def test_run_middleware_without_accelerators_errors(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--gpus", "0"])
    assert rc == 2
    assert "accelerators" in capsys.readouterr().err


def test_run_every_algorithm(capsys):
    for alg in sorted(ALGORITHMS):
        rc = main(["run", "--algorithm", alg, "--dataset", "wiki-topcats",
                   "--nodes", "2", "--max-iterations", "2",
                   "--sources", "0"])
        assert rc == 0, alg
        assert alg.split("-")[0] in capsys.readouterr().out or True


def test_run_graphx_engine(capsys):
    rc = main(["run", "--engine", "graphx", "--dataset", "wiki-topcats",
               "--nodes", "2", "--max-iterations", "2"])
    assert rc == 0
    assert "graphx/pagerank" in capsys.readouterr().out


def test_run_ablation_flags(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "2", "--no-pipeline", "--no-cache",
               "--block-size", "512"])
    assert rc == 0


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    assert "orkut" in capsys.readouterr().out


def test_figure_fig13(capsys):
    assert main(["figure", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "daemon-agent" in out and "direct-call" in out


def test_figure_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_all_figures_registered():
    assert set(FIGURES) == {
        "table1", "fig8", "fig9a", "fig9b", "fig9c", "fig9d", "fig10",
        "fig11a", "fig11b", "fig12a", "fig12b", "fig13", "fig14", "fig15",
        "fault_soak",
    }


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.algorithm == "pagerank"
    assert args.dataset == "orkut"
    assert args.nodes == 4
    assert args.gpus == 1


def test_run_async_engine(capsys):
    rc = main(["run", "--engine", "async", "--algorithm", "bfs",
               "--dataset", "wiki-topcats", "--nodes", "2",
               "--sources", "0"])
    assert rc == 0
    assert "async/bfs" in capsys.readouterr().out


def test_run_async_requires_middleware(capsys):
    rc = main(["run", "--engine", "async", "--no-middleware",
               "--dataset", "wiki-topcats"])
    assert rc == 2
    assert "middleware" in capsys.readouterr().err


def test_run_trace_export(tmp_path, capsys):
    json_path = tmp_path / "t.json"
    csv_path = tmp_path / "t.csv"
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "2",
               "--trace-json", str(json_path),
               "--trace-csv", str(csv_path)])
    assert rc == 0
    assert json_path.exists() and csv_path.exists()
    import json as _json
    doc = _json.loads(json_path.read_text())
    assert doc["summary"]["iterations"] == 2
