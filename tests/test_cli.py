"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, FIGURES, build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_datasets_lists_all_six(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("orkut", "wiki-topcats", "livejournal", "wrn", "twitter",
                 "uk-2007-02"):
        assert name in out


def test_run_default_job(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "powergraph/pagerank" in out
    assert "middleware ratio" in out


def test_run_without_middleware(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--no-middleware", "--max-iterations", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "middleware ratio" not in out


def test_run_middleware_without_accelerators_errors(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--gpus", "0"])
    assert rc == 2
    assert "accelerators" in capsys.readouterr().err


def test_run_every_algorithm(capsys):
    for alg in sorted(ALGORITHMS):
        rc = main(["run", "--algorithm", alg, "--dataset", "wiki-topcats",
                   "--nodes", "2", "--max-iterations", "2",
                   "--sources", "0"])
        assert rc == 0, alg
        assert alg.split("-")[0] in capsys.readouterr().out or True


def test_run_graphx_engine(capsys):
    rc = main(["run", "--engine", "graphx", "--dataset", "wiki-topcats",
               "--nodes", "2", "--max-iterations", "2"])
    assert rc == 0
    assert "graphx/pagerank" in capsys.readouterr().out


def test_run_ablation_flags(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "2", "--no-pipeline", "--no-cache",
               "--block-size", "512"])
    assert rc == 0


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    assert "orkut" in capsys.readouterr().out


def test_figure_fig13(capsys):
    assert main(["figure", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "daemon-agent" in out and "direct-call" in out


def test_figure_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_all_figures_registered():
    assert set(FIGURES) == {
        "table1", "fig8", "fig9a", "fig9b", "fig9c", "fig9d", "fig10",
        "fig11a", "fig11b", "fig12a", "fig12b", "fig13", "fig14", "fig15",
        "fault_soak", "straggler_soak", "topology_soak", "serve_soak",
        "serve_chaos", "wire_chaos", "mutation_soak",
    }


def test_fault_kinds_unknown_rejected_eagerly(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--fault-seed", "3",
               "--fault-kinds", "crash", "bogus", "also-bogus"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown fault kind(s): also-bogus, bogus" in err
    # the error teaches the valid vocabulary
    from repro.fault import ALL_KINDS
    for kind in ALL_KINDS:
        assert kind in err


def test_fault_kinds_require_seed(capsys):
    rc = main(["run", "--dataset", "wiki-topcats",
               "--fault-kinds", "crash"])
    assert rc == 2
    assert "--fault-seed" in capsys.readouterr().err


def test_straggler_flags_require_seed(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--speculate"])
    assert rc == 2
    assert "--fault-seed" in capsys.readouterr().err
    rc = main(["run", "--dataset", "wiki-topcats",
               "--straggler-ratio", "4.0"])
    assert rc == 2
    assert "--fault-seed" in capsys.readouterr().err


def test_straggler_ratio_must_exceed_one(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--fault-seed", "3",
               "--straggler-ratio", "0.5"])
    assert rc == 2
    assert "must be > 1" in capsys.readouterr().err


def test_speculate_requires_pipeline(capsys):
    rc = main(["run", "--dataset", "wiki-topcats", "--fault-seed", "3",
               "--speculate", "--no-pipeline"])
    assert rc == 2
    assert "pipelined" in capsys.readouterr().err


def test_run_gray_campaign_with_speculation(capsys, tmp_path):
    json_path = tmp_path / "gray.json"
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--gpus", "2", "--max-iterations", "4",
               "--fault-seed", "5", "--fault-rate", "0.4",
               "--fault-kinds", "slowdown",
               "--straggler-ratio", "2.5", "--speculate",
               "--trace-json", str(json_path)])
    assert rc == 0
    assert "fault report:" in capsys.readouterr().out
    import json as _json
    doc = _json.loads(json_path.read_text())
    assert doc["fault_campaign"]["straggler_ratio"] == 2.5
    assert doc["fault_campaign"]["speculate"] is True
    assert doc["fault_campaign"]["kinds"] == ["slowdown"]
    assert "straggler_verdicts" in doc["summary"]
    assert "speculative_wins" in doc["summary"]


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.algorithm == "pagerank"
    assert args.dataset == "orkut"
    assert args.nodes == 4
    assert args.gpus == 1


def test_run_async_engine(capsys):
    rc = main(["run", "--engine", "async", "--algorithm", "bfs",
               "--dataset", "wiki-topcats", "--nodes", "2",
               "--sources", "0"])
    assert rc == 0
    assert "async/bfs" in capsys.readouterr().out


def test_run_async_requires_middleware(capsys):
    rc = main(["run", "--engine", "async", "--no-middleware",
               "--dataset", "wiki-topcats"])
    assert rc == 2
    assert "middleware" in capsys.readouterr().err


def test_run_trace_export(tmp_path, capsys):
    json_path = tmp_path / "t.json"
    csv_path = tmp_path / "t.csv"
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--max-iterations", "2",
               "--trace-json", str(json_path),
               "--trace-csv", str(csv_path)])
    assert rc == 0
    assert json_path.exists() and csv_path.exists()
    import json as _json
    doc = _json.loads(json_path.read_text())
    assert doc["summary"]["iterations"] == 2


# -- serving: submit + serve ------------------------------------------------------------

def submit(jobs_file, *extra):
    return main(["submit", "--jobs-file", str(jobs_file),
                 "--graph", "wrn", "--max-iterations", "4", *extra])


def test_submit_appends_job_lines(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    assert submit(jobs, "--tenant", "alice") == 0
    assert submit(jobs, "--tenant", "bob", "--algorithm", "cc") == 0
    lines = jobs.read_text().strip().splitlines()
    assert len(lines) == 2
    import json as _json
    first = _json.loads(lines[0])
    assert first["tenant"] == "alice" and first["graph"] == "wrn"


def test_submit_validates_before_persisting(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    assert submit(jobs, "--algorithm", "nope") == 2
    assert "unknown algorithm" in capsys.readouterr().err
    assert submit(jobs, "--params", "not json") == 2
    assert submit(jobs, "--params", "[1, 2]") == 2
    assert not jobs.exists()


def test_serve_drains_jobs_and_reports(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "alice")
    submit(jobs, "--tenant", "bob")          # identical -> coalesces
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "alice" in out and "bob" in out
    assert "serving session" in out
    assert "coalesced 1" in out


def test_serve_cache_hits_across_waves_in_json(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "alice")
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2"])
    assert rc == 0
    capsys.readouterr()
    # same file again in one process: fresh service, cold cache
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2",
               "--json"])
    assert rc == 0
    import json as _json
    doc = _json.loads(capsys.readouterr().out)
    assert doc["jobs"][0]["state"] == "done"
    assert doc["metrics"]["cache"]["misses"] >= 1


def test_serve_with_injected_crash_isolates_tenants(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "chaos", "--preset", "resilient",
           "--no-cache", "--fault-kind", "crash", "--fault-repeat", "2")
    submit(jobs, "--tenant", "alice")
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2",
               "--trace-dir", str(tmp_path / "traces")])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("done") >= 2
    assert (tmp_path / "traces" / "job-1.json").exists()
    assert (tmp_path / "traces" / "job-2.json").exists()


def test_serve_rejects_bad_jobs_file(tmp_path, capsys):
    missing = tmp_path / "none.jsonl"
    assert main(["serve", "--jobs-file", str(missing)]) == 2
    assert "bad jobs file" in capsys.readouterr().err
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    assert main(["serve", "--jobs-file", str(empty)]) == 2
    assert "no jobs" in capsys.readouterr().err


def test_serve_rejects_bad_graph_clause(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs)
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--graph", "noequals"])
    assert rc == 2
    assert "KEY=DATASET" in capsys.readouterr().err


def test_serve_unknown_dataset_key_errors(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    main(["submit", "--jobs-file", str(jobs), "--graph", "mystery"])
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs)])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_serve_exits_nonzero_when_a_job_fails(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "chaos", "--preset", "baseline",
           "--no-cache", "--fault-kind", "crash", "--fault-repeat", "50")
    submit(jobs, "--tenant", "alice")
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "1 job(s) ended failed/quarantined: #1" in out


def test_serve_json_reports_not_ok_on_quarantine(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "chaos", "--preset", "baseline",
           "--no-cache", "--fault-kind", "crash",
           "--fault-repeat", "50", "--max-retries", "1")
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2",
               "--json"])
    import json as _json
    doc = _json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["ok"] is False
    assert doc["failed_jobs"] == [1]
    assert doc["jobs"][0]["state"] == "quarantined"
    assert doc["metrics"]["retries"] == 1


def test_submit_records_deadline_and_retry_fields(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    assert submit(jobs, "--deadline-ms", "500", "--max-retries", "2",
                  "--retry-backoff-ms", "3.5") == 0
    import json as _json
    rec = _json.loads(jobs.read_text().strip())
    assert rec["deadline_ms"] == 500.0
    assert rec["max_retries"] == 2 and rec["retry_backoff_ms"] == 3.5
    # bad values are rejected before anything is persisted
    assert submit(jobs, "--deadline-ms", "-1") == 2
    assert "deadline_ms" in capsys.readouterr().err
    assert len(jobs.read_text().strip().splitlines()) == 1


def test_serve_recover_requires_journal(capsys):
    assert main(["serve", "--recover"]) == 2
    assert "--journal" in capsys.readouterr().err
    assert main(["serve", "--recover", "--journal", "j.jsonl",
                 "--drain-after", "-1"]) == 2
    assert "--drain-after" in capsys.readouterr().err


def test_serve_journal_then_recover_is_a_noop(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    jpath = tmp_path / "svc.jsonl"
    submit(jobs, "--tenant", "alice")
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2",
               "--journal", str(jpath)])
    assert rc == 0
    before = jpath.read_text()
    capsys.readouterr()
    rc = main(["serve", "--recover", "--journal", str(jpath), "--json"])
    import json as _json
    doc = _json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["ok"] is True
    assert doc["jobs"][0]["state"] == "done"
    assert doc["metrics"]["recovered_jobs"] == 0
    # replaying a finished journal appends nothing
    assert jpath.read_text() == before


def test_serve_drain_after_sheds_pending_jobs(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "alice")
    submit(jobs, "--tenant", "bob", "--algorithm", "cc")
    capsys.readouterr()
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2",
               "--journal", str(tmp_path / "j.jsonl"),
               "--drain-after", "0", "--json"])
    import json as _json
    doc = _json.loads(capsys.readouterr().out)
    assert rc == 0  # shed jobs are load management, not failures
    assert all(j["state"] == "cancelled" for j in doc["jobs"])
    assert all("draining" in j["error"] for j in doc["jobs"])


# -- serving over sockets: submit --connect, serve --listen ----------------------------

def _wire_server(tmp_path=None, **service_kw):
    """A live socket server on an ephemeral port, for CLI wire tests."""
    from repro.api import ClusterSpec, GraphService
    from repro.serve import GraphServiceServer

    svc = GraphService(ClusterSpec(nodes=2, gpus_per_node=1),
                       cache_entries=8, **service_kw)
    svc.load_graph("wrn", dataset="wrn")
    server = GraphServiceServer(svc)
    thread = server.serve_in_thread()
    return svc, server, thread


def test_submit_needs_a_destination(capsys):
    rc = main(["submit", "--graph", "wrn", "--max-iterations", "4"])
    assert rc == 2
    assert "--jobs-file" in capsys.readouterr().err


def test_submit_rejects_bad_connect_clause(capsys):
    rc = main(["submit", "--connect", "noport", "--graph", "wrn"])
    assert rc == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_submit_connect_submits_waits_and_dedupes(capsys):
    svc, server, thread = _wire_server()
    host, port = server.address
    try:
        rc = main(["submit", "--connect", f"{host}:{port}",
                   "--graph", "wrn", "--max-iterations", "4",
                   "--tenant", "alice", "--idempotency-key", "cli-1",
                   "--wait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "submitted as job #1" in out
        assert "job #1 done" in out

        rc = main(["submit", "--connect", f"{host}:{port}",
                   "--graph", "wrn", "--max-iterations", "4",
                   "--tenant", "alice", "--idempotency-key", "cli-1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "deduped to job #1" in out
    finally:
        server.crash()
        thread.join(timeout=10)


def test_submit_connect_dead_server_reports_backoff(capsys):
    import socket as _socket
    probe = _socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    rc = main(["submit", "--connect", f"127.0.0.1:{port}",
               "--graph", "wrn", "--max-iterations", "4"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "backoff applied" in err


def test_serve_listen_end_to_end(tmp_path, capsys):
    import socket as _socket
    import threading as _threading

    from repro.serve import GraphClient

    probe = _socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    rcs = []
    # worker thread: signal install is skipped off the main thread
    thread = _threading.Thread(
        target=lambda: rcs.append(
            main(["serve", "--listen", f"127.0.0.1:{port}",
                  "--nodes", "2", "--graph", "g=wrn",
                  "--journal", str(tmp_path / "j.jsonl")])),
        daemon=True)
    thread.start()

    deadline = __import__("time").monotonic() + 10
    client = None
    while client is None:
        try:
            client = GraphClient("127.0.0.1", port, jitter_seed=1,
                                 connect_attempts=2,
                                 backoff_base_s=0.01)
        except Exception:
            if __import__("time").monotonic() > deadline:
                raise
    try:
        from repro.api import JobSpec
        resp = client.submit(JobSpec(graph="g", algorithm="pagerank",
                                     max_iterations=4, tenant="alice"),
                             idempotency_key="listen-1")
        assert client.wait(resp["job_id"],
                           timeout_s=30)["state"] == "done"
        client.drain()
    finally:
        client.close()
    thread.join(timeout=10)
    assert rcs == [0]
    out = capsys.readouterr().out
    assert "alice" in out and "done" in out
    assert "wire:" in out and "session(s)" in out


def test_serve_file_mode_sigterm_drains_cleanly(tmp_path, capsys,
                                               monkeypatch):
    """A signal mid-run finishes what's running, sheds the rest, and
    journals a clean shutdown naming the signal."""
    import json as _json

    from repro.api import GraphService

    jobs = tmp_path / "jobs.jsonl"
    submit(jobs, "--tenant", "alice")
    submit(jobs, "--tenant", "bob", "--algorithm", "cc")
    capsys.readouterr()

    captured = []
    monkeypatch.setattr("repro.cli._install_drain_signals",
                        captured.append)

    real_run = GraphService.run

    fired = []

    def run_then_sigterm(self, *a, **kw):
        if fired:  # drain() re-enters run() to finish what's running
            return real_run(self, *a, **kw)
        for _ in range(2):
            if not self.step():
                break
        fired.append(True)
        captured[0]("SIGTERM")  # raises _GracefulShutdown

    monkeypatch.setattr(GraphService, "run", run_then_sigterm)

    jpath = tmp_path / "j.jsonl"
    rc = main(["serve", "--jobs-file", str(jobs), "--nodes", "2",
               "--journal", str(jpath)])
    out = capsys.readouterr().out
    assert rc == 0  # drained jobs are not failures
    assert "shed: shutdown on SIGTERM" in out

    records = [_json.loads(line)
               for line in jpath.read_text().splitlines() if line]
    shutdowns = [r for r in records if r["rec"] == "shutdown"]
    assert shutdowns and shutdowns[-1]["clean"] is True
    assert shutdowns[-1]["reason"] == "sigterm"
    # a restart can pick the shed work back up from the journal
    rc = main(["serve", "--recover", "--journal", str(jpath),
               "--json"])
    doc = _json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["ok"] is True
    assert doc["recovery"]["recovered"] >= 1


# -- streaming mutations: repro-gxplug mutate --connect --------------------------------

def test_mutate_rejects_bad_inputs(tmp_path, capsys):
    rc = main(["mutate", "--connect", "noport", "--graph", "wrn",
               "--batch-file", str(tmp_path / "b.json")])
    assert rc == 2
    assert "HOST:PORT" in capsys.readouterr().err

    rc = main(["mutate", "--connect", "h:1", "--graph", "wrn",
               "--batch-file", str(tmp_path / "missing.json")])
    assert rc == 2
    assert "bad batch file" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text('{"frobnicate": {}}')
    rc = main(["mutate", "--connect", "h:1", "--graph", "wrn",
               "--batch-file", str(bad)])
    assert rc == 2
    assert "unknown mutation batch field" in capsys.readouterr().err


def test_mutate_connect_applies_then_dedupes(tmp_path, capsys):
    import json as _json

    batch_file = tmp_path / "batch.json"
    batch_file.write_text(_json.dumps(
        {"add": {"src": [0], "dst": [5]}}))
    svc, server, thread = _wire_server()
    host, port = server.address
    try:
        args = ["mutate", "--connect", f"{host}:{port}",
                "--graph", "wrn", "--batch-file", str(batch_file),
                "--idempotency-key", "cli-mut-1"]
        rc = main(args)
        out = capsys.readouterr().out
        assert rc == 0
        assert "applied 1 change(s)" in out
        assert "v1 -> v2" in out

        rc = main(args)          # replay: exactly once
        out = capsys.readouterr().out
        assert rc == 0
        assert "already applied" in out
        assert svc.store.get("wrn").version == 2
    finally:
        server.crash()
        thread.join(timeout=10)
