"""Network-layer fault tolerance: resilient collectives end to end.

The acceptance bar mirrors the daemon-edge one: every network fault
kind, injected under deterministic seeds, must leave PageRank and SSSP
converging to the fault-free results (within 1e-9), with the transport's
recovery visible in the counters — and the fault-free resilient path
must cost exactly zero extra.
"""

import numpy as np
import pytest

from repro import (
    FULL,
    NETWORK_RESILIENT,
    RESILIENT,
    GXPlug,
    MultiSourceSSSP,
    PageRank,
    PowerGraphEngine,
    ResilientTransport,
    load_dataset,
    make_cluster,
)
from repro.cluster.network import NetworkModel
from repro.core.balance import rebalanced_shares
from repro.errors import (
    MiddlewareError,
    NetworkFault,
    NodeUnreachable,
    SimulationError,
)
from repro.fault import (
    NET_DELAY,
    NET_DROP,
    NET_DUP,
    NETWORK_KINDS,
    NODE_PARTITION,
    SYNC_FAIL,
    CheckpointStore,
    CollectiveMonitor,
    FaultPlan,
    RetryPolicy,
)

NUM_NODES = 2
MAX_ITER = 10


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wrn")


def run_algorithm(graph, config, algorithm=None):
    cluster = make_cluster(NUM_NODES, gpus_per_node=1)
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    algorithm = algorithm if algorithm is not None else PageRank()
    result = engine.run(algorithm, max_iterations=MAX_ITER)
    return result, plug


@pytest.fixture(scope="module")
def fault_free(graph):
    result, _ = run_algorithm(graph, FULL)
    return result


@pytest.fixture(scope="module")
def fault_free_sssp(graph):
    result, _ = run_algorithm(graph, FULL,
                              algorithm=MultiSourceSSSP(sources=(0, 1)))
    return result


# -- transport unit behaviour ----------------------------------------------


def make_transport(**kw):
    policy = RetryPolicy(max_attempts=kw.pop("max_attempts", 3),
                         base_delay_ms=kw.pop("base_delay_ms", 0.5),
                         backoff_factor=kw.pop("backoff_factor", 2.0))
    return ResilientTransport(NetworkModel(), policy,
                              ack_timeout_ms=kw.pop("ack_timeout_ms", 1.0))


def test_fault_free_transport_is_bit_exact():
    model = NetworkModel()
    t = make_transport()
    for nodes, nbytes in [(1, 0), (2, 64), (4, 4096), (16, 10_000)]:
        assert t.sync_ms(nodes, nbytes) == model.sync_ms(nodes, nbytes)
        assert t.broadcast_ms(nodes, nbytes) == \
            model.broadcast_ms(nodes, nbytes)
    assert t.net_wasted_ms == 0.0
    assert t.retransmits == 0 and t.dup_drops == 0


def test_sequence_numbers_dedupe_duplicates():
    t = make_transport()
    seq = t.send(0)
    assert t.deliver(0, seq) is True
    assert t.deliver(0, seq) is False            # replay: dropped
    assert t.dup_drops == 1
    assert t.deliver(0, t.send(0)) is True       # next seq passes


def test_armed_delay_charges_the_straggler():
    model = NetworkModel()
    t = make_transport()
    t.arm_delay(1, 7.5)
    cost = t.sync_ms(4, 1000)
    assert cost == pytest.approx(model.sync_ms(4, 1000) + 7.5)
    assert t.net_wasted_ms == pytest.approx(7.5)
    # one-shot: the next collective is clean again
    assert t.sync_ms(4, 1000) == model.sync_ms(4, 1000)


def test_armed_dup_pays_the_wire_and_gets_deduped():
    model = NetworkModel()
    t = make_transport()
    t.arm_dup(0)
    cost = t.sync_ms(4, 1000)
    fragment = 250
    assert cost == pytest.approx(model.sync_ms(4, 1000)
                                 + model.transfer_ms(fragment))
    assert t.dup_drops == 1
    assert t.retransmits == 0                    # a dup is not a resend


def test_armed_drop_retransmits_after_timeout_and_backoff():
    model = NetworkModel()
    t = make_transport(ack_timeout_ms=2.0, base_delay_ms=0.5)
    t.arm_drop(1)
    cost = t.sync_ms(4, 1000)
    expected_extra = 2.0 + 0.5 + model.transfer_ms(250)
    assert cost == pytest.approx(model.sync_ms(4, 1000) + expected_extra)
    assert t.retransmits == 1
    assert t.monitor.acks == 1
    assert t.monitor.pending == 0


def test_armed_sync_fail_falls_back_to_p2p():
    model = NetworkModel()
    t = make_transport()
    t.arm_sync_fail()
    cost = t.sync_ms(4, 1000)
    assert cost == pytest.approx(model.sync_ms(4, 1000)
                                 + model.p2p_fallback_ms(4, 1000))
    assert t.collective_fallbacks == 1
    assert t.retransmits == 4                    # one resend per node


def test_partition_exhausts_budget_and_raises():
    t = make_transport(max_attempts=3)
    t.arm_partition(2)
    with pytest.raises(NodeUnreachable) as err:
        t.sync_ms(4, 1000)
    assert err.value.node_id == 2
    assert err.value.wasted_ms > 0
    assert t.retransmits == 3                    # the whole budget
    assert t.partition_verdicts == 1
    assert t.monitor.verdicts == 1
    # the verdict consumed the armed fault; the transport is clean again
    assert t.faults_armed == 0
    assert t.sync_ms(4, 1000) == NetworkModel().sync_ms(4, 1000)


def test_collective_monitor_validates_and_tracks():
    with pytest.raises(SimulationError):
        CollectiveMonitor(0.0)
    m = CollectiveMonitor(2.0)
    m.expect(3, now=10.0)
    assert m.pending == 1
    assert not m.overdue(3, now=11.0)
    assert m.overdue(3, now=12.5)
    m.ack(3)
    assert m.pending == 0 and m.acks == 1
    assert issubclass(NodeUnreachable, NetworkFault)


# -- end-to-end: every kind converges to fault-free results ---------------


@pytest.mark.parametrize("kind,kwargs", [
    (NET_DROP, dict(node_id=1)),
    (NET_DELAY, dict(node_id=0, duration_ms=5.0)),
    (NET_DUP, dict(node_id=1)),
    (SYNC_FAIL, dict()),
])
@pytest.mark.parametrize("superstep", [0, 3])
def test_recoverable_network_fault_converges(graph, fault_free, kind,
                                             kwargs, superstep):
    plan = FaultPlan.single(kind, superstep, **kwargs)
    result, plug = run_algorithm(
        graph, NETWORK_RESILIENT.with_(fault_plan=plan))
    assert result.converged == fault_free.converged
    assert np.abs(result.values - fault_free.values).max() < 1e-9
    report = plug.fault_report(result)
    assert report.faults_injected == 1
    assert report.injected_by_kind == {kind: 1}
    assert report.net_wasted_ms > 0
    assert result.net_wasted_ms == pytest.approx(report.net_wasted_ms)
    if kind == NET_DROP:
        assert report.retransmits >= 1
    if kind == NET_DUP:
        assert report.dup_drops >= 1
    if kind == SYNC_FAIL:
        assert report.collective_fallbacks >= 1
    assert result.rollbacks == 0
    assert not report.degraded_nodes


@pytest.mark.parametrize("kind,kwargs", [
    (NET_DROP, dict(node_id=0)),
    (NET_DELAY, dict(node_id=1, duration_ms=5.0)),
    (SYNC_FAIL, dict()),
])
def test_network_faults_keep_sssp_exact(graph, fault_free_sssp, kind,
                                        kwargs):
    plan = FaultPlan.single(kind, 1, **kwargs)
    result, _ = run_algorithm(
        graph, NETWORK_RESILIENT.with_(fault_plan=plan),
        algorithm=MultiSourceSSSP(sources=(0, 1)))
    np.testing.assert_allclose(result.values, fault_free_sssp.values,
                               atol=1e-9)


def test_network_faults_slow_the_run_but_keep_it_correct(graph,
                                                         fault_free):
    plan = FaultPlan.single(NET_DROP, 2, node_id=1)
    clean, _ = run_algorithm(graph, NETWORK_RESILIENT)
    faulted, _ = run_algorithm(
        graph, NETWORK_RESILIENT.with_(fault_plan=plan))
    assert faulted.total_ms > clean.total_ms
    hit = [s for s in faulted.stats if s.retransmits]
    assert hit and all(s.net_wasted_ms > 0 for s in hit)


def test_node_partition_rolls_back_degrades_and_rebalances(graph,
                                                           fault_free):
    plan = FaultPlan.single(NODE_PARTITION, 3, node_id=1)
    result, plug = run_algorithm(
        graph, NETWORK_RESILIENT.with_(fault_plan=plan))
    assert np.abs(result.values - fault_free.values).max() < 1e-9
    assert result.rollbacks == 1
    assert result.degraded_nodes == [1]
    assert result.rebalance_events == 1
    assert result.rebalance_ms > 0
    assert result.wasted_ms > 0
    # stats stay contiguous after the rollback truncation
    assert [s.index for s in result.stats] == list(range(result.iterations))
    report = plug.fault_report(result)
    assert report.partition_verdicts == 1
    assert report.rebalance_events == 1
    assert not report.clean
    assert "rebalance" in report.summary()


def test_partition_without_degrade_reraises(graph):
    plan = FaultPlan.single(NODE_PARTITION, 1, node_id=0)
    config = NETWORK_RESILIENT.with_(fault_plan=plan,
                                     degrade_to_host=False,
                                     rebalance_on_degrade=False)
    cluster = make_cluster(NUM_NODES, gpus_per_node=1)
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    with pytest.raises(NodeUnreachable):
        engine.run(PageRank(), max_iterations=MAX_ITER)
    assert not plug.agent_for(0).degraded


def test_seeded_network_campaign_is_reproducible(graph):
    plan = FaultPlan.random(23, supersteps=MAX_ITER, num_nodes=NUM_NODES,
                            rate=0.3, kinds=NETWORK_KINDS)
    assert plan.events, "seed 23 must schedule at least one event"
    assert plan.requires_transport
    assert all(e.daemon_index == 0 for e in plan.events)
    config = NETWORK_RESILIENT.with_(fault_plan=plan)
    first, _ = run_algorithm(graph, config)
    second, _ = run_algorithm(graph, config)
    assert first.total_ms == second.total_ms          # bit-for-bit timing
    np.testing.assert_array_equal(first.values, second.values)


def test_network_plan_requires_resilient_transport(graph):
    plan = FaultPlan.single(NET_DROP, 0)
    with pytest.raises(MiddlewareError):
        RESILIENT.with_(fault_plan=plan)          # no transport configured


def test_fault_free_network_resilient_costs_nothing_extra(graph):
    """The transport's zero-overhead invariant, engine-level: with no
    network faults armed the NETWORK_RESILIENT stack is bit-identical in
    cost and values to the plain RESILIENT one."""
    plain, _ = run_algorithm(graph, RESILIENT)
    resilient, plug = run_algorithm(graph, NETWORK_RESILIENT)
    np.testing.assert_array_equal(resilient.values, plain.values)
    assert resilient.total_ms == plain.total_ms
    assert resilient.retransmits == 0
    assert resilient.net_wasted_ms == 0.0
    assert plug.fault_report(resilient).clean


def test_rebalanced_shares_shift_load_off_degraded_nodes():
    cluster = make_cluster(4, gpus_per_node=1)
    healthy = rebalanced_shares(cluster.nodes, [])
    degraded = rebalanced_shares(cluster.nodes, [2])
    assert healthy == pytest.approx([0.25] * 4)
    assert degraded[2] < 0.25                     # lost its accelerator
    assert degraded.sum() == pytest.approx(1.0)
    assert degraded[0] == degraded[1] == degraded[3]


# -- incremental (delta) checkpoints ---------------------------------------


def seeded_states(n=64, width=1, steps=6, seed=7):
    """A deterministic sequence of (values, active, changed) updates."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, width)) if width > 1 else rng.random(n)
    active = rng.random(n) < 0.5
    out = []
    for _ in range(steps):
        changed = np.unique(rng.integers(0, n, size=5))
        values = values.copy()
        values[changed] += 1.0
        active = active.copy()
        flips = np.unique(rng.integers(0, n, size=3))
        active[flips] = ~active[flips]
        out.append((values, active, changed))
    return out


@pytest.mark.parametrize("width", [1, 3])
@pytest.mark.parametrize("prefix", [1, 3, 6])
def test_delta_restore_matches_full_restore_bit_for_bit(width, prefix):
    delta_store = CheckpointStore(interval=1, full_every=8)
    full_store = CheckpointStore(interval=1)
    states = seeded_states(width=width)[:prefix]
    for i, (values, active, changed) in enumerate(states):
        delta_store.save(i, values, active, changed=changed)
        full_store.save(i, values, active)
    assert delta_store.delta_saves == prefix - 1  # first save is full
    assert full_store.delta_saves == 0
    d, f = delta_store.restore(), full_store.restore()
    assert d.iteration == f.iteration == prefix - 1
    np.testing.assert_array_equal(d.values, f.values)
    np.testing.assert_array_equal(d.active, f.active)


def test_delta_checkpoints_charge_only_cells_written():
    store = CheckpointStore(interval=1, ms_per_cell=1.0, fixed_ms=0.0)
    n = 100
    values = np.zeros(n)
    active = np.ones(n, dtype=bool)
    assert store.save(0, values, active, changed=np.arange(n)) == n
    values = values.copy()
    values[:4] = 1.0
    cost = store.save(1, values, active, changed=np.arange(4))
    assert cost == 4.0                            # 4 cells, not 100


def test_full_every_bounds_the_delta_chain():
    store = CheckpointStore(interval=1, full_every=2)
    n = 16
    values, active = np.zeros(n), np.ones(n, dtype=bool)
    for i in range(6):
        values = values.copy()
        values[i] = float(i + 1)
        store.save(i, values, active, changed=np.array([i]))
    # saves: full, delta, delta, full, delta, delta
    assert store.saves == 6
    assert store.delta_saves == 4
    assert len(store._checkpoints) == 2
    restored = store.restore()
    np.testing.assert_array_equal(restored.values, values)


def test_restore_after_rollback_forces_full_snapshot():
    store = CheckpointStore(interval=1)
    n = 8
    values, active = np.zeros(n), np.ones(n, dtype=bool)
    store.save(0, values, active, changed=np.arange(n))
    values = values.copy()
    values[0] = 1.0
    store.save(1, values, active, changed=np.array([0]))
    assert store.delta_saves == 1
    store.restore()
    store.save(2, values, active, changed=np.array([0]))
    assert store.delta_saves == 1                 # forced full, not delta
    assert store._checkpoints[-1].iteration == 2


def test_changed_none_keeps_the_full_snapshot_api():
    store = CheckpointStore(interval=2, keep=2)
    n = 8
    values, active = np.zeros(n), np.ones(n, dtype=bool)
    for i in (2, 4, 6):
        store.save(i, values, active)
    assert store.delta_saves == 0
    assert [c.iteration for c in store._checkpoints] == [4, 6]
    assert store.latest.iteration == store.latest_iteration == 6


def test_frontier_runs_actually_take_delta_checkpoints(graph,
                                                       fault_free_sssp):
    """SSSP's sparse frontiers are where incremental checkpoints pay:
    the checkpointed run must cost less than one paying full snapshots
    at every boundary, while restoring identically under a fault."""
    n = graph.num_vertices
    full = CheckpointStore(interval=1)
    delta = CheckpointStore(interval=1)
    rng = np.random.default_rng(3)
    values = rng.random(n)
    active = np.ones(n, dtype=bool)
    full_cost = full.save(1, values, active)
    sparse = np.unique(rng.integers(0, n, size=max(2, n // 50)))
    delta.save(0, values, active, changed=np.arange(n))
    values = values.copy()
    values[sparse] += 1.0
    delta_cost = delta.save(1, values, active, changed=sparse)
    assert delta_cost < full_cost
