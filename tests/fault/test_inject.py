"""Unit tests for fault plans, events, and the injector."""

import pytest

from repro.cluster import make_cluster
from repro.core import GXPlug, MiddlewareConfig
from repro.errors import FaultPlanError, MiddlewareError
from repro.fault import (
    CRASH,
    HANG,
    KINDS,
    MESSAGE_DELAY,
    MESSAGE_DROP,
    SHM_CORRUPTION,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)


def test_event_validation():
    with pytest.raises(FaultPlanError):
        FaultEvent(kind="meteor", superstep=0)
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=CRASH, superstep=-1)
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=CRASH, superstep=0, node_id=-2)
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=CRASH, superstep=0, repeat=0)
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=HANG, superstep=0, duration_ms=-1.0)
    with pytest.raises(FaultPlanError):
        FaultEvent(kind=MESSAGE_DROP, superstep=0, direction="sideways")


def test_plan_is_immutable_and_extendable():
    plan = FaultPlan.single(CRASH, 2)
    assert len(plan.events) == 1
    bigger = plan.with_events(FaultEvent(kind=HANG, superstep=4))
    assert len(plan.events) == 1            # original untouched
    assert len(bigger.events) == 2
    assert bigger.for_superstep(4)[0].kind == HANG
    assert bigger.for_superstep(3) == []


def test_requires_monitor_only_for_stall_kinds():
    assert not FaultPlan.single(CRASH, 0).requires_monitor
    assert not FaultPlan.single(SHM_CORRUPTION, 0).requires_monitor
    assert not FaultPlan.single(MESSAGE_DELAY, 0).requires_monitor
    assert FaultPlan.single(HANG, 0).requires_monitor
    assert FaultPlan.single(MESSAGE_DROP, 0).requires_monitor


def test_random_plan_deterministic_per_seed():
    kw = dict(supersteps=20, num_nodes=4, daemons_per_node=2, rate=0.2)
    assert FaultPlan.random(7, **kw) == FaultPlan.random(7, **kw)
    assert FaultPlan.random(7, **kw) != FaultPlan.random(8, **kw)
    plan = FaultPlan.random(7, **kw)
    for event in plan.events:
        assert event.kind in KINDS
        assert 0 <= event.superstep < 20
        assert 0 <= event.node_id < 4
        assert 0 <= event.daemon_index < 2


def test_random_plan_rate_bounds():
    assert FaultPlan.random(1, supersteps=10, num_nodes=2,
                            rate=0.0).events == ()
    dense = FaultPlan.random(1, supersteps=10, num_nodes=2, rate=1.0)
    assert len(dense.events) == 20
    with pytest.raises(FaultPlanError):
        FaultPlan.random(1, supersteps=10, num_nodes=2, rate=1.5)


def test_injector_validates_targets():
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    FaultInjector(FaultPlan.single(CRASH, 0, node_id=1)) \
        .validate_against(plug.agents)
    with pytest.raises(FaultPlanError):
        FaultInjector(FaultPlan.single(CRASH, 0, node_id=5)) \
            .validate_against(plug.agents)
    with pytest.raises(FaultPlanError):
        FaultInjector(FaultPlan.single(CRASH, 0, daemon_index=3)) \
            .validate_against(plug.agents)


def test_config_builds_and_validates_injector():
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster, MiddlewareConfig(
        fault_plan=FaultPlan.single(CRASH, 0)))
    assert plug.injector is not None
    with pytest.raises(FaultPlanError):
        GXPlug(make_cluster(2, gpus_per_node=1), MiddlewareConfig(
            fault_plan=FaultPlan.single(CRASH, 0, node_id=9)))


def test_stall_plan_requires_monitor_in_config():
    with pytest.raises(MiddlewareError):
        MiddlewareConfig(fault_plan=FaultPlan.single(HANG, 0))
    MiddlewareConfig(fault_plan=FaultPlan.single(HANG, 0),
                     monitor_heartbeats=True)


def test_arm_is_one_shot():
    """Events are consumed when armed, so a superstep re-executed after a
    rollback does not re-inject the same fault."""
    cluster = make_cluster(2, gpus_per_node=1)
    plug = GXPlug(cluster)
    injector = FaultInjector(FaultPlan.single(HANG, 3, duration_ms=9.0))
    assert injector.arm(0, plug.agents) == 0
    assert injector.arm(3, plug.agents) == 1
    assert plug.agents[0].daemons[0].pending_hang_ms == 9.0
    plug.agents[0].daemons[0].pending_hang_ms = None
    assert injector.arm(3, plug.agents) == 0    # consumed
    assert plug.agents[0].daemons[0].pending_hang_ms is None
    assert injector.injected == 1
    assert injector.injected_by_kind == {HANG: 1}


def test_arm_reaches_every_kind():
    cluster = make_cluster(1, gpus_per_node=1)
    plug = GXPlug(cluster)
    daemon = plug.agents[0].daemons[0]
    plan = FaultPlan(events=(
        FaultEvent(kind=CRASH, superstep=0, after_kernels=2, repeat=3),
        FaultEvent(kind=HANG, superstep=0, duration_ms=50.0),
        FaultEvent(kind=SHM_CORRUPTION, superstep=0),
        FaultEvent(kind=MESSAGE_DROP, superstep=0),
        FaultEvent(kind=MESSAGE_DELAY, superstep=0, duration_ms=4.0,
                   direction="to_daemon"),
    ))
    injector = FaultInjector(plan)
    assert injector.arm(0, plug.agents) == 5
    assert daemon.pending_crashes == 2
    assert daemon.crash_after_kernels == 2
    assert daemon.pending_hang_ms == 50.0
    assert "areas" in daemon.segment.corrupted_regions
    assert daemon.to_agent.drop_pending == 1
    assert daemon.to_daemon.delay_pending_ms == 4.0
    assert injector.injected == 5
    assert sorted(injector.injected_by_kind) == sorted(KINDS)
