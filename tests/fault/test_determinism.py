"""Determinism regression: the same fault seed replays bit-for-bit.

The whole simulator contract is that a seeded campaign is a pure
function of its inputs: two CLI runs with identical flags must emit
byte-identical trace JSON — values, simulated times, fault counters,
recovery bookkeeping, everything.  One representative kind per fault
family (daemon-edge crash, network drop, gray slowdown) keeps the
regression cheap while covering all three injection paths.
"""

import pytest

from repro.bench.trace import read_json
from repro.cli import main


def _trace(tmp_path, name, kind, seed=11, extra=()):
    path = tmp_path / name
    rc = main(["run", "--dataset", "wiki-topcats", "--nodes", "2",
               "--gpus", "2", "--max-iterations", "4",
               "--fault-seed", str(seed), "--fault-rate", "0.5",
               "--fault-kinds", kind,
               *extra,
               "--trace-json", str(path)])
    assert rc == 0
    return path


@pytest.mark.parametrize("kind", ["crash", "net_drop", "slowdown"])
def test_same_seed_same_trace_bytes(tmp_path, capsys, kind):
    first = _trace(tmp_path, "a.json", kind)
    second = _trace(tmp_path, "b.json", kind)
    capsys.readouterr()
    # the campaign actually injected something, else this proves nothing
    doc = read_json(first)
    assert doc["fault_campaign"]["events"] >= 1
    assert first.read_bytes() == second.read_bytes()


def test_topology_link_slow_trace_bytes(tmp_path, capsys):
    """Link gray-faults over a rack topology replay bit-for-bit too,
    and the resolved ClusterSpec is recorded in the trace."""
    extra = ("--topology", "rack:2x1")
    first = _trace(tmp_path, "a.json", "link_slow", extra=extra)
    second = _trace(tmp_path, "b.json", "link_slow", extra=extra)
    capsys.readouterr()
    doc = read_json(first)
    assert doc["fault_campaign"]["events"] >= 1
    assert doc["summary"]["link_slow_ms"] > 0
    assert doc["summary"]["cluster_spec"]["topology"] == "rack:2x1"
    assert first.read_bytes() == second.read_bytes()


def test_different_seeds_draw_different_campaigns(tmp_path, capsys):
    first = _trace(tmp_path, "a.json", "crash", seed=11)
    second = _trace(tmp_path, "b.json", "crash", seed=12)
    capsys.readouterr()
    a, b = read_json(first), read_json(second)
    assert a["fault_campaign"]["seed"] != b["fault_campaign"]["seed"]
