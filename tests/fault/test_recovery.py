"""End-to-end fault recovery: injected faults must not change results.

The acceptance bar: PageRank with an injected fault at superstep k
converges to the same ranks (within 1e-9) as the fault-free run, for
every fault kind, with deterministic seeds.
"""

import numpy as np
import pytest

from repro import (
    FULL,
    RESILIENT,
    GXPlug,
    PageRank,
    PowerGraphEngine,
    load_dataset,
    make_cluster,
)
from repro.engines import GraphXEngine
from repro.errors import (
    AcceleratorsExhausted,
    DaemonDead,
    DeviceFailure,
    FaultError,
    ReproError,
    RetryExhausted,
)
from repro.fault import (
    CRASH,
    HANG,
    MESSAGE_DELAY,
    MESSAGE_DROP,
    SHM_CORRUPTION,
    FaultPlan,
)

NUM_NODES = 2
MAX_ITER = 10


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wrn")


def run_pagerank(graph, config, engine_cls=PowerGraphEngine):
    cluster = make_cluster(NUM_NODES, gpus_per_node=1)
    plug = GXPlug(cluster, config)
    engine = engine_cls.build(graph, cluster, middleware=plug)
    result = engine.run(PageRank(), max_iterations=MAX_ITER)
    return result, plug


@pytest.fixture(scope="module")
def fault_free(graph):
    result, _ = run_pagerank(graph, FULL)
    return result


@pytest.mark.parametrize("kind,kwargs,config", [
    (CRASH, dict(after_kernels=1), FULL),
    (CRASH, dict(after_kernels=0, node_id=1), FULL),
    (HANG, dict(duration_ms=100.0), RESILIENT),
    (SHM_CORRUPTION, dict(), FULL),
    (MESSAGE_DROP, dict(direction="to_agent"), RESILIENT),
    (MESSAGE_DROP, dict(direction="to_daemon"), RESILIENT),
    (MESSAGE_DELAY, dict(duration_ms=5.0), FULL),
])
@pytest.mark.parametrize("superstep", [0, 3])
def test_single_fault_converges_to_fault_free_ranks(
        graph, fault_free, kind, kwargs, config, superstep):
    plan = FaultPlan.single(kind, superstep, **kwargs)
    result, plug = run_pagerank(graph, config.with_(fault_plan=plan))
    assert result.converged == fault_free.converged
    assert np.abs(result.values - fault_free.values).max() < 1e-9
    report = plug.fault_report(result)
    assert report.faults_injected == 1
    assert report.injected_by_kind == {kind: 1}
    if kind == MESSAGE_DELAY:
        # transient: latency only, no recovery machinery involved
        assert report.retries == 0
        assert report.daemon_respawns == 0
    else:
        assert report.retries >= 1
        assert report.recovered_passes >= 1
        assert report.daemon_respawns >= 1
    if kind in (HANG, MESSAGE_DROP):
        assert report.heartbeat_verdicts >= 1
    assert not report.degraded_nodes


def test_faults_slow_the_run_but_keep_it_correct(graph, fault_free):
    plan = FaultPlan.single(CRASH, 2)
    result, _ = run_pagerank(graph, FULL.with_(fault_plan=plan))
    assert result.total_ms > fault_free.total_ms
    hit = [s for s in result.stats if s.faults_injected]
    assert len(hit) == 1 and hit[0].index == 2
    assert hit[0].retries >= 1 and hit[0].recoveries >= 1


def test_recovery_on_graphx_engine_too(graph):
    base, _ = run_pagerank(graph, FULL, engine_cls=GraphXEngine)
    plan = FaultPlan.single(CRASH, 1)
    result, plug = run_pagerank(graph, FULL.with_(fault_plan=plan),
                                engine_cls=GraphXEngine)
    assert np.abs(result.values - base.values).max() < 1e-9
    assert plug.fault_report(result).recovered_passes >= 1


def test_seeded_random_plan_is_reproducible(graph):
    plan = FaultPlan.random(11, supersteps=MAX_ITER, num_nodes=NUM_NODES,
                            rate=0.15, hang_ms=60.0)
    assert plan.events, "seed 11 must schedule at least one event"
    config = RESILIENT.with_(fault_plan=plan)
    first, _ = run_pagerank(graph, config)
    second, _ = run_pagerank(graph, config)
    assert first.total_ms == second.total_ms          # bit-for-bit timing
    np.testing.assert_array_equal(first.values, second.values)


def test_exhausted_retries_degrade_node_and_roll_back(graph, fault_free):
    plan = FaultPlan.single(CRASH, 4, repeat=10)      # outlives the budget
    result, plug = run_pagerank(graph, RESILIENT.with_(fault_plan=plan))
    assert result.rollbacks == 1
    assert result.degraded_nodes == [0]
    assert result.wasted_ms > 0
    assert np.abs(result.values - fault_free.values).max() < 1e-9
    # stats stay contiguous after the rollback truncation
    assert [s.index for s in result.stats] == list(range(result.iterations))
    report = plug.fault_report(result)
    assert report.rollbacks == 1
    assert report.degraded_nodes == [0]
    assert not report.clean
    assert "degraded" in report.summary()


def test_checkpoints_bound_the_rollback_distance(graph):
    """With periodic checkpoints the run rolls back to the last saved
    superstep, not to iteration 0 — strictly less work is discarded."""
    plan = FaultPlan.single(CRASH, 5, repeat=10)
    with_ckpt, _ = run_pagerank(graph, RESILIENT.with_(fault_plan=plan))
    without_ckpt, _ = run_pagerank(
        graph, RESILIENT.with_(fault_plan=plan, checkpoint_interval=0))
    assert with_ckpt.rollbacks == without_ckpt.rollbacks == 1
    assert with_ckpt.wasted_ms < without_ckpt.wasted_ms
    np.testing.assert_allclose(with_ckpt.values, without_ckpt.values,
                               atol=1e-9)
    assert sum(s.checkpoint_ms for s in with_ckpt.stats) > 0
    assert sum(s.checkpoint_ms for s in without_ckpt.stats) == 0


def test_exhaustion_without_degrade_reraises(graph):
    plan = FaultPlan.single(CRASH, 1, repeat=10)
    cluster = make_cluster(NUM_NODES, gpus_per_node=1)
    plug = GXPlug(cluster, FULL.with_(fault_plan=plan))
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    with pytest.raises(DeviceFailure):
        engine.run(PageRank(), max_iterations=MAX_ITER)
    assert not plug.agent_for(0).degraded


def test_fault_free_resilient_run_pays_only_checkpoints(graph, fault_free):
    """Monitoring is free (heartbeats ride on protocol messages); the
    enabled fault-tolerance path costs exactly the periodic snapshots."""
    result, plug = run_pagerank(graph, RESILIENT)
    np.testing.assert_array_equal(result.values, fault_free.values)
    checkpoint_ms = sum(s.checkpoint_ms for s in result.stats)
    assert checkpoint_ms > 0
    assert result.total_ms - fault_free.total_ms == pytest.approx(
        checkpoint_ms, abs=1e-6)
    assert plug.fault_report(result).clean


def test_daemon_respawn_rebuilds_segment_and_channels(graph):
    cluster = make_cluster(1, gpus_per_node=1)
    plug = GXPlug(cluster)
    daemon = plug.agents[0].daemons[0]
    daemon.segment.corrupt("areas")
    old_channel = daemon.to_agent
    daemon.respawn()
    daemon.verify_segment()                   # fresh segment is clean
    assert daemon.segment.get("areas") is daemon.areas
    assert daemon.to_agent is not old_channel
    assert daemon.respawns == 1
    assert not daemon.accelerator.initialized  # pays re-init next pass


def test_fault_errors_subclass_the_repro_hierarchy():
    assert issubclass(FaultError, ReproError)
    assert issubclass(DaemonDead, FaultError)
    assert issubclass(RetryExhausted, FaultError)
    assert issubclass(AcceleratorsExhausted, RetryExhausted)
    err = DaemonDead("gone", daemon_id=3, silent_ms=7.5)
    assert err.daemon_id == 3 and err.silent_ms == 7.5
    exhausted = AcceleratorsExhausted("dead node", node_id=2)
    assert exhausted.node_id == 2
