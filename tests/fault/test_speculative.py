"""Speculative checkpointing: delta writes hide in compute windows.

With ``speculative_checkpoint=True`` a *delta* snapshot issued behind the
superstep barrier overlaps the next superstep's compute window; only its
overflow (a write longer than the window) is charged.  Full snapshots
stay synchronous.  The feature is pure accounting: vertex values,
iteration counts, and recovery behaviour must be bit-identical to the
synchronous-charging run.
"""

import numpy as np
import pytest

from repro import (
    RESILIENT,
    GXPlug,
    MultiSourceSSSP,
    PageRank,
    PowerGraphEngine,
    load_dataset,
    make_cluster,
)
from repro.core import MiddlewareConfig
from repro.errors import MiddlewareError
from repro.fault import CRASH, FaultPlan

NUM_NODES = 2
MAX_ITER = 10

#: every superstep checkpoints, so frontier supersteps write deltas
CKPT = RESILIENT.with_(checkpoint_interval=1)
SPEC = CKPT.with_(speculative_checkpoint=True)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wrn")


def run(graph, config, alg=None):
    cluster = make_cluster(NUM_NODES, gpus_per_node=1)
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    algorithm = alg if alg is not None else MultiSourceSSSP(sources=(0, 1))
    return engine.run(algorithm, max_iterations=MAX_ITER)


def test_requires_checkpointing():
    with pytest.raises(MiddlewareError):
        MiddlewareConfig(speculative_checkpoint=True)


def test_hides_delta_cost_without_changing_results(graph):
    plain = run(graph, CKPT)
    spec = run(graph, SPEC)
    np.testing.assert_array_equal(spec.values, plain.values)
    assert spec.iterations == plain.iterations
    assert spec.converged == plain.converged
    # some delta write found a compute window to hide in ...
    assert spec.checkpoint_hidden_ms > 0
    # ... and the hidden cost is exactly the simulated-time saving
    assert spec.total_ms + spec.checkpoint_hidden_ms == pytest.approx(
        plain.total_ms, abs=1e-9)
    assert spec.total_ms < plain.total_ms


def test_accounting_conserved_on_dense_algorithm(graph):
    """PageRank starts with full snapshots (every vertex changes) and
    shifts to deltas as convergence shrinks the changed set; whatever the
    mix, the hidden cost is exactly the simulated-time saving."""
    plain = run(graph, CKPT, alg=PageRank())
    spec = run(graph, SPEC, alg=PageRank())
    np.testing.assert_array_equal(spec.values, plain.values)
    assert spec.total_ms + spec.checkpoint_hidden_ms == pytest.approx(
        plain.total_ms, abs=1e-9)


def test_off_by_default(graph):
    result = run(graph, CKPT)
    assert result.checkpoint_hidden_ms == 0


def test_rollback_lands_in_flight_delta_and_stays_correct(graph):
    """A rollback must not lose the speculative in-flight delta: the
    restore replays it, so the run stays bit-identical to the
    synchronous-charging run under the same fault plan, and the charged
    time still differs by exactly the hidden cost."""
    plan = FaultPlan.single(CRASH, 4, repeat=10)  # outlives retry budget
    plain = run(graph, CKPT.with_(fault_plan=plan))
    spec = run(graph, SPEC.with_(fault_plan=plan))
    assert spec.rollbacks == plain.rollbacks == 1
    np.testing.assert_array_equal(spec.values, plain.values)
    assert spec.iterations == plain.iterations
    assert spec.checkpoint_hidden_ms > 0
    assert spec.total_ms + spec.checkpoint_hidden_ms == pytest.approx(
        plain.total_ms, abs=1e-9)
