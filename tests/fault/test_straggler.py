"""Gray-failure tolerance: straggler detection, speculation, re-estimation.

Three layers under test:

* the :class:`~repro.fault.straggler.StragglerDetector` unit — EWMA
  inflation, median-relative flagging with patience, auto-unflag;
* the gray fault kinds (``slowdown`` / ``shm_slow`` / ``flaky_slowdown``)
  injected end to end — values must stay bit-identical to the clean run
  (slowdowns inflate *simulated durations*, never computed values);
* the responses — speculative block re-execution and online Lemma-2
  re-estimation — which must recover makespan without corrupting values
  beyond the 1e-9 repartition-regrouping tolerance.
"""

import numpy as np
import pytest

from repro import (
    RESILIENT,
    GXPlug,
    PageRank,
    PowerGraphEngine,
    StragglerConfig,
    StragglerDetector,
    load_dataset,
    make_cluster,
)
from repro.errors import MiddlewareError, SimulationError, StragglerVerdict
from repro.fault import (
    FLAKY_SLOWDOWN,
    GRAY_KINDS,
    PHASES,
    SHM_SLOW,
    SLOWDOWN,
    FaultPlan,
)
from repro.fault.report import FaultReport

NUM_NODES = 2
MAX_ITER = 6


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wiki-topcats")


def run_pagerank(graph, config, gpus=2):
    cluster = make_cluster(NUM_NODES, gpus_per_node=gpus)
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    result = engine.run(PageRank(), max_iterations=MAX_ITER)
    return result, plug


# ---------------------------------------------------------------------------
# detector unit
# ---------------------------------------------------------------------------

def test_detector_validation():
    with pytest.raises(SimulationError):
        StragglerDetector(ratio=1.0)
    with pytest.raises(SimulationError):
        StragglerDetector(patience=0)
    with pytest.raises(SimulationError):
        StragglerDetector(alpha=0.0)
    with pytest.raises(SimulationError):
        StragglerDetector(alpha=1.5)


def test_detector_rejects_unknown_phase():
    det = StragglerDetector()
    with pytest.raises(SimulationError):
        det.observe(0, "upload", 10, 1.0, 1.0)


def test_healthy_observations_never_flag():
    det = StragglerDetector(ratio=3.0, patience=2)
    for _ in range(20):
        for daemon in range(4):
            assert det.observe(daemon, "compute", 100, 5.0, 5.0) is None
    assert det.flagged == []
    assert det.observations == 80
    assert det.inflation(0, "compute") == pytest.approx(1.0)


def test_degenerate_observations_are_skipped():
    det = StragglerDetector()
    assert det.observe(0, "compute", 0, 5.0, 5.0) is None
    assert det.observe(0, "compute", 10, 5.0, 0.0) is None
    assert det.observations == 0


def test_flag_after_patience_with_verdict_fields():
    det = StragglerDetector(ratio=3.0, patience=3, alpha=1.0)
    # three healthy peers pin the median at 1.0
    for daemon in (1, 2, 3):
        det.observe(daemon, "compute", 100, 5.0, 5.0)
    verdicts = [det.observe(0, "compute", 100, 20.0, 5.0)
                for _ in range(3)]
    assert verdicts[0] is None and verdicts[1] is None
    v = verdicts[2]
    assert isinstance(v, StragglerVerdict)
    assert v.daemon_id == 0
    assert v.phase == "compute"
    assert v.inflation == pytest.approx(4.0)
    assert v.median == pytest.approx(1.0)
    assert v.streak == 3
    assert det.is_straggler(0)
    assert det.flagged == [0]
    # already flagged: no duplicate verdict on further slow blocks
    assert det.observe(0, "compute", 100, 20.0, 5.0) is None
    assert len(det.verdicts) == 1


def test_median_floor_judges_fast_cluster_against_cost_model():
    det = StragglerDetector()
    det.observe(0, "transfer", 10, 0.5, 1.0)   # faster than modelled
    assert det.median_inflation("transfer") == 1.0
    assert det.relative_inflation(0, "transfer") == pytest.approx(0.5)
    assert det.relative_inflation(9, "transfer") == 1.0  # unobserved


def test_unflag_after_healthy_streak_counts_recovery():
    det = StragglerDetector(ratio=3.0, patience=2, alpha=1.0)
    for daemon in (1, 2, 3):
        det.observe(daemon, "compute", 100, 5.0, 5.0)
    for _ in range(2):
        det.observe(0, "compute", 100, 20.0, 5.0)
    assert det.is_straggler(0)
    det.observe(0, "compute", 100, 5.0, 5.0)
    assert det.is_straggler(0)            # one healthy block is not enough
    det.observe(0, "compute", 100, 5.0, 5.0)
    assert not det.is_straggler(0)
    assert det.recoveries == 1


def test_clear_voids_history():
    det = StragglerDetector(ratio=2.0, patience=1, alpha=1.0)
    for daemon in (1, 2, 3):
        det.observe(daemon, "compute", 100, 5.0, 5.0)
    det.observe(0, "compute", 100, 50.0, 5.0)
    assert det.is_straggler(0)
    det.clear(0)
    assert not det.is_straggler(0)
    assert det.inflation(0, "compute") == 1.0


def test_overrun_and_speculation_counters():
    det = StragglerDetector()
    det.note_overrun(0, "compute", leased_ms=50.0, budget_ms=10.0)
    det.record_win(3.5)
    det.record_loss(1.5)
    assert det.budget_overruns == 1
    assert det.speculative_wins == 1
    assert det.speculative_losses == 1
    assert det.speculative_wasted_ms == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# report semantics (satellite: FaultReport.clean)
# ---------------------------------------------------------------------------

def test_report_clean_ignores_passive_observation():
    # watching is free: overruns and coefficient updates never dirty a run
    assert FaultReport(budget_overruns=4, coeff_updates=12).clean


@pytest.mark.parametrize("dirty", [
    dict(straggler_verdicts=1),
    dict(speculative_wins=1),
    dict(speculative_losses=1),
    dict(online_rebalances=1),
    dict(heartbeat_verdicts=1),
    dict(daemon_respawns=1),
    dict(rebalance_events=1),
])
def test_report_responses_dirty_the_run(dirty):
    report = FaultReport(**dirty)
    assert not report.clean
    assert report.summary() != \
        "fault report: clean run (no faults, no recoveries)"


def test_report_summary_mentions_gray_layer():
    report = FaultReport(straggler_verdicts=2, straggler_recoveries=1,
                         speculative_wins=1, online_rebalances=1,
                         coeff_updates=8)
    assert "gray:" in report.summary()
    assert "1W/0L" in report.summary()


# ---------------------------------------------------------------------------
# injection end to end
# ---------------------------------------------------------------------------

def test_detection_is_free_on_clean_runs(graph):
    off, _ = run_pagerank(graph, RESILIENT.with_(
        straggler=StragglerConfig()))
    on, plug = run_pagerank(graph, RESILIENT.with_(
        straggler=StragglerConfig(enabled=True, speculate=True,
                                  reestimate=True)))
    assert np.array_equal(on.values, off.values)
    assert on.total_ms == off.total_ms
    assert on.straggler_verdicts == 0
    assert plug.fault_report(on).clean


@pytest.mark.parametrize("kind", GRAY_KINDS)
def test_gray_kinds_slow_but_never_corrupt(graph, kind):
    clean, _ = run_pagerank(graph, RESILIENT.with_(
        straggler=StragglerConfig()))
    plan = FaultPlan.single(kind, 1, node_id=0, daemon_index=0,
                            factor=4.0, passes=4)
    slow, plug = run_pagerank(graph, RESILIENT.with_(
        fault_plan=plan, straggler=StragglerConfig()))
    # durations inflate, values do not
    assert np.array_equal(slow.values, clean.values)
    assert slow.total_ms > clean.total_ms
    assert plug.injector.injected == 1


def test_slowdown_with_responses_recovers_makespan(graph):
    clean, _ = run_pagerank(graph, RESILIENT.with_(
        straggler=StragglerConfig()))
    plan = FaultPlan.single(SLOWDOWN, 1, node_id=0, daemon_index=0,
                            factor=4.0, passes=4)
    off, _ = run_pagerank(graph, RESILIENT.with_(
        fault_plan=plan, straggler=StragglerConfig()))
    on, plug = run_pagerank(graph, RESILIENT.with_(
        fault_plan=plan,
        straggler=StragglerConfig(enabled=True, speculate=True,
                                  reestimate=True)))
    # mid-run repartition regroups floating-point merges: 1e-9, like
    # the existing degradation-rebalance path
    assert np.allclose(on.values, clean.values, atol=1e-9)
    assert on.straggler_verdicts >= 1
    assert on.total_ms < off.total_ms
    report = plug.fault_report(on)
    assert not report.clean
    assert "gray:" in report.summary()


def test_speculate_config_requires_detection():
    with pytest.raises(MiddlewareError):
        StragglerConfig(speculate=True)
    with pytest.raises(MiddlewareError):
        StragglerConfig(reestimate=True)


def test_phases_constant():
    assert PHASES == ("compute", "transfer")
    assert set(GRAY_KINDS) == {SLOWDOWN, SHM_SLOW, FLAKY_SLOWDOWN}
