"""Unit tests for superstep checkpointing."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.fault import CheckpointStore


def test_validation():
    with pytest.raises(CheckpointError):
        CheckpointStore(0)
    with pytest.raises(CheckpointError):
        CheckpointStore(2, ms_per_cell=-1.0)
    with pytest.raises(CheckpointError):
        CheckpointStore(2, keep=0)


def test_due_schedule():
    store = CheckpointStore(3)
    assert [i for i in range(1, 10) if store.due(i)] == [3, 6, 9]


def test_save_charges_cost_model():
    store = CheckpointStore(2, ms_per_cell=0.01, fixed_ms=1.0)
    values = np.zeros((50, 2))
    cost = store.save(2, values, np.ones(50, dtype=bool))
    assert cost == pytest.approx(1.0 + 0.01 * 100)
    assert store.saves == 1
    assert store.total_checkpoint_ms == pytest.approx(cost)


def test_snapshots_are_isolated_copies():
    store = CheckpointStore(1)
    values = np.arange(6, dtype=float).reshape(3, 2)
    active = np.array([True, False, True])
    store.save(1, values, active)
    values[:] = -1.0                          # mutate after snapshot
    active[:] = False
    ckpt = store.restore()
    assert ckpt.iteration == 1
    np.testing.assert_array_equal(
        ckpt.values, np.arange(6, dtype=float).reshape(3, 2))
    np.testing.assert_array_equal(ckpt.active, [True, False, True])
    # restored arrays are themselves fresh copies
    ckpt.values[:] = 99.0
    np.testing.assert_array_equal(store.restore().values,
                                  np.arange(6, dtype=float).reshape(3, 2))
    assert store.restores == 2


def test_restore_charges_readback_cost():
    store = CheckpointStore(1, ms_per_cell=0.1, fixed_ms=2.0)
    store.save(4, np.zeros(10), np.zeros(10, dtype=bool))
    ckpt = store.restore()
    assert ckpt.cost_ms == pytest.approx(2.0 + 0.1 * 10)


def test_keep_limit_retains_newest():
    store = CheckpointStore(1, keep=2)
    for i in range(1, 6):
        store.save(i, np.full(4, float(i)), np.zeros(4, dtype=bool))
    assert store.latest.iteration == 5
    assert store.saves == 5
    # only the two newest survive; restore sees the newest
    assert store.restore().iteration == 5
    assert len(store._checkpoints) == 2


def test_restore_before_save_raises():
    store = CheckpointStore(2)
    assert store.latest is None
    with pytest.raises(CheckpointError):
        store.restore()
