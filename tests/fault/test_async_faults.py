"""Fault injection on the asynchronous engine.

The fault-tolerance machinery (retry, respawn, heartbeat watchdog,
checkpoint rollback) lives below the computation model, so the
AsyncEngine's combined supersteps must recover exactly like the BSP
engines: an injected fault changes timing, never values.
"""

import numpy as np
import pytest

from repro import (
    FULL,
    RESILIENT,
    GXPlug,
    MultiSourceSSSP,
    make_cluster,
)
from repro.engines import AsyncEngine
from repro.errors import DeviceFailure
from repro.fault import (
    CRASH,
    HANG,
    MESSAGE_DELAY,
    MESSAGE_DROP,
    SHM_CORRUPTION,
    FaultPlan,
)
from repro.graph import rmat

GRAPH = rmat(256, 2048, seed=23)
NUM_NODES = 2


def run_sssp(config):
    cluster = make_cluster(NUM_NODES, gpus_per_node=1)
    plug = GXPlug(cluster, config)
    engine = AsyncEngine.build(GRAPH, cluster, middleware=plug)
    result = engine.run(MultiSourceSSSP(sources=(0, 1)))
    return result, plug


@pytest.fixture(scope="module")
def fault_free():
    result, _ = run_sssp(FULL)
    return result


@pytest.mark.parametrize("kind,kwargs,config", [
    (CRASH, dict(after_kernels=1), FULL),
    (SHM_CORRUPTION, dict(), FULL),
    (MESSAGE_DELAY, dict(duration_ms=5.0), FULL),
    (HANG, dict(duration_ms=100.0), RESILIENT),
    (MESSAGE_DROP, dict(direction="to_agent"), RESILIENT),
])
def test_async_single_fault_matches_fault_free(fault_free, kind, kwargs,
                                               config):
    plan = FaultPlan.single(kind, 1, **kwargs)
    result, plug = run_sssp(config.with_(fault_plan=plan))
    assert np.allclose(result.values, fault_free.values, equal_nan=True)
    assert result.iterations == fault_free.iterations
    report = plug.fault_report(result)
    assert report.faults_injected == 1
    if kind != MESSAGE_DELAY:
        assert report.retries >= 1
        assert report.recovered_passes >= 1


def test_async_fault_slows_run_but_converges(fault_free):
    plan = FaultPlan.single(CRASH, 0)
    result, _ = run_sssp(FULL.with_(fault_plan=plan))
    assert result.total_ms > fault_free.total_ms
    assert np.allclose(result.values, fault_free.values, equal_nan=True)


def test_async_exhausted_retries_degrade_and_roll_back(fault_free):
    plan = FaultPlan.single(CRASH, 2, repeat=10)  # outlives retry budget
    result, plug = run_sssp(RESILIENT.with_(fault_plan=plan))
    assert result.rollbacks == 1
    assert result.degraded_nodes == [0]
    assert np.allclose(result.values, fault_free.values, equal_nan=True)
    assert plug.fault_report(result).degraded_nodes == [0]


def test_async_exhaustion_without_degrade_reraises():
    plan = FaultPlan.single(CRASH, 1, repeat=10)
    with pytest.raises(DeviceFailure):
        run_sssp(FULL.with_(fault_plan=plan))


def test_async_seeded_random_plan_is_reproducible():
    plan = FaultPlan.random(7, supersteps=8, num_nodes=NUM_NODES,
                            rate=0.2, hang_ms=60.0)
    assert plan.events, "seed 7 must schedule at least one event"
    config = RESILIENT.with_(fault_plan=plan)
    first, _ = run_sssp(config)
    second, _ = run_sssp(config)
    assert first.total_ms == second.total_ms
    np.testing.assert_array_equal(first.values, second.values)
