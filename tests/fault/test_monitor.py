"""Unit tests for heartbeat monitoring and the watchdog process."""

import pytest

from repro.errors import DaemonDead, SimulationError
from repro.fault import HeartbeatMonitor
from repro.ipc import Scheduler, Sleep


def test_monitor_validation():
    with pytest.raises(SimulationError):
        HeartbeatMonitor(0.0, 10.0)
    with pytest.raises(SimulationError):
        HeartbeatMonitor(2.0, 1.0)     # timeout < interval


def test_register_beat_and_silence():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(7, now=10.0)
    assert mon.tracked == 1
    assert mon.silent_ms(7, now=12.0) == 2.0
    mon.beat(7, now=12.0)
    assert mon.silent_ms(7, now=12.0) == 0.0
    mon.check(now=17.0)                # exactly at timeout: still fine
    with pytest.raises(DaemonDead) as ei:
        mon.check(now=17.1)
    assert ei.value.daemon_id == 7
    assert ei.value.silent_ms == pytest.approx(5.1)
    assert mon.verdicts == 1


def test_untracked_beats_are_ignored():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.beat(3, now=0.0)               # never registered
    assert mon.tracked == 0
    assert mon.beats == 0
    assert mon.silent_ms(3, now=100.0) == 0.0
    mon.check(now=100.0)               # nothing to verdict


def test_busy_lease_extends_deadline():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.beat(0, now=0.0, busy_until=40.0)   # long legitimate kernel
    mon.check(now=44.0)                      # silent but leased
    with pytest.raises(DaemonDead):
        mon.check(now=45.1)                  # lease + timeout exceeded


def test_beats_never_move_deadline_backwards():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.beat(0, now=0.0, busy_until=40.0)
    mon.beat(0, now=3.0)                     # plain beat during the lease
    mon.check(now=44.0)                      # lease still in force


def test_forget_stops_tracking():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.forget(0)
    assert mon.tracked == 0
    mon.check(now=100.0)


def test_check_reports_first_dead_daemon_deterministically():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(4, now=0.0)
    mon.register(1, now=0.0)
    with pytest.raises(DaemonDead) as ei:
        mon.check(now=10.0)
    assert ei.value.daemon_id == 1           # sorted order


def test_watchdog_raises_on_unleased_silence():
    sched = Scheduler()
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, sched.clock.now)

    def victim():
        yield Sleep(50.0)                    # silent, no lease declared

    sched.spawn(victim(), name="victim")
    sched.spawn(mon.watchdog(), name="watchdog", daemon=True)
    with pytest.raises(DaemonDead) as ei:
        sched.run()
    assert ei.value.daemon_id == 0
    # detection latency is bounded by timeout + one wake period
    assert 5.0 < ei.value.silent_ms <= 6.0


def test_watchdog_quiet_when_waits_are_leased():
    sched = Scheduler()
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, sched.clock.now)

    def worker():
        mon.beat(0, 0.0, busy_until=50.0)    # declared busy window
        yield Sleep(50.0)

    sched.spawn(worker(), name="worker")
    sched.spawn(mon.watchdog(), name="watchdog", daemon=True)
    sched.run()                              # no verdict
    assert mon.verdicts == 0
