"""Unit tests for heartbeat monitoring and the watchdog process."""

import pytest

from repro.errors import DaemonDead, SimulationError
from repro.fault import HeartbeatMonitor
from repro.ipc import Scheduler, Sleep


def test_monitor_validation():
    with pytest.raises(SimulationError):
        HeartbeatMonitor(0.0, 10.0)
    with pytest.raises(SimulationError):
        HeartbeatMonitor(2.0, 1.0)     # timeout < interval


def test_register_beat_and_silence():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(7, now=10.0)
    assert mon.tracked == 1
    assert mon.silent_ms(7, now=12.0) == 2.0
    mon.beat(7, now=12.0)
    assert mon.silent_ms(7, now=12.0) == 0.0
    mon.check(now=17.0)                # exactly at timeout: still fine
    with pytest.raises(DaemonDead) as ei:
        mon.check(now=17.1)
    assert ei.value.daemon_id == 7
    assert ei.value.silent_ms == pytest.approx(5.1)
    assert mon.verdicts == 1


def test_untracked_beats_are_ignored():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.beat(3, now=0.0)               # never registered
    assert mon.tracked == 0
    assert mon.beats == 0
    assert mon.silent_ms(3, now=100.0) == 0.0
    mon.check(now=100.0)               # nothing to verdict


def test_busy_lease_extends_deadline():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.beat(0, now=0.0, busy_until=40.0)   # long legitimate kernel
    mon.check(now=44.0)                      # silent but leased
    with pytest.raises(DaemonDead):
        mon.check(now=45.1)                  # lease + timeout exceeded


def test_beats_never_move_deadline_backwards():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.beat(0, now=0.0, busy_until=40.0)
    mon.beat(0, now=3.0)                     # plain beat during the lease
    mon.check(now=44.0)                      # lease still in force


def test_forget_stops_tracking():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.forget(0)
    assert mon.tracked == 0
    mon.check(now=100.0)


def test_check_reports_first_dead_daemon_deterministically():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(4, now=0.0)
    mon.register(1, now=0.0)
    with pytest.raises(DaemonDead) as ei:
        mon.check(now=10.0)
    assert ei.value.daemon_id == 1           # sorted order


def test_watchdog_raises_on_unleased_silence():
    sched = Scheduler()
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, sched.clock.now)

    def victim():
        yield Sleep(50.0)                    # silent, no lease declared

    sched.spawn(victim(), name="victim")
    sched.spawn(mon.watchdog(), name="watchdog", daemon=True)
    with pytest.raises(DaemonDead) as ei:
        sched.run()
    assert ei.value.daemon_id == 0
    # detection latency is bounded by timeout + one wake period
    assert 5.0 < ei.value.silent_ms <= 6.0


def test_watchdog_quiet_when_waits_are_leased():
    sched = Scheduler()
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, sched.clock.now)

    def worker():
        mon.beat(0, 0.0, busy_until=50.0)    # declared busy window
        yield Sleep(50.0)

    sched.spawn(worker(), name="worker")
    sched.spawn(mon.watchdog(), name="watchdog", daemon=True)
    sched.run()                              # no verdict
    assert mon.verdicts == 0


# ---------------------------------------------------------------------------
# per-phase deadline budgets (gray-failure layer)
# ---------------------------------------------------------------------------

def test_beat_on_unregistered_daemon_keeps_no_state():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.beat(9, now=0.0, busy_until=50.0, phase="compute")
    assert mon.tracked == 0
    assert mon.beats == 0
    assert mon.budget_overruns == 0
    # the flat timeout applies to a daemon the monitor never saw
    assert mon.allowed_silence_ms(9) == 5.0
    mon.check(now=1000.0)                    # nothing to verdict


def test_set_budgets_validates_positive():
    mon = HeartbeatMonitor(1.0, 5.0)
    with pytest.raises(SimulationError):
        mon.set_budgets(0, {"compute": 0.0})
    with pytest.raises(SimulationError):
        mon.set_budgets(0, {"download": -1.0})


def test_phase_budget_refines_allowed_silence():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.set_budgets(0, {"compute": 20.0, "upload": 2.0})
    assert mon.allowed_silence_ms(0) == 5.0  # between phases: flat
    mon.beat(0, now=0.0, phase="compute")
    assert mon.allowed_silence_ms(0) == 20.0
    mon.check(now=19.0)                      # inside the compute budget
    with pytest.raises(DaemonDead):
        mon.check(now=20.1)
    # a phase with no installed budget falls back to the flat timeout
    mon2 = HeartbeatMonitor(1.0, 5.0)
    mon2.register(0, now=0.0)
    mon2.set_budgets(0, {"compute": 20.0})
    mon2.beat(0, now=0.0, phase="download")
    assert mon2.allowed_silence_ms(0) == 5.0


def test_bare_beat_clears_declared_phase():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.set_budgets(0, {"compute": 50.0})
    mon.beat(0, now=0.0, phase="compute")
    mon.beat(0, now=1.0)                     # protocol progress, no phase
    assert mon.allowed_silence_ms(0) == 5.0
    with pytest.raises(DaemonDead):
        mon.check(now=6.1)


def test_lease_past_budget_counts_soft_overrun():
    class _Spy:
        def __init__(self):
            self.calls = []

        def note_overrun(self, daemon_id, phase, leased, budget):
            self.calls.append((daemon_id, phase, leased, budget))

    spy = _Spy()
    mon = HeartbeatMonitor(1.0, 5.0, detector=spy)
    mon.register(0, now=0.0)
    mon.set_budgets(0, {"compute": 10.0})
    mon.beat(0, now=0.0, busy_until=8.0, phase="compute")
    assert mon.budget_overruns == 0          # within budget
    mon.beat(0, now=8.0, busy_until=48.0, phase="compute")
    assert mon.budget_overruns == 1          # alive, but 4x the budget
    assert spy.calls == [(0, "compute", 40.0, 10.0)]
    # the overrun is soft: the lease still protects against a verdict
    mon.check(now=48.0)


def test_forget_drops_budget_state():
    mon = HeartbeatMonitor(1.0, 5.0)
    mon.register(0, now=0.0)
    mon.set_budgets(0, {"compute": 20.0})
    mon.beat(0, now=0.0, phase="compute")
    mon.forget(0)
    assert mon.allowed_silence_ms(0) == 5.0
    mon.check(now=1000.0)


# ---------------------------------------------------------------------------
# CollectiveMonitor edge cases
# ---------------------------------------------------------------------------

def test_collective_monitor_validation():
    from repro.fault import CollectiveMonitor
    with pytest.raises(SimulationError):
        CollectiveMonitor(0.0)


def test_collective_expect_ack_cycle():
    from repro.fault import CollectiveMonitor
    mon = CollectiveMonitor(2.0)
    mon.expect(1, now=10.0)
    assert mon.pending == 1
    assert not mon.overdue(1, now=12.0)      # exactly at the deadline
    assert mon.overdue(1, now=12.1)
    mon.ack(1)
    assert mon.pending == 0
    assert mon.acks == 1
    assert not mon.overdue(1, now=100.0)     # discharged


def test_collective_ack_of_unexpected_node_is_noop():
    from repro.fault import CollectiveMonitor
    mon = CollectiveMonitor(2.0)
    mon.ack(5)                               # never expected
    assert mon.acks == 0
    assert not mon.overdue(5, now=100.0)


def test_collective_reexpect_moves_deadline():
    from repro.fault import CollectiveMonitor
    mon = CollectiveMonitor(2.0)
    mon.expect(1, now=0.0)
    mon.expect(1, now=10.0)                  # retransmission round
    assert not mon.overdue(1, now=11.0)
    assert mon.overdue(1, now=12.1)


def test_collective_verdict_raises_and_clears():
    from repro.errors import NodeUnreachable
    from repro.fault import CollectiveMonitor
    mon = CollectiveMonitor(2.0)
    mon.expect(3, now=0.0)
    with pytest.raises(NodeUnreachable) as ei:
        mon.verdict(3, attempts=4, wasted_ms=7.5)
    assert ei.value.node_id == 3
    assert ei.value.wasted_ms == pytest.approx(7.5)
    assert mon.pending == 0
    assert mon.verdicts == 1
