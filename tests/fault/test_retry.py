"""Unit tests for the exponential-backoff retry policy."""

import pytest

from repro.core import MiddlewareConfig
from repro.errors import FaultError
from repro.fault import RetryPolicy


def test_validation():
    with pytest.raises(FaultError):
        RetryPolicy(max_attempts=-1)
    with pytest.raises(FaultError):
        RetryPolicy(base_delay_ms=-0.1)
    with pytest.raises(FaultError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(FaultError):
        RetryPolicy(base_delay_ms=10.0, max_delay_ms=5.0)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(max_attempts=8, base_delay_ms=1.0,
                         backoff_factor=2.0, max_delay_ms=10.0)
    assert policy.backoff_ms(1) == 1.0
    assert policy.backoff_ms(2) == 2.0
    assert policy.backoff_ms(3) == 4.0
    assert policy.backoff_ms(4) == 8.0
    assert policy.backoff_ms(5) == 10.0      # capped
    assert policy.backoff_ms(6) == 10.0
    with pytest.raises(FaultError):
        policy.backoff_ms(0)


def test_delays_schedule():
    policy = RetryPolicy(max_attempts=3, base_delay_ms=0.5,
                         backoff_factor=2.0)
    assert policy.delays() == (0.5, 1.0, 2.0)
    assert RetryPolicy(max_attempts=0).delays() == ()


def test_from_config_reads_middleware_knobs():
    config = MiddlewareConfig(max_retry_attempts=5,
                              retry_base_delay_ms=1.5,
                              retry_backoff_factor=3.0)
    policy = RetryPolicy.from_config(config)
    assert policy.max_attempts == 5
    assert policy.base_delay_ms == 1.5
    assert policy.backoff_factor == 3.0
    # defaults mirror MiddlewareConfig's defaults
    default = RetryPolicy.from_config(MiddlewareConfig())
    assert default.max_attempts == 3
    assert default.base_delay_ms == 0.5
    assert default.backoff_factor == 2.0
