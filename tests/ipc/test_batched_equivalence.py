"""Property test: the batched scheduler is observationally identical to
the per-event oracle.

Hypothesis generates random structured process graphs mixing
Sleep/Send/Recv/SendMany/DrainReady/Spawn/Join/Barrier commands, runs
the same graph under :class:`Scheduler` and :class:`BatchedScheduler`,
and requires identical final times, per-category totals, received
message orders, and process results.

The graphs are *structured* so they always terminate: ``n`` workers hit
one shared barrier exactly ``rounds`` times, sends are non-blocking, a
dedicated collector receives exactly the number of messages sent to it,
and spawned children terminate unconditionally.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import (
    Barrier,
    BatchedScheduler,
    Channel,
    DrainReady,
    Join,
    Recv,
    Scheduler,
    Send,
    SendMany,
    Sleep,
    Spawn,
    WaitBarrier,
)

# per-worker-per-round action plan: (kind, payload)
_ACTIONS = st.sampled_from(["sleep", "send", "send_many", "spawn_join"])

_DURATIONS = st.sampled_from([0.0, 0.25, 1.0, 3.5, 7.0])

_PLANS = st.lists(
    st.tuples(_ACTIONS, _DURATIONS, st.integers(min_value=1, max_value=3)),
    min_size=1, max_size=4,
)

_CATEGORIES = ["compute", "upload", "download"]


def _build_workload(n_workers, rounds, plans, latency, drain_collector):
    """Return a closure running the workload on a given scheduler class."""

    def run(sched_cls):
        sched = sched_cls()
        collect = Channel("collect", latency=latency)
        bar = Barrier(n_workers + 1, name="round")
        # total messages each round, so the collector knows when to stop
        per_round = 0
        for w in range(n_workers):
            kind, _dur, k = plans[w % len(plans)]
            if kind == "send":
                per_round += 1
            elif kind == "send_many":
                per_round += k

        def child(wid, duration):
            yield Sleep(duration, "compute")
            return wid * 100

        def worker(wid):
            kind, dur, k = plans[wid % len(plans)]
            acc = 0
            for r in range(rounds):
                if kind == "sleep":
                    yield Sleep(dur, _CATEGORIES[wid % 3])
                elif kind == "send":
                    yield Send(collect, (wid, r))
                elif kind == "send_many":
                    yield SendMany(collect, [(wid, r, i) for i in range(k)])
                elif kind == "spawn_join":
                    h = yield Spawn(child(wid, dur), name=f"c{wid}-{r}")
                    acc += yield Join(h)
                yield WaitBarrier(bar)
            return acc

        def collector():
            got = []
            for _ in range(rounds):
                need = per_round
                while need > 0:
                    if drain_collector:
                        batch = yield DrainReady(collect)
                        got.extend(batch)
                        need -= len(batch)
                    else:
                        got.append((yield Recv(collect)))
                        need -= 1
                yield WaitBarrier(bar)
            return got

        handles = [sched.spawn(worker(w), name=f"w{w}")
                   for w in range(n_workers)]
        col = sched.spawn(collector(), name="collector")
        end = sched.run()
        return {
            "end": end,
            "categories": dict(sched.time_by_category),
            "messages": col.result,
            "results": [h.result for h in handles],
            "events": sched.events_popped,
        }

    # degenerate plan sets where nobody ever sends deadlock the
    # collector's recv loop only if per_round == 0 — in that case the
    # collector just barriers, which the closure above handles (need=0)
    return run


@settings(max_examples=60, deadline=None)
@given(
    n_workers=st.integers(min_value=1, max_value=6),
    rounds=st.integers(min_value=1, max_value=4),
    plans=_PLANS,
    latency=st.sampled_from([0.0, 0.5, 2.0]),
    drain_collector=st.booleans(),
)
def test_batched_equals_per_event(n_workers, rounds, plans, latency,
                                  drain_collector):
    run = _build_workload(n_workers, rounds, plans, latency, drain_collector)
    oracle = run(Scheduler)
    batched = run(BatchedScheduler)
    assert batched["end"] == oracle["end"]
    assert batched["categories"] == oracle["categories"]
    assert batched["messages"] == oracle["messages"]
    assert batched["results"] == oracle["results"]
    # batching must not invent or lose logical events
    assert batched["events"] == oracle["events"]
