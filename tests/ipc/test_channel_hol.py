"""Regression tests for Channel head-of-line blocking.

An ``arm_delay``-inflated message at the queue head used to also delay
later-sent messages whose ``deliverable_at`` was earlier, because recv
popped strictly FIFO.  Receivers now take the earliest-deliverable
entry (stable on ties), so only the faulted message is late.
"""

import pytest

from repro.ipc import (
    BatchedScheduler,
    Channel,
    Now,
    Recv,
    Scheduler,
    Send,
    SendMany,
    Sleep,
    Spawn,
)


@pytest.fixture(params=[Scheduler, BatchedScheduler],
                ids=["per-event", "batched"])
def sched(request):
    return request.param()


def test_delayed_head_does_not_block_later_messages(sched):
    ch = Channel("data", latency=1.0)

    def sender():
        ch.arm_delay(500.0)
        yield Send(ch, "slow")   # deliverable at 501
        yield Send(ch, "fast")   # deliverable at 1

    def receiver():
        first = yield Recv(ch)
        t_first = yield Now()
        second = yield Recv(ch)
        t_second = yield Now()
        return [(first, t_first), (second, t_second)]

    sched.spawn(sender(), name="tx")
    rx = sched.spawn(receiver(), name="rx")
    sched.run()
    # the un-faulted message arrives on time; the delayed one after it
    assert rx.result == [("fast", 1.0), ("slow", 501.0)]


def test_fifo_preserved_on_ordered_queue(sched):
    ch = Channel("data", latency=2.0)

    def sender():
        for i in range(5):
            yield Send(ch, i)
            yield Sleep(1.0)

    def receiver():
        got = []
        for _ in range(5):
            got.append((yield Recv(ch)))
        return got

    sched.spawn(sender(), name="tx")
    rx = sched.spawn(receiver(), name="rx")
    sched.run()
    assert rx.result == [0, 1, 2, 3, 4]


def test_tie_breaks_to_earliest_sent(sched):
    # equal deliverable_at: delivery order must stay send order
    ch = Channel("data", latency=0.0)

    def sender():
        ch.arm_delay(10.0)
        yield Send(ch, "delayed")     # deliverable at 10
        yield SendMany(ch, ["a", "b", "c"])  # deliverable at 0, equal times

    def receiver():
        got = []
        for _ in range(4):
            got.append((yield Recv(ch)))
        return got

    sched.spawn(sender(), name="tx")
    rx = sched.spawn(receiver(), name="rx")
    sched.run()
    assert rx.result == ["a", "b", "c", "delayed"]


def test_size_skewed_costs_deliver_earliest_first(sched):
    # a huge message sent first must not hold back a tiny later one
    ch = Channel("bulk", latency=0.0, cost_per_unit=1.0,
                 size_of=lambda m: float(len(m)))

    def sender():
        yield Send(ch, "x" * 100)  # deliverable at 100
        yield Send(ch, "y")        # deliverable at 1

    def receiver():
        first = yield Recv(ch)
        t_first = yield Now()
        second = yield Recv(ch)
        t_second = yield Now()
        return [(first, t_first), (second, t_second)]

    sched.spawn(sender(), name="tx")
    rx = sched.spawn(receiver(), name="rx")
    sched.run()
    assert rx.result == [("y", 1.0), ("x" * 100, 100.0)]


def test_misordered_flag_resets_when_queue_empties():
    sched = Scheduler()
    ch = Channel("data", latency=1.0)

    def sender():
        ch.arm_delay(50.0)
        yield Send(ch, "slow")
        yield Send(ch, "fast")

    def receiver():
        yield Recv(ch)
        yield Recv(ch)
        # queue drained: the channel should be back on the O(1) path
        assert not ch._misordered
        yield Send(ch, "tail-a")
        yield Send(ch, "tail-b")
        assert not ch._misordered
        got = [(yield Recv(ch)), (yield Recv(ch))]
        return got

    sched.spawn(sender(), name="tx")
    rx = sched.spawn(receiver(), name="rx")
    sched.run()
    assert rx.result == ["tail-a", "tail-b"]
