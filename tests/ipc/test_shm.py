"""Unit tests for the simulated System V shared memory."""

import pytest

from repro.errors import ShmError
from repro.ipc import IPC_PRIVATE, ShmRegistry


@pytest.fixture
def registry():
    return ShmRegistry()


def test_shmget_creates_and_reuses_segment(registry):
    seg1 = registry.shmget(0x1234)
    seg2 = registry.shmget(0x1234)
    assert seg1 is seg2
    assert len(registry) == 1


def test_shmget_private_always_fresh(registry):
    seg1 = registry.shmget(IPC_PRIVATE)
    seg2 = registry.shmget(IPC_PRIVATE)
    assert seg1 is not seg2
    assert seg1.key != seg2.key


def test_shmget_no_create_raises(registry):
    with pytest.raises(ShmError):
        registry.shmget(0x42, create=False)


def test_mutations_visible_to_both_attachers(registry):
    """The §II-B property: updates on one end are immediately perceived."""
    seg = registry.shmget(0x99)
    agent_view = seg.attach("agent")
    daemon_view = seg.attach("daemon")
    agent_view.put("vertices", [1, 2, 3])
    assert daemon_view.get("vertices") == [1, 2, 3]
    daemon_view.get("vertices").append(4)
    assert agent_view.get("vertices") == [1, 2, 3, 4]


def test_missing_region_raises(registry):
    seg = registry.shmget(1)
    with pytest.raises(ShmError):
        seg.get("nope")


def test_contains_and_regions(registry):
    seg = registry.shmget(1)
    seg.put("a", 1)
    seg.put("b", 2)
    assert "a" in seg and "b" in seg and "c" not in seg
    assert sorted(seg.regions()) == ["a", "b"]


def test_detach_unknown_party_raises(registry):
    seg = registry.shmget(1)
    seg.attach("agent")
    with pytest.raises(ShmError):
        seg.detach("daemon")
    seg.detach("agent")
    assert seg.attached == []


def test_byte_accounting(registry):
    seg = registry.shmget(1)
    seg.put("x", b"abc", nbytes=3)
    seg.get("x", nbytes=3)
    seg.get("x", nbytes=3)
    assert seg.bytes_written == 3
    assert seg.bytes_read == 6


def test_shmrm_destroys_segment(registry):
    seg = registry.shmget(7)
    registry.shmrm(7)
    with pytest.raises(ShmError):
        seg.put("x", 1)
    with pytest.raises(ShmError):
        seg.get("x")
    with pytest.raises(ShmError):
        seg.attach("late")
    with pytest.raises(ShmError):
        registry.shmrm(7)


def test_registry_keys_sorted(registry):
    registry.shmget(30)
    registry.shmget(10)
    registry.shmget(20)
    assert registry.keys() == [10, 20, 30]
