"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import ChannelClosedError, DeadlockError, SimulationError
from repro.ipc import (
    Barrier,
    Channel,
    Join,
    Now,
    Recv,
    Scheduler,
    Send,
    Sleep,
    Spawn,
    WaitBarrier,
    run_process,
)


def test_single_process_sleep_advances_clock():
    def proc():
        yield Sleep(10.0)
        yield Sleep(2.5)
        return "ok"

    result, elapsed = run_process(proc())
    assert result == "ok"
    assert elapsed == pytest.approx(12.5)


def test_now_reports_simulated_time():
    def proc():
        t0 = yield Now()
        yield Sleep(7.0)
        t1 = yield Now()
        return (t0, t1)

    (t0, t1), _ = run_process(proc())
    assert t0 == 0.0
    assert t1 == pytest.approx(7.0)


def test_zero_sleep_does_not_advance():
    def proc():
        yield Sleep(0.0)
        return (yield Now())

    t, _ = run_process(proc())
    assert t == 0.0


def test_negative_sleep_rejected():
    with pytest.raises(SimulationError):
        Sleep(-1.0)


def test_send_recv_roundtrip():
    ch = Channel("c")
    log = []

    def producer():
        yield Sleep(3.0)
        yield Send(ch, "hello")

    def consumer():
        msg = yield Recv(ch)
        log.append((msg, (yield Now())))

    sched = Scheduler()
    sched.spawn(producer(), "p")
    sched.spawn(consumer(), "q")
    sched.run()
    assert log == [("hello", 3.0)]


def test_channel_latency_delays_delivery():
    ch = Channel("c", latency=5.0)

    def producer():
        yield Send(ch, "x")

    def consumer():
        yield Recv(ch)
        return (yield Now())

    sched = Scheduler()
    sched.spawn(producer(), "p")
    h = sched.spawn(consumer(), "q")
    sched.run()
    assert h.result == pytest.approx(5.0)


def test_channel_per_unit_cost_uses_size_of():
    ch = Channel("c", cost_per_unit=0.5, size_of=len)

    def producer():
        yield Send(ch, "abcd")  # 4 units -> 2.0 ms

    def consumer():
        yield Recv(ch)
        return (yield Now())

    sched = Scheduler()
    sched.spawn(producer(), "p")
    h = sched.spawn(consumer(), "q")
    sched.run()
    assert h.result == pytest.approx(2.0)


def test_fifo_order_preserved():
    ch = Channel("c")
    got = []

    def producer():
        for i in range(5):
            yield Send(ch, i)

    def consumer():
        for _ in range(5):
            got.append((yield Recv(ch)))

    sched = Scheduler()
    sched.spawn(producer(), "p")
    sched.spawn(consumer(), "q")
    sched.run()
    assert got == [0, 1, 2, 3, 4]


def test_spawn_and_join_returns_child_result():
    def child():
        yield Sleep(4.0)
        return 99

    def parent():
        h = yield Spawn(child(), "child")
        value = yield Join(h)
        return value

    result, elapsed = run_process(parent())
    assert result == 99
    assert elapsed == pytest.approx(4.0)


def test_join_on_already_finished_child():
    def child():
        yield Sleep(1.0)
        return "early"

    def parent():
        h = yield Spawn(child(), "child")
        yield Sleep(10.0)
        value = yield Join(h)
        return value

    result, elapsed = run_process(parent())
    assert result == "early"
    assert elapsed == pytest.approx(10.0)


def test_parallel_children_overlap_in_time():
    def child(d):
        yield Sleep(d)

    def parent():
        hs = []
        for d in (10.0, 6.0, 8.0):
            hs.append((yield Spawn(child(d), f"c{d}")))
        for h in hs:
            yield Join(h)

    _, elapsed = run_process(parent())
    assert elapsed == pytest.approx(10.0)  # max, not sum


def test_barrier_synchronizes_all_parties():
    bar = Barrier(3)
    times = {}

    def proc(name, d):
        yield Sleep(d)
        yield WaitBarrier(bar)
        times[name] = yield Now()

    sched = Scheduler()
    sched.spawn(proc("a", 1.0), "a")
    sched.spawn(proc("b", 5.0), "b")
    sched.spawn(proc("c", 3.0), "c")
    sched.run()
    assert times == {"a": 5.0, "b": 5.0, "c": 5.0}
    assert bar.generation == 1


def test_barrier_is_reusable():
    bar = Barrier(2)

    def proc(d):
        yield Sleep(d)
        yield WaitBarrier(bar)
        yield Sleep(d)
        yield WaitBarrier(bar)
        return (yield Now())

    sched = Scheduler()
    h1 = sched.spawn(proc(2.0), "a")
    h2 = sched.spawn(proc(3.0), "b")
    sched.run()
    assert h1.result == h2.result == pytest.approx(6.0)
    assert bar.generation == 2


def test_deadlock_detection():
    ch = Channel("never")

    def stuck():
        yield Recv(ch)

    sched = Scheduler()
    sched.spawn(stuck(), "stuck")
    with pytest.raises(DeadlockError):
        sched.run()


def test_daemon_process_does_not_block_termination():
    ch = Channel("never")

    def daemon_loop():
        while True:
            yield Recv(ch)

    def main():
        yield Sleep(1.0)
        return "done"

    sched = Scheduler()
    sched.spawn(daemon_loop(), "d", daemon=True)
    h = sched.spawn(main(), "m")
    sched.run()
    assert h.result == "done"


def test_send_to_closed_channel_raises():
    ch = Channel("c")
    ch.close()

    def proc():
        yield Send(ch, 1)

    sched = Scheduler()
    sched.spawn(proc(), "p")
    with pytest.raises(ChannelClosedError):
        sched.run()


def test_sleep_category_accounting():
    def proc():
        yield Sleep(4.0, "middleware")
        yield Sleep(6.0, "compute")
        yield Sleep(1.0, "middleware")

    sched = Scheduler()
    sched.spawn(proc(), "p")
    sched.run()
    assert sched.category_time("middleware") == pytest.approx(5.0)
    assert sched.category_time("compute") == pytest.approx(6.0)
    assert sched.category_time("unknown") == 0.0


def test_run_until_horizon_stops_early():
    def proc():
        yield Sleep(100.0)

    sched = Scheduler()
    sched.spawn(proc(), "p")
    end = sched.run(until=30.0)
    assert end == pytest.approx(30.0)
    # finishing the run afterwards completes the sleep
    end = sched.run()
    assert end == pytest.approx(100.0)


def test_yielding_garbage_raises():
    def proc():
        yield "not a command"

    sched = Scheduler()
    sched.spawn(proc(), "p")
    with pytest.raises(SimulationError):
        sched.run()


def test_deterministic_interleaving():
    """Two identical runs produce identical event orders."""

    def run_once():
        ch = Channel("c")
        order = []

        def producer(tag):
            for i in range(3):
                yield Sleep(1.0)
                yield Send(ch, (tag, i))

        def consumer():
            for _ in range(6):
                order.append((yield Recv(ch)))

        sched = Scheduler()
        sched.spawn(producer("a"), "a")
        sched.spawn(producer("b"), "b")
        sched.spawn(consumer(), "c")
        sched.run()
        return order

    assert run_once() == run_once()
