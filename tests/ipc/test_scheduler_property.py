"""Property-based tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import Join, Recv, Scheduler, Send, Sleep, Spawn, Channel

# a fork-join tree: each node is (own_work, [children])
work_trees = st.recursive(
    st.tuples(st.floats(0.0, 10.0), st.just([])),
    lambda children: st.tuples(st.floats(0.0, 10.0),
                               st.lists(children, min_size=1, max_size=3)),
    max_leaves=12,
)


def critical_path(tree) -> float:
    """Analytic makespan: own work + the slowest child subtree."""
    own, children = tree
    if not children:
        return own
    return own + max(critical_path(c) for c in children)


def run_tree(tree):
    """Sleep own work, then run children concurrently and join them."""
    own, children = tree
    yield Sleep(own)
    handles = []
    for child in children:
        handles.append((yield Spawn(run_tree(child), "child")))
    for h in handles:
        yield Join(h)


@settings(max_examples=60, deadline=None)
@given(tree=work_trees)
def test_fork_join_makespan_is_critical_path(tree):
    sched = Scheduler()
    sched.spawn(run_tree(tree), "root")
    end = sched.run()
    assert end == pytest.approx(critical_path(tree))


@settings(max_examples=40, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.floats(0.0, 5.0), min_size=1, max_size=5),
        min_size=1, max_size=4),
)
def test_many_producers_fifo_per_producer(batches):
    """Each producer's messages arrive in its own send order."""
    ch = Channel("c")
    received = []

    def producer(tag, delays):
        for i, d in enumerate(delays):
            yield Sleep(d)
            yield Send(ch, (tag, i))

    def consumer(total):
        for _ in range(total):
            received.append((yield Recv(ch)))

    sched = Scheduler()
    total = sum(len(b) for b in batches)
    for tag, delays in enumerate(batches):
        sched.spawn(producer(tag, delays), f"p{tag}")
    sched.spawn(consumer(total), "c")
    sched.run()
    assert len(received) == total
    for tag in range(len(batches)):
        seq = [i for (t, i) in received if t == tag]
        assert seq == sorted(seq)


@settings(max_examples=40, deadline=None)
@given(delays=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=8),
       latency=st.floats(0.0, 3.0))
def test_channel_latency_lower_bounds_delivery(delays, latency):
    """No message is observed before send_time + latency."""
    ch = Channel("c", latency=latency)
    observed = []

    def producer():
        for d in delays:
            yield Sleep(d)
            now = yield from _now()
            yield Send(ch, now)

    def _now():
        from repro.ipc import Now
        return (yield Now())

    def consumer():
        for _ in delays:
            sent_at = yield Recv(ch)
            from repro.ipc import Now
            now = yield Now()
            observed.append((sent_at, now))

    sched = Scheduler()
    sched.spawn(producer(), "p")
    sched.spawn(consumer(), "c")
    sched.run()
    for sent_at, seen_at in observed:
        assert seen_at >= sent_at + latency - 1e-9
