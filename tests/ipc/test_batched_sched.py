"""Unit tests for the batched event core.

Covers the :class:`EventHeap` cohort storage, ``SendMany`` fault parity
with sequential sends, ``DrainReady`` bulk consumption, scheduler event
counters, and the enriched ``DeadlockError`` park labels.
"""

import pytest

from repro.errors import DeadlockError
from repro.ipc import (
    Barrier,
    BatchedScheduler,
    Channel,
    DrainReady,
    EventHeap,
    Join,
    Now,
    Recv,
    Scheduler,
    Send,
    SendMany,
    Sleep,
    Spawn,
    WaitBarrier,
)


# -- EventHeap ------------------------------------------------------------


def test_eventheap_orders_by_time_then_seq():
    heap = EventHeap()
    heap.push(5.0, 2, "b")
    heap.push(1.0, 1, "a")
    heap.push(5.0, 3, "c")
    t, batch = heap.pop_cohort()
    assert (t, batch) == (1.0, [(1, "a")])
    t, batch = heap.pop_cohort()
    assert (t, batch) == (5.0, [(2, "b"), (3, "c")])
    assert len(heap) == 0


def test_eventheap_bulk_run_merges_with_lane():
    heap = EventHeap()
    heap.push(2.0, 1, "lane")
    heap.push_many([2.0, 1.0, 3.0], 2, ["r2", "r1", "r3"])
    t, batch = heap.pop_cohort()
    assert (t, batch) == (1.0, [(3, "r1")])
    t, batch = heap.pop_cohort()
    # lane entry (seq 1) and run entry (seq 2) share t=2.0: seq order
    assert (t, batch) == (2.0, [(1, "lane"), (2, "r2")])
    t, batch = heap.pop_cohort()
    assert (t, batch) == (3.0, [(4, "r3")])


def test_eventheap_stable_on_equal_times():
    heap = EventHeap()
    heap.push_many([7.0] * 4, 10, list("abcd"))
    t, batch = heap.pop_cohort()
    assert t == 7.0
    assert batch == [(10, "a"), (11, "b"), (12, "c"), (13, "d")]


def test_eventheap_tracks_peak():
    heap = EventHeap()
    heap.push_many([1.0, 2.0, 3.0], 1, ["a", "b", "c"])
    heap.pop_cohort()
    heap.push(0.5, 4, "d")
    assert heap.peak == 3
    assert len(heap) == 3


# -- SendMany fault parity ------------------------------------------------


def _run_sends(sched_cls, bulk, arm):
    """Send 6 messages (bulk or sequential) with faults armed; return
    (received messages with times, channel fault counters)."""
    sched = sched_cls()
    ch = Channel("c", latency=1.0)
    arm(ch)
    msgs = [f"m{i}" for i in range(6)]

    def sender():
        if bulk:
            yield SendMany(ch, msgs)
        else:
            for m in msgs:
                yield Send(ch, m)

    def receiver(expect):
        got = []
        for _ in range(expect):
            m = yield Recv(ch)
            got.append((m, (yield Now())))
        return got

    expect = 6 - (2 if ch.drop_pending else 0)
    sched.spawn(sender(), name="tx")
    rx = sched.spawn(receiver(expect), name="rx")
    sched.run()
    return rx.result, (ch.messages_sent, ch.messages_dropped,
                       ch.messages_delayed)


@pytest.mark.parametrize("arm", [
    lambda ch: None,
    lambda ch: ch.arm_drop(2),
    lambda ch: ch.arm_delay(25.0),
], ids=["clean", "drop2", "delay"])
@pytest.mark.parametrize("sched_cls", [Scheduler, BatchedScheduler],
                         ids=["per-event", "batched"])
def test_send_many_matches_sequential_sends(sched_cls, arm):
    bulk_out = _run_sends(sched_cls, bulk=True, arm=arm)
    seq_out = _run_sends(sched_cls, bulk=False, arm=arm)
    assert bulk_out == seq_out


def test_send_many_to_parked_single_waiters():
    # waiters parked on Recv each get exactly one message, in order
    for cls in (Scheduler, BatchedScheduler):
        sched = cls()
        ch = Channel("c", latency=0.5)
        results = []

        def waiter(i):
            m = yield Recv(ch)
            results.append((i, m))

        def sender():
            yield Sleep(1.0)
            yield SendMany(ch, ["a", "b", "c"])

        for i in range(3):
            sched.spawn(waiter(i), name=f"w{i}")
        sched.spawn(sender(), name="tx")
        sched.run()
        assert results == [(0, "a"), (1, "b"), (2, "c")]
        results.clear()


# -- DrainReady -----------------------------------------------------------


def test_drain_ready_takes_whole_queue():
    for cls in (Scheduler, BatchedScheduler):
        sched = cls()
        ch = Channel("c", latency=2.0)

        def sender():
            yield SendMany(ch, [1, 2, 3])

        def drainer():
            batch = yield DrainReady(ch)
            t = yield Now()
            return batch, t

        sched.spawn(sender(), name="tx")
        d = sched.spawn(drainer(), name="rx")
        sched.run()
        batch, t = d.result
        assert batch == [1, 2, 3]
        assert t == 2.0  # one wake at the latest delivery time


def test_parked_drainer_absorbs_bulk_send():
    for cls in (Scheduler, BatchedScheduler):
        sched = cls()
        ch = Channel("c", latency=1.0)

        def drainer():
            return (yield DrainReady(ch))

        def sender():
            yield Sleep(5.0)
            yield SendMany(ch, ["x", "y"])

        d = sched.spawn(drainer(), name="rx")
        sched.spawn(sender(), name="tx")
        sched.run()
        assert d.result == ["x", "y"]


def test_drain_then_single_send_wakes_with_list():
    sched = Scheduler()
    ch = Channel("c")

    def drainer():
        return (yield DrainReady(ch))

    def sender():
        yield Sleep(1.0)
        yield Send(ch, "solo")

    d = sched.spawn(drainer(), name="rx")
    sched.spawn(sender(), name="tx")
    sched.run()
    assert d.result == ["solo"]


# -- counters -------------------------------------------------------------


def test_per_event_scheduler_counts_singleton_batches():
    sched = Scheduler()

    def proc():
        yield Sleep(1.0)
        yield Sleep(1.0)

    sched.spawn(proc(), name="p")
    sched.run()
    assert sched.events_popped == 3  # spawn step + two sleep resumes
    assert sched.batches == sched.events_popped
    assert sched.max_batch == 1
    assert sched.heap_peak >= 1


def test_batched_scheduler_pops_cohorts():
    sched = BatchedScheduler()
    bar = Barrier(4, name="b")

    def proc():
        yield Sleep(10.0)
        yield WaitBarrier(bar)

    for i in range(4):
        sched.spawn(proc(), name=f"p{i}")
    sched.run()
    assert sched.max_batch == 4        # all four wake at t=10 together
    assert sched.batches < sched.events_popped
    assert sched.heap_peak >= 4


def test_batched_counters_match_per_event_event_totals():
    def build(sched):
        ch = Channel("c", latency=1.0)

        def sender():
            for i in range(5):
                yield Send(ch, i)
                yield Sleep(0.5)

        def receiver():
            for _ in range(5):
                yield Recv(ch)

        sched.spawn(sender(), name="tx")
        sched.spawn(receiver(), name="rx")
        sched.run()
        return sched

    a = build(Scheduler())
    b = build(BatchedScheduler())
    assert a.events_popped == b.events_popped
    assert b.batches <= a.batches


# -- horizon / re-run semantics ------------------------------------------


def test_batched_run_until_preserves_pending_events():
    sched = BatchedScheduler()

    def proc():
        yield Sleep(10.0)
        yield Sleep(50.0)
        return "done"

    h = sched.spawn(proc(), name="p")
    assert sched.run(until=30.0) == 30.0
    assert not h.done
    assert sched.run() == 60.0
    assert h.result == "done"


def test_batched_live_zero_stops_mid_cohort():
    # a non-daemon finishing mid-cohort stops the run exactly as the
    # per-event scheduler does, leaving the cohort tail pending
    def build(sched):
        done = []

        def fast():
            yield Sleep(5.0)
            done.append("fast")

        def daemon():
            yield Sleep(5.0)
            done.append("daemon")
            yield Sleep(100.0)
            done.append("late")

        sched.spawn(fast(), name="fast")
        sched.spawn(daemon(), name="bg", daemon=True)
        end = sched.run()
        return end, done

    a = build(Scheduler())
    b = build(BatchedScheduler())
    assert a == b


# -- DeadlockError labels -------------------------------------------------


@pytest.mark.parametrize("sched_cls", [Scheduler, BatchedScheduler],
                         ids=["per-event", "batched"])
def test_deadlock_names_channel(sched_cls):
    sched = sched_cls()
    ch = Channel("orders")

    def stuck():
        yield Recv(ch)

    sched.spawn(stuck(), name="worker")
    with pytest.raises(DeadlockError, match=r"worker \(waiting on recv\(orders\)\)"):
        sched.run()


def test_deadlock_names_barrier_and_join():
    sched = Scheduler()
    bar = Barrier(3, name="superstep")

    def barrier_waiter():
        yield WaitBarrier(bar)

    def joiner(handle):
        yield Join(handle)

    h = sched.spawn(barrier_waiter(), name="bw")
    sched.spawn(joiner(h), name="jw")
    with pytest.raises(DeadlockError) as exc:
        sched.run()
    msg = str(exc.value)
    assert "bw (waiting on barrier(superstep, 3 parties))" in msg
    assert "jw (waiting on join(bw))" in msg


def test_deadlock_names_drain():
    sched = BatchedScheduler()
    ch = Channel("blocks")

    def drainer():
        yield DrainReady(ch)

    sched.spawn(drainer(), name="d0")
    with pytest.raises(DeadlockError, match=r"d0 \(waiting on drain\(blocks\)\)"):
        sched.run()
