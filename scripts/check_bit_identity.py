#!/usr/bin/env python
"""Bit-identity oracle: every figure runner, batched core vs per-event.

Runs each experiment twice — once with the default batched event loop
(``BatchedScheduler``) and once with the per-event oracle forced — and
asserts the returned rows are *exactly* equal (repr comparison, so
float outputs must match bit for bit).  Shrunk parameters keep the
sweep CI-sized while still covering every figure family plus the
fault/straggler/topology/serve soaks (fault injection included).

Usage: PYTHONPATH=src python scripts/check_bit_identity.py
"""

import sys
import tempfile

import repro.core.agent as agent_mod
from repro import bench
from repro.ipc import BatchedScheduler, Scheduler


EXPERIMENTS = [
    ("fig8", lambda: bench.run_fig8(num_nodes=2)),
    ("fig9a", lambda: bench.run_fig9a(gpu_counts=(1, 2))),
    ("fig9b", lambda: bench.run_fig9b(datasets=("twitter",),
                                      gpu_counts=(2, 3))),
    ("fig9c", lambda: bench.run_fig9c(gpu_counts=(1, 2))),
    ("fig9d", lambda: bench.run_fig9d()),
    ("fig10", lambda: bench.run_fig10(num_nodes=2)),
    ("fig11a", lambda: bench.run_fig11a(num_nodes=2)),
    ("fig11b", lambda: bench.run_fig11b(num_nodes=2)),
    ("fig12a", lambda: bench.run_fig12a()),
    ("fig12b", lambda: bench.run_fig12b(
        load_splits=((0.5, 0.5), (0.7, 0.3)))),
    ("fig13", lambda: bench.run_fig13(iterations=3)),
    ("fig14", lambda: bench.run_fig14(node_counts=(1, 2),
                                      engines=("powergraph",))),
    ("fig15", lambda: bench.run_fig15(s_values=(1, 5, 20))),
    ("table1", bench.run_table1),
    ("fault_overhead", lambda: bench.run_fault_overhead(num_nodes=2)),
    ("fault_soak", lambda: bench.run_fault_soak(rates=(0.0, 0.2),
                                                max_iter=6)),
    ("fault_soak_topo", lambda: bench.run_fault_soak(
        rates=(0.0, 0.2), max_iter=6, topology="rack:2x1")),
    ("straggler_soak", lambda: bench.run_straggler_soak(passes=4,
                                                       max_iter=6)),
    ("topology_soak", lambda: bench.run_topology_soak(passes=30,
                                                      max_iter=8)),
    ("serve_soak", lambda: bench.run_serve_soak(waves=2, max_iter=6)),
    ("serve_chaos", lambda: bench.run_serve_chaos(
        seeds=(11, 23), max_iter=6,
        journal_dir=tempfile.mkdtemp(prefix="bitid-chaos-"))),
]


def main() -> int:
    failures = []
    for name, fn in EXPERIMENTS:
        agent_mod.BatchedScheduler = BatchedScheduler
        batched = fn()
        # force the per-event oracle regardless of batch_events
        agent_mod.BatchedScheduler = Scheduler
        per_event = fn()
        agent_mod.BatchedScheduler = BatchedScheduler
        ok = repr(batched) == repr(per_event)
        print(f"{name:18s} {'bit-identical' if ok else 'DIVERGED'}")
        if not ok:
            failures.append(name)
            print(f"  batched:   {batched!r}"[:400])
            print(f"  per-event: {per_event!r}"[:400])
    if failures:
        print(f"FAIL: {len(failures)} diverged: {', '.join(failures)}")
        return 1
    print(f"OK: {len(EXPERIMENTS)} experiments bit-identical "
          f"across both event-loop cores")
    return 0


if __name__ == "__main__":
    sys.exit(main())
