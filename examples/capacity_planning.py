#!/usr/bin/env python
"""Capacity planning with the workload-balancing model (§III-C).

Two cloud-operations scenarios from Fig. 12:

* **Case 1** — the hardware is fixed (one beefy node, one small node);
  use Lemma 2's balancing factors to decide how much of the graph each
  node should hold.
* **Case 2** — the partitioning is fixed and skewed; use Lemma 3 to
  decide how many GPUs to lease per node so every node finishes
  together.
"""

from repro.accel import V100
from repro.api import (
    GXPlug,
    PageRank,
    PowerGraphEngine,
    accelerators_for_load,
    balancing_factors,
    load_dataset,
    make_heterogeneous_cluster,
    optimal_makespan,
)


def case1_fixed_hardware(graph):
    print("== Case 1: fixed hardware, tuned partitioning (Lemma 2)")
    spec = [["gpu", "cpu"], ["gpu", "gpu", "gpu", "cpu"]]

    probe = make_heterogeneous_cluster(spec)
    coeffs = [1.0 / node.capacity_factor() for node in probe.nodes]
    shares = balancing_factors(coeffs)
    print(f"   node capacities (entities/ms): "
          f"{[round(n.capacity_factor()) for n in probe.nodes]}")
    print(f"   balanced shares: {[round(s, 3) for s in shares]}")
    print(f"   predicted compute makespan/iteration: "
          f"{optimal_makespan(graph.num_edges, coeffs):.1f} ms")

    for label, use_shares in (("even 50/50", [0.5, 0.5]),
                              ("balanced", shares.tolist())):
        cluster = make_heterogeneous_cluster(spec)
        plug = GXPlug(cluster)
        engine = PowerGraphEngine.build(graph, cluster, middleware=plug,
                                        shares=use_shares)
        res = engine.run(PageRank(), max_iterations=10)
        print(f"   {label:12s}: {res.total_ms:8.1f} ms simulated")
    print()


def case2_fixed_partitioning(graph):
    print("== Case 2: fixed skewed partitioning, tuned GPUs (Lemma 3)")
    split = (0.75, 0.25)
    loads = [split[0] * graph.num_edges, split[1] * graph.num_edges]
    unit = V100.capacity_factor()
    counts = accelerators_for_load(loads, max_factor=4 * unit,
                                   unit_factor=unit)
    print(f"   data split: {split}, GPUs per node from Lemma 3: {counts}")

    for label, spec in (
            ("1 GPU each", [["gpu"], ["gpu"]]),
            ("balanced", [["gpu"] * max(1, c) for c in counts])):
        cluster = make_heterogeneous_cluster(spec)
        plug = GXPlug(cluster)
        engine = PowerGraphEngine.build(graph, cluster, middleware=plug,
                                        shares=list(split))
        res = engine.run(PageRank(), max_iterations=10)
        print(f"   {label:12s}: {res.total_ms:8.1f} ms simulated")


def main() -> None:
    graph = load_dataset("orkut")
    print(f"Planning for {graph}\n")
    case1_fixed_hardware(graph)
    case2_fixed_partitioning(graph)


if __name__ == "__main__":
    main()
