#!/usr/bin/env python
"""Quickstart: plug GPUs into a distributed graph engine.

Builds a 4-node simulated cluster with one GPU per node, plugs GX-Plug
into a PowerGraph-like engine, and runs PageRank on the Orkut twin —
the paper's "few lines of code" integration.  Also runs the same job
without the middleware to show the acceleration.
"""

import numpy as np

from repro.api import (
    ClusterSpec,
    GXPlug,
    PageRank,
    PowerGraphEngine,
    load_dataset,
)


def main() -> None:
    graph = load_dataset("orkut")
    print(f"Loaded {graph}")

    # --- bare engine: PowerGraph computing on its host CPUs -------------
    host_cluster = ClusterSpec(nodes=4, gpus_per_node=0).build()
    host_engine = PowerGraphEngine.build(graph, host_cluster)
    host = host_engine.run(PageRank(), max_iterations=10)
    print(f"bare engine : {host.summary()}")

    # --- plug accelerators: one GPU per node ----------------------------
    gpu_cluster = ClusterSpec(nodes=4, gpus_per_node=1).build()
    plug = GXPlug(gpu_cluster)                    # the middleware
    engine = PowerGraphEngine.build(graph, gpu_cluster, middleware=plug)
    accelerated = engine.run(PageRank(), max_iterations=10)
    print(f"GPU+engine  : {accelerated.summary()}")

    # identical results, just faster
    assert np.allclose(host.values, accelerated.values)
    speedup = host.total_ms / accelerated.total_ms
    print(f"\nSame PageRank values, {speedup:.1f}x faster with GX-Plug.")
    print("Top-5 ranked vertices:",
          np.argsort(accelerated.values)[::-1][:5].tolist())


if __name__ == "__main__":
    main()
