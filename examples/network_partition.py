#!/usr/bin/env python
"""Network fault tolerance: surviving a node partition mid-sync.

The NETWORK_RESILIENT preset routes every global sync collective
through an ack/retransmit transport.  A seeded campaign of transient
network faults (dropped, delayed, duplicated fragments, failed
collectives) is absorbed invisibly: each fault costs bounded recovery
time and the ranks stay bit-for-bit.  A full node partition is nastier:
the transport exhausts its retransmit budget, the collective monitor
issues a NodeUnreachable verdict, and the engine rolls back to the last
checkpoint, degrades the unreachable node to its host (CPU) path, and
rebalances the partition with Lemma-2 shares — the slow node ends up
owning fewer vertices.
"""

import numpy as np

from repro.api import (
    NET_DELAY,
    NET_DROP,
    NET_DUP,
    NETWORK_RESILIENT,
    NODE_PARTITION,
    SYNC_FAIL,
    ClusterSpec,
    FaultPlan,
    GXPlug,
    PageRank,
    PowerGraphEngine,
    load_dataset,
)

NODES = 4


def build(graph, config):
    cluster = ClusterSpec(nodes=NODES, gpus_per_node=1).build()
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    return engine, plug


def masters_per_node(engine):
    return np.bincount(engine.pgraph.master_of, minlength=NODES)


def main() -> None:
    graph = load_dataset("wrn")
    print(f"PageRank on {graph}, {NODES} nodes x 1 GPU\n")

    # --- 1. the fault-free reference -------------------------------------
    engine, _ = build(graph, NETWORK_RESILIENT)
    base = engine.run(PageRank(), max_iterations=10)
    print(f"fault-free:   {base.summary()}")

    # --- 2. transient network faults, absorbed by the transport ----------
    campaign = FaultPlan.random(
        23, supersteps=10, num_nodes=NODES, rate=0.2,
        kinds=(NET_DROP, NET_DELAY, NET_DUP, SYNC_FAIL))
    engine, plug = build(graph, NETWORK_RESILIENT.with_(fault_plan=campaign))
    noisy = engine.run(PageRank(), max_iterations=10)
    drift = np.abs(noisy.values - base.values).max()
    print(f"\nnoisy net:    {noisy.summary()}")
    print(f"              {plug.fault_report(noisy).summary()}")
    print(f"              max rank drift vs fault-free: {drift:.2e}")
    assert drift < 1e-9, "retransmission must not change the results"
    assert noisy.rollbacks == 0, "transient faults heal without rollback"

    # --- 3. node partition: rollback + degrade + Lemma-2 rebalance -------
    plan = FaultPlan.single(NODE_PARTITION, superstep=4, node_id=2)
    engine, plug = build(graph, NETWORK_RESILIENT.with_(fault_plan=plan))
    before = masters_per_node(engine)
    cut = engine.run(PageRank(), max_iterations=10)
    after = masters_per_node(engine)
    drift = np.abs(cut.values - base.values).max()
    print(f"\npartitioned:  {cut.summary()}")
    print(f"              {plug.fault_report(cut).summary()}")
    print(f"              rollbacks={cut.rollbacks}, "
          f"degraded nodes={cut.degraded_nodes}, "
          f"rebalanced in {cut.rebalance_ms:.1f} simulated ms")
    print(f"              masters/node before: {before.tolist()}")
    print(f"              masters/node after:  {after.tolist()}")
    print(f"              max rank drift vs fault-free: {drift:.2e}")
    assert drift < 1e-9
    assert cut.degraded_nodes == [2]
    assert cut.rebalance_events == 1
    assert after[2] < before[2], "the degraded node must shed vertices"
    print("\nBoth faulty runs converged to the fault-free ranks.")


if __name__ == "__main__":
    main()
