#!/usr/bin/env python
"""Observability: partition quality metrics and run telemetry.

Operating a GX-Plug deployment means answering two questions before and
after each job: *was the graph partitioned well?* (metrics) and *where
did the time go?* (telemetry).  This example scores three partitioning
strategies, runs the job on the best one, and exports the per-superstep
trace to JSON/CSV.
"""

import json
import tempfile
from pathlib import Path

from repro.api import (ClusterSpec, GXPlug, MultiSourceSSSP,
                       PowerGraphEngine, clustering_partition,
                       hash_partition, load_dataset)
from repro.bench import print_table, write_csv, write_json
from repro.graph import greedy_vertex_cut, partition_report


def main() -> None:
    graph = load_dataset("wrn")
    print(f"Planning a 4-node deployment for {graph}\n")

    # --- 1. score the partitioners --------------------------------------
    candidates = {
        "hash": hash_partition(graph, 4),
        "clustering": clustering_partition(graph, 4, seed=3),
        "greedy-vertex-cut": greedy_vertex_cut(graph, 4),
    }
    rows = []
    for name, pgraph in candidates.items():
        report = partition_report(pgraph)
        rows.append((name,
                     f"{report['edge_cut_fraction']:.1%}",
                     f"{report['replication_factor']:.2f}",
                     f"{report['load_imbalance']:.2f}",
                     f"{report['skip_potential']:.1%}"))
    print_table(["strategy", "edge cut", "replication", "imbalance",
                 "skip potential"], rows, title="partition quality")

    best = max(candidates,
               key=lambda n: partition_report(candidates[n])
               ["skip_potential"])
    print(f"best skip potential: {best}\n")

    # --- 2. run on the best partitioning ---------------------------------
    cluster = ClusterSpec(nodes=4, gpus_per_node=1).build()
    plug = GXPlug(cluster)
    engine = PowerGraphEngine(candidates[best], cluster, middleware=plug)
    result = engine.run(MultiSourceSSSP(sources=(0, 1, 2, 3)))
    print(result.summary())
    print(f"computation iterations: {result.computation_iterations} "
          f"(combined into {result.iterations} supersteps)")

    # --- 3. export the trace ------------------------------------------------
    out = Path(tempfile.mkdtemp(prefix="gxplug-trace-"))
    write_json(result, out / "run.json")
    write_csv(result, out / "run.csv")
    doc = json.loads((out / "run.json").read_text())
    heaviest = max(doc["iterations"], key=lambda r: r["total_ms"])
    print(f"\ntrace written to {out}")
    print(f"heaviest superstep: #{heaviest['iteration']} "
          f"({heaviest['total_ms']:.1f} ms, "
          f"{heaviest['active_edges']} active edges, "
          f"{heaviest['local_iterations']} local iterations)")


if __name__ == "__main__":
    main()
