#!/usr/bin/env python
"""Writing a new algorithm on the GX-Plug template.

The paper's promise: "one can design a graph algorithm by implementing
the 3 interfaces of the algorithm template" — MSGGen, MSGMerge and
MSGApply — and the middleware handles devices, pipelining, caching and
synchronization.

This example implements *k-hop reach counting from a seed set* (how many
of the seeds can reach each vertex within the iteration budget), a
primitive used in influence estimation, and runs it distributed on GPUs
without touching any middleware internals.
"""

from typing import Tuple

import numpy as np

from repro.api import (AlgorithmState, AlgorithmTemplate, ClusterSpec,
                       Graph, GXPlug, MessageSet, PowerGraphEngine,
                       load_dataset)


class SeedReachability(AlgorithmTemplate):
    """Bitmask propagation: value = set of seeds that can reach a vertex.

    Messages are integer bitmasks over the seed set; MSGMerge ORs them
    (as sums over disjoint... no — bitwise OR, which is associative,
    commutative and idempotent — exactly what the middleware's
    block-splitting requires).
    """

    name = "seed-reach"
    default_max_iterations = 8
    monotone = True   # OR only adds bits: safe for combined local iters

    def __init__(self, seeds) -> None:
        self.seeds = [int(s) for s in seeds]

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        values = np.zeros(n)
        for bit, seed in enumerate(self.seeds):
            values[seed] = float(int(values[seed]) | (1 << bit))
        active = np.zeros(n, dtype=bool)
        active[self.seeds] = True
        return AlgorithmState(values, active)

    # --- the three paper APIs -------------------------------------------

    def msg_gen(self, src_ids, dst_ids, weights, values) -> np.ndarray:
        return values[src_ids][:, None]

    def msg_gen_local(self, src_rows, weights) -> np.ndarray:
        return src_rows.copy()

    def msg_merge(self, dst_ids, messages) -> MessageSet:
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        merged = np.zeros((uniq.size, 1), dtype=np.int64)
        np.bitwise_or.at(merged, inverse, messages.astype(np.int64))
        return MessageSet(uniq, merged.astype(np.float64))

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        return self.msg_merge(np.concatenate([a.ids, b.ids]),
                              np.concatenate([a.data, b.data]))

    def msg_apply(self, values, merged) -> Tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        old = new_values[merged.ids].astype(np.int64)
        incoming = merged.data[:, 0].astype(np.int64)
        updated = old | incoming
        changed = merged.ids[updated != old]
        new_values[merged.ids] = updated.astype(np.float64)
        return new_values, changed

    # --- reference for verification --------------------------------------

    def reference(self, graph: Graph, iterations: int = 8) -> np.ndarray:
        values = self.init_state(graph).values
        for _ in range(iterations):
            msgs = self.msg_gen(graph.src, graph.dst, graph.weights,
                                values)
            merged = self.msg_merge(graph.dst, msgs)
            values, changed = self.msg_apply(values, merged)
            if changed.size == 0:
                break
        return values


def main() -> None:
    graph = load_dataset("wiki-topcats")
    seeds = [0, 7, 42, 99, 512]
    print(f"Seed-reachability over {graph}, seeds={seeds}\n")

    cluster = ClusterSpec(nodes=4, gpus_per_node=1).build()
    plug = GXPlug(cluster)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    alg = SeedReachability(seeds)
    result = engine.run(alg)
    print(result.summary())

    # distributed result equals the single-machine reference
    expected = SeedReachability(seeds).reference(graph)
    assert np.array_equal(result.values, expected)

    counts = np.array([bin(int(v)).count("1") for v in result.values])
    for k in range(len(seeds), 0, -1):
        n_k = int((counts >= k).sum())
        print(f"vertices reachable from >= {k} seeds within "
              f"{alg.default_max_iterations} hops: {n_k}")


if __name__ == "__main__":
    main()
