#!/usr/bin/env python
"""Fault tolerance: surviving a daemon crash mid-run.

A deterministic fault plan kills one daemon's device context during
superstep 3 of a PageRank job.  The middleware detects the failure,
backs off, respawns the daemon (fresh shared memory segment, device
re-initialization), and the run completes with ranks identical to the
fault-free execution.  A second, nastier plan exhausts the retry budget
entirely: the engine rolls back to the last superstep checkpoint and
degrades the dead node to its host (CPU) compute path.
"""

import numpy as np

from repro.api import (
    CRASH,
    FULL,
    RESILIENT,
    ClusterSpec,
    FaultPlan,
    GXPlug,
    PageRank,
    PowerGraphEngine,
    load_dataset,
)


def run(graph, config):
    cluster = ClusterSpec(nodes=2, gpus_per_node=1).build()
    plug = GXPlug(cluster, config)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    return engine.run(PageRank(), max_iterations=10), plug


def main() -> None:
    graph = load_dataset("wrn")
    print(f"PageRank on {graph}, 2 nodes x 1 GPU\n")

    # --- 1. the fault-free reference -------------------------------------
    base, _ = run(graph, FULL)
    print(f"fault-free:   {base.summary()}")

    # --- 2. daemon crash at superstep 3, transparent recovery ------------
    crash = FaultPlan.single(CRASH, superstep=3)
    crashed, plug = run(graph, FULL.with_(fault_plan=crash))
    drift = np.abs(crashed.values - base.values).max()
    print(f"with crash:   {crashed.summary()}")
    print(f"              {plug.fault_report(crashed).summary()}")
    print(f"              max rank drift vs fault-free: {drift:.2e}")
    assert drift < 1e-9, "recovery must not change the results"

    # --- 3. a persistent fault: checkpoint rollback + degradation --------
    # The crash re-arms on every respawn, so the retry budget runs out;
    # RESILIENT checkpoints every 2 supersteps and degrades the dead
    # node to the host path instead of failing the job.
    persistent = FaultPlan.single(CRASH, superstep=4, repeat=10)
    degraded, plug = run(graph, RESILIENT.with_(fault_plan=persistent))
    drift = np.abs(degraded.values - base.values).max()
    print(f"\npersistent:   {degraded.summary()}")
    print(f"              {plug.fault_report(degraded).summary()}")
    print(f"              rollbacks={degraded.rollbacks}, "
          f"degraded nodes={degraded.degraded_nodes}, "
          f"wasted {degraded.wasted_ms:.1f} simulated ms")
    print(f"              max rank drift vs fault-free: {drift:.2e}")
    assert drift < 1e-9
    assert degraded.degraded_nodes == [0]
    print("\nBoth faulty runs converged to the fault-free ranks.")


if __name__ == "__main__":
    main()
