#!/usr/bin/env python
"""Social-network analysis: communities and influencers at scale.

The workload the paper's introduction motivates: a social graph (the
Orkut twin) analysed on a GPU-accelerated distributed cluster.  Runs
Label Propagation for community detection and PageRank for influencer
ranking on *both* upper systems (GraphX-like BSP and PowerGraph-like
GAS) through the same middleware — demonstrating §IV-B's claim that one
algorithm implementation serves both computation models.
"""

import numpy as np

from repro.api import (
    ClusterSpec,
    GXPlug,
    GraphXEngine,
    LabelPropagation,
    PageRank,
    PowerGraphEngine,
    load_dataset,
)


def analyse(engine_cls, runtime, graph):
    spec = ClusterSpec(nodes=4, gpus_per_node=1, runtime=runtime)
    cluster = spec.build()
    plug = GXPlug(cluster)
    engine = engine_cls.build(graph, cluster, middleware=plug)

    communities = engine.run(LabelPropagation(), max_iterations=15)

    cluster2 = spec.build()
    plug2 = GXPlug(cluster2)
    engine2 = engine_cls.build(graph, cluster2, middleware=plug2)
    ranks = engine2.run(PageRank(), max_iterations=10)
    return communities, ranks


def main() -> None:
    graph = load_dataset("orkut")
    print(f"Analysing {graph}\n")

    results = {}
    for name, engine_cls, runtime in (
            ("GraphX (BSP/JVM)", GraphXEngine, "jvm"),
            ("PowerGraph (GAS)", PowerGraphEngine, "native")):
        communities, ranks = analyse(engine_cls, runtime, graph)
        results[name] = (communities, ranks)
        labels = communities.values
        n_comms = np.unique(labels).size
        top = np.argsort(ranks.values)[::-1][:5]
        print(f"== {name}")
        print(f"   communities: {n_comms} "
              f"({communities.summary()})")
        print(f"   influencers: {top.tolist()} "
              f"({ranks.summary()})")
        largest = np.bincount(labels.astype(int)).max()
        print(f"   largest community: {largest} members\n")

    # both computation models agree on the analysis
    (gx_comm, gx_rank) = results["GraphX (BSP/JVM)"]
    (pg_comm, pg_rank) = results["PowerGraph (GAS)"]
    assert np.allclose(gx_comm.values, pg_comm.values)
    assert np.allclose(gx_rank.values, pg_rank.values)
    print("BSP and GAS engines produced identical analyses "
          "(same template, different call orders).")


if __name__ == "__main__":
    main()
