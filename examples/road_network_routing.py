#!/usr/bin/env python
"""Road-network routing: multi-source shortest paths with sync skipping.

Traffic-style workload on the WRN road-network twin: distances from four
depots to every intersection, computed distributedly.  Road networks are
exactly the regime where synchronization skipping shines (clustered,
long-diameter graphs, §III-B3): with a locality-preserving partition,
most computation iterations complete inside the nodes and the upper
system's synchronization is skipped.
"""

import numpy as np

from repro.api import (ClusterSpec, GXPlug, MiddlewareConfig,
                       MultiSourceSSSP, PowerGraphEngine,
                       clustering_partition, load_dataset)

DEPOTS = (0, 100, 5000, 20000)


def route(graph, skip: bool):
    cluster = ClusterSpec(nodes=4, gpus_per_node=1).build()
    config = MiddlewareConfig(sync_skip=skip)
    plug = GXPlug(cluster, config)
    pgraph = clustering_partition(graph, 4, seed=3)
    engine = PowerGraphEngine(pgraph, cluster, middleware=plug)
    return engine.run(MultiSourceSSSP(sources=DEPOTS))


def main() -> None:
    graph = load_dataset("wrn")
    depots = [d for d in DEPOTS if d < graph.num_vertices]
    print(f"Routing from {len(depots)} depots over {graph}\n")

    plain = route(graph, skip=False)
    skipping = route(graph, skip=True)

    assert np.allclose(plain.values, skipping.values, equal_nan=True)
    decrease = 1.0 - skipping.iterations / plain.iterations
    print(f"without skipping: {plain.iterations:3d} supersteps, "
          f"{plain.total_ms:8.1f} ms simulated")
    print(f"with skipping   : {skipping.iterations:3d} supersteps, "
          f"{skipping.total_ms:8.1f} ms simulated")
    print(f"iteration decrease: {decrease:.0%}  "
          f"(paper reports 60-90% on real graphs)")
    print(f"locally combined iterations: "
          f"{skipping.computation_iterations} computation iterations "
          f"collapsed into {skipping.iterations} supersteps\n")

    dist = skipping.values
    reachable = np.isfinite(dist[:, 0])
    print(f"intersections reachable from depot {DEPOTS[0]}: "
          f"{int(reachable.sum())} / {graph.num_vertices}")
    far = int(np.argmax(np.where(reachable, dist[:, 0], -1)))
    print(f"farthest reachable intersection: #{far} "
          f"at distance {dist[far, 0]:.1f}")


if __name__ == "__main__":
    main()
