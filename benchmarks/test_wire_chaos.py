"""Wire chaos soak: kill the socket server mid-stream, repeatedly, and
demand clients reconnect into a world indistinguishable from one that
never crashed.

Per seed, the soak serves the query mix over a real TCP socket once
uninterrupted (the baseline), then again with the server killed after
a seeded number of scheduling rounds, three times — abruptly, no drain,
no goodbye frame, the journal torn mid-flight.  After every kill the
service is rebuilt with ``recover()``, a new server generation rebinds
the same port, and the same client reconnects and resubmits every job
under its original idempotency key.  The acceptance bars:

* **bit-identity** — every job's wire-delivered values are
  byte-identical to the uninterrupted baseline's, whichever instants
  the kills landed on (JSON round-trips float64 exactly);
* **exactly-once** — the journal ends with exactly one ``submitted``
  record per idempotency key: every resubmit deduped, nothing ran
  twice, nothing was lost;
* **resume beats cold restart** — every checkpoint-resumed job
  recomputed strictly fewer supersteps than its cold baseline run, and
  at least one job across the soak exercises that path.
"""

import os

from repro.bench import print_table, run_wire_chaos

HEADERS = ["seed", "kills", "generations", "jobs", "resumed", "deduped",
           "reconnects", "identical", "exactly once", "strictly fewer",
           "steps saved"]

# CI trims the soak to two seeds via WIRE_CHAOS_SEEDS=5,17
SEEDS = tuple(
    int(s) for s in os.environ.get("WIRE_CHAOS_SEEDS", "5,17,29")
    .split(","))


def test_wire_chaos(tmp_path):
    rows = run_wire_chaos(seeds=SEEDS, journal_dir=str(tmp_path))
    print_table(HEADERS, rows, title="wire chaos")
    assert len(rows) == len(SEEDS)

    for (seed, kills, generations, jobs, resumed, deduped, reconnects,
         identical, exactly_once, strictly_fewer, steps_saved) in rows:
        assert kills >= 3, f"seed {seed}: soak must kill >= 3 times"
        assert generations == kills + 1, (
            f"seed {seed}: expected one server generation per kill "
            f"plus the final one, got {generations}")
        assert identical, (
            f"seed {seed}: wire-delivered values diverge from the "
            f"uninterrupted baseline after {kills} kills")
        assert exactly_once, (
            f"seed {seed}: an idempotency key mapped to zero or "
            f"multiple executed jobs")
        assert strictly_fewer, (
            f"seed {seed}: a checkpoint-resumed job recomputed at "
            f"least as many supersteps as its cold baseline run")
        assert reconnects >= 1, (
            f"seed {seed}: the client never had to reconnect — the "
            f"kills missed every client interaction")
        if resumed:
            assert steps_saved > 0, (
                f"seed {seed}: {resumed} job(s) resumed but saved "
                f"no supersteps")

    # the soak must actually exercise checkpoint resume and dedupe
    # somewhere, else the bars above pass vacuously
    assert sum(row[4] for row in rows) >= 1, \
        "no seed resumed a job from a checkpoint"
    assert sum(row[5] for row in rows) >= 1, \
        "no seed deduped a resubmit against the journal"
