"""Fault soak: seeded random campaigns at increasing rates.

`FaultPlan.random` sweeps over the recoverable network kinds on the
NETWORK_RESILIENT stack.  Three properties must hold: every campaign
converges to the fault-free values, the recovery overhead grows
linearly with the number of injected faults (each fault pays a bounded,
roughly constant recovery cost — no compounding), and the overhead is
exactly the transport's accounted recovery time (nothing leaks into
other buckets).

``node_partition`` is deliberately outside the sweep: it permanently
degrades a node, so its cost is a step (rollback + rebalance + slower
tail), not a per-fault slope — `tests/fault/test_network_faults.py`
covers it.
"""

import pytest

from repro.bench import print_table, run_fault_soak

#: Per-fault recovery overhead may vary with the drawn kind mix (a
#: straggler delay costs more than a deduped duplicate) but must stay in
#: one band — a super-linear blowup would push the ratio far past this.
LINEARITY_BAND = 4.0


def soak_table(rows, title):
    print_table(
        ["rate", "injected", "sim ms", "overhead ms", "retransmits",
         "net wasted ms", "rollbacks"],
        [(r, n, round(t, 1), round(o, 2), x, round(w, 2), rb)
         for r, n, t, o, x, w, rb in rows],
        title=title)


def test_fault_soak_overhead_grows_linearly(once):
    rows = once(run_fault_soak)
    soak_table(rows, "Fault soak: network-kind campaigns (seed 17)")
    base = rows[0]
    assert base[0] == 0.0 and base[1] == 0
    assert base[3] == 0.0 and base[5] == 0.0   # rate 0: zero overhead
    faulted = [r for r in rows if r[1] > 0]
    assert len(faulted) >= 3
    counts = [r[1] for r in faulted]
    overheads = [r[3] for r in faulted]
    assert counts == sorted(counts)
    assert overheads == sorted(overheads)       # more faults, more cost
    per_fault = [o / n for n, o in zip(counts, overheads)]
    assert max(per_fault) / min(per_fault) < LINEARITY_BAND, (
        f"per-fault recovery overhead is not linear: {per_fault}")
    for _, _, _, overhead, _, net_wasted, rollbacks in faulted:
        # all overhead is accounted transport recovery time, and the
        # recoverable kinds never escalate to a rollback
        assert overhead == pytest.approx(net_wasted, abs=1e-6)
        assert rollbacks == 0


def test_fault_soak_smoke(once):
    """The CI smoke slice: one tiny fixed-seed sweep, same invariants."""
    rows = once(run_fault_soak, rates=(0.0, 0.25), seed=5, max_iter=6)
    soak_table(rows, "Fault soak smoke (seed 5)")
    assert rows[0][3] == 0.0
    assert rows[1][1] > 0                       # the campaign drew faults
    assert rows[1][3] > 0                       # and recovery cost time
    assert rows[1][3] == pytest.approx(rows[1][5], abs=1e-6)
