"""Shared helpers for the figure benchmarks.

Every bench runs its experiment exactly once (the results are
deterministic simulated times — repetition adds nothing), prints the
paper-style table, and asserts the paper's qualitative shape.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
