"""Fig. 10 — effect of the pipeline shuffle.

Paper shapes: "Pipeline*" (Lemma-1 optimal block size) achieves 30-50%
acceleration over "Without pipeline", and 20-30% over "Pipeline" with a
fixed block size.
"""

from repro.bench import print_table, run_fig10


def test_fig10(once):
    rows = once(run_fig10)
    print_table(["algorithm", "variant", "sim ms"], rows,
                title="Fig. 10: pipeline shuffle variants (Orkut)")
    by = {}
    for alg, var, ms in rows:
        by.setdefault(alg, {})[var] = ms
    for alg, d in by.items():
        star, fixed, without = d["pipeline*"], d["pipeline"], d["without"]
        assert star < fixed < without, alg
        vs_none = 1.0 - star / without
        vs_fixed = 1.0 - star / fixed
        # paper: 30-50% over no pipeline (allow a little slack each side)
        assert 0.25 <= vs_none <= 0.60, (alg, vs_none)
        # paper: 20-30% over the fixed block size
        assert 0.04 <= vs_fixed <= 0.35, (alg, vs_fixed)
