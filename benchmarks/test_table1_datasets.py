"""Table I — datasets.

Prints the paper's dataset inventory next to the synthetic twins and
checks the twins preserve the properties the experiments rely on.
"""

from repro.bench import print_table, run_table1


def test_table1(once):
    rows = once(run_table1)
    print_table(
        ["dataset", "paper |V|", "paper |E|", "type",
         "twin |V|", "twin |E|", "twin deg"],
        rows, title="Table I: datasets (paper vs 1/1000-scale twins)")
    assert len(rows) == 6
    by_name = {r[0]: r for r in rows}
    # Orkut has the highest average degree (the paper's default dataset)
    degrees = {name: r[6] for name, r in by_name.items()}
    assert max(degrees, key=degrees.get) == "orkut"
    # the two scalability graphs are the largest twins
    sizes = {name: r[5] for name, r in by_name.items()}
    ordered = sorted(sizes, key=sizes.get)
    assert set(ordered[-2:]) == {"twitter", "uk-2007-02"}
    # road network stays sparse
    assert by_name["wrn"][6] < 3.0
