"""Fig. 14 — middleware cost ratio vs cluster size.

Paper shapes: the ratio of middleware time to whole-system time
decreases as nodes increase (the engine's synchronization overhead
gradually dominates); PageRank — the high-operational-intensity
workload — is around 10% at 32 nodes, and LP (fully iterative, low
operational intensity) sits above PageRank.
"""

from repro.bench import print_table, run_fig14


def test_fig14(once):
    rows = once(run_fig14)
    print_table(["engine", "algorithm", "nodes", "middleware ratio"],
                rows, title="Fig. 14: middleware cost ratio (Orkut)")
    series = {}
    for eng, alg, n, ratio in rows:
        series.setdefault((eng, alg), {})[n] = ratio

    for (eng, alg), curve in series.items():
        nodes = sorted(curve)
        # downhill trend: the large-cluster end is clearly below the
        # small-cluster end
        assert curve[nodes[-1]] < curve[nodes[1]], (eng, alg)
        # ratios stay sane (the paper's band is 10-20% mid-range)
        assert 0.02 <= curve[nodes[-1]] <= 0.45, (eng, alg)

    # PageRank ~10% at 32 nodes on PowerGraph (paper's headline number)
    assert series[("powergraph", "pagerank")][32] < 0.15
    # LP's ratio exceeds PageRank's on GraphX (low operational intensity;
    # on PowerGraph our frontier-driven LP converges early, so the
    # comparison is only meaningful on the full-scan engine)
    assert series[("graphx", "lp")][32] > \
        series[("graphx", "pagerank")][32]
