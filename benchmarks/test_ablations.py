"""Ablation bench: each middleware optimization toggled off the FULL
configuration, one at a time (the DESIGN.md design-choice ablations).

Also covers §IV-B1's JNI transmitter claim ("about 3 to 10 times of
improvement ... compared to direct target function invoking").
"""

import numpy as np

from repro.algorithms import MultiSourceSSSP
from repro.bench import print_table
from repro.cluster import JVM_RUNTIME, make_cluster
from repro.core import FULL, GXPlug, MiddlewareConfig
from repro.engines import GraphXEngine, improvement_factor
from repro.graph import load_dataset

ABLATIONS = {
    "full": FULL,
    "-pipeline": FULL.with_(pipeline=False),
    "-optimal-block": FULL.with_(block_size=1024),
    "-sync-cache": FULL.with_(sync_cache=False, lazy_upload=False,
                              sync_skip=False),
    "-lazy-upload": FULL.with_(lazy_upload=False),
    "-sync-skip": FULL.with_(sync_skip=False),
    "-isolation": FULL.with_(runtime_isolation=False),
}


def run_ablations():
    graph = load_dataset("orkut")
    rows = []
    reference = None
    for label, config in ABLATIONS.items():
        cluster = make_cluster(4, gpus_per_node=1, runtime=JVM_RUNTIME)
        plug = GXPlug(cluster, config)
        engine = GraphXEngine.build(graph, cluster, middleware=plug)
        res = engine.run(MultiSourceSSSP(sources=(0, 1, 2, 3)))
        if reference is None:
            reference = res.values
        else:
            assert np.allclose(res.values, reference, equal_nan=True), label
        rows.append((label, res.total_ms))
    return rows


def test_ablations(once):
    rows = once(run_ablations)
    full_ms = rows[0][1]
    table = [(label, ms, ms / full_ms) for label, ms in rows]
    print_table(["config", "sim ms", "vs full"], table,
                title="Ablations: GraphX+GPU SSSP-BF on Orkut")
    ms = dict(rows)
    # every single optimization contributes: removing it costs time
    for label, t in rows[1:]:
        assert t >= full_ms * 0.98, label
    # the heavyweights
    assert ms["-sync-cache"] > full_ms * 1.2
    assert ms["-pipeline"] > full_ms * 1.1
    assert ms["-isolation"] > full_ms * 1.2


def test_jni_transmitter_improvement(once):
    factor = once(improvement_factor, 100_000)
    print(f"\nJNI transmitter + data packager vs naive invoking: "
          f"{factor:.1f}x (paper: 3-10x)")
    assert 3.0 <= factor <= 10.0
