"""Fig. 8 — acceleration of GraphX / PowerGraph by plugged accelerators.

Paper shapes asserted:

* GPU+engine and CPU+engine beat the bare engine on every workload;
* GPU+ beats CPU+ (more compute capacity);
* GraphX gains more than PowerGraph (slower JVM host);
* GPU+GraphX reaches the high teens on its best workload (paper: "up to
  20x acceleration in LP algorithm") and a solid factor on SSSP-BF
  (paper: "up to 7x").
"""

from repro.bench import print_table, run_fig8


def test_fig8(once):
    rows = once(run_fig8)
    _assert_shapes(rows, "orkut")
    print_table(["dataset", "engine", "algorithm", "variant", "sim ms",
                 "speedup"], rows,
                title="Fig. 8: engine x accelerator acceleration (Orkut)")


def test_fig8_other_datasets(once):
    """The paper varies "datasets of different distributions and scales";
    the acceleration ordering must hold beyond the default Orkut."""
    rows = once(run_fig8, datasets=("wiki-topcats", "livejournal"))
    print_table(["dataset", "engine", "algorithm", "variant", "sim ms",
                 "speedup"], rows, title="Fig. 8 on more datasets")
    for ds in ("wiki-topcats", "livejournal"):
        ds_rows = [r for r in rows if r[0] == ds]
        speedups = {(r[1], r[2], r[3]): r[5] for r in ds_rows}
        for engine in ("graphx", "powergraph"):
            for alg in ("pagerank", "sssp-bf", "lp"):
                assert speedups[(engine, alg, "gpu+")] > 1.0, (ds, engine,
                                                               alg)
                assert speedups[(engine, alg, "cpu+")] > 1.0, (ds, engine,
                                                               alg)
                assert speedups[(engine, alg, "gpu+")] > \
                    speedups[(engine, alg, "cpu+")], (ds, engine, alg)


def _assert_shapes(rows, dataset):
    speedups = {(r[1], r[2], r[3]): r[5] for r in rows}
    for engine in ("graphx", "powergraph"):
        for alg in ("pagerank", "sssp-bf", "lp"):
            cpu = speedups[(engine, alg, "cpu+")]
            gpu = speedups[(engine, alg, "gpu+")]
            assert cpu > 1.0, (engine, alg)
            assert gpu > 1.0, (engine, alg)
            assert gpu > cpu, (engine, alg)

    # GraphX benefits more than PowerGraph from the same accelerators
    for alg in ("pagerank", "lp"):
        assert speedups[("graphx", alg, "gpu+")] > \
            speedups[("powergraph", alg, "gpu+")]

    # headline factors in the paper's neighbourhood
    best_graphx_gpu = max(speedups[("graphx", alg, "gpu+")]
                          for alg in ("pagerank", "sssp-bf", "lp"))
    assert best_graphx_gpu > 12.0          # paper: up to 20x
    assert speedups[("graphx", "sssp-bf", "gpu+")] > 4.0   # paper: 7x
    best_graphx_cpu = max(speedups[("graphx", alg, "cpu+")]
                          for alg in ("pagerank", "sssp-bf", "lp"))
    assert 3.0 < best_graphx_cpu < 12.0    # paper: 4-5x
