"""Chaos matrix: seeded campaigns across all three fault families.

The CI matrix fans one family per job — daemon-edge crashes, network
faults, gray slowdowns — each swept over three seeds on the resilient
stack.  Two invariants per cell:

* values always converge to the fault-free run (asserted inside
  :func:`~repro.bench.runner.run_fault_soak` at 1e-9);
* the recovery overhead is bounded: never meaningfully negative, never
  more than ``MAX_OVERHEAD_FACTOR`` times the clean runtime — a
  recovery path that triples the job is a failed recovery.

Select one family with ``-k`` (``-k crash`` / ``-k net`` /
``-k slowdown`` / ``-k link_slow``), as the CI matrix does.  The
``link_slow`` family needs concrete links to inflate, so its campaigns
run over a two-rack topology; every other family keeps the historical
flat interconnect.
"""

import pytest

from repro.bench import print_table, run_fault_soak
from repro.fault import (CRASH, LINK_FLAKY, LINK_SLOW, NET_DROP, NET_DUP,
                         SLOWDOWN, SYNC_FAIL)

SEEDS = (11, 23, 47)
FAMILIES = {
    "crash": (CRASH,),
    "net": (NET_DROP, NET_DUP, SYNC_FAIL),
    "slowdown": (SLOWDOWN,),
    "link_slow": (LINK_SLOW, LINK_FLAKY),
}
#: Link faults ride concrete uplinks: those campaigns get a topology.
TOPOLOGIES = {"link_slow": "rack:2x1"}
RATE = 0.3
MAX_ITER = 6

#: Recovered campaigns may cost extra time but never multiples of the
#: job: overhead <= (factor - 1) * clean runtime.
MAX_OVERHEAD_FACTOR = 3.0


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_chaos_matrix(once, family):
    kinds = FAMILIES[family]

    def sweep():
        rows = []
        for seed in SEEDS:
            for row in run_fault_soak(rates=(0.0, RATE), seed=seed,
                                      kinds=kinds, max_iter=MAX_ITER,
                                      topology=TOPOLOGIES.get(family)):
                rows.append((seed,) + row)
        return rows

    rows = once(sweep)
    print_table(
        ["seed", "rate", "injected", "sim ms", "overhead ms",
         "retransmits", "net wasted ms", "rollbacks"],
        [(seed, r, n, round(t, 1), round(o, 2), x, round(w, 2), rb)
         for seed, r, n, t, o, x, w, rb in rows],
        title=f"Chaos matrix: {family} family, seeds {SEEDS}")

    injected_total = 0
    for seed in SEEDS:
        cell = {r[1]: r for r in rows if r[0] == seed}
        clean_ms = cell[0.0][3]
        faulted = cell[RATE]
        injected_total += faulted[2]
        overhead = faulted[4]
        assert overhead >= -1e-6, (
            f"seed {seed}: negative overhead {overhead}")
        assert overhead <= (MAX_OVERHEAD_FACTOR - 1.0) * clean_ms, (
            f"seed {seed}: recovery overhead {overhead:.1f} ms exceeds "
            f"{MAX_OVERHEAD_FACTOR}x the clean {clean_ms:.1f} ms run")
    # across three seeds the family must actually fire
    assert injected_total > 0
