"""Link gray-failure soak: topology-aware rebalancing recovers makespan.

A two-rack cluster with a deliberately thin spine runs strict-sync
PageRank while the cross-rack uplink is inflated 4x for 60 collectives
— a congested spine, the network's textbook gray failure (fragments
arrive late, values never corrupt).  Four variants measure the stack:

* per-link detection alone is *free*: the clean blind/aware pair is
  bit-identical in values and simulated time (asserted inside the
  runner, re-checked here on the totals);
* topology-blind, the barriers eat the full inflation;
* topology-aware (per-link EWMA verdicts + link-adjusted Lemma-2
  online repartitioning), at least half of the lost makespan is
  recovered, with fingerprints in the counters (link verdicts,
  coefficient updates, online rebalances).
"""

from repro.bench import print_table, run_topology_soak

#: The aware response must recover at least this multiple of the lost
#: makespan: lost(blind) >= RECOVERY_FACTOR * lost(aware).
RECOVERY_FACTOR = 2.0


def soak_table(rows):
    print_table(
        ["variant", "sim ms", "lost ms", "link verdicts", "link slow ms",
         "coeff updates", "online rebalances"],
        [(v, round(t, 1), round(l, 2), n, round(s, 1), c, r)
         for v, t, l, n, s, c, r in rows],
        title="Topology soak: cross-rack uplink slowed 4x for 60 passes")


def test_topology_soak_recovers_lost_makespan(once):
    rows = once(run_topology_soak)
    soak_table(rows)
    by = {row[0]: row[1:] for row in rows}
    clean_blind = by["clean/topology-blind"]
    clean_aware = by["clean/topology-aware"]
    slow_blind = by["link-slow/topology-blind"]
    slow_aware = by["link-slow/topology-aware"]

    # per-link detection alone changes nothing on a healthy run
    assert clean_aware[0] == clean_blind[0]
    assert clean_aware[2] == 0 and clean_aware[3] == 0.0

    # the slow uplink hurts, and the aware response claws most back
    lost_blind, lost_aware = slow_blind[1], slow_aware[1]
    assert lost_blind > 0
    assert lost_aware >= 0
    assert lost_blind >= RECOVERY_FACTOR * lost_aware, (
        f"topology-aware rebalancing recovered only "
        f"{lost_blind - lost_aware:.1f} of {lost_blind:.1f} lost ms")

    # every response left its fingerprint
    assert slow_blind[2] >= 1                    # detection runs anyway
    assert slow_blind[4] == 0                    # ...but never rebalances
    assert slow_blind[5] == 0
    assert slow_aware[2] >= 1                    # link verdicts
    assert slow_aware[3] > 0                     # inflation was charged
    assert slow_aware[4] > 0                     # coefficient updates
    assert slow_aware[5] >= 1                    # online repartitions
