"""Fig. 11 — synchronization caching (a) and skipping (b).

(a) SSSP-BF with the LRU cache + lazy upload on/off: GraphX gains the
    most (paper: 2-3x; full triplet scans re-read unchanged vertices),
    PowerGraph gains less (paper: "up to 150%"; frontier-driven gather).
(b) Iteration-count decrease from synchronization skipping: large
    (60-90%) on clustered real graphs with locality-preserving
    partitions, insignificant on the uniform synthetic graph.
"""

from repro.bench import print_table, run_fig11a, run_fig11b


def test_fig11a(once):
    rows = once(run_fig11a)
    print_table(["engine", "dataset", "cache", "total ms",
                 "steady ms/iter", "hit rate"], rows,
                title="Fig. 11(a): synchronization caching (SSSP-BF)")
    steady = {(r[0], r[1], r[2]): r[4] for r in rows}
    total = {(r[0], r[1], r[2]): r[3] for r in rows}
    for ds in ("synthetic", "real"):
        gx = steady[("graphx", ds, "off")] / steady[("graphx", ds, "on")]
        pg = steady[("powergraph", ds, "off")] / \
            steady[("powergraph", ds, "on")]
        # caching always helps, and GraphX gains more than PowerGraph
        assert gx > 1.5, (ds, gx)          # paper: 2-3x
        assert 1.0 < pg < 2.0, (ds, pg)    # paper: up to 1.5x
        assert gx > pg, ds
        assert total[("graphx", ds, "on")] < total[("graphx", ds, "off")]


def test_fig11b(once):
    rows = once(run_fig11b)
    print_table(["dataset", "iters (no skip)", "iters (skip)", "decrease"],
                rows,
                title="Fig. 11(b): synchronization skipping (SSSP-BF)")
    dec = {r[0]: r[3] for r in rows}
    # real clustered graphs: huge decrease (paper: 60-90%)
    assert dec["real-wrn"] >= 0.6
    # synthetic uniform graph: insignificant (paper's observation)
    assert dec["synthetic"] < 0.3
    assert dec["real-wrn"] > dec["synthetic"]
    assert dec["real-clustered"] > dec["synthetic"]
