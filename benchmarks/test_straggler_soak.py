"""Gray-failure soak: the straggler responses recover lost makespan.

One daemon of four is slowed 4x for six passes (heartbeating the whole
time — a textbook gray failure).  Four variants of the same PageRank
job measure the stack:

* detection alone is *free*: the clean detect-on/off pair is
  bit-identical in values and simulated time (asserted inside the
  runner, re-checked here on the totals);
* without the gray layer the BSP barriers eat the full slowdown;
* with detection + speculative re-execution + online Lemma-2
  re-estimation, at least half of the lost makespan — in practice far
  more — is recovered, with the recovery visible in the counters
  (verdicts, speculative wins, coefficient updates, repartitions).
"""

from repro.bench import print_table, run_straggler_soak

#: The gray responses must recover at least this multiple of the
#: detect-on loss: lost(detect-off) >= RECOVERY_FACTOR * lost(detect-on).
RECOVERY_FACTOR = 2.0


def soak_table(rows):
    print_table(
        ["variant", "sim ms", "lost ms", "verdicts", "speculation",
         "coeff updates", "online rebalances"],
        [(v, round(t, 1), round(l, 2), n, s, c, r)
         for v, t, l, n, s, c, r in rows],
        title="Straggler soak: 1 of 4 daemons slowed 4x for 6 passes")


def test_straggler_soak_recovers_lost_makespan(once):
    rows = once(run_straggler_soak)
    soak_table(rows)
    by = {row[0]: row[1:] for row in rows}
    clean_off = by["clean/detect-off"]
    clean_on = by["clean/detect-on"]
    slow_off = by["slowdown/detect-off"]
    slow_on = by["slowdown/detect-on"]

    # detection alone changes nothing on a healthy run
    assert clean_on[0] == clean_off[0]
    assert clean_on[2] == 0 and clean_on[3] == "0W/0L"

    # the slowdown hurts, and the responses claw most of it back
    lost_off, lost_on = slow_off[1], slow_on[1]
    assert lost_off > 0
    assert lost_on >= 0
    assert lost_off >= RECOVERY_FACTOR * lost_on, (
        f"gray responses recovered only {lost_off - lost_on:.1f} of "
        f"{lost_off:.1f} lost ms")

    # every response left its fingerprint
    assert slow_off[2] == 0                       # detection was off
    assert slow_on[2] >= 1                        # straggler verdicts
    wins = int(slow_on[3].split("W")[0])
    assert wins >= 1                              # speculation won
    assert slow_on[4] > 0                         # coefficient updates
    assert slow_on[5] >= 1                        # online repartitions
