"""Fig. 9 — scalability against Gunrock and Lux.

(a) Orkut PageRank vs #GPUs: Gunrock best at 1 GPU; Lux wins at <=2;
    GX-Plug wins beyond 2 with a growing lead.
(b) Twitter / UK-2007 SSSP-BF: Gunrock overflows; GX-Plug beats Lux at
    high GPU counts (paper: ~40% faster on Twitter @ 4 GPUs); UK-2007
    has no 4-GPU result for any system (memory).
(c) GX-Plug across algorithms: runtime decreases with #GPUs (sublinear).
(d) Mixing CPU/GPU accelerators: more capacity, less runtime.
"""

from repro.bench import (
    print_table,
    run_fig9a,
    run_fig9b,
    run_fig9c,
    run_fig9d,
)


def test_fig9a(once):
    rows = once(run_fig9a)
    print_table(["system", "gpus", "sim ms"], rows,
                title="Fig. 9(a): Orkut PageRank vs #GPUs")
    ms = {(r[0], r[1]): r[2] for r in rows}
    # Gunrock best on the single-GPU setting
    assert ms[("gunrock", 1)] < ms[("lux", 1)]
    assert ms[("gunrock", 1)] < ms[("gx-plug", 1)]
    # Lux leads at 2 GPUs, GX-Plug from 3 on, lead growing
    assert ms[("lux", 2)] < ms[("gx-plug", 2)]
    assert ms[("gx-plug", 3)] <= ms[("lux", 3)]
    assert ms[("gx-plug", 4)] < ms[("lux", 4)]
    lead3 = ms[("lux", 3)] - ms[("gx-plug", 3)]
    lead4 = ms[("lux", 4)] - ms[("gx-plug", 4)]
    assert lead4 > lead3
    # GX-Plug runtime decreases with GPUs
    gx = [ms[("gx-plug", g)] for g in (1, 2, 3, 4)]
    assert all(a > b for a, b in zip(gx, gx[1:]))


def test_fig9b(once):
    rows = once(run_fig9b)
    print_table(["dataset", "system", "gpus", "sim ms"], rows,
                title="Fig. 9(b): large graphs (SSSP-BF), OOM = no result")
    ms = {(r[0], r[1], r[2]): r[3] for r in rows}
    # Gunrock cannot hold either graph
    assert ms[("twitter", "gunrock", 1)] is None
    assert ms[("uk-2007-02", "gunrock", 1)] is None
    # UK-2007 has no 4-GPU result for any distributed system
    assert ms[("uk-2007-02", "gx-plug", 4)] is None
    assert ms[("uk-2007-02", "lux", 4)] is None
    # ... but runs at 2-3 GPUs
    assert ms[("uk-2007-02", "gx-plug", 2)] is not None
    assert ms[("uk-2007-02", "gx-plug", 3)] is not None
    # GX-Plug beats Lux at 3+ GPUs on both datasets (in the paper it is
    # ahead throughout; our Lux keeps a lead at 2 GPUs — see
    # EXPERIMENTS.md)
    for ds, gmax in (("twitter", 4), ("uk-2007-02", 3)):
        for g in (3, gmax):
            assert ms[(ds, "gx-plug", g)] < ms[(ds, "lux", g)], (ds, g)
    # paper: "about 40% faster" on Twitter with 4 GPUs
    gx4 = ms[("twitter", "gx-plug", 4)]
    lux4 = ms[("twitter", "lux", 4)]
    assert 1.25 < lux4 / gx4 < 1.8


def test_fig9c(once):
    rows = once(run_fig9c)
    print_table(["algorithm", "gpus", "sim ms"], rows,
                title="Fig. 9(c): GX-Plug scalability across workloads")
    series = {}
    for alg, g, ms in rows:
        series.setdefault(alg, {})[g] = ms
    for alg, curve in series.items():
        # runtime at 4 GPUs beats 2 GPUs, sublinearly (paper: SSSP-BF
        # drops 14s -> 7s from 2 to 4 GPUs)
        assert curve[4] < curve[2], alg
        assert curve[2] / curve[4] < 2.5, alg


def test_fig9d(once):
    rows = once(run_fig9d)
    print_table(["mix", "capacity (1/ms)", "sim ms"], rows,
                title="Fig. 9(d): mixing and matching accelerators")
    # runtime decreases as total computation capacity increases
    by_capacity = sorted(rows, key=lambda r: r[1])
    times = [r[2] for r in by_capacity]
    assert all(a >= b for a, b in zip(times, times[1:]))
    assert times[-1] < times[0]
