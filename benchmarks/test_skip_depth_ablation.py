"""Ablation: the combined-local-iteration depth bound (DESIGN.md §6).

Sweeps ``MiddlewareConfig.skip_max_local_iterations`` on the
road-network SSSP workload.  Unbounded fast-forward re-propagates stale
improvements across partition boundaries; a moderate bound keeps the
superstep decrease while avoiding the re-work — the results must be
identical at every depth.
"""

import numpy as np

from repro.algorithms import MultiSourceSSSP
from repro.bench import print_table
from repro.cluster import make_cluster
from repro.core import GXPlug, MiddlewareConfig
from repro.engines import PowerGraphEngine
from repro.graph import clustering_partition, load_dataset


def run_depth_sweep(depths=(1, 2, 4, 8, 16, 64)):
    graph = load_dataset("wrn")
    rows = []
    reference = None
    for depth in depths:
        cluster = make_cluster(4, gpus_per_node=1)
        plug = GXPlug(cluster,
                      MiddlewareConfig(skip_max_local_iterations=depth))
        engine = PowerGraphEngine(clustering_partition(graph, 4, seed=3),
                                  cluster, middleware=plug)
        res = engine.run(MultiSourceSSSP(sources=(0, 1, 2, 3)))
        if reference is None:
            reference = res.values
        else:
            assert np.allclose(res.values, reference, equal_nan=True)
        rows.append((depth, res.iterations, res.computation_iterations,
                     res.total_ms))
    return rows


def test_skip_depth_ablation(once):
    rows = once(run_depth_sweep)
    print_table(["depth bound", "supersteps", "computation iters",
                 "sim ms"], rows,
                title="Ablation: combined-local-iteration depth (WRN "
                      "SSSP-BF)")
    supersteps = {r[0]: r[1] for r in rows}
    times = {r[0]: r[3] for r in rows}
    # deeper bounds mean fewer supersteps (monotone non-increasing)
    depths = sorted(supersteps)
    for a, b in zip(depths, depths[1:]):
        assert supersteps[b] <= supersteps[a]
    # unbounded depth pays re-work: some moderate depth beats depth 64
    assert min(times[d] for d in depths if d <= 16) <= times[64]
