"""Fig. 15 — block size selection.

Paper shapes: iteration time over the number of blocks ``s`` is
U-shaped; the estimated optimum (Lemma 1 + integer rounding) lands where
the measured optimum is, and the measured time near the estimate matches
the estimated time.  Also reproduces the analytic s_opt for the paper's
own measured coefficient sets (footnote 6).
"""

import pytest

from repro.bench import paper_fig15_analysis, print_table, run_fig15


def test_fig15(once):
    out = once(run_fig15)
    for alg, data in out.items():
        rows = [(s, m, dict(data["estimated"])[s])
                for s, m in data["measured"]]
        print_table(["s", "measured ms", "estimated ms"], rows,
                    title=f"Fig. 15: block count sweep — {alg} "
                          f"(d={data['d']}, estimated s_opt="
                          f"{data['s_opt']})")
        measured = dict(data["measured"])
        estimated = dict(data["estimated"])
        s_values = sorted(measured)

        # U shape: interior minimum
        best_s = min(measured, key=measured.get)
        assert best_s != s_values[0] and best_s != s_values[-1], alg

        # the estimated optimum is within one sweep step of the measured
        # optimum, and the estimate's time at that point is accurate
        pos = s_values.index(best_s)
        neighbourhood = s_values[max(0, pos - 1):pos + 2]
        assert any(abs(data["s_opt"] - s) <= max(2, 0.5 * s)
                   for s in neighbourhood), (alg, data["s_opt"], best_s)
        assert measured[best_s] == pytest.approx(estimated[best_s],
                                                 rel=0.15), alg

        # estimates track measurements across the whole sweep
        for s in s_values:
            assert measured[s] == pytest.approx(estimated[s], rel=0.5), \
                (alg, s)


def test_fig15_paper_coefficients(once):
    rows = once(paper_fig15_analysis)
    print_table(["workload", "k1", "k2", "k3", "a", "b_opt", "s_opt"],
                rows,
                title="Fig. 15: Lemma-1 s_opt for the paper's measured "
                      "coefficients (footnote 6), d=6.35e8")
    for name, k1, k2, k3, a, b_opt, s_opt in rows:
        # in the paper's compute-bound regime (k2 max), b_opt = Q
        assert k2 > k1 and k2 > k3
        assert b_opt > 0
        # the resulting s_opt is in the tens, matching Fig. 15's x-axis
        assert 1 <= s_opt <= 5000
