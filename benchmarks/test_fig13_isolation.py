"""Fig. 13 — runtime isolation.

The daemon-agent framework initializes the device once; the "direct GPU
call" integration re-initializes per request.  Over the paper's 11
iterations the framework is substantially faster, and "the benefits
would be amplified when the number of iterations is increased".
"""

from repro.bench import print_table, run_fig13


def test_fig13(once):
    rows = once(run_fig13)
    print_table(["variant", "sim ms", "device inits"], rows,
                title="Fig. 13: runtime isolation (11 iterations)")
    ms = {r[0]: r[1] for r in rows}
    inits = {r[0]: r[2] for r in rows}
    assert inits["daemon-agent"] == 1
    assert inits["direct-call"] > 11
    assert ms["daemon-agent"] < ms["direct-call"]
    assert ms["direct-call"] / ms["daemon-agent"] > 1.5


def test_fig13_benefit_grows_with_iterations(once):
    short, long = once(lambda: (run_fig13(iterations=3),
                                run_fig13(iterations=22)))
    gap_short = dict((r[0], r[1]) for r in short)
    gap_long = dict((r[0], r[1]) for r in long)
    ratio_short = gap_short["direct-call"] / gap_short["daemon-agent"]
    ratio_long = gap_long["direct-call"] / gap_long["daemon-agent"]
    assert ratio_long > ratio_short
