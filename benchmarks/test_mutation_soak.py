"""Mutation soak: incremental recompute after streaming churn.

Each scenario converges a query through the serving layer, mutates
~1% of the graph via :meth:`GraphService.mutate`, resubmits the same
query, and races the incremental re-convergence against a cold restart
of an equally journaled service on the mutated graph.  Acceptance
bars, per warm scenario:

* **>= 5x cheaper** — the warm run recomputes at least five times
  fewer supersteps AND five times less simulated time than the cold
  restart;
* **bit-identical** — the warm fixpoint equals the cold run's on the
  mutated graph, byte for byte;
* **exactly-once replay** — recovering the journal replays the
  mutation once (version preserved), resubmitting the same batch id
  dedupes, and nothing is re-queued or appended.

The ``cc-shrink`` row is the deliberate fallback: its batch removes an
edge, min-label propagation cannot retract monotonically, so the
planner refuses the warm seed and the service silently runs cold —
``warm`` must be False and the values still identical.
"""

import os

from repro.bench import print_table, run_mutation_soak

HEADERS = ["algorithm", "churn", "cold steps", "warm steps",
           "step ratio", "cold ms", "warm ms", "ms ratio", "warm",
           "identical", "replay no-op"]

# CI trims the soak via MUTATION_SOAK_SCENARIOS=pagerank,cc-shrink
_env = os.environ.get("MUTATION_SOAK_SCENARIOS")
SCENARIOS = tuple(_env.split(",")) if _env else None


def test_mutation_soak(tmp_path):
    rows = run_mutation_soak(scenarios=SCENARIOS,
                             journal_dir=str(tmp_path))
    print_table(HEADERS, rows, title="mutation soak")
    expected = len(SCENARIOS) if SCENARIOS else 4
    assert len(rows) == expected

    warm_rows = 0
    for (algorithm, churn, cold_steps, warm_steps, step_ratio,
         cold_ms, warm_ms, ms_ratio, warm, identical,
         replay_noop) in rows:
        assert identical, (
            f"{algorithm} ({churn}): warm values diverge from a cold "
            f"run on the mutated graph")
        assert replay_noop, (
            f"{algorithm} ({churn}): journal replay re-applied the "
            f"mutation or re-queued work")
        if churn.startswith("remove"):
            assert not warm, (
                f"{algorithm} ({churn}): the planner accepted a warm "
                f"seed for a shrinking mutation")
            continue
        warm_rows += 1
        assert warm, (
            f"{algorithm} ({churn}): the service never warm-started")
        assert step_ratio >= 5.0, (
            f"{algorithm} ({churn}): warm run saved only "
            f"{step_ratio:.2f}x supersteps ({warm_steps} vs "
            f"{cold_steps}), needs >= 5x")
        assert ms_ratio >= 5.0, (
            f"{algorithm} ({churn}): warm run saved only "
            f"{ms_ratio:.2f}x simulated ms ({warm_ms:.1f} vs "
            f"{cold_ms:.1f}), needs >= 5x")

    # the soak must exercise the incremental path somewhere, else the
    # >= 5x bars above pass vacuously
    assert warm_rows >= 1, "no scenario exercised a warm start"
