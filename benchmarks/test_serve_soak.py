"""Serving soak: multi-tenant GraphService vs one-shot deploys.

Three tenants submit a mixed PageRank / connected-components / SSSP
workload in two waves against one shared graph.  The acceptance bars:

* the cached repeated query must be at least 10x faster than its
  recompute (in practice it is thousands of times faster — the cache
  charges lookup cost, not an engine run);
* a crash injected into one tenant's job must leave every other
  tenant's values byte-identical to a solo one-shot run — fault
  isolation across the shared daemon pool;
* serving must beat the serial one-at-a-time baseline on both median
  latency and makespan (sharing partitions + caching repeats is the
  whole point of the subsystem).
"""

from repro.bench import print_table, run_serve_soak

#: ISSUE acceptance floor; the observed speedup is ~3 orders higher.
MIN_CACHED_SPEEDUP = 10.0

HEADERS = ["variant", "jobs", "done", "failed", "cache hits",
           "hit rate", "coalesced", "p50 ms", "p99 ms", "makespan ms",
           "cached speedup", "isolated"]


def by_variant(rows):
    return {row[0]: row for row in rows}


def test_serve_soak():
    rows = run_serve_soak()
    print_table(HEADERS, rows, title="serve soak")
    out = by_variant(rows)
    serial = out["serial"]
    served = out["served"]
    crashed = out["served+crash"]

    for row in (serial, served, crashed):
        variant, jobs, done, failed = row[0], row[1], row[2], row[3]
        assert failed == 0, f"{variant}: {failed} failed jobs"
        assert done == jobs, f"{variant}: {done}/{jobs} completed"

    # repeated queries hit the cache and are >= 10x cheaper than
    # recomputing (acceptance bar; really ~1000x)
    for row in (served, crashed):
        hits, hit_rate, speedup = row[4], row[5], row[10]
        assert hits > 0 and hit_rate > 0.0
        assert speedup >= MIN_CACHED_SPEEDUP, \
            f"{row[0]}: cached speedup {speedup:.1f}x < " \
            f"{MIN_CACHED_SPEEDUP}x"

    # fault isolation: the chaos tenant's injected crashes never
    # perturb the other tenants' values (byte-identical to solo runs)
    assert crashed[11] is True
    assert served[11] is True and serial[11] is True

    # serving beats serial one-shot deploys on p50 and makespan
    assert served[7] < serial[7], "served p50 should beat serial"
    assert served[9] < serial[9], "served makespan should beat serial"

    # the injected crash costs the chaos tenant time, not the others'
    # correctness; the served+crash makespan grows but stays under
    # serial
    assert crashed[9] < serial[9]


def test_serve_soak_is_deterministic():
    first = run_serve_soak(crash=False)
    second = run_serve_soak(crash=False)
    assert first == second
