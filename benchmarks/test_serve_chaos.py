"""Serve chaos soak: kill the service at random points, recover, and
demand the recovered deployment is indistinguishable from one that
never crashed.

Per seed, the soak runs a journaled no-crash baseline, then an
identical journaled run that is killed after a seeded-random number of
scheduling rounds (nothing survives but the write-ahead journal and
its checkpoint/result sidecars), then recovers and drives the rebuilt
service to completion.  The acceptance bars:

* **bit-identity** — every job finishes with values byte-identical to
  the no-crash baseline, whatever instant the kill landed on;
* **resume beats cold restart** — every job resumed from a checkpoint
  recomputes *strictly fewer* supersteps than its cold baseline run
  (the journal's durable checkpoints actually buy something), and at
  least one job across the soak exercises that path;
* **idempotent replay** — recovering the finished journal a second
  time re-queues nothing, keeps every terminal state, and appends not
  a single record to the journal file.
"""

import os

from repro.bench import print_table, run_serve_chaos

HEADERS = ["seed", "killed at", "jobs", "pre-crash done", "resumed",
           "identical", "steps saved", "replay no-op"]

# CI trims the soak to two seeds via SERVE_CHAOS_SEEDS=11,23
SEEDS = tuple(
    int(s) for s in os.environ.get("SERVE_CHAOS_SEEDS", "11,23,47")
    .split(","))


def test_serve_chaos(tmp_path):
    rows = run_serve_chaos(seeds=SEEDS, journal_dir=str(tmp_path))
    print_table(HEADERS, rows, title="serve chaos")
    assert len(rows) == len(SEEDS)

    for (seed, killed_at, jobs, pre_done, resumed, identical,
         steps_saved, replay_noop) in rows:
        assert identical, (
            f"seed {seed}: recovered values diverge from the no-crash "
            f"baseline (killed after {killed_at} rounds)")
        assert replay_noop, (
            f"seed {seed}: second recover of the finished journal was "
            f"not a no-op")
        if resumed:
            assert steps_saved > 0, (
                f"seed {seed}: {resumed} job(s) resumed from a "
                f"checkpoint but saved no supersteps")

    # the soak must actually exercise checkpoint resume somewhere —
    # a kill schedule that only ever lands before the first checkpoint
    # or after completion would vacuously pass the bars above
    assert sum(row[4] for row in rows) >= 1, \
        "no seed resumed a job from a checkpoint"
