"""Fault-tolerance overhead on the Fig. 8 configuration.

The protection has to be cheap enough to leave on: with heartbeat
monitoring and periodic checkpointing enabled (``RESILIENT``) a
fault-free run must stay within 10% of the unprotected (``FULL``)
simulated total, and the results must be identical.  Heartbeats
piggyback on the Algorithm 1-2 protocol messages, so the entire cost is
the periodic vertex-table snapshots.
"""

from repro.bench import print_table, run_fault_overhead

OVERHEAD_BUDGET = 0.10


def test_fault_overhead_under_budget(once):
    rows = once(run_fault_overhead)
    print_table(["algorithm", "variant", "sim ms", "overhead"],
                [(a, v, round(ms, 1), f"{ov:.2%}") for a, v, ms, ov in rows],
                title="Fault tolerance: fault-free overhead (Fig. 8 config)")
    resilient = [r for r in rows if r[1] == "resilient"]
    assert len(resilient) == 3                 # all three workloads
    for alg, _, _, overhead in resilient:
        assert 0.0 <= overhead < OVERHEAD_BUDGET, (
            f"{alg}: fault-tolerance overhead {overhead:.2%} exceeds "
            f"the {OVERHEAD_BUDGET:.0%} budget")
