"""Fig. 12 — workload balancing.

(a) Case 1: fixed heterogeneous hardware (1 GPU + 1 CPU vs 3 GPU + 1
    CPU), tuned partition sizes (Lemma 2): balanced beats the even
    split and lands near the theoretical optimum.
(b) Case 2: fixed (skewed) partitions, tuned accelerator counts
    (Lemma 3): balanced beats the 1-GPU-each default at every skew, and
    the benefit grows with the skew.
"""

from repro.bench import print_table, run_fig12a, run_fig12b


def test_fig12a(once):
    rows = once(run_fig12a)
    print_table(["strategy", "sim ms"], rows,
                title="Fig. 12(a): balancing case 1 (tune partitioning)")
    ms = dict(rows)
    assert ms["balanced"] < ms["not-balanced"]
    # balanced is close to the model's optimum (paper: "very close")
    assert ms["balanced"] <= ms["theoretical"] * 1.35
    assert ms["theoretical"] <= ms["balanced"] * 1.05


def test_fig12b(once):
    rows = once(run_fig12b)
    print_table(["split", "variant", "gpus/node", "sim ms"], rows,
                title="Fig. 12(b): balancing case 2 (tune accelerators)")
    by_split = {}
    for split, variant, gpus, ms in rows:
        by_split.setdefault(split, {})[variant] = ms
    gains = []
    for split, d in by_split.items():
        assert d["balanced"] < d["not-balanced"], split
        gains.append(d["not-balanced"] / d["balanced"])
    # the more skewed the load, the more Lemma 3's allocation helps
    assert gains[-1] > gains[0]
