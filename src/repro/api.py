"""The stable public surface of the GX-Plug reproduction.

Import from here and nothing breaks when internals move::

    from repro.api import ClusterSpec, RuntimeConfig, GXPlug, deploy

    cluster = ClusterSpec(nodes=8, gpus_per_node=1,
                          topology="rack:2x4").build()
    config = (RuntimeConfig.preset("network-resilient")
              .with_straggler(link_ratio=2.5))
    plug = GXPlug(cluster, config)

The two builders are the blessed way to describe a deployment:

* :class:`ClusterSpec` — the hardware: node/accelerator counts, host
  runtime, interconnect overrides and the rack :class:`Topology`;
* :class:`RuntimeConfig` — the behaviour: a named preset
  (:data:`PRESETS`) refined by chained ``with_*`` methods, resolving
  to a :class:`MiddlewareConfig`.

Everything else re-exported here (engines, algorithms, graph loaders,
fault plans) is the same object the subpackages define; this module
only pins the names user code should rely on.
"""

from __future__ import annotations

from .algorithms import (
    BFS,
    ConnectedComponents,
    KCore,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
    paper_workloads,
)
from .cluster import (
    DEFAULT_CROSS_BYTE_FACTOR,
    DEFAULT_CROSS_LATENCY_FACTOR,
    DEFAULT_NETWORK,
    Cluster,
    DistributedNode,
    LinkModel,
    NetworkModel,
    ResilientTransport,
    Topology,
    make_cluster,
    make_heterogeneous_cluster,
)
from .core import (
    BASELINE,
    FULL,
    NETWORK_RESILIENT,
    PRESETS,
    RESILIENT,
    AlgorithmState,
    AlgorithmTemplate,
    ClusterSpec,
    GXPlug,
    MessageSet,
    MiddlewareConfig,
    RuntimeConfig,
    StragglerConfig,
    accelerators_for_load,
    balancing_factors,
    cluster_coefficients,
    link_adjusted_coefficients,
    network_coefficients,
    optimal_makespan,
    optimal_partition_sizes,
)
from .engines import AsyncEngine, GraphXEngine, PowerGraphEngine, RunResult
from .fault import (
    ALL_KINDS,
    CRASH,
    FLAKY_SLOWDOWN,
    GRAY_KINDS,
    HANG,
    KINDS,
    LINK_FLAKY,
    LINK_KINDS,
    LINK_SLOW,
    MESSAGE_DELAY,
    MESSAGE_DROP,
    NET_DELAY,
    NET_DROP,
    NET_DUP,
    NETWORK_KINDS,
    NODE_PARTITION,
    SHM_CORRUPTION,
    SHM_SLOW,
    SLOWDOWN,
    SYNC_FAIL,
    FaultPlan,
    FaultReport,
    StragglerDetector,
    fault_report,
)
from .graph import (
    DATASETS,
    Graph,
    MutationBatch,
    clustering_partition,
    dataset_names,
    hash_partition,
    load_dataset,
    load_synthetic_clustered,
    load_synthetic_uniform,
    partition,
    plan_warm_start,
)
from .serve import (
    GraphService,
    GraphSnapshot,
    GraphStore,
    Job,
    JobSpec,
    ResultCache,
)


def deploy(spec: ClusterSpec,
           config: RuntimeConfig = RuntimeConfig()) -> GXPlug:
    """Build the cluster described by ``spec`` and plug the middleware
    configured by ``config`` into it — the two-builder quickstart."""
    return GXPlug(spec.build(), config)


def mutate(graph: Graph, batch):
    """One-shot functional mutation: apply ``batch`` to a bare graph.

    ``batch`` is a :class:`MutationBatch` or its ``to_doc()`` mapping;
    returns ``(new_graph, effect)`` — the mutated graph plus the
    :class:`~repro.graph.mutations.MutationEffect` summarizing the
    dirty frontier.  The serving counterpart is
    :meth:`GraphService.mutate`, which adds versioning, snapshot
    isolation, journaling and exactly-once semantics on top of the
    same apply.
    """
    if not isinstance(batch, MutationBatch):
        batch = MutationBatch.from_doc(batch)
    return batch.apply(graph)


__all__ = [
    # the blessed builders
    "ClusterSpec",
    "RuntimeConfig",
    "deploy",
    # middleware + presets
    "GXPlug",
    "MiddlewareConfig",
    "StragglerConfig",
    "PRESETS",
    "FULL",
    "BASELINE",
    "RESILIENT",
    "NETWORK_RESILIENT",
    # cluster layer
    "Cluster",
    "DistributedNode",
    "NetworkModel",
    "DEFAULT_NETWORK",
    "Topology",
    "LinkModel",
    "DEFAULT_CROSS_LATENCY_FACTOR",
    "DEFAULT_CROSS_BYTE_FACTOR",
    "ResilientTransport",
    "make_cluster",
    "make_heterogeneous_cluster",
    # engines
    "GraphXEngine",
    "PowerGraphEngine",
    "AsyncEngine",
    "RunResult",
    # workload-balancing analysis (§III-C Lemmas 2-3)
    "balancing_factors",
    "optimal_partition_sizes",
    "optimal_makespan",
    "accelerators_for_load",
    "cluster_coefficients",
    "network_coefficients",
    "link_adjusted_coefficients",
    # programming template + algorithms
    "AlgorithmTemplate",
    "AlgorithmState",
    "MessageSet",
    "PageRank",
    "MultiSourceSSSP",
    "LabelPropagation",
    "BFS",
    "ConnectedComponents",
    "KCore",
    "WidestPath",
    "paper_workloads",
    # serving layer
    "GraphService",
    "GraphStore",
    "GraphSnapshot",
    "ResultCache",
    "JobSpec",
    "Job",
    # streaming mutations + incremental recompute
    "MutationBatch",
    "plan_warm_start",
    "mutate",
    # graphs
    "Graph",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "load_synthetic_uniform",
    "load_synthetic_clustered",
    "partition",
    "hash_partition",
    "clustering_partition",
    # fault subsystem
    "FaultPlan",
    "FaultReport",
    "fault_report",
    "StragglerDetector",
    "KINDS",
    "ALL_KINDS",
    "NETWORK_KINDS",
    "GRAY_KINDS",
    "LINK_KINDS",
    "CRASH",
    "HANG",
    "SHM_CORRUPTION",
    "MESSAGE_DROP",
    "MESSAGE_DELAY",
    "NET_DROP",
    "NET_DELAY",
    "NET_DUP",
    "SYNC_FAIL",
    "NODE_PARTITION",
    "SLOWDOWN",
    "SHM_SLOW",
    "FLAKY_SLOWDOWN",
    "LINK_SLOW",
    "LINK_FLAKY",
]
