"""Distributed nodes and host runtimes.

A :class:`DistributedNode` is one machine/instance of the upper system.
Its :class:`HostRuntime` captures the environment-dependent costs the
middleware must cross:

* ``compute`` — the host's own execution model, used when *no* accelerator
  is plugged (the "GraphX"/"PowerGraph" bars of Fig. 8);
* ``download_ms_per_entity`` / ``upload_ms_per_entity`` — the k1/k3 of the
  pipeline cost model (Eq. 2): per-triplet cost of moving data between the
  upper system and the agent.  The JVM runtime's are higher because data
  crosses the JNI boundary (§IV-B1); the JNI transmitter and data packager
  (see :mod:`repro.engines.jni`) are what keep them only ~2-3x native
  instead of ~10x.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from ..accel.costmodel import HOST_JVM, HOST_NATIVE, DeviceCostModel
from ..accel.device import Accelerator
from ..errors import SimulationError


@dataclass(frozen=True)
class HostRuntime:
    """Environment cost profile of an upper-system node."""

    name: str
    compute: DeviceCostModel            # host execution (no accelerator)
    download_ms_per_entity: float       # k1: upper system -> agent
    upload_ms_per_entity: float         # k3: agent -> upper system
    apply_ms_per_entity: float          # host-side apply/merge bookkeeping
    sync_fixed_ms: float                # per-iteration engine overhead

    def __post_init__(self) -> None:
        if min(self.download_ms_per_entity, self.upload_ms_per_entity,
               self.apply_ms_per_entity, self.sync_fixed_ms) < 0:
            raise SimulationError(f"{self.name}: negative host cost")


#: GraphX on Spark: JVM compute, JNI-crossing transfer costs.
#: k1/k3 assume the JNI transmitter + data packager are enabled; see
#: repro.engines.jni for the naive-invocation comparison.
JVM_RUNTIME = HostRuntime(
    name="jvm",
    compute=HOST_JVM,
    download_ms_per_entity=0.00180,
    upload_ms_per_entity=0.00180,
    apply_ms_per_entity=0.00080,
    sync_fixed_ms=2.0,
)

#: PowerGraph: native C++ runtime, cheaper boundary crossings.
NATIVE_RUNTIME = HostRuntime(
    name="native",
    compute=HOST_NATIVE,
    download_ms_per_entity=0.00120,
    upload_ms_per_entity=0.00120,
    apply_ms_per_entity=0.00030,
    sync_fixed_ms=0.8,
)


@dataclass
class DistributedNode:
    """One upper-system node with zero or more plugged accelerators."""

    node_id: int
    runtime: HostRuntime
    accelerators: List[Accelerator] = field(default_factory=list)

    def capacity_factor(self) -> float:
        """The node's 1/c_j (§III-C): entities per ms across its devices.

        With several daemons (accelerators) on one agent the work is split
        between them, so capacities add.  A node without accelerators falls
        back to its host compute capacity.
        """
        if not self.accelerators:
            return self.runtime.compute.capacity_factor()
        return sum(a.model.capacity_factor() for a in self.accelerators)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        devs = ",".join(a.model.name for a in self.accelerators) or "none"
        return (f"DistributedNode(id={self.node_id}, "
                f"runtime={self.runtime.name}, accelerators=[{devs}])")
