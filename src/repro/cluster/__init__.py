"""Simulated distributed cluster: nodes, host runtimes, interconnect."""

from .network import DEFAULT_NETWORK, NetworkModel, ResilientTransport
from .node import JVM_RUNTIME, NATIVE_RUNTIME, DistributedNode, HostRuntime
from .topology import (DEFAULT_CROSS_BYTE_FACTOR,
                       DEFAULT_CROSS_LATENCY_FACTOR, LinkModel, Topology)
from .cluster import Cluster, make_cluster, make_heterogeneous_cluster

__all__ = [
    "NetworkModel",
    "ResilientTransport",
    "DEFAULT_NETWORK",
    "LinkModel",
    "Topology",
    "DEFAULT_CROSS_LATENCY_FACTOR",
    "DEFAULT_CROSS_BYTE_FACTOR",
    "HostRuntime",
    "JVM_RUNTIME",
    "NATIVE_RUNTIME",
    "DistributedNode",
    "Cluster",
    "make_cluster",
    "make_heterogeneous_cluster",
]
