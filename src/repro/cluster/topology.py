"""Rack topology: per-link cost models for the cluster interconnect.

The bare :class:`~repro.cluster.network.NetworkModel` prices every
collective with one uniform alpha-beta model — fine for a single rack,
blind to the bandwidth asymmetry that dominates real deployments, where
the cross-rack uplink is an order of magnitude worse than the in-rack
switch.  :class:`Topology` keeps the same alpha-beta vocabulary but
attaches it to concrete links: nodes are grouped into racks, every
``(src, dst)`` pair resolves to a :class:`LinkModel` (intra-rack or
cross-rack default, individually overridable), and collectives pay a
rack-aggregated tree cost:

* stage 1 — every node ships its fragment to its rack leader; racks
  reduce in parallel, so the stage costs the *slowest* rack;
* stage 2 — each non-root rack leader ships the rack's aggregate over
  its uplink to the root leader (node 0's rack); uplinks share the
  spine, so the stage costs the *sum*;
* the usual per-node coordination term from the base model.

A single-rack :class:`Topology` with default links is the degenerate
case and reproduces :class:`NetworkModel` costs *exactly* — the
property tests in ``tests/cluster/test_topology.py`` pin this, and the
fault-free figures rely on it.  :class:`Topology` duck-types the full
``NetworkModel`` cost surface (``sync_ms`` / ``broadcast_ms`` /
``transfer_ms`` / ``p2p_fallback_ms``) so engines and the resilient
transport can use either interchangeably.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .network import DEFAULT_NETWORK, NetworkModel

#: Cross-rack links default to this multiple of the intra-rack latency.
DEFAULT_CROSS_LATENCY_FACTOR = 4.0
#: Cross-rack links default to this multiple of the intra-rack cost/byte.
DEFAULT_CROSS_BYTE_FACTOR = 4.0


@dataclass(frozen=True)
class LinkModel:
    """One directed link: a latency and a per-byte bandwidth cost."""

    latency_ms: float
    ms_per_byte: float

    def __post_init__(self) -> None:
        if min(self.latency_ms, self.ms_per_byte) < 0:
            raise SimulationError("link cost parameters must be >= 0")

    def transfer_ms(self, nbytes: int) -> float:
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        return self.latency_ms + nbytes * self.ms_per_byte


class Topology:
    """Nodes grouped into racks with per-link alpha-beta costs.

    ``racks`` — node ids grouped by rack; together they must cover
    ``0..n-1`` exactly once.  ``base`` supplies the coordination term
    and the default intra-rack link parameters; ``intra`` / ``cross``
    override the rack-local and cross-rack link defaults; ``overrides``
    pins individual directed ``(src, dst)`` pairs.

    Node 0 is the collective root (the upper system's master).  Each
    rack's leader is its lowest node id; fragments ride member->leader
    intra-rack links, then leader->root cross-rack uplinks.  A leader's
    own fragment still crosses its local bus at the intra-rack rate, so
    the single-rack degenerate case charges the full payload once —
    exactly like :meth:`NetworkModel.sync_ms`.
    """

    def __init__(self, racks: Sequence[Sequence[int]], *,
                 base: Optional[NetworkModel] = None,
                 intra: Optional[LinkModel] = None,
                 cross: Optional[LinkModel] = None,
                 overrides: Optional[Dict[Tuple[int, int], LinkModel]] = None,
                 cross_latency_factor: float = DEFAULT_CROSS_LATENCY_FACTOR,
                 cross_byte_factor: float = DEFAULT_CROSS_BYTE_FACTOR) -> None:
        if not racks or any(not rack for rack in racks):
            raise SimulationError("every rack needs at least one node")
        self.racks: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(n) for n in rack) for rack in racks)
        seen = [n for rack in self.racks for n in rack]
        if sorted(seen) != list(range(len(seen))):
            raise SimulationError(
                f"racks must cover node ids 0..{len(seen) - 1} exactly "
                f"once, got {sorted(seen)}")
        if min(cross_latency_factor, cross_byte_factor) < 1.0:
            raise SimulationError("cross-rack factors must be >= 1")
        self.base = base if base is not None else DEFAULT_NETWORK
        self.intra = intra if intra is not None else LinkModel(
            self.base.latency_ms, self.base.ms_per_byte)
        self.cross = cross if cross is not None else LinkModel(
            self.intra.latency_ms * cross_latency_factor,
            self.intra.ms_per_byte * cross_byte_factor)
        self.overrides: Dict[Tuple[int, int], LinkModel] = dict(
            overrides or {})
        self.num_nodes = len(seen)
        self._rack_of: List[int] = [0] * self.num_nodes
        self._leader: List[int] = []
        for r, rack in enumerate(self.racks):
            self._leader.append(min(rack))
            for n in rack:
                self._rack_of[n] = r
        for (src, dst) in self.overrides:
            for end in (src, dst):
                if not 0 <= end < self.num_nodes:
                    raise SimulationError(
                        f"link override ({src}, {dst}) names unknown "
                        f"node {end}")
        self.root = 0
        self._root_rack = self._rack_of[self.root]
        # fused uplink timelines: links are fixed at construction, so
        # every node's full uplink path collapses to one precomputed
        # (latency, ms/byte) pair and the payload-free tree-latency term
        # is a constant — collectives read these instead of re-walking
        # the link tables.  The scalars keep the exact summation the
        # per-node methods used, so the arrays are bit-identical inputs.
        self._uplink_latency: List[float] = [
            sum(leg.latency_ms for leg in self.uplink_legs(n))
            for n in range(self.num_nodes)]
        self._uplink_mspb: List[float] = [
            sum(leg.ms_per_byte for leg in self.uplink_legs(n))
            for n in range(self.num_nodes)]
        self._uplink_latency_arr = np.array(self._uplink_latency,
                                            dtype=np.float64)
        self._uplink_mspb_arr = np.array(self._uplink_mspb,
                                         dtype=np.float64)
        self._latency_term_ms = self._latency_term()

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    def rack_of(self, node: int) -> int:
        if not 0 <= node < self.num_nodes:
            raise SimulationError(f"unknown node {node}")
        return self._rack_of[node]

    def leader_of(self, node: int) -> int:
        return self._leader[self.rack_of(node)]

    def link(self, src: int, dst: int) -> LinkModel:
        """The directed link ``src -> dst``: an explicit override if one
        is pinned, else the intra/cross default by rack membership.
        ``src == dst`` is the node's local bus (intra-rack rate)."""
        override = self.overrides.get((int(src), int(dst)))
        if override is not None:
            return override
        if self.rack_of(src) == self.rack_of(dst):
            return self.intra
        return self.cross

    # -- uplink paths --------------------------------------------------------

    def uplink_legs(self, node: int) -> List[LinkModel]:
        """The links node ``node``'s fragment crosses toward the root:
        its member->leader hop (the local bus for a leader), then the
        rack's leader->root uplink when the rack is not the root's."""
        leader = self.leader_of(node)
        legs = [self.link(node, leader)]
        if self.rack_of(node) != self._root_rack:
            legs.append(self.link(leader, self._leader[self._root_rack]))
        return legs

    def path_ms_per_byte(self, node: int) -> float:
        """Per-byte cost of the node's full uplink path — the quantity
        Lemma-2 shares fold in via ``balance.network_coefficients``."""
        if not 0 <= node < self.num_nodes:
            raise SimulationError(f"unknown node {node}")
        return self._uplink_mspb[node]

    def fragment_ms(self, node: int, nbytes: int) -> float:
        """Healthy wire time for one ``nbytes`` fragment from ``node``
        to the root — the baseline that link gray-faults inflate and
        the per-link EWMA detector observes."""
        if nbytes < 0:
            raise SimulationError(f"negative fragment size {nbytes}")
        if not 0 <= node < self.num_nodes:
            raise SimulationError(f"unknown node {node}")
        return (self._uplink_latency[node]
                + nbytes * self._uplink_mspb[node])

    def fragment_ms_many(self, per_node_bytes: Sequence[float]) -> np.ndarray:
        """Healthy wire times for one fragment per node, in one shot.

        Vectorized over the precomputed uplink arrays; purely
        elementwise (no reductions), so every entry is bit-identical to
        calling :meth:`fragment_ms` node by node — the fused collective
        timeline and the per-fragment path agree to the last ulp.
        """
        arr = np.asarray(per_node_bytes, dtype=np.float64)
        if arr.shape != (self.num_nodes,):
            raise SimulationError(
                f"per_node_bytes has shape {arr.shape} for "
                f"{self.num_nodes} nodes")
        if arr.size and float(arr.min()) < 0:
            raise SimulationError("negative fragment size")
        return self._uplink_latency_arr + arr * self._uplink_mspb_arr

    def node_bytes(self, total_bytes: int,
                   bytes_by_node: Optional[Sequence[float]] = None
                   ) -> List[float]:
        """Split ``total_bytes`` across nodes: proportionally to the
        ``bytes_by_node`` weights when given (zero-sum weights fall back
        to uniform), uniform otherwise."""
        if total_bytes < 0:
            raise SimulationError(f"negative sync payload {total_bytes}")
        n = self.num_nodes
        if bytes_by_node is not None:
            if len(bytes_by_node) != n:
                raise SimulationError(
                    f"bytes_by_node has {len(bytes_by_node)} entries for "
                    f"{n} nodes")
            weights = [float(w) for w in bytes_by_node]
            if min(weights) < 0:
                raise SimulationError("bytes_by_node weights must be >= 0")
            total_w = sum(weights)
            if total_w > 0:
                return [w / total_w * total_bytes for w in weights]
        return [total_bytes / n] * n

    # -- latency/bandwidth aggregates ---------------------------------------

    def _intra_latency_max(self) -> float:
        worst = 0.0
        found = False
        for r, rack in enumerate(self.racks):
            leader = self._leader[r]
            for n in rack:
                if n == leader:
                    continue
                worst = max(worst, self.link(n, leader).latency_ms)
                found = True
        return worst if found else self.intra.latency_ms

    def _cross_latency_max(self) -> float:
        root_leader = self._leader[self._root_rack]
        worst = 0.0
        for r in range(self.num_racks):
            if r == self._root_rack:
                continue
            worst = max(worst,
                        self.link(self._leader[r], root_leader).latency_ms)
        return worst

    def _latency_term(self) -> float:
        """Tree latency: in-rack reductions run in parallel and cost
        ``ceil(log2)`` of the biggest rack; the rack layer adds
        ``ceil(log2)`` of the rack count over the worst uplink."""
        biggest = max(len(rack) for rack in self.racks)
        intra_hops = math.ceil(math.log2(biggest)) if biggest > 1 else 0
        cross_hops = (math.ceil(math.log2(self.num_racks))
                      if self.num_racks > 1 else 0)
        return (self._intra_latency_max() * intra_hops
                + self._cross_latency_max() * cross_hops)

    def _max_intra_mspb(self) -> float:
        worst = self.intra.ms_per_byte
        for r, rack in enumerate(self.racks):
            leader = self._leader[r]
            for n in rack:
                worst = max(worst, self.link(n, leader).ms_per_byte)
        return worst

    def _max_cross_mspb(self) -> float:
        root_leader = self._leader[self._root_rack]
        worst = 0.0
        for r in range(self.num_racks):
            if r == self._root_rack:
                continue
            worst = max(worst,
                        self.link(self._leader[r], root_leader).ms_per_byte)
        return worst

    def _reduction_bandwidth_ms(self, total_bytes: float,
                                weights: Optional[Sequence[float]]) -> float:
        """Stage 1 (slowest rack's in-rack gather, leaders pay their
        local bus) plus stage 2 (every non-root rack's aggregate over
        its shared-spine uplink).

        Rack payloads are carved out of ``total_bytes`` as weight
        ratios, and a rack whose members share one per-byte rate is
        charged on its aggregate — so the degenerate single-rack default
        charges ``total_bytes * ms_per_byte`` bit-exactly, not a re-sum
        of float fragments.
        """
        total_w = (float(self.num_nodes) if weights is None
                   else sum(float(w) for w in weights))
        if total_w <= 0:
            weights, total_w = None, float(self.num_nodes)

        def w(node: int) -> float:
            return 1.0 if weights is None else float(weights[node])

        root_leader = self._leader[self._root_rack]
        stage1 = 0.0
        stage2 = 0.0
        for r, rack in enumerate(self.racks):
            leader = self._leader[r]
            rates = {self.link(n, leader).ms_per_byte for n in rack}
            rack_bytes = total_bytes * (sum(w(n) for n in rack) / total_w)
            if len(rates) == 1:
                gather = rack_bytes * next(iter(rates))
            else:
                gather = sum(
                    total_bytes * (w(n) / total_w)
                    * self.link(n, leader).ms_per_byte for n in rack)
            stage1 = max(stage1, gather)
            if r != self._root_rack:
                stage2 += rack_bytes * self.link(leader,
                                                 root_leader).ms_per_byte
        return stage1 + stage2

    # -- NetworkModel cost surface ------------------------------------------

    def _check(self, num_nodes: int, nbytes: int) -> None:
        if num_nodes != self.num_nodes:
            raise SimulationError(
                f"topology spans {self.num_nodes} nodes, collective asked "
                f"for {num_nodes}")
        if nbytes < 0:
            raise SimulationError(f"negative payload {nbytes}")

    def sync_ms(self, num_nodes: int, total_bytes: int,
                bytes_by_node: Optional[Sequence[float]] = None) -> float:
        """Global synchronization over the rack tree.  ``bytes_by_node``
        weights attribute the payload to its producing nodes so heavy
        partitions behind a bad uplink cost what they should; without
        weights the payload splits uniformly."""
        self._check(num_nodes, total_bytes)
        if bytes_by_node is not None and len(bytes_by_node) != num_nodes:
            raise SimulationError(
                f"bytes_by_node has {len(bytes_by_node)} entries for "
                f"{num_nodes} nodes")
        if bytes_by_node is not None and min(bytes_by_node) < 0:
            raise SimulationError("bytes_by_node weights must be >= 0")
        return (self._latency_term_ms
                + self._reduction_bandwidth_ms(total_bytes, bytes_by_node)
                + self.base.coord_ms_per_node * num_nodes)

    def broadcast_ms(self, num_nodes: int, nbytes: int) -> float:
        """Broadcast down the same tree: the payload crosses the worst
        uplink once (racks fan out in parallel) and the worst in-rack
        link once."""
        self._check(num_nodes, nbytes)
        per_byte = self._max_intra_mspb()
        if self.num_racks > 1:
            per_byte += self._max_cross_mspb()
        return self._latency_term_ms + nbytes * per_byte

    def transfer_ms(self, nbytes: int, src: Optional[int] = None,
                    dst: Optional[int] = None) -> float:
        """Point-to-point transfer; without endpoints it prices the
        intra-rack default link, matching :meth:`NetworkModel.transfer_ms`
        in the degenerate case."""
        if src is None or dst is None:
            return self.intra.transfer_ms(nbytes)
        return self.link(src, dst).transfer_ms(nbytes)

    def p2p_fallback_ms(self, num_nodes: int, total_bytes: int) -> float:
        """Point-to-point fallback: the root exchanges with every node in
        turn over its full uplink path — one path latency per node and
        every fragment paying its per-byte path cost."""
        self._check(num_nodes, total_bytes)
        lats = self._uplink_latency
        rates = self._uplink_mspb
        latency = (lats[0] * num_nodes if len(set(lats)) == 1
                   else sum(lats))
        if len(set(rates)) == 1:
            wire = total_bytes * rates[0]
        else:
            per_node = self.node_bytes(total_bytes)
            wire = sum(per_node[n] * rates[n]
                       for n in range(self.num_nodes))
        return latency + wire + self.base.coord_ms_per_node * num_nodes

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def parse_spec(spec: str) -> List[List[int]]:
        """Parse a topology spec string into rack groups.

        ``"rack:RxN"`` — R racks of N nodes each, ids assigned in order
        (rack r holds nodes ``r*N .. r*N+N-1``); ``"flat:N"`` — one rack
        of N nodes (the degenerate case).  Trailing ``;link=...``
        override clauses (see :meth:`parse_link_overrides`) are ignored
        here — this method only resolves the rack shape.
        """
        head, sep, tail = str(spec).split(";")[0].partition(":")
        if not sep or head not in ("rack", "flat"):
            raise SimulationError(
                f"malformed topology spec {spec!r} "
                "(want 'rack:RxN' or 'flat:N')")
        if head == "flat":
            if not tail.isdigit() or int(tail) < 1:
                raise SimulationError(
                    f"malformed topology spec {spec!r} (want 'flat:N', "
                    "N >= 1)")
            return [list(range(int(tail)))]
        racks_s, sep, per_s = tail.partition("x")
        if (not sep or not racks_s.isdigit() or not per_s.isdigit()
                or int(racks_s) < 1 or int(per_s) < 1):
            raise SimulationError(
                f"malformed topology spec {spec!r} (want 'rack:RxN', "
                "R, N >= 1)")
        racks, per = int(racks_s), int(per_s)
        return [list(range(r * per, (r + 1) * per)) for r in range(racks)]

    @staticmethod
    def parse_link_overrides(spec: str) -> Dict[Tuple[int, int], LinkModel]:
        """Parse the per-link override clauses of a topology spec.

        After the rack shape, a spec may pin individual directed links
        with ``;link=SRC-DST:LATENCY_MS:MS_PER_BYTE`` clauses::

            rack:2x2;link=2-0:5.0:0.02;link=3-2:0.1:0.001

        gives the ``2 -> 0`` uplink a 5 ms latency at 0.02 ms/byte and
        the in-rack ``3 -> 2`` hop its own parameters, while every other
        link keeps the intra/cross defaults.  Clauses are plain data, so
        the full spec string stays recordable verbatim in trace JSON.
        """
        overrides: Dict[Tuple[int, int], LinkModel] = {}
        for clause in str(spec).split(";")[1:]:
            if not clause.startswith("link="):
                raise SimulationError(
                    f"malformed topology clause {clause!r} in {spec!r} "
                    "(want 'link=SRC-DST:LATENCY_MS:MS_PER_BYTE')")
            body = clause[len("link="):]
            ends_s, sep, costs_s = body.partition(":")
            src_s, dash, dst_s = ends_s.partition("-")
            lat_s, colon, mspb_s = costs_s.partition(":")
            if (not sep or not dash or not colon
                    or not src_s.isdigit() or not dst_s.isdigit()):
                raise SimulationError(
                    f"malformed link override {clause!r} in {spec!r} "
                    "(want 'link=SRC-DST:LATENCY_MS:MS_PER_BYTE')")
            try:
                link = LinkModel(float(lat_s), float(mspb_s))
            except ValueError:
                raise SimulationError(
                    f"malformed link override {clause!r} in {spec!r}: "
                    f"non-numeric cost parameters") from None
            key = (int(src_s), int(dst_s))
            if key in overrides:
                raise SimulationError(
                    f"duplicate link override for {key} in {spec!r}")
            overrides[key] = link
        return overrides

    @classmethod
    def from_spec(cls, spec: str, *, base: Optional[NetworkModel] = None,
                  intra: Optional[LinkModel] = None,
                  cross: Optional[LinkModel] = None,
                  overrides: Optional[Dict[Tuple[int, int],
                                           LinkModel]] = None,
                  cross_latency_factor: float = DEFAULT_CROSS_LATENCY_FACTOR,
                  cross_byte_factor: float = DEFAULT_CROSS_BYTE_FACTOR
                  ) -> "Topology":
        """Build from a spec string; ``;link=...`` clauses in the spec
        become link overrides, with explicitly passed ``overrides``
        winning on conflict."""
        merged = cls.parse_link_overrides(spec)
        merged.update(overrides or {})
        return cls(cls.parse_spec(spec), base=base, intra=intra, cross=cross,
                   overrides=merged,
                   cross_latency_factor=cross_latency_factor,
                   cross_byte_factor=cross_byte_factor)

    @classmethod
    def single_rack(cls, num_nodes: int, *,
                    base: Optional[NetworkModel] = None) -> "Topology":
        """The degenerate single-rack topology (== NetworkModel costs)."""
        if num_nodes < 1:
            raise SimulationError(f"need >=1 nodes, got {num_nodes}")
        return cls([list(range(num_nodes))], base=base)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = "+".join(str(len(r)) for r in self.racks)
        return f"Topology({self.num_racks} racks: {sizes})"
