"""Cluster assembly helpers.

A :class:`Cluster` is the set of distributed nodes an engine runs over,
plus the interconnect model.  Factories build the configurations the
paper evaluates: homogeneous GPU clusters (Fig. 9), heterogeneous
CPU+GPU mixes (Fig. 9(d), Fig. 12(a)), and accelerator-less baselines.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..accel import make_cpu_accelerator, make_gpu
from ..errors import SimulationError
from ..fault.retry import RetryPolicy
from .network import DEFAULT_NETWORK, NetworkModel, ResilientTransport
from .node import NATIVE_RUNTIME, DistributedNode, HostRuntime
from .topology import Topology


@dataclass
class Cluster:
    """A set of distributed nodes joined by a network.

    ``topology`` is the optional rack :class:`Topology`; when set it
    supersedes the flat ``network`` model as the collective substrate
    (:attr:`collectives`) and must span exactly this cluster's nodes.
    The default ``None`` keeps the uniform alpha-beta model and the
    historical cost path bit-for-bit.
    """

    nodes: List[DistributedNode]
    network: NetworkModel = field(default_factory=lambda: DEFAULT_NETWORK)
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SimulationError("a cluster needs at least one node")
        ids = [n.node_id for n in self.nodes]
        if ids != list(range(len(ids))):
            raise SimulationError(
                f"node ids must be 0..{len(ids) - 1} in order, got {ids}"
            )
        if (self.topology is not None
                and self.topology.num_nodes != len(self.nodes)):
            raise SimulationError(
                f"topology spans {self.topology.num_nodes} nodes, cluster "
                f"has {len(self.nodes)}")

    @property
    def collectives(self):
        """The collective cost substrate engines should charge: the rack
        topology when one is configured, the flat model otherwise."""
        return self.topology if self.topology is not None else self.network

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def capacity_factors(self) -> List[float]:
        """Per-node 1/c_j values (§III-C) for workload balancing."""
        return [n.capacity_factor() for n in self.nodes]

    def resilient_transport(self, *, max_retransmits: int = 3,
                            ack_timeout_ms: float = 1.0,
                            retransmit_base_ms: float = 0.5,
                            backoff_factor: float = 2.0
                            ) -> ResilientTransport:
        """A resilient delivery layer over this cluster's interconnect.

        The transport wraps :attr:`network` with acks, sequence-number
        dedupe, and bounded retransmission; engines swap it in for the
        bare model when ``MiddlewareConfig.network_resilient`` is set.
        """
        policy = RetryPolicy(max_attempts=max_retransmits,
                             base_delay_ms=retransmit_base_ms,
                             backoff_factor=backoff_factor)
        return ResilientTransport(self.network, policy,
                                  ack_timeout_ms=ack_timeout_ms,
                                  topology=self.topology)

    def repartition_cost_ms(self, nbytes: int, network=None,
                            moved_by_node=None) -> float:
        """Simulated cost of shipping ``nbytes`` of re-homed master rows
        after a mid-run Lemma-2 repartition (degradation rebalancing or
        online re-estimation): one tree collective across every node,
        plus the slowest host runtime's fixed synchronization overhead —
        every node re-enters the barrier around the new layout.

        ``network`` — the collective substrate to charge; defaults to
        :attr:`collectives`, engines pass their resilient transport when
        one is wired in.  ``moved_by_node`` — per-destination byte
        weights; with a topology the migration is then priced over the
        actual links it crosses instead of a uniform collective.
        """
        net = network if network is not None else self.collectives
        if moved_by_node is not None:
            cost = net.sync_ms(self.num_nodes, nbytes,
                               bytes_by_node=moved_by_node)
        else:
            cost = net.sync_ms(self.num_nodes, nbytes)
        return cost + max(n.runtime.sync_fixed_ms for n in self.nodes)

    def total_gpu_count(self) -> int:
        return sum(
            1 for n in self.nodes for a in n.accelerators
            if a.model.threads >= 1024
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cluster({self.num_nodes} nodes)"


def make_cluster(num_nodes: int, *, gpus_per_node: int = 0,
                 cpu_accels_per_node: int = 0,
                 runtime: HostRuntime = NATIVE_RUNTIME,
                 network: Optional[NetworkModel] = None,
                 topology: Optional[Topology] = None) -> Cluster:
    """Homogeneous cluster: every node gets the same accelerator set.

    Prefer describing clusters with :class:`repro.api.ClusterSpec` —
    the ``network`` kwarg here is kept as a deprecated shim.
    """
    if network is not None:
        warnings.warn(
            "make_cluster(network=...) is deprecated; describe the "
            "interconnect with repro.api.ClusterSpec instead",
            DeprecationWarning, stacklevel=2)
    if num_nodes < 1:
        raise SimulationError(f"need >=1 nodes, got {num_nodes}")
    if gpus_per_node < 0 or cpu_accels_per_node < 0:
        raise SimulationError("accelerator counts must be >= 0")
    nodes = []
    device_id = 0
    for node_id in range(num_nodes):
        accels = []
        for _ in range(gpus_per_node):
            accels.append(make_gpu(device_id))
            device_id += 1
        for _ in range(cpu_accels_per_node):
            accels.append(make_cpu_accelerator(device_id))
            device_id += 1
        nodes.append(DistributedNode(node_id, runtime, accels))
    return Cluster(nodes, network if network is not None else DEFAULT_NETWORK,
                   topology=topology)


def make_heterogeneous_cluster(accel_specs: Sequence[Sequence[str]], *,
                               runtime: HostRuntime = NATIVE_RUNTIME,
                               network: Optional[NetworkModel] = None,
                               topology: Optional[Topology] = None
                               ) -> Cluster:
    """Cluster from explicit per-node accelerator lists.

    ``accel_specs[j]`` is a sequence of ``"gpu"`` / ``"cpu"`` strings, e.g.
    the Fig. 12(a) setup is ``[["gpu", "cpu"], ["gpu", "gpu", "gpu", "cpu"]]``.
    """
    if network is not None:
        warnings.warn(
            "make_heterogeneous_cluster(network=...) is deprecated; "
            "describe the interconnect with repro.api.ClusterSpec instead",
            DeprecationWarning, stacklevel=2)
    if not accel_specs:
        raise SimulationError("need at least one node spec")
    nodes = []
    device_id = 0
    for node_id, spec in enumerate(accel_specs):
        accels = []
        for kind in spec:
            if kind == "gpu":
                accels.append(make_gpu(device_id))
            elif kind == "cpu":
                accels.append(make_cpu_accelerator(device_id))
            else:
                raise SimulationError(
                    f"unknown accelerator kind {kind!r} (want 'gpu'/'cpu')"
                )
            device_id += 1
        nodes.append(DistributedNode(node_id, runtime, accels))
    return Cluster(nodes, network if network is not None else DEFAULT_NETWORK,
                   topology=topology)
