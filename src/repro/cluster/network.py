"""Inter-node network: cost model and resilient transport.

Global synchronization between iterations (§III-B) pays a network cost
that grows with the number of distributed nodes — the effect behind the
"downhill trend" of the middleware cost ratio in Fig. 14, where the
distributed system side gradually dominates total time.

The model is a standard alpha-beta one: a latency term that grows with the
tree depth of the collective, a per-byte bandwidth term, and a small
per-node coordination term (scheduler/barrier bookkeeping on the upper
system's master).

:class:`ResilientTransport` layers delivery guarantees on top of the
cost model: every collective fragment is sequence-numbered and acked,
a missed ack is retransmitted point-to-point after a timeout with
exponential backoff (bounded by the retry policy's attempt budget),
duplicates are deduped by sequence number, a failed collective round
falls back to point-to-point retransmission, and a node that survives
the whole retransmission budget without acking earns a
:class:`~repro.errors.NodeUnreachable` verdict.  With no faults armed,
every call returns exactly the bare model's cost — the fault-free path
pays zero overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..fault.monitor import CollectiveMonitor
from ..fault.retry import RetryPolicy


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta(-gamma) cost model for cluster collectives."""

    latency_ms: float = 0.08           # one hop
    ms_per_byte: float = 0.0000100     # bandwidth scaled with the data
    coord_ms_per_node: float = 0.35    # barrier bookkeeping per participant

    def __post_init__(self) -> None:
        if min(self.latency_ms, self.ms_per_byte, self.coord_ms_per_node) < 0:
            raise SimulationError("network cost parameters must be >= 0")

    def transfer_ms(self, nbytes: int) -> float:
        """Point-to-point transfer of ``nbytes``."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        return self.latency_ms + nbytes * self.ms_per_byte

    def sync_ms(self, num_nodes: int, total_bytes: int,
                bytes_by_node=None) -> float:
        """Global synchronization cost for one iteration barrier.

        Tree-structured collective: ``ceil(log2)`` latency hops, the full
        payload crossing the wire once, plus per-node coordination.
        A single node still pays its own coordination (local barrier).

        ``bytes_by_node`` is accepted for signature compatibility with
        :class:`~repro.cluster.topology.Topology` and ignored: the flat
        model prices every byte the same no matter who produced it.
        """
        if num_nodes < 1:
            raise SimulationError(f"need >=1 nodes, got {num_nodes}")
        if total_bytes < 0:
            raise SimulationError(f"negative sync payload {total_bytes}")
        hops = math.ceil(math.log2(num_nodes)) if num_nodes > 1 else 0
        return (self.latency_ms * hops
                + total_bytes * self.ms_per_byte
                + self.coord_ms_per_node * num_nodes)

    def broadcast_ms(self, num_nodes: int, nbytes: int) -> float:
        """Broadcast ``nbytes`` to every node (global query queue, §III-B2)."""
        if num_nodes < 1:
            raise SimulationError(f"need >=1 nodes, got {num_nodes}")
        if nbytes < 0:
            raise SimulationError(f"negative broadcast size {nbytes}")
        hops = math.ceil(math.log2(num_nodes)) if num_nodes > 1 else 0
        return self.latency_ms * hops + nbytes * self.ms_per_byte

    def p2p_fallback_ms(self, num_nodes: int, total_bytes: int) -> float:
        """Point-to-point fallback for a failed collective round.

        Without the tree, the master exchanges with every node in turn:
        one latency hop per node instead of ``log2`` hops, the payload
        crossing once, plus the usual coordination — always at least as
        expensive as the healthy collective, which is why the transport
        only falls back when the collective round actually failed.
        """
        if num_nodes < 1:
            raise SimulationError(f"need >=1 nodes, got {num_nodes}")
        if total_bytes < 0:
            raise SimulationError(f"negative fallback payload {total_bytes}")
        return (self.latency_ms * num_nodes
                + total_bytes * self.ms_per_byte
                + self.coord_ms_per_node * num_nodes)


#: Default cluster interconnect (10GbE-ish, scaled).
DEFAULT_NETWORK = NetworkModel()


class ResilientTransport:
    """Ack/retransmit delivery layer over a :class:`NetworkModel`.

    Drop-in for the bare model at the engine's call sites: it exposes
    the same ``sync_ms`` / ``broadcast_ms`` / ``transfer_ms`` signatures
    and returns simulated costs, but consumes armed network faults
    (:data:`repro.fault.inject.NETWORK_KINDS`) while doing so:

    * an armed **delay** extends the barrier by the straggler's lateness;
    * an armed **dup** re-delivers a fragment whose sequence number the
      receiver has already seen — the duplicate crosses the wire (cost)
      and is dropped by the dedupe window (no semantic effect);
    * an armed **drop** loses a fragment; after ``ack_timeout_ms`` the
      sender backs off and retransmits it point-to-point;
    * an armed **sync_fail** fails the whole collective round, which is
      retried as point-to-point transfers (the wasted round is charged);
    * an armed **partition** makes a node ignore every retransmission;
      when the policy's attempt budget is spent the collective monitor
      raises :class:`~repro.errors.NodeUnreachable`.

    Faults are one-shot: armed events are consumed by the next
    collective, so a superstep re-executed after a rollback runs clean.
    All extra simulated time (anything beyond the bare model's cost) is
    accumulated in ``net_wasted_ms``.
    """

    def __init__(self, model: NetworkModel,
                 policy: Optional[RetryPolicy] = None,
                 ack_timeout_ms: float = 1.0,
                 topology=None) -> None:
        if ack_timeout_ms <= 0:
            raise SimulationError(
                f"ack timeout must be > 0, got {ack_timeout_ms}"
            )
        self.model = model
        self.policy = policy if policy is not None else RetryPolicy()
        self.ack_timeout_ms = float(ack_timeout_ms)
        self.monitor = CollectiveMonitor(self.ack_timeout_ms)
        #: optional rack :class:`~repro.cluster.topology.Topology`; when
        #: set it becomes the collective substrate (fragments ride
        #: concrete links) and link gray-faults can be armed per node.
        self.topology = topology
        # armed one-shot faults (consumed by the next collective)
        self._drops: List[int] = []
        self._delays: List[Tuple[int, float]] = []
        self._dups: List[int] = []
        self._sync_fails = 0
        self._partitions: List[int] = []
        # armed link gray-faults: node -> [factor, passes_left, flaky, tick]
        # — multi-pass (a slow uplink stays slow), unlike the one-shot
        # delivery faults above; never corrupts values, only time.
        self._slow_links: Dict[int, List] = {}
        self._link_observer = None
        # sequence-numbered delivery: per-peer next sequence to stamp
        # and per-peer delivery high-water mark, SoA int64 arrays grown
        # on demand so a clean collective round is one bulk assignment
        # (:meth:`_record_fused_round`) instead of ``num_nodes`` dict
        # round-trips
        self._next_seq = np.zeros(0, dtype=np.int64)
        self._delivered = np.full(0, -1, dtype=np.int64)
        # lifetime counters
        self.messages = 0
        self.retransmits = 0
        self.dup_drops = 0
        self.collective_fallbacks = 0
        self.partition_verdicts = 0
        self.net_wasted_ms = 0.0
        self.link_inflations = 0
        self.link_slow_ms = 0.0

    @property
    def substrate(self):
        """The collective cost substrate: the rack topology when one is
        wired in, the flat model otherwise."""
        return self.topology if self.topology is not None else self.model

    # -- fault arming (FaultInjector network events) -----------------------

    def arm_drop(self, node_id: int) -> None:
        self._drops.append(int(node_id))

    def arm_delay(self, node_id: int, delay_ms: float) -> None:
        self._delays.append((int(node_id), float(delay_ms)))

    def arm_dup(self, node_id: int) -> None:
        self._dups.append(int(node_id))

    def arm_sync_fail(self) -> None:
        self._sync_fails += 1

    def arm_partition(self, node_id: int) -> None:
        self._partitions.append(int(node_id))

    def arm_link_slow(self, node_id: int, factor: float = 4.0,
                      passes: int = 2) -> None:
        """Inflate ``node_id``'s uplink fragments ``factor``x for the
        next ``passes`` collectives.  Values are never corrupted — a
        slow link is a pure duration gray-failure."""
        if factor < 1.0:
            raise SimulationError(f"link slow factor must be >= 1, "
                                  f"got {factor}")
        if passes < 1:
            raise SimulationError(f"link slow passes must be >= 1, "
                                  f"got {passes}")
        self._slow_links[int(node_id)] = [float(factor), int(passes),
                                          False, 0]

    def arm_link_flaky(self, node_id: int, factor: float = 4.0,
                       passes: int = 2) -> None:
        """Like :meth:`arm_link_slow` but intermittent: the inflation
        fires on alternating collectives (the hardest gray failure to
        flag — the EWMA detector has to average through the flapping)."""
        self.arm_link_slow(node_id, factor, passes)
        self._slow_links[int(node_id)][2] = True

    def set_link_observer(self, observer) -> None:
        """Wire a per-link observer (the :class:`StragglerDetector`):
        every topology collective reports each node's observed vs
        healthy fragment time through ``observe_link``."""
        self._link_observer = observer

    @property
    def faults_armed(self) -> int:
        """Network events waiting for the next collective."""
        return (len(self._drops) + len(self._delays) + len(self._dups)
                + self._sync_fails + len(self._partitions))

    # -- sequence-numbered delivery ----------------------------------------

    def _ensure_peers(self, count: int) -> None:
        """Grow the per-peer sequence arrays to hold ``count`` peers."""
        cur = len(self._next_seq)
        if count <= cur:
            return
        size = max(count, cur * 2, 8)
        next_seq = np.zeros(size, dtype=np.int64)
        delivered = np.full(size, -1, dtype=np.int64)
        next_seq[:cur] = self._next_seq
        delivered[:cur] = self._delivered
        self._next_seq = next_seq
        self._delivered = delivered

    def send(self, node_id: int) -> int:
        """Stamp one logical message from ``node_id``; returns its seq."""
        node_id = int(node_id)
        if node_id < 0:
            raise SimulationError(f"negative peer id {node_id}")
        self._ensure_peers(node_id + 1)
        seq = int(self._next_seq[node_id])
        self._next_seq[node_id] = seq + 1
        self.messages += 1
        return seq

    def deliver(self, node_id: int, seq: int) -> bool:
        """Accept a fragment unless its sequence number was already seen.

        Returns ``True`` on first delivery; a re-delivery (duplicate or
        stale retransmit) returns ``False`` and counts as a dedupe drop.
        Delivery is in-order per peer, so a high-water mark suffices —
        the dedupe window is O(nodes), not O(messages).
        """
        node_id = int(node_id)
        if node_id < 0:
            raise SimulationError(f"negative peer id {node_id}")
        self._ensure_peers(node_id + 1)
        mark = int(self._delivered[node_id])
        if seq <= mark:
            self.dup_drops += 1
            return False
        self._delivered[node_id] = seq
        return True

    def _record_fused_round(self, num_nodes: int) -> None:
        """Stamp and deliver one collective's worth of fragments in bulk.

        Per-peer delivery is in-order and ``next_seq > delivered``
        always holds, so a collective round — every peer delivering
        exactly the fragment it just stamped — is two vectorized array
        ops with counters and high-water marks identical to running the
        per-fragment ``deliver(node, send(node))`` loop.
        """
        self._ensure_peers(num_nodes)
        seqs = self._next_seq[:num_nodes]
        self._delivered[:num_nodes] = seqs
        seqs += 1
        self.messages += num_nodes

    # -- collectives --------------------------------------------------------

    def transfer_ms(self, nbytes: int) -> float:
        """Point-to-point transfer (no fault handling: unicast fragments
        are only sent as retransmissions, which already paid their cost)."""
        return self.substrate.transfer_ms(nbytes)

    def sync_ms(self, num_nodes: int, total_bytes: int,
                bytes_by_node=None) -> float:
        """Global synchronization with delivery guarantees applied."""
        if self.topology is not None:
            base = self.topology.sync_ms(num_nodes, total_bytes,
                                         bytes_by_node=bytes_by_node)
        else:
            base = self.model.sync_ms(num_nodes, total_bytes)
        cost = self._collective(base, num_nodes, total_bytes)
        return cost + self._link_pass(num_nodes, total_bytes, bytes_by_node)

    def broadcast_ms(self, num_nodes: int, nbytes: int) -> float:
        """Global broadcast with delivery guarantees applied."""
        base = self.substrate.broadcast_ms(num_nodes, nbytes)
        return self._collective(base, num_nodes, nbytes)

    def _link_pass(self, num_nodes: int, total_bytes: int,
                   bytes_by_node=None) -> float:
        """Charge armed link gray-faults and feed the per-link observer.

        Each node's fragment has a *healthy* wire time (its uplink path
        over the topology, a flat transfer otherwise); an armed slow
        link inflates it and the barrier eats the difference.  Every
        topology collective also reports observed/healthy per link to
        the observer, so the EWMA detector sees clean links too and its
        median reference stays honest.  With no faults armed and no
        observer wired (or no topology), the pass is free and returns
        exactly ``0.0`` — fault-free flat runs stay bit-identical.
        """
        if not self._slow_links and (self._link_observer is None
                                     or self.topology is None):
            return 0.0
        # fused timeline: one vectorized healthy-time array for the
        # whole collective (elementwise over the topology's precomputed
        # uplink arrays, bit-identical to per-fragment fragment_ms);
        # only the faulted links split back to per-fragment handling
        if self.topology is not None:
            per_node = self.topology.node_bytes(total_bytes, bytes_by_node)
            healthy_arr = self.topology.fragment_ms_many(per_node)
        else:
            healthy_arr = None
            healthy_flat = self.model.transfer_ms(
                total_bytes / max(num_nodes, 1))
        # tick the armed gray-faults in ascending node order — the same
        # order (and thus float accumulation) as the per-node loop; an
        # entry outside this collective stays armed untouched
        factors: Dict[int, float] = {}
        for node in sorted(self._slow_links):
            if not 0 <= node < num_nodes:
                continue
            state = self._slow_links[node]
            f, left, flaky, tick = state
            state[3] = tick + 1
            factors[node] = f if (not flaky or tick % 2 == 0) else 1.0
            state[1] = left - 1
            if state[1] <= 0:
                del self._slow_links[node]
        extra = 0.0
        if self._link_observer is not None and self.topology is not None:
            # observer wired: every link reports observed vs healthy so
            # the EWMA median reference sees clean links too
            for node in range(num_nodes):
                healthy = float(healthy_arr[node])
                factor = factors.get(node, 1.0)
                observed = healthy * factor
                if factor > 1.0:
                    self.link_inflations += 1
                    extra += observed - healthy
                if healthy > 0:
                    self._link_observer.observe_link(node, observed, healthy)
        else:
            # no observer: only the faulted links need per-fragment work
            for node, factor in factors.items():
                healthy = (float(healthy_arr[node])
                           if healthy_arr is not None else healthy_flat)
                if factor > 1.0:
                    self.link_inflations += 1
                    extra += healthy * factor - healthy
        if extra > 0.0:
            self.net_wasted_ms += extra
            self.link_slow_ms += extra
        return extra

    def _collective(self, base: float, num_nodes: int,
                    total_bytes: int) -> float:
        """One collective round: charge ``base`` plus whatever the armed
        faults cost to survive.  Raises :class:`NodeUnreachable` when a
        partitioned node outlives the retransmission budget."""
        # every node contributes one sequence-numbered fragment
        self._record_fused_round(num_nodes)
        if not self.faults_armed:
            return base
        fragment = int(math.ceil(total_bytes / max(num_nodes, 1)))
        extra = 0.0

        # stragglers: the barrier pays the latest fragment
        delays, self._delays = self._delays, []
        if delays:
            extra += max(ms for _, ms in delays)

        # duplicates: the copy crosses the wire, the dedupe window eats it
        dups, self._dups = self._dups, []
        for node in dups:
            self._ensure_peers(node + 1)
            seq = max(int(self._delivered[node]), 0)
            self.deliver(node, seq)            # re-delivery: returns False
            extra += self.substrate.transfer_ms(fragment)

        # drops: ack timeout, backoff, point-to-point retransmit
        drops, self._drops = self._drops, []
        for node in drops:
            self.monitor.expect(node, base + extra)
            extra += self.ack_timeout_ms + self.policy.backoff_ms(1)
            extra += self.substrate.transfer_ms(fragment)
            self.deliver(node, self.send(node))
            self.monitor.ack(node)
            self.retransmits += 1

        # whole-round failure: the collective is wasted, fall back to
        # point-to-point retransmission of every fragment
        if self._sync_fails:
            rounds, self._sync_fails = self._sync_fails, 0
            for _ in range(rounds):
                extra += self.substrate.p2p_fallback_ms(num_nodes,
                                                        total_bytes)
                self._record_fused_round(num_nodes)
                self.collective_fallbacks += 1
                self.retransmits += num_nodes

        # partition: every retransmission misses its ack deadline
        if self._partitions:
            node = self._partitions.pop(0)
            clock = base + extra
            self.monitor.expect(node, clock)
            attempts = 0
            for attempt in range(1, self.policy.max_attempts + 1):
                clock += self.ack_timeout_ms + self.policy.backoff_ms(attempt)
                clock += self.substrate.transfer_ms(fragment)
                self.send(node)                # never delivered
                self.retransmits += 1
                attempts = attempt
            self.partition_verdicts += 1
            self.net_wasted_ms += clock
            self.monitor.verdict(node, attempts, clock)

        self.net_wasted_ms += extra
        return base + extra
