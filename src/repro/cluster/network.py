"""Inter-node network cost model.

Global synchronization between iterations (§III-B) pays a network cost
that grows with the number of distributed nodes — the effect behind the
"downhill trend" of the middleware cost ratio in Fig. 14, where the
distributed system side gradually dominates total time.

The model is a standard alpha-beta one: a latency term that grows with the
tree depth of the collective, a per-byte bandwidth term, and a small
per-node coordination term (scheduler/barrier bookkeeping on the upper
system's master).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta(-gamma) cost model for cluster collectives."""

    latency_ms: float = 0.08           # one hop
    ms_per_byte: float = 0.0000100     # bandwidth scaled with the data
    coord_ms_per_node: float = 0.35    # barrier bookkeeping per participant

    def __post_init__(self) -> None:
        if min(self.latency_ms, self.ms_per_byte, self.coord_ms_per_node) < 0:
            raise SimulationError("network cost parameters must be >= 0")

    def transfer_ms(self, nbytes: int) -> float:
        """Point-to-point transfer of ``nbytes``."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        return self.latency_ms + nbytes * self.ms_per_byte

    def sync_ms(self, num_nodes: int, total_bytes: int) -> float:
        """Global synchronization cost for one iteration barrier.

        Tree-structured collective: ``ceil(log2)`` latency hops, the full
        payload crossing the wire once, plus per-node coordination.
        A single node still pays its own coordination (local barrier).
        """
        if num_nodes < 1:
            raise SimulationError(f"need >=1 nodes, got {num_nodes}")
        if total_bytes < 0:
            raise SimulationError(f"negative sync payload {total_bytes}")
        hops = math.ceil(math.log2(num_nodes)) if num_nodes > 1 else 0
        return (self.latency_ms * hops
                + total_bytes * self.ms_per_byte
                + self.coord_ms_per_node * num_nodes)

    def broadcast_ms(self, num_nodes: int, nbytes: int) -> float:
        """Broadcast ``nbytes`` to every node (global query queue, §III-B2)."""
        if num_nodes < 1:
            raise SimulationError(f"need >=1 nodes, got {num_nodes}")
        if nbytes < 0:
            raise SimulationError(f"negative broadcast size {nbytes}")
        hops = math.ceil(math.log2(num_nodes)) if num_nodes > 1 else 0
        return self.latency_ms * hops + nbytes * self.ms_per_byte


#: Default cluster interconnect (10GbE-ish, scaled).
DEFAULT_NETWORK = NetworkModel()
