"""Exception hierarchy for the GX-Plug reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation was violated."""


class DeadlockError(SimulationError):
    """The scheduler ran out of runnable processes while some were blocked."""


class ChannelClosedError(SimulationError):
    """A send/receive was attempted on a closed message channel."""


class ShmError(ReproError):
    """Shared-memory segment misuse (bad key, double create, detach twice)."""


class GraphError(ReproError):
    """Malformed graph input or an out-of-range vertex/edge reference."""


class PartitionError(GraphError):
    """A partitioning request could not be satisfied."""


class DeviceError(ReproError):
    """Accelerator misuse (compute before load, bad block, ...)."""


class DeviceFailure(DeviceError):
    """A device crashed mid-computation (failure injection / recovery).

    Raised by :meth:`repro.accel.device.Accelerator.run` when an injected
    fault fires; the daemon-agent framework recovers by re-initializing
    the device and re-running the pass.
    """


class DeviceMemoryError(DeviceError):
    """The working set exceeds the simulated accelerator's memory capacity.

    Mirrors the paper's Fig. 9(b) observation that Gunrock "gets overflowed"
    on Twitter and UK-2007 because a single GPU cannot hold the graph.
    """


class FaultError(ReproError):
    """Base class of the fault-tolerance subsystem's failures.

    Everything :mod:`repro.fault` raises derives from this class, so the
    agent's recovery loop can treat "any injected/detected fault" as one
    family while programming errors still propagate.
    """


class FaultPlanError(FaultError):
    """A fault plan is malformed or references nonexistent targets."""


class DaemonDead(FaultError):
    """The heartbeat monitor declared a daemon dead (missed heartbeats).

    Carries ``daemon_id`` and ``silent_ms`` (how long the daemon had been
    silent past its busy lease when the watchdog gave its verdict).
    """

    def __init__(self, message: str, daemon_id: int = -1,
                 silent_ms: float = 0.0) -> None:
        super().__init__(message)
        self.daemon_id = daemon_id
        self.silent_ms = silent_ms


class ShmCorruption(FaultError):
    """A shared-memory region failed its integrity check."""


class StragglerVerdict(FaultError):
    """Soft gray-failure verdict: a daemon-agent pair works, but slow.

    Issued by :class:`~repro.fault.straggler.StragglerDetector` when a
    pair's EWMA inflation exceeds the cross-daemon median by the
    configured ratio for K consecutive observations.  Unlike
    :class:`DaemonDead` it is never raised — gray failures do not abort
    anything; the verdict is collected into the fault report and drives
    the soft responses (speculative re-execution, online Lemma-2
    re-estimation).  Carries ``daemon_id``, ``phase`` (``"compute"`` or
    ``"transfer"``), the pair's EWMA ``inflation``, the cross-daemon
    ``median`` it was judged against, and the ``streak`` length.
    """

    def __init__(self, message: str, daemon_id: int = -1,
                 phase: str = "compute", inflation: float = 1.0,
                 median: float = 1.0, streak: int = 0) -> None:
        super().__init__(message)
        self.daemon_id = daemon_id
        self.phase = phase
        self.inflation = inflation
        self.median = median
        self.streak = streak


class NetworkFault(FaultError):
    """Base class for inter-node network failures (repro.cluster.network)."""


class NodeUnreachable(NetworkFault):
    """A node stayed silent through an entire retransmission budget.

    Raised by the resilient transport when a partitioned node acks none
    of the retransmitted collective fragments; carries ``node_id`` and
    ``wasted_ms`` (the simulated time the failed collective plus all its
    retransmission rounds burned).  The engine reacts with the same
    rollback + degradation path as :class:`AcceleratorsExhausted`.
    """

    def __init__(self, message: str, node_id: int = -1,
                 wasted_ms: float = 0.0) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.wasted_ms = wasted_ms


class RetryExhausted(FaultError):
    """A retry policy ran out of attempts for a recurring fault."""


class AcceleratorsExhausted(RetryExhausted):
    """A node's accelerators are unusable even after retries/respawns.

    With ``MiddlewareConfig.degrade_to_host`` the engine reacts by
    rolling back to the last checkpoint and running the node on its host
    (CPU baseline) path instead of failing the job.
    """

    def __init__(self, message: str, node_id: int = -1) -> None:
        super().__init__(message)
        self.node_id = node_id


class CheckpointError(FaultError):
    """Checkpoint store misuse (restore before any save, bad interval)."""


class MiddlewareError(ReproError):
    """Errors in the daemon-agent protocol or middleware configuration."""


class ProtocolError(MiddlewareError):
    """An agent or daemon received a message it cannot handle in its state."""


class EngineError(ReproError):
    """Upper-system (GraphX/PowerGraph engine) misuse."""


class AlgorithmError(ReproError):
    """An algorithm template implementation broke its contract."""


class BenchmarkError(ReproError):
    """Bad benchmark parameters or a failed benchmark regression gate."""


class ServeError(ReproError):
    """Serving-layer misuse (unknown graph key, bad job spec, ...)."""


class AdmissionError(ServeError):
    """A job can never be admitted under the service's resource budgets.

    Raised at submit time when the job's needs exceed the configured
    memory/daemon budgets even on an otherwise idle service — queueing
    it would deadlock the queue, so it is rejected outright.
    """


class WireError(ServeError):
    """Base class of the serving wire protocol's failures.

    Everything the JSONL-over-TCP layer (:mod:`repro.serve.wire`,
    :mod:`repro.serve.client`) raises derives from this class, so a
    caller can treat "the wire broke" as one family while service-side
    errors relayed over it keep their usual :class:`ServeError` shape.
    """


class WireProtocolError(WireError):
    """A frame violated the wire schema (bad op, field, or version)."""


class WireTimeout(WireError):
    """A single request exceeded its per-request timeout budget."""


class WireUnavailable(WireError):
    """The server stayed unreachable through a whole reconnect budget.

    Carries ``backoff_schedule`` — the jittered delays (seconds) the
    client actually slept between attempts — so callers and tests can
    see the exponential backoff that was applied instead of a hang.
    """

    def __init__(self, message: str,
                 backoff_schedule: tuple = ()) -> None:
        super().__init__(message)
        self.backoff_schedule = tuple(backoff_schedule)


class WireShed(WireError):
    """The server refused a submit under overload or drain.

    Carries ``retry_after_ms`` (the server's backlog-derived hint for
    when a resubmit might be admitted) and ``draining`` (True when the
    refusal came from a graceful shutdown rather than load).
    """

    def __init__(self, message: str,
                 retry_after_ms: float = 0.0,
                 draining: bool = False) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.draining = draining
