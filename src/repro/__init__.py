"""GX-Plug reproduction: middleware for plugging accelerators into
distributed graph processing (Zou, Xie, Li, Kong — ICDE 2022).

A pure-Python, deterministic reproduction of the complete GX-Plug system:
the daemon-agent middleware with its pipeline shuffle, synchronization
caching/skipping and workload balancing; GraphX-like (BSP/JVM) and
PowerGraph-like (GAS/native) upper systems; simulated GPU/CPU
accelerators; and the Gunrock/Lux comparators.  All computation is real
(values match single-machine references); all *timing* is simulated
milliseconds from a discrete-event clock, so every experiment is
reproducible bit-for-bit.

Quickstart::

    from repro import (GXPlug, PowerGraphEngine, PageRank, make_cluster,
                       load_dataset)

    graph = load_dataset("orkut")
    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    result = engine.run(PageRank(), max_iterations=10)
    print(result.summary())
"""

from .errors import (
    AcceleratorsExhausted,
    AlgorithmError,
    ChannelClosedError,
    CheckpointError,
    DaemonDead,
    DeadlockError,
    DeviceError,
    DeviceMemoryError,
    EngineError,
    FaultError,
    FaultPlanError,
    GraphError,
    MiddlewareError,
    NetworkFault,
    NodeUnreachable,
    PartitionError,
    ProtocolError,
    ReproError,
    RetryExhausted,
    ShmCorruption,
    ShmError,
    SimulationError,
)
from .fault import (
    ALL_KINDS,
    Checkpoint,
    CheckpointStore,
    CollectiveMonitor,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultReport,
    GRAY_KINDS,
    HeartbeatMonitor,
    NETWORK_KINDS,
    RetryPolicy,
    StragglerDetector,
    fault_report,
)
from .graph import (
    DATASETS,
    Graph,
    dataset_names,
    load_dataset,
    load_synthetic_clustered,
    load_synthetic_uniform,
    partition,
    rmat,
    uniform_random,
)
from .accel import V100, XEON_ACCEL, Accelerator, make_cpu_accelerator, make_gpu
from .cluster import (
    Cluster,
    DistributedNode,
    JVM_RUNTIME,
    LinkModel,
    NATIVE_RUNTIME,
    NetworkModel,
    ResilientTransport,
    Topology,
    make_cluster,
    make_heterogeneous_cluster,
)
from .core import (
    BASELINE,
    FULL,
    NETWORK_RESILIENT,
    PRESETS,
    RESILIENT,
    AlgorithmTemplate,
    ClusterSpec,
    GXPlug,
    MessageSet,
    MiddlewareConfig,
    PipelineCoefficients,
    RuntimeConfig,
    StragglerConfig,
)
from .engines import (AsyncEngine, GraphXEngine,
                      PowerGraphEngine, RunResult)
from .algorithms import (
    BFS,
    ConnectedComponents,
    KCore,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
    paper_workloads,
)
from .baselines import GunrockSystem, LuxSystem

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "SimulationError", "DeadlockError", "ChannelClosedError",
    "ShmError", "GraphError", "PartitionError", "DeviceError",
    "DeviceMemoryError", "MiddlewareError", "ProtocolError", "EngineError",
    "AlgorithmError", "FaultError", "FaultPlanError", "DaemonDead",
    "ShmCorruption", "RetryExhausted", "AcceleratorsExhausted",
    "CheckpointError", "NetworkFault", "NodeUnreachable",
    # fault tolerance
    "FaultEvent", "FaultPlan", "FaultInjector", "HeartbeatMonitor",
    "CollectiveMonitor", "RetryPolicy", "Checkpoint", "CheckpointStore",
    "FaultReport", "fault_report", "NETWORK_KINDS", "GRAY_KINDS",
    "ALL_KINDS", "StragglerDetector",
    # graph
    "Graph", "rmat", "uniform_random", "partition", "DATASETS",
    "dataset_names", "load_dataset", "load_synthetic_uniform",
    "load_synthetic_clustered",
    # accel / cluster
    "Accelerator", "V100", "XEON_ACCEL", "make_gpu", "make_cpu_accelerator",
    "Cluster", "DistributedNode", "NetworkModel", "ResilientTransport",
    "Topology", "LinkModel",
    "JVM_RUNTIME",
    "NATIVE_RUNTIME", "make_cluster", "make_heterogeneous_cluster",
    # middleware
    "GXPlug", "MiddlewareConfig", "StragglerConfig", "ClusterSpec",
    "RuntimeConfig", "FULL", "BASELINE",
    "RESILIENT", "NETWORK_RESILIENT", "PRESETS",
    "AlgorithmTemplate",
    "MessageSet", "PipelineCoefficients",
    # engines
    "GraphXEngine", "PowerGraphEngine", "AsyncEngine", "RunResult",
    # algorithms
    "MultiSourceSSSP", "PageRank", "LabelPropagation", "BFS",
    "ConnectedComponents", "KCore", "WidestPath", "paper_workloads",
    # baselines
    "GunrockSystem", "LuxSystem",
]
