"""Command-line interface for the GX-Plug reproduction.

Subcommands::

    repro-gxplug datasets                    # Table I inventory
    repro-gxplug run --algorithm pagerank --dataset orkut \\
                     --nodes 4 --gpus 1 --engine powergraph
    repro-gxplug figure fig9a                # regenerate a paper figure
    repro-gxplug submit --jobs-file jobs.jsonl --graph wrn \\
                     --algorithm pagerank --tenant alice
    repro-gxplug serve --jobs-file jobs.jsonl --nodes 2  # drain them

Everything prints deterministic simulated-millisecond results.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .algorithms import (
    BFS,
    ConnectedComponents,
    KCore,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
)
from .bench import print_table
from .bench.hotpath import (DEFAULT_ALGORITHMS, PROFILES, check_regression,
                            format_report, load_bench_json, merge_entry,
                            run_hotpath_bench, write_bench_json)
from .bench.trace import write_csv, write_json
from .cluster import Topology
from .core import ClusterSpec, GXPlug, MiddlewareConfig, StragglerConfig
from .engines import AsyncEngine, GraphXEngine, PowerGraphEngine
from .errors import SimulationError
from .fault import ALL_KINDS, FaultPlan
from .graph import dataset_names, load_dataset

ALGORITHMS = {
    "pagerank": lambda args: PageRank(),
    "sssp-bf": lambda args: MultiSourceSSSP(
        sources=tuple(args.sources)),
    "lp": lambda args: LabelPropagation(),
    "bfs": lambda args: BFS(source=args.sources[0]),
    "cc": lambda args: ConnectedComponents(),
    "kcore": lambda args: KCore(k=args.k),
    "widest-path": lambda args: WidestPath(source=args.sources[0]),
}

ENGINES = {
    "graphx": (GraphXEngine, "jvm"),
    "powergraph": (PowerGraphEngine, "native"),
    "async": (AsyncEngine, "native"),
}

FIGURES = (
    "table1", "fig8", "fig9a", "fig9b", "fig9c", "fig9d", "fig10",
    "fig11a", "fig11b", "fig12a", "fig12b", "fig13", "fig14", "fig15",
    "fault_soak", "straggler_soak", "topology_soak", "serve_soak",
    "serve_chaos", "wire_chaos", "mutation_soak",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gxplug",
        description="GX-Plug (ICDE 2022) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table I dataset twins")

    run = sub.add_parser("run", help="run one distributed graph job")
    run.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                     default="pagerank")
    run.add_argument("--dataset", choices=dataset_names(),
                     default="orkut")
    run.add_argument("--engine", choices=sorted(ENGINES),
                     default="powergraph")
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--gpus", type=int, default=1,
                     help="GPUs per node (0 for none)")
    run.add_argument("--cpus", type=int, default=0,
                     help="CPU accelerators per node")
    run.add_argument("--max-iterations", type=int, default=None)
    run.add_argument("--sources", type=int, nargs="+",
                     default=[0, 1, 2, 3],
                     help="source vertices (sssp-bf/bfs/widest-path)")
    run.add_argument("--k", type=int, default=3, help="k for kcore")
    run.add_argument("--topology", metavar="SPEC", default=None,
                     help="rack topology, e.g. 'rack:2x4' (2 racks of 4 "
                          "nodes; cross-rack links are 4x slower than "
                          "intra-rack) or 'flat:8'; append "
                          "';link=SRC-DST:LAT_MS:MS_PER_BYTE' clauses to "
                          "pin individual directed links, e.g. "
                          "'rack:2x2;link=2-0:5.0:0.02'; default: flat "
                          "single-switch interconnect")
    run.add_argument("--no-middleware", action="store_true",
                     help="run on the bare engine (host compute)")
    run.add_argument("--no-pipeline", action="store_true")
    run.add_argument("--no-cache", action="store_true")
    run.add_argument("--no-skip", action="store_true")
    run.add_argument("--per-event-loop", action="store_true",
                     help="drive the protocol with the per-event "
                          "scheduler oracle instead of the batched "
                          "event heap (same results, slower wall "
                          "clock; for debugging/verification)")
    run.add_argument("--block-size", type=int, default=None)
    run.add_argument("--trace-json", metavar="PATH", default=None,
                     help="write per-iteration telemetry as JSON")
    run.add_argument("--trace-csv", metavar="PATH", default=None,
                     help="write per-iteration telemetry as CSV")
    run.add_argument("--fault-seed", type=int, default=None,
                     help="inject a deterministic random fault campaign "
                          "derived from this seed (enables the resilient "
                          "fault-tolerance stack)")
    run.add_argument("--fault-rate", type=float, default=0.05,
                     help="per-(superstep, node) fault probability for "
                          "the seeded campaign (default 0.05)")
    run.add_argument("--fault-kinds", nargs="+", metavar="KIND",
                     default=None,
                     help="fault kinds the campaign draws from "
                          f"(default: all of {', '.join(sorted(ALL_KINDS))})")
    run.add_argument("--straggler-ratio", type=float, default=None,
                     metavar="R",
                     help="EWMA inflation multiple over the cross-daemon "
                          "median that flags a daemon-agent pair as a "
                          "straggler (default 3.0; needs --fault-seed)")
    run.add_argument("--link-slow-ratio", type=float, default=None,
                     metavar="R",
                     help="per-link EWMA inflation multiple over the "
                          "cross-link median that flags an uplink as "
                          "gray-failed (default: --straggler-ratio; "
                          "needs --fault-seed)")
    run.add_argument("--speculate", action="store_true",
                     help="re-issue a flagged straggler's pending block "
                          "to the fastest idle daemon, first finisher "
                          "wins (needs --fault-seed and the pipelined "
                          "protocol)")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("name", choices=FIGURES)

    submit = sub.add_parser(
        "submit", help="append a tenant job to a serving jobs file")
    submit.add_argument("--jobs-file", metavar="PATH", default=None,
                        help="JSON-lines file the serve command consumes "
                             "(required unless --connect)")
    submit.add_argument("--graph", required=True,
                        help="graph store key the job attaches to")
    submit.add_argument("--algorithm", default="pagerank",
                        help="serving algorithm name (see docs/serving.md)")
    submit.add_argument("--params", metavar="JSON", default=None,
                        help="algorithm parameters as a JSON object, "
                             "e.g. '{\"sources\": [0, 1]}'")
    submit.add_argument("--engine", default="powergraph",
                        choices=("powergraph", "graphx", "async"))
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=1,
                        help="fair-share weight (>= 1; higher drains "
                             "faster)")
    submit.add_argument("--max-iterations", type=int, default=None)
    submit.add_argument("--preset", default="full",
                        help="RuntimeConfig preset for the job "
                             "(full/baseline/resilient/network-resilient)")
    submit.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache for this job")
    submit.add_argument("--deadline-ms", type=float, default=None,
                        help="submit-to-finish budget on the service "
                             "clock; a job that blows it fails with "
                             "'deadline exceeded'")
    submit.add_argument("--max-retries", type=int, default=None,
                        help="retry budget: failed runs resume from "
                             "their last checkpoint up to N times "
                             "before quarantine (default 0)")
    submit.add_argument("--retry-backoff-ms", type=float, default=None,
                        help="base of the exponential retry backoff "
                             "(doubles per attempt; default 1.0)")
    submit.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="submit over the wire protocol to a "
                             "'serve --listen' server instead of "
                             "appending to --jobs-file")
    submit.add_argument("--idempotency-key", metavar="KEY", default=None,
                        help="with --connect: client-chosen key making "
                             "the submit exactly-once across "
                             "reconnects and server crashes")
    submit.add_argument("--wait", action="store_true",
                        help="with --connect: block until the job is "
                             "terminal and report its final state")
    submit.add_argument("--timeout-s", type=float, default=10.0,
                        help="with --connect: per-request timeout "
                             "(default 10s)")
    submit.add_argument("--fault-kind", default=None,
                        help="inject a single fault into this job "
                             "(e.g. crash); other tenants are isolated")
    submit.add_argument("--fault-superstep", type=int, default=1)
    submit.add_argument("--fault-node", type=int, default=0)
    submit.add_argument("--fault-repeat", type=int, default=1)

    mut = sub.add_parser(
        "mutate", help="apply a mutation batch to a served graph")
    mut.add_argument("--connect", metavar="HOST:PORT", required=True,
                     help="a 'serve --listen' server to mutate through "
                          "(mutations are service-side: versioned, "
                          "journaled, exactly-once)")
    mut.add_argument("--graph", required=True,
                     help="graph store key the batch applies to")
    mut.add_argument("--batch-file", metavar="PATH", required=True,
                     help="JSON mutation batch: any of 'add', 'remove', "
                          "'update' ({src, dst[, weights]} lists), "
                          "'add_vertices' (int), 'remove_vertices' "
                          "(list); see docs/streaming.md")
    mut.add_argument("--idempotency-key", metavar="KEY", default=None,
                     help="client-chosen key making the batch "
                          "exactly-once across reconnects and server "
                          "crashes (default: the batch's content "
                          "fingerprint)")
    mut.add_argument("--tenant", default="default",
                     help="client name for the session lease")
    mut.add_argument("--timeout-s", type=float, default=10.0,
                     help="per-request timeout (default 10s)")

    serve = sub.add_parser(
        "serve", help="run a multi-tenant serving session to completion")
    serve.add_argument("--jobs-file", metavar="PATH", default=None,
                       help="JSON-lines file written by submit "
                            "(required unless --recover)")
    serve.add_argument("--graph", action="append", metavar="KEY=DATASET",
                       default=None,
                       help="load DATASET into the store under KEY "
                            "(repeatable; default: treat each job's "
                            "graph key as a dataset name)")
    serve.add_argument("--nodes", type=int, default=2)
    serve.add_argument("--gpus", type=int, default=1)
    serve.add_argument("--topology", metavar="SPEC", default=None,
                       help="rack topology spec (same grammar as run)")
    serve.add_argument("--memory-budget-mb", type=float, default=None,
                       help="admission budget: resident graph MB, "
                            "counted once per shared graph")
    serve.add_argument("--daemon-budget", type=int, default=None,
                       help="admission budget: concurrently attached "
                            "daemons")
    serve.add_argument("--max-running", type=int, default=4,
                       help="max concurrently running jobs (default 4)")
    serve.add_argument("--cache-entries", type=int, default=64,
                       help="result-cache capacity (default 64)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="overload shed: refuse submissions once "
                            "this many jobs are pending")
    serve.add_argument("--max-pending-per-tenant", type=int,
                       default=None,
                       help="overload shed: per-tenant pending cap")
    serve.add_argument("--waiter-timeout-ms", type=float, default=None,
                       help="simulated ms a coalesced query waits for "
                            "its singleflight leader before the group "
                            "recomputes (default: wait forever)")
    serve.add_argument("--trace-dir", metavar="DIR", default=None,
                       help="write one per-job trace JSON into DIR")
    serve.add_argument("--journal", metavar="PATH", default=None,
                       help="write-ahead job journal; every lifecycle "
                            "transition is durable before the service "
                            "acts on it (see docs/serving.md)")
    serve.add_argument("--recover", action="store_true",
                       help="rebuild the service from --journal instead "
                            "of starting fresh: finished jobs re-serve "
                            "from their journaled results, in-flight "
                            "jobs resume from their last checkpoint")
    serve.add_argument("--drain-after", type=int, metavar="STEPS",
                       default=None,
                       help="run STEPS scheduling rounds, then drain: "
                            "finish running jobs, shed pending ones, "
                            "journal a clean-shutdown marker")
    serve.add_argument("--json", action="store_true",
                       help="print the final metrics as JSON")
    serve.add_argument("--listen", metavar="HOST:PORT", default=None,
                       help="serve the wire protocol on HOST:PORT "
                            "(JSONL over TCP) instead of draining a "
                            "jobs file; SIGTERM drains gracefully")
    serve.add_argument("--lease-ms", type=float, default=30_000.0,
                       help="with --listen: session lease; a client "
                            "silent this long is reaped as half-open")

    bench = sub.add_parser(
        "bench", help="wall-clock hot-path throughput benchmark")
    bench.add_argument("--profile", choices=sorted(PROFILES),
                       default="default",
                       help="named bench shape: R-MAT hot path "
                            "(default/smoke) or event-loop twin "
                            "(scheduler/sched-smoke)")
    bench.add_argument("--vertices", type=int, default=None,
                       help="override the profile's |V|")
    bench.add_argument("--edges", type=int, default=None,
                       help="override the profile's |E|")
    bench.add_argument("--algorithms", nargs="+", metavar="ALG",
                       choices=DEFAULT_ALGORITHMS,
                       default=list(DEFAULT_ALGORITHMS))
    bench.add_argument("--nodes", type=int, default=2)
    bench.add_argument("--gpus", type=int, default=1)
    bench.add_argument("--cache-fraction", type=float, default=0.1,
                       help="vertex-cache capacity as a fraction of |V| "
                            "(default 0.1)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeats", type=int, default=1,
                       help="runs per workload; the fastest is kept")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="merge this run into a BENCH_hotpath.json "
                            "document (entry named after --entry)")
    bench.add_argument("--entry", default=None,
                       help="entry name inside the JSON document "
                            "(default: the profile name)")
    bench.add_argument("--check", metavar="PATH", default=None,
                       help="gate against the committed entry in this "
                            "BENCH_hotpath.json instead of writing")
    bench.add_argument("--max-regression", type=float, default=0.3,
                       help="allowed fractional throughput drop for "
                            "--check (default 0.3 = 30%%)")
    return parser


def cmd_datasets() -> int:
    from .bench import run_table1

    print_table(
        ["dataset", "paper |V|", "paper |E|", "type",
         "twin |V|", "twin |E|", "twin deg"],
        run_table1(), title="Table I datasets (paper vs twins)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    # fault-flag validation happens eagerly, before any graph loading or
    # cluster construction, so a typo fails in milliseconds.
    if args.fault_kinds is not None:
        unknown = sorted(set(args.fault_kinds) - set(ALL_KINDS))
        if unknown:
            print("error: unknown fault kind(s): "
                  + ", ".join(unknown) + "; valid kinds: "
                  + ", ".join(sorted(ALL_KINDS)), file=sys.stderr)
            return 2
        if args.fault_seed is None:
            print("error: --fault-kinds selects kinds for the seeded "
                  "campaign; it needs --fault-seed", file=sys.stderr)
            return 2
    if (args.straggler_ratio is not None or args.speculate
            or args.link_slow_ratio is not None) \
            and args.fault_seed is None:
        print("error: --straggler-ratio/--speculate/--link-slow-ratio "
              "tune the gray-failure stack of a seeded campaign; they "
              "need --fault-seed", file=sys.stderr)
        return 2
    if args.straggler_ratio is not None and args.straggler_ratio <= 1.0:
        print(f"error: --straggler-ratio must be > 1 (a pair is flagged "
              f"when it runs RATIO times slower than the median), got "
              f"{args.straggler_ratio}", file=sys.stderr)
        return 2
    if args.link_slow_ratio is not None and args.link_slow_ratio <= 1.0:
        print(f"error: --link-slow-ratio must be > 1 (a link is flagged "
              f"when its fragments run RATIO times slower than the "
              f"cross-link median), got {args.link_slow_ratio}",
              file=sys.stderr)
        return 2
    if args.topology is not None:
        try:
            racks = Topology.parse_spec(args.topology)
            link_overrides = Topology.parse_link_overrides(args.topology)
        except SimulationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        spanned = sum(len(r) for r in racks)
        if spanned != args.nodes:
            print(f"error: --topology {args.topology!r} spans {spanned} "
                  f"node(s) but --nodes is {args.nodes}", file=sys.stderr)
            return 2
        bad_ends = sorted({end for pair in link_overrides for end in pair
                           if not 0 <= end < args.nodes})
        if bad_ends:
            print(f"error: --topology {args.topology!r} overrides links "
                  f"on node(s) {bad_ends} outside 0..{args.nodes - 1}",
                  file=sys.stderr)
            return 2
    if args.speculate and args.no_pipeline:
        print("error: speculative re-execution rides the pipelined "
              "protocol; drop --no-pipeline", file=sys.stderr)
        return 2

    graph = load_dataset(args.dataset)
    engine_cls, runtime = ENGINES[args.engine]
    algorithm = ALGORITHMS[args.algorithm](args)

    if args.engine == "async" and args.no_middleware:
        print("error: the async engine requires the middleware",
              file=sys.stderr)
        return 2
    if args.fault_seed is not None and args.no_middleware:
        print("error: --fault-seed targets the middleware fault "
              "subsystem; drop --no-middleware", file=sys.stderr)
        return 2

    campaign = None
    middleware = None
    if not args.no_middleware:
        if args.gpus == 0 and args.cpus == 0:
            print("error: middleware needs accelerators "
                  "(--gpus/--cpus) or use --no-middleware",
                  file=sys.stderr)
            return 2
        spec = ClusterSpec(nodes=args.nodes, gpus_per_node=args.gpus,
                           cpus_per_node=args.cpus, runtime=runtime,
                           topology=args.topology)
        cluster = spec.build()
        no_cache = args.no_cache
        config = MiddlewareConfig(
            pipeline=not args.no_pipeline,
            block_size=args.block_size,
            sync_cache=not no_cache,
            lazy_upload=not no_cache,
            sync_skip=not (no_cache or args.no_skip),
            batch_events=not args.per_event_loop,
        )
        if args.fault_seed is not None:
            kinds = (tuple(args.fault_kinds) if args.fault_kinds
                     else ALL_KINDS)
            supersteps = (args.max_iterations
                          if args.max_iterations is not None
                          else algorithm.default_max_iterations)
            plan = FaultPlan.random(
                args.fault_seed, supersteps=supersteps,
                num_nodes=args.nodes, rate=args.fault_rate, kinds=kinds)
            if plan.requires_monitor and args.no_pipeline:
                print("error: the campaign drew stall faults "
                      "(hang/drop); detecting them needs the pipelined "
                      "protocol — drop --no-pipeline or restrict "
                      "--fault-kinds", file=sys.stderr)
                return 2
            straggler = StragglerConfig(
                enabled=True,
                ratio=(args.straggler_ratio
                       if args.straggler_ratio is not None else 3.0),
                link_ratio=args.link_slow_ratio,
                speculate=args.speculate,
                reestimate=True,
            )
            config = config.with_(
                fault_plan=plan,
                monitor_heartbeats=not args.no_pipeline,
                checkpoint_interval=2,
                degrade_to_host=True,
                rebalance_on_degrade=True,
                network_resilient=True,
                straggler=straggler,
            )
            # everything needed to replay this exact campaign later
            campaign = {
                "seed": args.fault_seed,
                "rate": args.fault_rate,
                "kinds": sorted(kinds),
                "supersteps": supersteps,
                "nodes": args.nodes,
                "events": len(plan.events),
                "straggler_ratio": straggler.ratio,
                "speculate": straggler.speculate,
            }
        middleware = GXPlug(cluster, config)
    else:
        spec = ClusterSpec(nodes=args.nodes, gpus_per_node=0,
                           runtime=runtime, topology=args.topology)
        cluster = spec.build()

    engine = engine_cls.build(graph, cluster, middleware=middleware)
    result = engine.run(algorithm, max_iterations=args.max_iterations)

    print(f"graph      : {graph}")
    print(f"cluster    : {args.nodes} nodes x "
          f"({args.gpus} GPU + {args.cpus} CPU accel)"
          if middleware else f"cluster    : {args.nodes} nodes (host)")
    print(f"result     : {result.summary()}")
    print(f"converged  : {result.converged}")
    rows = [(k, round(v, 2)) for k, v in sorted(result.breakdown.items())]
    print_table(["component", "simulated ms"], rows, title="breakdown")
    if middleware is not None:
        print(f"middleware ratio: {result.middleware_ratio:.1%}")
    if result.sched_events:
        print(f"event loop : {result.sched_events} events in "
              f"{result.sched_batches} batches "
              f"(max cohort {result.sched_max_batch}, "
              f"heap peak {result.sched_heap_peak})")
    if middleware is not None and middleware.injector is not None:
        print(middleware.fault_report(result).summary())
    if args.trace_json:
        write_json(result, args.trace_json, campaign=campaign,
                   cluster_spec=spec.to_dict())
        print(f"trace written: {args.trace_json}")
    if args.trace_csv:
        write_csv(result, args.trace_csv)
        print(f"trace written: {args.trace_csv}")
    return 0


def cmd_figure(name: str) -> int:
    from .bench import runner

    headers = {
        "table1": ["dataset", "paper |V|", "paper |E|", "type",
                   "twin |V|", "twin |E|", "twin deg"],
        "fig8": ["dataset", "engine", "algorithm", "variant", "sim ms",
                 "speedup"],
        "fig9a": ["system", "gpus", "sim ms"],
        "fig9b": ["dataset", "system", "gpus", "sim ms"],
        "fig9c": ["algorithm", "gpus", "sim ms"],
        "fig9d": ["mix", "capacity", "sim ms"],
        "fig10": ["algorithm", "variant", "sim ms"],
        "fig11a": ["engine", "dataset", "cache", "total ms", "steady ms",
                   "hit rate"],
        "fig11b": ["dataset", "iters no-skip", "iters skip", "decrease"],
        "fig12a": ["strategy", "sim ms"],
        "fig12b": ["split", "variant", "gpus", "sim ms"],
        "fig13": ["variant", "sim ms", "inits"],
        "fig14": ["engine", "algorithm", "nodes", "ratio"],
        "fault_soak": ["rate", "injected", "total ms", "overhead ms",
                       "retransmits", "net wasted ms", "rollbacks"],
        "straggler_soak": ["variant", "total ms", "lost ms", "verdicts",
                           "speculation", "coeff updates",
                           "online rebalances"],
        "topology_soak": ["variant", "total ms", "lost ms",
                          "link verdicts", "link slow ms",
                          "coeff updates", "online rebalances"],
        "serve_soak": ["variant", "jobs", "done", "failed",
                       "cache hits", "hit rate", "coalesced", "p50 ms",
                       "p99 ms", "makespan ms", "cached speedup",
                       "isolated"],
        "serve_chaos": ["seed", "killed at", "jobs", "pre-crash done",
                        "resumed", "identical", "steps saved",
                        "replay no-op"],
        "wire_chaos": ["seed", "kills", "generations", "jobs",
                       "resumed", "deduped", "reconnects", "identical",
                       "exactly once", "strictly fewer", "steps saved"],
        "mutation_soak": ["algorithm", "churn", "cold steps",
                          "warm steps", "step ratio", "cold ms",
                          "warm ms", "ms ratio", "warm", "identical",
                          "replay no-op"],
    }
    if name == "fig15":
        out = runner.run_fig15()
        for alg, data in out.items():
            rows = [(s, round(m, 1), round(dict(data["estimated"])[s], 1))
                    for s, m in data["measured"]]
            print_table(["s", "measured ms", "estimated ms"], rows,
                        title=f"Fig. 15 — {alg} (estimated s_opt="
                              f"{data['s_opt']})")
        return 0
    func = getattr(runner, f"run_{name}")
    print_table(headers[name], func(), title=name)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .errors import BenchmarkError

    profile = PROFILES[args.profile]
    kind = profile.get("kind", "hotpath")
    try:
        if kind == "scheduler":
            from .bench.schedbench import (format_scheduler_report,
                                           run_scheduler_bench)
            payload = run_scheduler_bench(
                nodes=profile["nodes"], fragments=profile["fragments"],
                rounds=profile["rounds"], repeats=args.repeats)
            report = format_scheduler_report(payload)
        else:
            vertices = args.vertices if args.vertices is not None \
                else profile["vertices"]
            edges = args.edges if args.edges is not None \
                else profile["edges"]
            payload = run_hotpath_bench(
                vertices=vertices, edges=edges,
                algorithms=tuple(args.algorithms),
                nodes=args.nodes, gpus=args.gpus,
                cache_fraction=args.cache_fraction,
                seed=args.seed, repeats=args.repeats)
            report = format_report(payload)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in report:
        print(line)
    entry = args.entry or args.profile
    if args.check:
        try:
            doc = load_bench_json(args.check)
            print(check_regression(doc, entry, payload,
                                   args.max_regression))
        except (OSError, BenchmarkError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        try:
            doc = load_bench_json(args.json)
        except OSError:
            doc = None  # first write creates the document
        except BenchmarkError as exc:
            print(f"error: refusing to overwrite {args.json}: {exc}",
                  file=sys.stderr)
            return 1
        doc = merge_entry(doc, entry, payload)
        write_bench_json(doc, args.json)
        print(f"bench entry {entry!r} written: {args.json}")
    return 0


def parse_hostport(text: str) -> "tuple":
    """Split a ``HOST:PORT`` clause; raises ``ValueError`` when bad."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .errors import ServeError
    from .serve.job import JobSpec

    if args.connect is None and args.jobs_file is None:
        print("error: submit needs --jobs-file (file handoff) or "
              "--connect HOST:PORT (wire protocol)", file=sys.stderr)
        return 2

    record = {"graph": args.graph, "algorithm": args.algorithm,
              "engine": args.engine, "tenant": args.tenant,
              "priority": args.priority, "preset": args.preset}
    if args.params is not None:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            print(f"error: --params is not valid JSON: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("error: --params must be a JSON object", file=sys.stderr)
            return 2
        record["params"] = params
    if args.max_iterations is not None:
        record["max_iterations"] = args.max_iterations
    if args.no_cache:
        record["use_cache"] = False
    if args.deadline_ms is not None:
        record["deadline_ms"] = args.deadline_ms
    if args.max_retries is not None:
        record["max_retries"] = args.max_retries
    if args.retry_backoff_ms is not None:
        record["retry_backoff_ms"] = args.retry_backoff_ms
    if args.fault_kind is not None:
        record["fault"] = {"kind": args.fault_kind,
                           "superstep": args.fault_superstep,
                           "node": args.fault_node,
                           "repeat": args.fault_repeat}
    try:
        spec = JobSpec.from_dict(record)  # validate before persisting
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.connect is not None:
        from .errors import WireError, WireShed, WireUnavailable
        from .serve.client import GraphClient
        try:
            host, port = parse_hostport(args.connect)
        except ValueError as exc:
            print(f"error: --connect: {exc}", file=sys.stderr)
            return 2
        try:
            with GraphClient(host, port, client_name=f"cli:{args.tenant}",
                             timeout_s=args.timeout_s) as client:
                resp = client.submit(
                    spec, idempotency_key=args.idempotency_key)
                verb = "deduped to" if resp["deduped"] else "submitted as"
                print(f"{args.tenant}: {args.algorithm} on "
                      f"{args.graph!r} {verb} job #{resp['job_id']} "
                      f"({resp['state']})")
                if args.wait:
                    doc = client.wait(resp["job_id"])
                    print(f"job #{doc['job_id']} {doc['state']}"
                          + (f": {doc['error']}" if doc["error"] else ""))
                    return 0 if doc["state"] == "done" else 1
            return 0
        except WireShed as exc:
            print(f"shed: {exc} (retry after "
                  f"{exc.retry_after_ms:.0f} ms"
                  + (", draining)" if exc.draining else ")"),
                  file=sys.stderr)
            return 1
        except WireUnavailable as exc:
            print(f"error: {exc}; backoff applied: "
                  f"{[round(d, 3) for d in exc.backoff_schedule]}",
                  file=sys.stderr)
            return 1
        except WireError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    with open(args.jobs_file, "a", encoding="utf-8") as f:
        f.write(json.dumps(record) + "\n")
    print(f"queued {args.tenant}: {args.algorithm} on {args.graph!r} "
          f"-> {args.jobs_file}")
    return 0


def cmd_mutate(args: argparse.Namespace) -> int:
    import json

    from .errors import (GraphError, WireError, WireShed,
                         WireUnavailable)
    from .graph.mutations import MutationBatch
    from .serve.client import GraphClient

    try:
        host, port = parse_hostport(args.connect)
    except ValueError as exc:
        print(f"error: --connect: {exc}", file=sys.stderr)
        return 2
    try:
        with open(args.batch_file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: bad batch file {args.batch_file!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        batch = MutationBatch.from_doc(doc)  # validate before sending
    except GraphError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        with GraphClient(host, port, client_name=f"cli:{args.tenant}",
                         timeout_s=args.timeout_s) as client:
            resp = client.mutate(
                args.graph, batch,
                idempotency_key=args.idempotency_key)
    except WireShed as exc:
        print(f"shed: {exc} (retry after {exc.retry_after_ms:.0f} ms"
              + (", draining)" if exc.draining else ")"),
              file=sys.stderr)
        return 1
    except WireUnavailable as exc:
        print(f"error: {exc}; backoff applied: "
              f"{[round(d, 3) for d in exc.backoff_schedule]}",
              file=sys.stderr)
        return 1
    except WireError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    verb = ("already applied as" if resp["deduped"]
            else f"applied {resp['changes']} change(s) as")
    print(f"{args.graph!r} {verb} batch {resp['batch_id']} "
          f"(v{resp['from_version']} -> v{resp['version']})")
    return 0


class _GracefulShutdown(Exception):
    """Raised by the serve CLI's signal handler to unwind into drain."""

    def __init__(self, signame: str) -> None:
        super().__init__(signame)
        self.signame = signame


def _install_drain_signals(handler) -> None:
    """Best-effort SIGTERM/SIGINT registration.

    ``signal.signal`` only works on the main thread; tests drive the
    CLI from worker threads, where serving simply runs unguarded.
    """
    import signal as signal_mod

    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal_mod, signame, None)
        if signum is None:  # pragma: no cover - platform-specific
            continue
        try:
            signal_mod.signal(
                signum,
                lambda _num, _frm, name=signame: handler(name))
        except ValueError:  # not the main thread
            return


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .errors import AdmissionError, ReproError
    from .serve import GraphService, JobSpec

    if args.recover and args.journal is None:
        print("error: --recover replays a journal; it needs --journal",
              file=sys.stderr)
        return 2
    if args.jobs_file is None and not args.recover \
            and args.listen is None:
        print("error: --jobs-file is required (unless --recover "
              "re-queues journaled jobs or --listen serves sockets)",
              file=sys.stderr)
        return 2
    listen_addr = None
    if args.listen is not None:
        try:
            listen_addr = parse_hostport(args.listen)
        except ValueError as exc:
            print(f"error: --listen: {exc}", file=sys.stderr)
            return 2
    if args.drain_after is not None and args.drain_after < 0:
        print(f"error: --drain-after must be >= 0, got "
              f"{args.drain_after}", file=sys.stderr)
        return 2

    specs = []
    if args.jobs_file is not None:
        try:
            with open(args.jobs_file, "r", encoding="utf-8") as f:
                lines = [line for line in f if line.strip()]
            specs = [JobSpec.from_dict(json.loads(line)) for line in lines]
        except (OSError, json.JSONDecodeError, ReproError) as exc:
            print(f"error: bad jobs file {args.jobs_file!r}: {exc}",
                  file=sys.stderr)
            return 2
        if not specs and not args.recover and listen_addr is None:
            print(f"error: no jobs in {args.jobs_file!r}",
                  file=sys.stderr)
            return 2

    shed = []
    try:
        if args.recover:
            service = GraphService.recover(args.journal,
                                           trace_dir=args.trace_dir)
        else:
            spec = ClusterSpec(nodes=args.nodes, gpus_per_node=args.gpus,
                               topology=args.topology)
            service = GraphService(
                spec,
                memory_budget_mb=args.memory_budget_mb,
                daemon_budget=args.daemon_budget,
                max_running=args.max_running,
                cache_entries=args.cache_entries,
                trace_dir=args.trace_dir,
                max_queue_depth=args.max_queue_depth,
                max_pending_per_tenant=args.max_pending_per_tenant,
                waiter_timeout_ms=args.waiter_timeout_ms,
                journal=args.journal)
        graphs = {}
        for clause in args.graph or []:
            key, sep, dataset = clause.partition("=")
            if not sep:
                print(f"error: --graph wants KEY=DATASET, got "
                      f"{clause!r}", file=sys.stderr)
                return 2
            graphs[key] = dataset
        for job_spec in specs:
            if job_spec.graph not in graphs and job_spec.graph not in \
                    service.store:
                graphs[job_spec.graph] = job_spec.graph  # dataset name
        for key, dataset in graphs.items():
            service.load_graph(key, dataset=dataset)
        for s in specs:
            try:
                service.submit(s)
            except AdmissionError as exc:
                # overload sheds are load management, not config errors:
                # record and keep draining the rest of the file
                shed.append(str(exc))
        if listen_addr is not None:
            from .serve.wire import PROTOCOL_VERSION, GraphServiceServer
            server = GraphServiceServer(service, listen_addr[0],
                                        listen_addr[1],
                                        lease_ms=args.lease_ms)
            # SIGTERM suspends in-flight jobs at their checkpoints so
            # a restart + --recover resumes them; clients see a
            # 'draining' event, never a reset socket
            _install_drain_signals(
                lambda name: server.request_drain(reason=name.lower(),
                                                  mode="now"))
            host, port = server.address
            print(f"listening on {host}:{port} "
                  f"(protocol v{PROTOCOL_VERSION})", file=sys.stderr)
            server.serve_forever()
        elif args.drain_after is not None:
            for _ in range(args.drain_after):
                if not service.step():
                    break
            service.drain()
        else:
            def _raise_shutdown(name: str) -> None:
                raise _GracefulShutdown(name)

            _install_drain_signals(_raise_shutdown)
            try:
                service.run()
                if args.journal is not None and not args.recover:
                    service.drain()  # journal the clean-shutdown marker
            except _GracefulShutdown as exc:
                # finish what's running, shed the rest, journal a clean
                # shutdown naming the signal; then report as usual so
                # the nonzero-on-failed-jobs convention still holds
                service.drain(reason=exc.signame.lower())
                shed.append(f"shutdown on {exc.signame}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    jobs = service.jobs()
    bad = [j for j in jobs if j.state in ("failed", "quarantined")]
    if args.json:
        payload = {"ok": not bad,
                   "failed_jobs": [j.job_id for j in bad],
                   "shed": shed,
                   "jobs": [j.describe() for j in jobs],
                   "metrics": service.metrics(),
                   "recovery": service.recovery_stats()}
        if listen_addr is not None:
            payload["wire"] = server.wire_stats()
        print(json.dumps(payload, indent=2))
        return 1 if bad else 0
    rows = [(j.job_id, j.spec.tenant, j.spec.algorithm, j.spec.graph,
             j.state, "yes" if j.from_cache else "no",
             round(j.queue_ms, 3) if j.queue_ms is not None else "-",
             round(j.latency_ms, 3) if j.latency_ms is not None else "-",
             j.error or "")
            for j in jobs]
    print_table(["job", "tenant", "algorithm", "graph", "state",
                 "cached", "queue ms", "latency ms", "error"],
                rows, title="serving session")
    cache = service.cache.stats()
    lat = service.latency_percentiles()
    print(f"\ncache: {cache['hits']}/{cache['hits'] + cache['misses']} "
          f"hits (rate {cache['hit_rate']:.2f}), "
          f"{cache['evictions']} evictions; "
          f"coalesced {service.coalesced}")
    print(f"latency: p50 {lat['p50']:.3f} ms, p99 {lat['p99']:.3f} ms "
          f"over {lat['count']} completed jobs")
    for tenant, row in service.ledger.snapshot().items():
        print(f"  {tenant}: {row['consumed_ms']:.3f} ms over "
              f"{row['slices']} slices, {row['jobs_finished']} jobs "
              f"({row['cache_hits']} cached)")
    for line in shed:
        print(f"shed: {line}")
    recovery = service.recovery_stats()
    if recovery["recovered"]:
        print(f"recovered: {recovery['recovered']} job(s) from the "
              f"journal ({recovery['requeued']} re-queued, "
              f"{recovery['resumed']} resumed from a checkpoint, "
              f"{recovery['handoffs']} handoffs)")
    if listen_addr is not None:
        wire = server.wire_stats()
        print(f"wire: {wire['connections_accepted']} connection(s), "
              f"{wire['sessions_opened']} session(s) "
              f"({wire['sessions_reaped']} reaped), "
              f"{wire['frames_in']} frames in / "
              f"{wire['frames_out']} out, "
              f"{wire['deduped_submits']} deduped submit(s), "
              f"{wire['sheds_sent']} shed(s)")
    if bad:
        print(f"{len(bad)} job(s) ended failed/quarantined: "
              + ", ".join(f"#{j.job_id}" for j in bad))
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return cmd_datasets()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "figure":
        return cmd_figure(args.name)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "mutate":
        return cmd_mutate(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "bench":
        return cmd_bench(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
