"""Simulated System V shared memory.

The paper (§II-B) stores graph data neither on the agent side nor on the
daemon side but in a shared memory space created via UNIX System V kernel
calls: "a daemon has a unique System V key pointing to its specific shared
memory space, while an agent has multiple keys to communicate with all
daemons attached to it."

This module reproduces those semantics in-process:

* segments are created/attached through integer *keys* held in a
  :class:`ShmRegistry` (the simulated kernel);
* both attached parties observe mutations immediately (shared object);
* reads/writes are instrumented so benchmarks can show that shared-memory
  exchange avoids the copy costs of plain message passing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..errors import ShmCorruption, ShmError

IPC_PRIVATE = 0


class SharedMemorySegment:
    """A keyed shared memory area holding named *regions*.

    A region is an arbitrary Python object (typically a numpy array or a
    :class:`~repro.core.blocks.BlockArea`).  Because the segment object is
    shared between its attachers, an update by one side is immediately
    visible to the other — exactly the "immediately perceived by the other
    end without extra sensing efforts" property of §II-B.
    """

    __slots__ = ("key", "size_hint", "_regions", "_attached", "_destroyed",
                 "_corrupted", "bytes_written", "bytes_read")

    def __init__(self, key: int, size_hint: int = 0) -> None:
        self.key = key
        self.size_hint = size_hint
        self._regions: Dict[str, Any] = {}
        self._attached: List[str] = []
        self._destroyed = False
        self._corrupted: set = set()
        self.bytes_written = 0
        self.bytes_read = 0

    # -- attachment lifecycle ---------------------------------------------

    def attach(self, who: str) -> "SharedMemorySegment":
        if self._destroyed:
            raise ShmError(f"attach to destroyed segment key={self.key}")
        self._attached.append(who)
        return self

    def detach(self, who: str) -> None:
        if who not in self._attached:
            raise ShmError(f"{who!r} is not attached to segment key={self.key}")
        self._attached.remove(who)

    @property
    def attached(self) -> List[str]:
        return list(self._attached)

    # -- region access ------------------------------------------------------

    def put(self, name: str, value: Any, nbytes: int = 0) -> None:
        """Write/overwrite a named region (in place, no copy is modeled).

        A full rewrite of a corrupted region restores its integrity.
        """
        if self._destroyed:
            raise ShmError(f"write to destroyed segment key={self.key}")
        self._regions[name] = value
        self._corrupted.discard(name)
        self.bytes_written += int(nbytes)

    def get(self, name: str, nbytes: int = 0) -> Any:
        """Read a named region; raises :class:`ShmError` if absent."""
        if self._destroyed:
            raise ShmError(f"read from destroyed segment key={self.key}")
        if name not in self._regions:
            raise ShmError(f"segment key={self.key} has no region {name!r}")
        if name in self._corrupted:
            raise ShmCorruption(
                f"segment key={self.key} region {name!r} failed its "
                f"integrity check"
            )
        self.bytes_read += int(nbytes)
        return self._regions[name]

    # -- integrity (fault injection / detection) ----------------------------

    def corrupt(self, name: str) -> None:
        """Mark a region corrupted (fault injection).

        Reads of the region — and :meth:`verify` — raise
        :class:`~repro.errors.ShmCorruption` until it is rewritten or the
        segment is rebuilt.
        """
        if name not in self._regions:
            raise ShmError(
                f"cannot corrupt missing region {name!r} of segment "
                f"key={self.key}"
            )
        self._corrupted.add(name)

    @property
    def corrupted_regions(self) -> List[str]:
        return sorted(self._corrupted)

    def verify(self) -> None:
        """Integrity-check every region; raises on the first corruption."""
        if self._corrupted:
            raise ShmCorruption(
                f"segment key={self.key}: corrupted regions "
                f"{sorted(self._corrupted)}"
            )

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> Iterator[str]:
        return iter(self._regions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SharedMemorySegment(key={self.key}, "
                f"regions={sorted(self._regions)}, attached={self._attached})")


class ShmRegistry:
    """The simulated kernel's table of System V shared memory segments."""

    def __init__(self) -> None:
        self._segments: Dict[int, SharedMemorySegment] = {}
        self._next_private_key = 0x6000
        self._next_daemon_id = 0

    def allocate_daemon_id(self) -> int:
        """Allocate the next daemon id *within this registry*.

        Daemon ids number the simulated kernel's SysV keys
        (``DAEMON_KEY_BASE + id``), so their scope is the registry — one
        per middleware deployment — not the process.  Keeping the
        counter here (instead of on a class attribute) makes
        back-to-back ``deploy()`` calls in one process start from id 0
        every time: key layouts, trace ids and fault-plan targets stay
        reproducible run over run, which the serving layer's long-lived
        process depends on.
        """
        daemon_id = self._next_daemon_id
        self._next_daemon_id += 1
        return daemon_id

    def shmget(self, key: int, size_hint: int = 0,
               create: bool = True) -> SharedMemorySegment:
        """Look up (or create) the segment for ``key``.

        ``key == IPC_PRIVATE`` always creates a fresh segment with a
        generated key, mirroring ``shmget(IPC_PRIVATE, ...)``.
        """
        if key == IPC_PRIVATE:
            key = self._next_private_key
            self._next_private_key += 1
            seg = SharedMemorySegment(key, size_hint)
            self._segments[key] = seg
            return seg
        if key in self._segments:
            return self._segments[key]
        if not create:
            raise ShmError(f"no segment with key={key}")
        seg = SharedMemorySegment(key, size_hint)
        self._segments[key] = seg
        return seg

    def shmrm(self, key: int) -> None:
        """Destroy the segment for ``key`` (IPC_RMID)."""
        seg = self._segments.pop(key, None)
        if seg is None:
            raise ShmError(f"cannot remove unknown segment key={key}")
        seg._destroyed = True

    def __len__(self) -> int:
        return len(self._segments)

    def keys(self) -> List[int]:
        return sorted(self._segments)
