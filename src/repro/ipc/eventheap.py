"""Vectorized event storage for the batched discrete-event scheduler.

The per-event :class:`~repro.ipc.scheduler.Scheduler` keeps one Python
tuple per pending resume event in a ``heapq``.  That is fine for a few
daemons but caps twin size: a 1000-node collective wakes a thousand
processes per phase, and every wake pays a tuple allocation plus a
log-depth sift through interpreted comparisons.

:class:`EventHeap` is the batched alternative — a hybrid of two lanes
sharing one ``(time, seq)`` total order:

* a **heapq lane** for trickle pushes (a lone ``Sleep`` resume, a
  watchdog wake), so single-event traffic never regresses;
* sorted **runs** for bulk pushes: one :func:`push_many` turns a whole
  batch of deliveries into structure-of-arrays ``time``/``seq`` numpy
  vectors sorted once, consumed through a cursor with no per-event
  heap traffic at all.

Pops are *cohorts*: :meth:`pop_cohort` slices every event sharing the
minimum timestamp out of the lane and every run (one ``searchsorted``
per run) and returns them in global ``seq`` order, so the batched
scheduler replays exactly the per-event scheduler's interleaving —
ties still break by scheduling order, runs are fully reproducible, and
the per-event core stays usable as a bit-identity oracle.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


class _Run(object):
    """One sorted bulk push: SoA times/seqs plus a payload list."""

    __slots__ = ("times", "seqs", "payloads", "cursor")

    def __init__(self, times: np.ndarray, seqs: np.ndarray,
                 payloads: List[Any]) -> None:
        self.times = times
        self.seqs = seqs
        self.payloads = payloads
        self.cursor = 0

    def __len__(self) -> int:
        return len(self.payloads) - self.cursor

    def head_time(self) -> float:
        return float(self.times[self.cursor])

    def take_at(self, t: float) -> List[Tuple[int, Any]]:
        """Pop every leading event whose time equals ``t`` (the global
        minimum, so they are all at the cursor) in one sorted slice."""
        lo = self.cursor
        hi = int(np.searchsorted(self.times, t, side="right"))
        if hi <= lo:
            return []
        self.cursor = hi
        seqs = self.seqs
        payloads = self.payloads
        return [(int(seqs[i]), payloads[i]) for i in range(lo, hi)]


class EventHeap:
    """Hybrid ``(time, seq)``-ordered event store with cohort pops."""

    __slots__ = ("_lane", "_runs", "_len", "peak")

    def __init__(self) -> None:
        self._lane: List[Tuple[float, int, Any]] = []
        self._runs: List[_Run] = []
        self._len = 0
        #: high-water mark of pending events (scheduler telemetry)
        self.peak = 0

    def __len__(self) -> int:
        return self._len

    def push(self, t: float, seq: int, payload: Any) -> None:
        """Single-event push through the heapq lane."""
        heapq.heappush(self._lane, (t, seq, payload))
        self._len += 1
        if self._len > self.peak:
            self.peak = self._len

    def push_many(self, times: Sequence[float], seq0: int,
                  payloads: List[Any]) -> None:
        """Bulk push: payload ``i`` gets sequence ``seq0 + i``.

        The batch is sorted once (stable, so equal timestamps keep their
        sequence order) into an SoA run; no per-event heap traffic.
        """
        k = len(payloads)
        if k == 0:
            return
        if k == 1:
            self.push(float(times[0]), seq0, payloads[0])
            return
        tarr = np.asarray(times, dtype=np.float64)
        seqs = np.arange(seq0, seq0 + k, dtype=np.int64)
        order = np.argsort(tarr, kind="stable")
        self._runs.append(_Run(tarr[order], seqs[order],
                               [payloads[i] for i in order]))
        self._len += k
        if self._len > self.peak:
            self.peak = self._len

    def min_time(self) -> float:
        """Timestamp of the next cohort (heap must be non-empty)."""
        t = self._lane[0][0] if self._lane else np.inf
        for run in self._runs:
            ht = run.head_time()
            if ht < t:
                t = ht
        return t

    def pop_cohort(self) -> Tuple[float, List[Tuple[int, Any]]]:
        """Pop every event at the minimum timestamp, in ``seq`` order."""
        t = self.min_time()
        batch: List[Tuple[int, Any]] = []
        lane = self._lane
        while lane and lane[0][0] == t:
            _, seq, payload = heapq.heappop(lane)
            batch.append((seq, payload))
        if self._runs:
            live: List[_Run] = []
            for run in self._runs:
                batch.extend(run.take_at(t))
                if len(run):
                    live.append(run)
            if len(live) != len(self._runs):
                self._runs = live
        self._len -= len(batch)
        batch.sort(key=_seq_key)
        return t, batch


def _seq_key(entry: Tuple[int, Any]) -> int:
    return entry[0]
