"""Simulated process / IPC substrate.

Provides the deterministic discrete-event machinery the middleware runs on:

* :class:`~repro.ipc.simclock.SimClock` — simulated milliseconds;
* :class:`~repro.ipc.scheduler.Scheduler` — cooperative processes
  (generators yielding :class:`Sleep` / :class:`Send` / :class:`Recv` /
  :class:`Spawn` / :class:`Join` / :class:`WaitBarrier` commands);
* :class:`~repro.ipc.scheduler.Channel` — message channels with latency
  and per-unit transfer cost;
* :class:`~repro.ipc.shm.ShmRegistry` — simulated System V shared memory.
"""

from .simclock import SimClock
from .scheduler import (
    Barrier,
    Channel,
    Command,
    Join,
    Now,
    ProcessHandle,
    Recv,
    Scheduler,
    Send,
    Sleep,
    Spawn,
    WaitBarrier,
    run_process,
)
from .shm import IPC_PRIVATE, SharedMemorySegment, ShmRegistry

__all__ = [
    "SimClock",
    "Scheduler",
    "ProcessHandle",
    "Channel",
    "Barrier",
    "Command",
    "Sleep",
    "Send",
    "Recv",
    "Spawn",
    "Join",
    "WaitBarrier",
    "Now",
    "run_process",
    "IPC_PRIVATE",
    "SharedMemorySegment",
    "ShmRegistry",
]
