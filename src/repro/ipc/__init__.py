"""Simulated process / IPC substrate.

Provides the deterministic discrete-event machinery the middleware runs on:

* :class:`~repro.ipc.simclock.SimClock` — simulated milliseconds;
* :class:`~repro.ipc.scheduler.Scheduler` — cooperative processes
  (generators yielding :class:`Sleep` / :class:`Send` / :class:`Recv` /
  :class:`Spawn` / :class:`Join` / :class:`WaitBarrier` commands), the
  per-event bit-identity oracle;
* :class:`~repro.ipc.scheduler.BatchedScheduler` — same semantics on a
  vectorized :class:`~repro.ipc.eventheap.EventHeap`, popping whole
  same-timestamp cohorts per loop iteration (the fast path);
* :class:`~repro.ipc.scheduler.Channel` — message channels with latency
  and per-unit transfer cost, bulk :class:`SendMany` / :class:`DrainReady`
  delivery;
* :class:`~repro.ipc.shm.ShmRegistry` — simulated System V shared memory.
"""

from .simclock import SimClock
from .eventheap import EventHeap
from .scheduler import (
    Barrier,
    BatchedScheduler,
    Channel,
    Command,
    DrainReady,
    Join,
    Now,
    ProcessHandle,
    Recv,
    Scheduler,
    Send,
    SendMany,
    Sleep,
    Spawn,
    WaitBarrier,
    run_process,
)
from .shm import IPC_PRIVATE, SharedMemorySegment, ShmRegistry

__all__ = [
    "SimClock",
    "Scheduler",
    "BatchedScheduler",
    "EventHeap",
    "ProcessHandle",
    "Channel",
    "Barrier",
    "Command",
    "Sleep",
    "Send",
    "SendMany",
    "Recv",
    "DrainReady",
    "Spawn",
    "Join",
    "WaitBarrier",
    "Now",
    "run_process",
    "IPC_PRIVATE",
    "SharedMemorySegment",
    "ShmRegistry",
]
