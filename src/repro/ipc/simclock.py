"""Deterministic simulated clock.

All timings reported by the library (iteration times, pipeline makespans,
figure data points) are *simulated milliseconds* read from a
:class:`SimClock`, never from the wall clock.  This keeps every experiment
deterministic and lets the reproduction match the paper's analytical cost
models (Eq. 1-2, Lemmas 1-3) exactly.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimClock:
    """A monotonically advancing simulated clock (unit: milliseconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises :class:`SimulationError` on any attempt to move backwards;
        a discrete-event scheduler must only ever pop events in time order.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by a non-negative delta ``dt``."""
        if dt < 0:
            raise SimulationError(f"negative clock delta {dt}")
        self._now += float(dt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f})"
