"""Cooperative discrete-event process scheduler.

The paper's daemon-agent framework runs daemons and agents as separate OS
processes exchanging messages (Algorithms 1 and 2).  We reproduce that
control flow faithfully with *simulated processes*: Python generators that
yield :class:`Command` objects to a deterministic scheduler.  Simulated
time only advances through explicit :class:`Sleep` commands, so every run
is reproducible and the measured makespans can be checked against the
paper's analytical models.

A process is any generator function.  Inside it::

    def worker(ch):
        msg = yield Recv(ch)          # block until a message arrives
        yield Sleep(5.0, "compute")   # charge 5 simulated ms to "compute"
        yield Send(ch, "done")        # non-blocking send
        return 42                     # value observable through Join

Commands
--------
``Sleep(duration, category=None)``
    Advance this process's local time; optionally attribute the duration
    to an accounting category (used for the Fig. 14 middleware cost ratio).
``Send(channel, message)``
    Enqueue a message; delivery is delayed by the channel's latency and
    per-byte cost.  The sender continues immediately.
``Recv(channel)``
    Block until a message is deliverable; the message is the yield value.
``Spawn(generator, name=..., daemon=...)``
    Start a child process; the yield value is its :class:`ProcessHandle`.
``Join(handle)``
    Block until the child finishes; the yield value is its return value.
``WaitBarrier(barrier)``
    Block until ``barrier.parties`` processes arrive, then all resume.
``Now()``
    The yield value is the current simulated time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from ..errors import ChannelClosedError, DeadlockError, SimulationError
from .simclock import SimClock

ProcessGen = Generator["Command", Any, Any]


class Command:
    """Base class of all scheduler commands a process may yield."""

    __slots__ = ()


class Sleep(Command):
    """Advance simulated time for the yielding process by ``duration`` ms."""

    __slots__ = ("duration", "category")

    def __init__(self, duration: float, category: Optional[str] = None) -> None:
        if duration < 0:
            raise SimulationError(f"cannot sleep a negative duration {duration}")
        self.duration = float(duration)
        self.category = category


class Send(Command):
    """Enqueue ``message`` on ``channel`` without blocking the sender."""

    __slots__ = ("channel", "message")

    def __init__(self, channel: "Channel", message: Any) -> None:
        self.channel = channel
        self.message = message


class Recv(Command):
    """Block until a message is available on ``channel``."""

    __slots__ = ("channel",)

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel


class Spawn(Command):
    """Start a child process from a generator."""

    __slots__ = ("generator", "name", "daemon")

    def __init__(self, generator: ProcessGen, name: str = "proc",
                 daemon: bool = False) -> None:
        self.generator = generator
        self.name = name
        self.daemon = daemon


class Join(Command):
    """Block until ``handle``'s process terminates; yields its return value."""

    __slots__ = ("handle",)

    def __init__(self, handle: "ProcessHandle") -> None:
        self.handle = handle


class WaitBarrier(Command):
    """Block until all of the barrier's parties have arrived."""

    __slots__ = ("barrier",)

    def __init__(self, barrier: "Barrier") -> None:
        self.barrier = barrier


class Now(Command):
    """Yields the current simulated time back to the process."""

    __slots__ = ()


_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class ProcessHandle:
    """Observable state of a simulated process."""

    __slots__ = ("name", "daemon", "_gen", "_state", "_result", "_waiters",
                 "_local_time")

    def __init__(self, gen: ProcessGen, name: str, daemon: bool) -> None:
        self._gen = gen
        self.name = name
        self.daemon = daemon
        self._state = _READY
        self._result: Any = None
        self._waiters: List["ProcessHandle"] = []
        self._local_time = 0.0

    @property
    def done(self) -> bool:
        return self._state == _DONE

    @property
    def result(self) -> Any:
        """Return value of the process; only meaningful once :attr:`done`."""
        if not self.done:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessHandle({self.name!r}, state={self._state})"


class Barrier:
    """A reusable synchronization barrier for ``parties`` processes."""

    __slots__ = ("parties", "_arrived", "generation")

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise SimulationError(f"barrier needs >=1 parties, got {parties}")
        self.parties = parties
        self._arrived: List[ProcessHandle] = []
        self.generation = 0


class Channel:
    """A FIFO message channel with optional delivery latency and byte cost.

    Models the paper's inter-process message exchange (System V message
    passing between agents and daemons).  ``latency`` is a fixed delivery
    delay; ``cost_per_unit`` charges delivery time proportional to
    ``size_of(message)`` for channels that carry bulk data.
    """

    __slots__ = ("name", "latency", "cost_per_unit", "size_of", "_queue",
                 "_waiters", "_closed", "messages_sent", "drop_pending",
                 "delay_pending_ms", "messages_dropped", "messages_delayed")

    def __init__(self, name: str = "chan", latency: float = 0.0,
                 cost_per_unit: float = 0.0, size_of=None) -> None:
        self.name = name
        self.latency = float(latency)
        self.cost_per_unit = float(cost_per_unit)
        self.size_of = size_of if size_of is not None else (lambda _msg: 1.0)
        self._queue: deque = deque()  # entries: (deliverable_at, message)
        self._waiters: deque = deque()  # blocked receiver handles
        self._closed = False
        self.messages_sent = 0
        # fault injection: pending one-shot drops / extra delivery delay
        self.drop_pending = 0
        self.delay_pending_ms = 0.0
        self.messages_dropped = 0
        self.messages_delayed = 0

    def close(self) -> None:
        self._closed = True

    # -- fault injection ---------------------------------------------------

    def arm_drop(self, count: int = 1) -> None:
        """The next ``count`` sends are silently lost (message-drop fault)."""
        if count < 1:
            raise SimulationError(f"drop count must be >= 1, got {count}")
        self.drop_pending += int(count)

    def arm_delay(self, extra_ms: float) -> None:
        """The next send is delivered ``extra_ms`` late (delay fault)."""
        if extra_ms < 0:
            raise SimulationError(f"negative delay {extra_ms}")
        self.delay_pending_ms += float(extra_ms)

    @property
    def closed(self) -> bool:
        return self._closed

    def _delivery_delay(self, message: Any) -> float:
        return self.latency + self.cost_per_unit * float(self.size_of(message))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel({self.name!r}, queued={len(self._queue)})"


class Scheduler:
    """Deterministic discrete-event scheduler for simulated processes.

    The run loop pops ``(time, seq)``-ordered resume events; ties are broken
    by spawn order, so runs are fully reproducible.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, ProcessHandle, Any]] = []
        self._seq = 0
        self._live = 0          # non-daemon processes not yet done
        self._blocked = 0       # processes parked on channels/joins/barriers
        self.time_by_category: Dict[str, float] = {}
        self.processes: List[ProcessHandle] = []

    # -- public API --------------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "proc",
              daemon: bool = False) -> ProcessHandle:
        """Register a new process and schedule its first step at ``now``."""
        handle = ProcessHandle(gen, name, daemon)
        handle._local_time = self.clock.now
        self.processes.append(handle)
        if not daemon:
            self._live += 1
        self._schedule(self.clock.now, handle, None)
        return handle

    def run(self, until: Optional[float] = None) -> float:
        """Run until no non-daemon process remains runnable (or ``until``).

        Returns the final simulated time.  Raises :class:`DeadlockError` if
        non-daemon processes are blocked with no event able to wake them.
        """
        while self._heap:
            t, _seq, proc, value = heapq.heappop(self._heap)
            if until is not None and t > until:
                # push back and stop at the horizon
                heapq.heappush(self._heap, (t, _seq, proc, value))
                self.clock.advance_to(until)
                return self.clock.now
            self.clock.advance_to(t)
            self._step(proc, value)
            if self._live == 0:
                break
        if self._live > 0 and not self._heap:
            stuck = [p.name for p in self.processes
                     if p._state == _BLOCKED and not p.daemon]
            raise DeadlockError(
                f"deadlock: no runnable process; blocked: {stuck}"
            )
        return self.clock.now

    def category_time(self, category: str) -> float:
        """Total simulated time charged to ``category`` via Sleep."""
        return self.time_by_category.get(category, 0.0)

    # -- internals ---------------------------------------------------------

    def _schedule(self, t: float, proc: ProcessHandle, value: Any) -> None:
        self._seq += 1
        proc._state = _READY
        heapq.heappush(self._heap, (t, self._seq, proc, value))

    def _park(self, proc: ProcessHandle) -> None:
        proc._state = _BLOCKED
        self._blocked += 1

    def _unpark(self, t: float, proc: ProcessHandle, value: Any) -> None:
        self._blocked -= 1
        self._schedule(t, proc, value)

    def _finish(self, proc: ProcessHandle, result: Any) -> None:
        proc._state = _DONE
        proc._result = result
        if not proc.daemon:
            self._live -= 1
        now = self.clock.now
        for waiter in proc._waiters:
            self._unpark(now, waiter, result)
        proc._waiters.clear()

    def _step(self, proc: ProcessHandle, value: Any) -> None:
        """Advance ``proc`` until it blocks, sleeps, or terminates."""
        proc._state = _RUNNING
        gen = proc._gen
        while True:
            try:
                cmd = gen.send(value)
            except StopIteration as stop:
                self._finish(proc, stop.value)
                return
            value = None
            if isinstance(cmd, Sleep):
                if cmd.category is not None:
                    bucket = self.time_by_category
                    bucket[cmd.category] = (
                        bucket.get(cmd.category, 0.0) + cmd.duration
                    )
                if cmd.duration == 0.0:
                    value = None
                    continue
                self._schedule(self.clock.now + cmd.duration, proc, None)
                return
            if isinstance(cmd, Send):
                self._do_send(cmd.channel, cmd.message)
                continue
            if isinstance(cmd, Recv):
                if self._do_recv(proc, cmd.channel):
                    return  # parked; will resume with the message later
                # immediate delivery happened through _schedule; stop here
                return
            if isinstance(cmd, Spawn):
                value = self.spawn(cmd.generator, cmd.name, cmd.daemon)
                continue
            if isinstance(cmd, Join):
                if cmd.handle.done:
                    value = cmd.handle._result
                    continue
                cmd.handle._waiters.append(proc)
                self._park(proc)
                return
            if isinstance(cmd, WaitBarrier):
                if self._do_barrier(proc, cmd.barrier):
                    return  # parked until the barrier trips
                continue
            if isinstance(cmd, Now):
                value = self.clock.now
                continue
            raise SimulationError(
                f"process {proc.name!r} yielded a non-command: {cmd!r}"
            )

    def _do_send(self, channel: Channel, message: Any) -> None:
        if channel.closed:
            raise ChannelClosedError(f"send on closed channel {channel.name!r}")
        channel.messages_sent += 1
        if channel.drop_pending > 0:
            # injected message-drop fault: the send completes but nothing
            # is ever delivered; receivers stay parked until a watchdog
            # (or the deadlock detector) notices the stall.
            channel.drop_pending -= 1
            channel.messages_dropped += 1
            return
        extra_ms = 0.0
        if channel.delay_pending_ms > 0.0:
            extra_ms = channel.delay_pending_ms
            channel.delay_pending_ms = 0.0
            channel.messages_delayed += 1
        deliverable_at = (self.clock.now + channel._delivery_delay(message)
                         + extra_ms)
        if channel._waiters:
            waiter = channel._waiters.popleft()
            self._unpark(deliverable_at, waiter, message)
        else:
            channel._queue.append((deliverable_at, message))

    def _do_recv(self, proc: ProcessHandle, channel: Channel) -> bool:
        """Returns True if the process was parked waiting."""
        if channel._queue:
            deliverable_at, message = channel._queue.popleft()
            resume_at = max(self.clock.now, deliverable_at)
            self._schedule(resume_at, proc, message)
            return False
        if channel.closed:
            raise ChannelClosedError(f"recv on closed channel {channel.name!r}")
        channel._waiters.append(proc)
        self._park(proc)
        return True

    def _do_barrier(self, proc: ProcessHandle, barrier: Barrier) -> bool:
        """Returns True if the process was parked waiting on the barrier."""
        barrier._arrived.append(proc)
        if len(barrier._arrived) < barrier.parties:
            self._park(proc)
            return True
        # Barrier trips: wake everyone else; the arriving process continues.
        barrier.generation += 1
        now = self.clock.now
        arrived, barrier._arrived = barrier._arrived, []
        for p in arrived:
            if p is not proc:
                self._unpark(now, p, None)
        return False


def run_process(gen: ProcessGen, name: str = "main") -> Tuple[Any, float]:
    """Convenience: run a single process to completion on a fresh scheduler.

    Returns ``(return_value, elapsed_simulated_time)``.
    """
    sched = Scheduler()
    handle = sched.spawn(gen, name=name)
    end = sched.run()
    return handle.result, end
