"""Cooperative discrete-event process scheduler.

The paper's daemon-agent framework runs daemons and agents as separate OS
processes exchanging messages (Algorithms 1 and 2).  We reproduce that
control flow faithfully with *simulated processes*: Python generators that
yield :class:`Command` objects to a deterministic scheduler.  Simulated
time only advances through explicit :class:`Sleep` commands, so every run
is reproducible and the measured makespans can be checked against the
paper's analytical models.

A process is any generator function.  Inside it::

    def worker(ch):
        msg = yield Recv(ch)          # block until a message arrives
        yield Sleep(5.0, "compute")   # charge 5 simulated ms to "compute"
        yield Send(ch, "done")        # non-blocking send
        return 42                     # value observable through Join

Commands
--------
``Sleep(duration, category=None)``
    Advance this process's local time; optionally attribute the duration
    to an accounting category (used for the Fig. 14 middleware cost ratio).
``Send(channel, message)``
    Enqueue a message; delivery is delayed by the channel's latency and
    per-byte cost.  The sender continues immediately.
``SendMany(channel, messages)``
    Enqueue a whole batch in one scheduler transaction — semantically
    identical to ``len(messages)`` consecutive ``Send`` commands (fault
    arms included), but costs O(1) command dispatches.
``Recv(channel)``
    Block until a message is deliverable; the message is the yield value.
``DrainReady(channel)``
    Block until at least one message is queued, then take the *entire*
    queue; the yield value is the list of messages in send order.
``Spawn(generator, name=..., daemon=...)``
    Start a child process; the yield value is its :class:`ProcessHandle`.
``Join(handle)``
    Block until the child finishes; the yield value is its return value.
``WaitBarrier(barrier)``
    Block until ``barrier.parties`` processes arrive, then all resume.
``Now()``
    The yield value is the current simulated time.

Two schedulers share this command set.  :class:`Scheduler` steps one
event at a time off a ``heapq`` and is the *bit-identity oracle*.
:class:`BatchedScheduler` pops whole same-timestamp cohorts from a
vectorized :class:`~repro.ipc.eventheap.EventHeap`; because cohorts are
replayed in global ``(time, seq)`` order it produces exactly the same
interleaving, message orders, and category totals as the oracle (see
``tests/ipc/test_batched_equivalence.py``) while spending far fewer
interpreter cycles per simulated event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from ..errors import ChannelClosedError, DeadlockError, SimulationError
from .eventheap import EventHeap
from .simclock import SimClock

ProcessGen = Generator["Command", Any, Any]


class Command:
    """Base class of all scheduler commands a process may yield."""

    __slots__ = ()


class Sleep(Command):
    """Advance simulated time for the yielding process by ``duration`` ms."""

    __slots__ = ("duration", "category")

    def __init__(self, duration: float, category: Optional[str] = None) -> None:
        if duration < 0:
            raise SimulationError(f"cannot sleep a negative duration {duration}")
        self.duration = float(duration)
        self.category = category


class Send(Command):
    """Enqueue ``message`` on ``channel`` without blocking the sender."""

    __slots__ = ("channel", "message")

    def __init__(self, channel: "Channel", message: Any) -> None:
        self.channel = channel
        self.message = message


class SendMany(Command):
    """Enqueue a batch of messages on ``channel`` in one transaction.

    Equivalent to yielding ``Send(channel, m)`` for each message in
    order — armed drops/delays hit the leading messages exactly as they
    would under sequential sends — but the clean remainder is delivered
    through one bulk scheduler operation.
    """

    __slots__ = ("channel", "messages")

    def __init__(self, channel: "Channel", messages: Iterable[Any]) -> None:
        self.channel = channel
        self.messages = list(messages)


class Recv(Command):
    """Block until a message is available on ``channel``."""

    __slots__ = ("channel",)

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel


class DrainReady(Command):
    """Block until ``channel`` has queued messages, then take them all.

    The yield value is a list (send order).  A drain waiter parked on an
    empty channel absorbs a whole ``SendMany`` batch as one wake event.
    """

    __slots__ = ("channel",)

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel


class Spawn(Command):
    """Start a child process from a generator."""

    __slots__ = ("generator", "name", "daemon")

    def __init__(self, generator: ProcessGen, name: str = "proc",
                 daemon: bool = False) -> None:
        self.generator = generator
        self.name = name
        self.daemon = daemon


class Join(Command):
    """Block until ``handle``'s process terminates; yields its return value."""

    __slots__ = ("handle",)

    def __init__(self, handle: "ProcessHandle") -> None:
        self.handle = handle


class WaitBarrier(Command):
    """Block until all of the barrier's parties have arrived."""

    __slots__ = ("barrier",)

    def __init__(self, barrier: "Barrier") -> None:
        self.barrier = barrier


class Now(Command):
    """Yields the current simulated time back to the process."""

    __slots__ = ()


_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class ProcessHandle:
    """Observable state of a simulated process."""

    __slots__ = ("name", "daemon", "_gen", "_state", "_result", "_waiters",
                 "_local_time", "_waiting_on")

    def __init__(self, gen: ProcessGen, name: str, daemon: bool) -> None:
        self._gen = gen
        self.name = name
        self.daemon = daemon
        self._state = _READY
        self._result: Any = None
        self._waiters: List["ProcessHandle"] = []
        self._local_time = 0.0
        # human-readable label of what this process is parked on
        # (channel/barrier/join target); surfaced in DeadlockError
        self._waiting_on: Optional[str] = None

    @property
    def done(self) -> bool:
        return self._state == _DONE

    @property
    def result(self) -> Any:
        """Return value of the process; only meaningful once :attr:`done`."""
        if not self.done:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessHandle({self.name!r}, state={self._state})"


class Barrier:
    """A reusable synchronization barrier for ``parties`` processes."""

    __slots__ = ("parties", "name", "_arrived", "generation")

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise SimulationError(f"barrier needs >=1 parties, got {parties}")
        self.parties = parties
        self.name = name
        self._arrived: List[ProcessHandle] = []
        self.generation = 0


class _BulkSegment:
    """A uniform-delivery ``SendMany`` batch queued as one entry.

    Every message in the segment shares one ``deliverable_at``, so the
    queue holds a single object instead of per-message tuples.  Indexing
    ``segment[0]`` returns the delivery time, mirroring the tuple
    entries, so ordering scans treat both entry kinds uniformly.
    """

    __slots__ = ("time", "messages", "cursor")

    def __init__(self, time: float, messages: List[Any]) -> None:
        self.time = time
        self.messages = messages
        self.cursor = 0

    def __getitem__(self, index: int) -> float:
        if index == 0:
            return self.time
        raise IndexError(index)

    def __len__(self) -> int:
        return len(self.messages) - self.cursor

    def take_one(self) -> Any:
        message = self.messages[self.cursor]
        self.cursor += 1
        return message


class Channel:
    """A message channel with optional delivery latency and byte cost.

    Models the paper's inter-process message exchange (System V message
    passing between agents and daemons).  ``latency`` is a fixed delivery
    delay; ``cost_per_unit`` charges delivery time proportional to
    ``size_of(message)`` for channels that carry bulk data.

    Receivers get the *earliest-deliverable* queued message.  For queues
    whose delivery times are monotone (the overwhelmingly common case —
    fixed latency, no faults) that is plain FIFO and stays O(1); only
    when an ``arm_delay`` fault (or size-skewed costs) inverts the order
    does recv fall back to a stable min-scan, so a delay-inflated head
    message no longer holds later-sent, earlier-deliverable messages
    hostage (head-of-line blocking).
    """

    __slots__ = ("name", "latency", "cost_per_unit", "size_of", "_queue",
                 "_waiters", "_misordered", "_closed", "messages_sent",
                 "drop_pending", "delay_pending_ms", "messages_dropped",
                 "messages_delayed")

    def __init__(self, name: str = "chan", latency: float = 0.0,
                 cost_per_unit: float = 0.0, size_of=None) -> None:
        self.name = name
        self.latency = float(latency)
        self.cost_per_unit = float(cost_per_unit)
        self.size_of = size_of if size_of is not None else (lambda _msg: 1.0)
        # entries: (deliverable_at, message) tuples or _BulkSegment
        # batches; both expose entry[0] == delivery time
        self._queue: deque = deque()
        # True when _queue's deliverable_at sequence is not non-decreasing
        self._misordered = False
        self._waiters: deque = deque()  # entries: (handle, wants_all)
        self._closed = False
        self.messages_sent = 0
        # fault injection: pending one-shot drops / extra delivery delay
        self.drop_pending = 0
        self.delay_pending_ms = 0.0
        self.messages_dropped = 0
        self.messages_delayed = 0

    def close(self) -> None:
        self._closed = True

    # -- fault injection ---------------------------------------------------

    def arm_drop(self, count: int = 1) -> None:
        """The next ``count`` sends are silently lost (message-drop fault)."""
        if count < 1:
            raise SimulationError(f"drop count must be >= 1, got {count}")
        self.drop_pending += int(count)

    def arm_delay(self, extra_ms: float) -> None:
        """The next send is delivered ``extra_ms`` late (delay fault)."""
        if extra_ms < 0:
            raise SimulationError(f"negative delay {extra_ms}")
        self.delay_pending_ms += float(extra_ms)

    @property
    def closed(self) -> bool:
        return self._closed

    def _delivery_delay(self, message: Any) -> float:
        return self.latency + self.cost_per_unit * float(self.size_of(message))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel({self.name!r}, queued={len(self._queue)})"


class Scheduler:
    """Deterministic discrete-event scheduler for simulated processes.

    The run loop pops ``(time, seq)``-ordered resume events; ties are broken
    by spawn order, so runs are fully reproducible.  This per-event variant
    is the bit-identity oracle for :class:`BatchedScheduler`.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, ProcessHandle, Any]] = []
        self._seq = 0
        self._live = 0          # non-daemon processes not yet done
        self._blocked = 0       # processes parked on channels/joins/barriers
        self.time_by_category: Dict[str, float] = {}
        self.processes: List[ProcessHandle] = []
        # event-loop telemetry (surfaced in trace JSON / run summaries)
        self.events_popped = 0
        self.batches = 0
        self.max_batch = 0
        self.heap_peak = 0

    # -- public API --------------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "proc",
              daemon: bool = False) -> ProcessHandle:
        """Register a new process and schedule its first step at ``now``."""
        handle = ProcessHandle(gen, name, daemon)
        handle._local_time = self.clock.now
        self.processes.append(handle)
        if not daemon:
            self._live += 1
        self._schedule(self.clock.now, handle, None)
        return handle

    def run(self, until: Optional[float] = None) -> float:
        """Run until no non-daemon process remains runnable (or ``until``).

        Returns the final simulated time.  Raises :class:`DeadlockError` if
        non-daemon processes are blocked with no event able to wake them.
        """
        while self._heap:
            t, _seq, proc, value = heapq.heappop(self._heap)
            if until is not None and t > until:
                # push back and stop at the horizon
                heapq.heappush(self._heap, (t, _seq, proc, value))
                self.clock.advance_to(until)
                return self.clock.now
            self.clock.advance_to(t)
            self.events_popped += 1
            self.batches += 1
            if self.max_batch < 1:
                self.max_batch = 1
            self._step(proc, value)
            if self._live == 0:
                break
        if self._live > 0 and not self._heap:
            raise self._deadlock()
        return self.clock.now

    def category_time(self, category: str) -> float:
        """Total simulated time charged to ``category`` via Sleep."""
        return self.time_by_category.get(category, 0.0)

    # -- internals ---------------------------------------------------------

    def _deadlock(self) -> DeadlockError:
        stuck = []
        for p in self.processes:
            if p._state == _BLOCKED and not p.daemon:
                if p._waiting_on:
                    stuck.append(f"{p.name} (waiting on {p._waiting_on})")
                else:
                    stuck.append(p.name)
        return DeadlockError(
            f"deadlock: no runnable process; blocked: {stuck}"
        )

    def _schedule(self, t: float, proc: ProcessHandle, value: Any) -> None:
        self._seq += 1
        proc._state = _READY
        proc._waiting_on = None
        heapq.heappush(self._heap, (t, self._seq, proc, value))
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)

    def _schedule_many(
        self, entries: List[Tuple[float, ProcessHandle, Any]]
    ) -> None:
        for t, proc, value in entries:
            self._schedule(t, proc, value)

    def _park(self, proc: ProcessHandle,
              waiting_on: Optional[str] = None) -> None:
        proc._state = _BLOCKED
        proc._waiting_on = waiting_on
        self._blocked += 1

    def _unpark(self, t: float, proc: ProcessHandle, value: Any) -> None:
        self._blocked -= 1
        self._schedule(t, proc, value)

    def _finish(self, proc: ProcessHandle, result: Any) -> None:
        proc._state = _DONE
        proc._result = result
        if not proc.daemon:
            self._live -= 1
        now = self.clock.now
        for waiter in proc._waiters:
            self._unpark(now, waiter, result)
        proc._waiters.clear()

    def _step(self, proc: ProcessHandle, value: Any) -> None:
        """Advance ``proc`` until it blocks, sleeps, or terminates."""
        proc._state = _RUNNING
        gen = proc._gen
        while True:
            try:
                cmd = gen.send(value)
            except StopIteration as stop:
                self._finish(proc, stop.value)
                return
            value = None
            # exact-class fast path for the three commands that dominate
            # every workload; subclasses fall through to the
            # isinstance chain below
            cls = cmd.__class__
            if cls is Sleep:
                pass
            elif cls is Send:
                self._do_send(cmd.channel, cmd.message)
                continue
            elif cls is Recv:
                self._do_recv(proc, cmd.channel)
                return
            if isinstance(cmd, Sleep):
                if cmd.category is not None:
                    bucket = self.time_by_category
                    bucket[cmd.category] = (
                        bucket.get(cmd.category, 0.0) + cmd.duration
                    )
                if cmd.duration == 0.0:
                    value = None
                    continue
                self._schedule(self.clock.now + cmd.duration, proc, None)
                return
            if isinstance(cmd, Send):
                self._do_send(cmd.channel, cmd.message)
                continue
            if isinstance(cmd, Recv):
                if self._do_recv(proc, cmd.channel):
                    return  # parked; will resume with the message later
                # immediate delivery happened through _schedule; stop here
                return
            if isinstance(cmd, SendMany):
                self._do_send_many(cmd.channel, cmd.messages)
                continue
            if isinstance(cmd, DrainReady):
                # parked or scheduled with the drained batch; either way
                # the process resumes through the event heap
                self._do_drain(proc, cmd.channel)
                return
            if isinstance(cmd, Spawn):
                value = self.spawn(cmd.generator, cmd.name, cmd.daemon)
                continue
            if isinstance(cmd, Join):
                if cmd.handle.done:
                    value = cmd.handle._result
                    continue
                cmd.handle._waiters.append(proc)
                self._park(proc, f"join({cmd.handle.name})")
                return
            if isinstance(cmd, WaitBarrier):
                if self._do_barrier(proc, cmd.barrier):
                    return  # parked until the barrier trips
                continue
            if isinstance(cmd, Now):
                value = self.clock.now
                continue
            raise SimulationError(
                f"process {proc.name!r} yielded a non-command: {cmd!r}"
            )

    def _do_send(self, channel: Channel, message: Any) -> None:
        if channel.closed:
            raise ChannelClosedError(f"send on closed channel {channel.name!r}")
        channel.messages_sent += 1
        if channel.drop_pending > 0:
            # injected message-drop fault: the send completes but nothing
            # is ever delivered; receivers stay parked until a watchdog
            # (or the deadlock detector) notices the stall.
            channel.drop_pending -= 1
            channel.messages_dropped += 1
            return
        extra_ms = 0.0
        if channel.delay_pending_ms > 0.0:
            extra_ms = channel.delay_pending_ms
            channel.delay_pending_ms = 0.0
            channel.messages_delayed += 1
        deliverable_at = (self.clock.now + channel._delivery_delay(message)
                         + extra_ms)
        if channel._waiters:
            waiter, wants_all = channel._waiters.popleft()
            self._unpark(deliverable_at, waiter,
                         [message] if wants_all else message)
        else:
            queue = channel._queue
            if queue and deliverable_at < queue[-1][0]:
                channel._misordered = True
            queue.append((deliverable_at, message))

    def _do_send_many(self, channel: Channel, messages: List[Any]) -> None:
        """Bulk send: identical semantics to sequential ``_do_send`` calls.

        Armed faults are consumed message-by-message on the leading
        prefix (a drop does *not* consume a pending delay, exactly as in
        ``_do_send``); once no fault is pending, the clean remainder is
        delivered in one bulk operation.
        """
        if channel.closed:
            raise ChannelClosedError(f"send on closed channel {channel.name!r}")
        idx = 0
        n = len(messages)
        while idx < n and (channel.drop_pending > 0
                           or channel.delay_pending_ms > 0.0):
            self._do_send(channel, messages[idx])
            idx += 1
        if idx >= n:
            return
        rest = messages[idx:] if idx else messages
        k = len(rest)
        channel.messages_sent += k
        now = self.clock.now
        uniform = channel.cost_per_unit == 0.0
        if uniform:
            # fixed-latency channel: the whole batch lands at one time
            times = [now + channel.latency] * k
        else:
            delay = channel._delivery_delay
            times = [now + delay(m) for m in rest]
        j = 0
        wake: List[Tuple[float, ProcessHandle, Any]] = []
        while j < k and channel._waiters:
            waiter, wants_all = channel._waiters.popleft()
            if wants_all:
                # one drain waiter absorbs the whole remaining batch as
                # a single wake event at the latest delivery time
                self._blocked -= 1
                self._schedule(max(times[j:]), waiter, list(rest[j:]))
                return
            wake.append((times[j], waiter, rest[j]))
            j += 1
        if wake:
            self._blocked -= len(wake)
            self._schedule_many(wake)
        if j < k:
            queue = channel._queue
            if uniform:
                t = times[0]
                if queue and t < queue[-1][0]:
                    channel._misordered = True
                queue.append(_BulkSegment(t, rest[j:] if j else rest))
            else:
                tail = queue[-1][0] if queue else None
                for i in range(j, k):
                    t = times[i]
                    if tail is not None and t < tail:
                        channel._misordered = True
                    tail = t
                    queue.append((t, rest[i]))

    def _do_recv(self, proc: ProcessHandle, channel: Channel) -> bool:
        """Returns True if the process was parked waiting."""
        if channel._queue:
            queue = channel._queue
            if channel._misordered:
                # stable min-scan: earliest deliverable_at, ties to the
                # earliest-sent (head-of-line blocking fix)
                best = 0
                best_t = queue[0][0]
                for i in range(1, len(queue)):
                    t_i = queue[i][0]
                    if t_i < best_t:
                        best_t = t_i
                        best = i
                entry = queue[best]
                if entry.__class__ is _BulkSegment:
                    deliverable_at = entry.time
                    message = entry.take_one()
                    if not len(entry):
                        del queue[best]
                else:
                    deliverable_at, message = entry
                    del queue[best]
                if not queue:
                    channel._misordered = False
            else:
                head = queue[0]
                if head.__class__ is _BulkSegment:
                    deliverable_at = head.time
                    message = head.take_one()
                    if not len(head):
                        queue.popleft()
                else:
                    deliverable_at, message = queue.popleft()
            resume_at = max(self.clock.now, deliverable_at)
            self._schedule(resume_at, proc, message)
            return False
        if channel.closed:
            raise ChannelClosedError(f"recv on closed channel {channel.name!r}")
        channel._waiters.append((proc, False))
        self._park(proc, f"recv({channel.name})")
        return True

    def _do_drain(self, proc: ProcessHandle, channel: Channel) -> bool:
        """Take the whole queue (or park until something is queued)."""
        if channel._queue:
            entries = channel._queue
            if channel._misordered:
                ready_at = max(entry[0] for entry in entries)
            else:
                # monotone queue: the last entry is the latest delivery
                ready_at = entries[-1][0]
            first = entries[0]
            if len(entries) == 1 and first.__class__ is _BulkSegment \
                    and first.cursor == 0:
                # whole queue is one untouched bulk batch: hand its
                # message list over without copying
                batch = first.messages
            else:
                batch = []
                for entry in entries:
                    if entry.__class__ is _BulkSegment:
                        messages = entry.messages
                        batch.extend(messages if entry.cursor == 0
                                     else messages[entry.cursor:])
                    else:
                        batch.append(entry[1])
            entries.clear()
            channel._misordered = False
            resume_at = max(self.clock.now, ready_at)
            self._schedule(resume_at, proc, batch)
            return False
        if channel.closed:
            raise ChannelClosedError(f"drain on closed channel {channel.name!r}")
        channel._waiters.append((proc, True))
        self._park(proc, f"drain({channel.name})")
        return True

    def _do_barrier(self, proc: ProcessHandle, barrier: Barrier) -> bool:
        """Returns True if the process was parked waiting on the barrier."""
        barrier._arrived.append(proc)
        if len(barrier._arrived) < barrier.parties:
            self._park(
                proc, f"barrier({barrier.name}, {barrier.parties} parties)"
            )
            return True
        # Barrier trips: wake everyone else; the arriving process continues.
        barrier.generation += 1
        now = self.clock.now
        arrived, barrier._arrived = barrier._arrived, []
        wake = [(now, p, None) for p in arrived if p is not proc]
        self._blocked -= len(wake)
        self._schedule_many(wake)
        return False


class BatchedScheduler(Scheduler):
    """Cohort-batched scheduler: same semantics, vectorized event loop.

    Events live in an :class:`EventHeap` (heapq lane + numpy-sorted bulk
    runs) instead of a per-tuple ``heapq``; the run loop pops every
    event sharing the minimum timestamp as one *cohort* and replays it
    in global ``(time, seq)`` order.  New events scheduled mid-cohort
    always carry larger sequence numbers, so cohort replay reproduces
    the per-event :class:`Scheduler`'s interleaving exactly — the
    per-event core stays the bit-identity oracle, this one is the fast
    path (``batch_events`` config flag).
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        super().__init__(clock)
        self._events = EventHeap()

    def run(self, until: Optional[float] = None) -> float:
        events = self._events
        while len(events):
            if until is not None and events.min_time() > until:
                # stop at the horizon; pending events stay intact so a
                # later run() call picks up exactly where this left off
                self.clock.advance_to(until)
                return self.clock.now
            t, batch = events.pop_cohort()
            self.clock.advance_to(t)
            n = len(batch)
            self.batches += 1
            self.events_popped += n
            if n > self.max_batch:
                self.max_batch = n
            stop = False
            for i in range(n):
                _seq, (proc, value) = batch[i]
                self._step(proc, value)
                if self._live == 0:
                    # push the unprocessed cohort tail back so heap
                    # state matches the per-event scheduler's early stop
                    for j in range(i + 1, n):
                        seq_j, payload_j = batch[j]
                        events.push(t, seq_j, payload_j)
                    self.events_popped -= n - i - 1
                    stop = True
                    break
            if stop:
                break
        if self._live > 0 and not len(events):
            raise self._deadlock()
        return self.clock.now

    # -- internals ---------------------------------------------------------

    def _schedule(self, t: float, proc: ProcessHandle, value: Any) -> None:
        self._seq += 1
        proc._state = _READY
        proc._waiting_on = None
        self._events.push(t, self._seq, (proc, value))
        if len(self._events) > self.heap_peak:
            self.heap_peak = len(self._events)

    def _schedule_many(
        self, entries: List[Tuple[float, ProcessHandle, Any]]
    ) -> None:
        k = len(entries)
        if k == 0:
            return
        seq0 = self._seq + 1
        self._seq += k
        times = []
        payloads = []
        for t, proc, value in entries:
            proc._state = _READY
            proc._waiting_on = None
            times.append(t)
            payloads.append((proc, value))
        self._events.push_many(times, seq0, payloads)
        if len(self._events) > self.heap_peak:
            self.heap_peak = len(self._events)


def run_process(gen: ProcessGen, name: str = "main") -> Tuple[Any, float]:
    """Convenience: run a single process to completion on a fresh scheduler.

    Returns ``(return_value, elapsed_simulated_time)``.
    """
    sched = Scheduler()
    handle = sched.spawn(gen, name=name)
    end = sched.run()
    return handle.result, end
