"""Job specifications and lifecycle records for the serving layer.

A :class:`JobSpec` is what a tenant submits: which stored graph, which
algorithm with which parameters, which engine, and how the run should
be configured — the :class:`~repro.core.config.RuntimeConfig` front
door carries presets and fault plans exactly as it does for one-shot
``deploy()`` runs, so a tenant can (deliberately) submit a chaos job.

A :class:`Job` is the service-side record: queue timestamps, consumed
service time, the result or the failure, and whether the answer came
from the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..algorithms import (
    BFS,
    ConnectedComponents,
    KCore,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
)
from ..core.config import RuntimeConfig
from ..engines import AsyncEngine, GraphXEngine, PowerGraphEngine
from ..errors import ServeError
from ..fault import FaultPlan

#: Submittable algorithms, by wire name.
ALGORITHMS = {
    "pagerank": PageRank,
    "sssp-bf": MultiSourceSSSP,
    "lp": LabelPropagation,
    "bfs": BFS,
    "cc": ConnectedComponents,
    "kcore": KCore,
    "widest-path": WidestPath,
}

#: Submittable engines, by wire name.
ENGINES = {
    "powergraph": PowerGraphEngine,
    "graphx": GraphXEngine,
    "async": AsyncEngine,
}

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asks for.  Immutable; validated at construction."""

    graph: str
    algorithm: str = "pagerank"
    params: Mapping[str, Any] = field(default_factory=dict)
    engine: str = "powergraph"
    tenant: str = "default"
    #: fair-share weight; higher priority drains faster (must be >= 1)
    priority: int = 1
    max_iterations: Optional[int] = None
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ServeError(
                f"unknown algorithm {self.algorithm!r}; "
                f"one of {sorted(ALGORITHMS)}")
        if self.engine not in ENGINES:
            raise ServeError(
                f"unknown engine {self.engine!r}; one of {sorted(ENGINES)}")
        if self.priority < 1:
            raise ServeError(
                f"priority must be >= 1, got {self.priority}")

    def build_algorithm(self):
        """Instantiate the algorithm with this spec's parameters.

        Lists become tuples first (the JSON jobs file can only spell
        tuples as lists; templates want hashable tuples for e.g.
        ``sources``).
        """
        params = {k: tuple(v) if isinstance(v, list) else v
                  for k, v in dict(self.params).items()}
        try:
            return ALGORITHMS[self.algorithm](**params)
        except TypeError as exc:
            raise ServeError(
                f"bad params for {self.algorithm!r}: {exc}") from None

    def engine_cls(self):
        return ENGINES[self.engine]

    def cache_params(self) -> Dict[str, Any]:
        """The parameter mapping the result cache fingerprints.

        Algorithm params plus everything else that can change the
        *answer*: the engine (iteration semantics differ) and the
        iteration cap.  Tenant, priority and runtime preset are
        deliberately absent — they change scheduling and cost, never
        values, so tenants share each other's cached answers.
        """
        return dict(self.params,
                    __engine__=self.engine,
                    __max_iterations__=self.max_iterations)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from a jobs-file record (see the submit CLI).

        Recognized keys: ``graph`` (required), ``algorithm``,
        ``params``, ``engine``, ``tenant``, ``priority``,
        ``max_iterations``, ``use_cache``, ``preset`` (a
        :data:`~repro.core.config.PRESETS` name), and ``fault`` — a
        ``{kind, superstep, node, repeat}`` single-fault shorthand
        armed onto the preset's runtime.
        """
        doc = dict(doc)
        unknown = set(doc) - {"graph", "algorithm", "params", "engine",
                              "tenant", "priority", "max_iterations",
                              "use_cache", "preset", "fault"}
        if unknown:
            raise ServeError(f"unknown job keys: {sorted(unknown)}")
        if "graph" not in doc:
            raise ServeError("job record needs a 'graph' key")
        runtime = RuntimeConfig.preset(doc.get("preset", "full"))
        fault = doc.get("fault")
        if fault is not None:
            fault = dict(fault)
            try:
                plan = FaultPlan.single(
                    fault.pop("kind"), superstep=fault.pop("superstep", 1),
                    node_id=fault.pop("node", 0), **fault)
            except (KeyError, TypeError) as exc:
                raise ServeError(f"bad fault shorthand: {exc}") from None
            runtime = runtime.with_(fault_plan=plan)
        return cls(graph=doc["graph"],
                   algorithm=doc.get("algorithm", "pagerank"),
                   params=doc.get("params", {}),
                   engine=doc.get("engine", "powergraph"),
                   tenant=doc.get("tenant", "default"),
                   priority=doc.get("priority", 1),
                   max_iterations=doc.get("max_iterations"),
                   runtime=runtime,
                   use_cache=doc.get("use_cache", True))


class Job:
    """Mutable service-side record of one submitted job."""

    def __init__(self, job_id: int, spec: JobSpec,
                 submitted_ms: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = PENDING
        self.submitted_ms = submitted_ms
        self.started_ms: Optional[float] = None
        self.finished_ms: Optional[float] = None
        #: simulated service ms actually charged to this job
        self.consumed_ms = 0.0
        #: scheduler slices (supersteps/rollbacks) this job received
        self.slices = 0
        #: RunResult (engine run) or CachedResult (cache hit)
        self.result = None
        self.error: Optional[str] = None
        self.from_cache = False
        self.fault_report = None

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    @property
    def values(self):
        return self.result.values if self.result is not None else None

    @property
    def latency_ms(self) -> Optional[float]:
        """Submit-to-finish latency on the service clock."""
        if self.finished_ms is None:
            return None
        return self.finished_ms - self.submitted_ms

    @property
    def queue_ms(self) -> Optional[float]:
        if self.started_ms is None:
            return None
        return self.started_ms - self.submitted_ms

    def describe(self) -> Dict[str, Any]:
        """Plain-dict record for traces and CLI reporting."""
        spec = self.spec
        return {
            "job_id": self.job_id,
            "tenant": spec.tenant,
            "graph": spec.graph,
            "algorithm": spec.algorithm,
            "params": dict(spec.params),
            "engine": spec.engine,
            "priority": spec.priority,
            "max_iterations": spec.max_iterations,
            "state": self.state,
            "from_cache": self.from_cache,
            "submitted_ms": round(self.submitted_ms, 6),
            "queue_ms": (round(self.queue_ms, 6)
                         if self.queue_ms is not None else None),
            "latency_ms": (round(self.latency_ms, 6)
                           if self.latency_ms is not None else None),
            "consumed_ms": round(self.consumed_ms, 6),
            "slices": self.slices,
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Job(#{self.job_id} {self.spec.tenant}: "
                f"{self.spec.algorithm}@{self.spec.graph} {self.state})")
