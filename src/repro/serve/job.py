"""Job specifications and lifecycle records for the serving layer.

A :class:`JobSpec` is what a tenant submits: which stored graph, which
algorithm with which parameters, which engine, and how the run should
be configured — the :class:`~repro.core.config.RuntimeConfig` front
door carries presets and fault plans exactly as it does for one-shot
``deploy()`` runs, so a tenant can (deliberately) submit a chaos job.

A :class:`Job` is the service-side record: queue timestamps, consumed
service time, the result or the failure, and whether the answer came
from the result cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..algorithms import (
    BFS,
    ConnectedComponents,
    KCore,
    LabelPropagation,
    MultiSourceSSSP,
    PageRank,
    WidestPath,
)
from ..core.config import MiddlewareConfig, RuntimeConfig, StragglerConfig
from ..engines import AsyncEngine, GraphXEngine, PowerGraphEngine
from ..errors import ServeError
from ..fault import FaultPlan
from ..fault.inject import FaultEvent

#: Submittable algorithms, by wire name.
ALGORITHMS = {
    "pagerank": PageRank,
    "sssp-bf": MultiSourceSSSP,
    "lp": LabelPropagation,
    "bfs": BFS,
    "cc": ConnectedComponents,
    "kcore": KCore,
    "widest-path": WidestPath,
}

#: Submittable engines, by wire name.
ENGINES = {
    "powergraph": PowerGraphEngine,
    "graphx": GraphXEngine,
    "async": AsyncEngine,
}

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: exhausted its retry budget: poison — recorded reason, never retried
QUARANTINED = "quarantined"
STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED, QUARANTINED)


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asks for.  Immutable; validated at construction."""

    graph: str
    algorithm: str = "pagerank"
    params: Mapping[str, Any] = field(default_factory=dict)
    engine: str = "powergraph"
    tenant: str = "default"
    #: fair-share weight; higher priority drains faster (must be >= 1)
    priority: int = 1
    max_iterations: Optional[int] = None
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    use_cache: bool = True
    #: submit-to-finish budget on the service clock; a job that blows
    #: it fails terminally with "deadline exceeded" (None = no deadline)
    deadline_ms: Optional[float] = None
    #: failed runs are retried (resuming from the last checkpoint) up
    #: to this many times before the job is quarantined as poison
    max_retries: int = 0
    #: base of the exponential retry backoff (doubles per attempt)
    retry_backoff_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ServeError(
                f"unknown algorithm {self.algorithm!r}; "
                f"one of {sorted(ALGORITHMS)}")
        if self.engine not in ENGINES:
            raise ServeError(
                f"unknown engine {self.engine!r}; one of {sorted(ENGINES)}")
        if self.priority < 1:
            raise ServeError(
                f"priority must be >= 1, got {self.priority}")
        if self.deadline_ms is not None and not (
                isinstance(self.deadline_ms, (int, float))
                and not isinstance(self.deadline_ms, bool)
                and self.deadline_ms > 0):
            raise ServeError(
                f"deadline_ms must be a positive number, "
                f"got {self.deadline_ms!r}")
        if not isinstance(self.max_retries, int) \
                or isinstance(self.max_retries, bool) \
                or self.max_retries < 0:
            raise ServeError(
                f"max_retries must be an int >= 0, "
                f"got {self.max_retries!r}")
        if not isinstance(self.retry_backoff_ms, (int, float)) \
                or isinstance(self.retry_backoff_ms, bool) \
                or self.retry_backoff_ms < 0:
            raise ServeError(
                f"retry_backoff_ms must be a number >= 0, "
                f"got {self.retry_backoff_ms!r}")

    def build_algorithm(self):
        """Instantiate the algorithm with this spec's parameters.

        Lists become tuples first (the JSON jobs file can only spell
        tuples as lists; templates want hashable tuples for e.g.
        ``sources``).
        """
        params = {k: tuple(v) if isinstance(v, list) else v
                  for k, v in dict(self.params).items()}
        try:
            return ALGORITHMS[self.algorithm](**params)
        except TypeError as exc:
            raise ServeError(
                f"bad params for {self.algorithm!r}: {exc}") from None

    def engine_cls(self):
        return ENGINES[self.engine]

    def cache_params(self) -> Dict[str, Any]:
        """The parameter mapping the result cache fingerprints.

        Algorithm params plus everything else that can change the
        *answer*: the engine (iteration semantics differ) and the
        iteration cap.  Tenant, priority and runtime preset are
        deliberately absent — they change scheduling and cost, never
        values, so tenants share each other's cached answers.
        """
        return dict(self.params,
                    __engine__=self.engine,
                    __max_iterations__=self.max_iterations)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from a jobs-file record (see the submit CLI).

        Recognized keys: ``graph`` (required), ``algorithm``,
        ``params``, ``engine``, ``tenant``, ``priority``,
        ``max_iterations``, ``use_cache``, ``deadline_ms``,
        ``max_retries``, ``retry_backoff_ms``, ``preset`` (a
        :data:`~repro.core.config.PRESETS` name), and ``fault`` — a
        ``{kind, superstep, node, repeat}`` single-fault shorthand
        armed onto the preset's runtime.

        Unknown keys and malformed deadline/retry fields raise
        :class:`~repro.errors.ServeError` here — a bad jobs-file line
        fails at submit, not mid-serve.
        """
        doc = dict(doc)
        unknown = set(doc) - {"graph", "algorithm", "params", "engine",
                              "tenant", "priority", "max_iterations",
                              "use_cache", "preset", "fault",
                              "deadline_ms", "max_retries",
                              "retry_backoff_ms"}
        if unknown:
            raise ServeError(f"unknown job keys: {sorted(unknown)}")
        if "graph" not in doc:
            raise ServeError("job record needs a 'graph' key")
        runtime = RuntimeConfig.preset(doc.get("preset", "full"))
        fault = doc.get("fault")
        if fault is not None:
            fault = dict(fault)
            try:
                plan = FaultPlan.single(
                    fault.pop("kind"), superstep=fault.pop("superstep", 1),
                    node_id=fault.pop("node", 0), **fault)
            except (KeyError, TypeError) as exc:
                raise ServeError(f"bad fault shorthand: {exc}") from None
            runtime = runtime.with_(fault_plan=plan)
        return cls(graph=doc["graph"],
                   algorithm=doc.get("algorithm", "pagerank"),
                   params=doc.get("params", {}),
                   engine=doc.get("engine", "powergraph"),
                   tenant=doc.get("tenant", "default"),
                   priority=doc.get("priority", 1),
                   max_iterations=doc.get("max_iterations"),
                   runtime=runtime,
                   use_cache=doc.get("use_cache", True),
                   deadline_ms=doc.get("deadline_ms"),
                   max_retries=doc.get("max_retries", 0),
                   retry_backoff_ms=doc.get("retry_backoff_ms", 1.0))

    # -- journal round-trip ------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        """Lossless plain-dict form for the durable job journal.

        Unlike :meth:`from_dict`'s jobs-file shorthand, this captures
        the *resolved* :class:`~repro.core.config.RuntimeConfig` (every
        middleware knob plus the full fault plan), so a recovered
        service re-runs the job under exactly the submitted
        configuration.
        """
        return {
            "graph": self.graph,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "engine": self.engine,
            "tenant": self.tenant,
            "priority": self.priority,
            "max_iterations": self.max_iterations,
            "use_cache": self.use_cache,
            "deadline_ms": self.deadline_ms,
            "max_retries": self.max_retries,
            "retry_backoff_ms": self.retry_backoff_ms,
            "runtime": runtime_to_doc(self.runtime),
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_doc` (journal recovery path)."""
        doc = dict(doc)
        runtime = runtime_from_doc(doc.get("runtime") or {})
        return cls(graph=doc["graph"],
                   algorithm=doc.get("algorithm", "pagerank"),
                   params=doc.get("params", {}),
                   engine=doc.get("engine", "powergraph"),
                   tenant=doc.get("tenant", "default"),
                   priority=doc.get("priority", 1),
                   max_iterations=doc.get("max_iterations"),
                   runtime=runtime,
                   use_cache=doc.get("use_cache", True),
                   deadline_ms=doc.get("deadline_ms"),
                   max_retries=doc.get("max_retries", 0),
                   retry_backoff_ms=doc.get("retry_backoff_ms", 1.0))


def runtime_to_doc(runtime: RuntimeConfig) -> Dict[str, Any]:
    """Serialize a :class:`RuntimeConfig` to plain JSON types.

    ``dataclasses.asdict`` flattens the nested frozen dataclasses
    (:class:`StragglerConfig`, :class:`FaultPlan` and its events) into
    dicts of scalars; :func:`runtime_from_doc` rebuilds them.
    """
    return dataclasses.asdict(runtime.config)


def runtime_from_doc(doc: Mapping[str, Any]) -> RuntimeConfig:
    """Inverse of :func:`runtime_to_doc`."""
    fields = dict(doc)
    straggler = fields.pop("straggler", None)
    if straggler is not None:
        fields["straggler"] = StragglerConfig(**straggler)
    plan = fields.pop("fault_plan", None)
    if plan is not None:
        fields["fault_plan"] = FaultPlan(events=tuple(
            FaultEvent(**event) for event in plan.get("events", ())))
    try:
        return RuntimeConfig(config=MiddlewareConfig(**fields))
    except TypeError as exc:
        raise ServeError(
            f"bad journaled runtime config: {exc}") from None


class Job:
    """Mutable service-side record of one submitted job."""

    def __init__(self, job_id: int, spec: JobSpec,
                 submitted_ms: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = PENDING
        self.submitted_ms = submitted_ms
        self.started_ms: Optional[float] = None
        self.finished_ms: Optional[float] = None
        #: simulated service ms actually charged to this job
        self.consumed_ms = 0.0
        #: scheduler slices (supersteps/rollbacks) this job received
        self.slices = 0
        #: RunResult (engine run) or CachedResult (cache hit)
        self.result = None
        self.error: Optional[str] = None
        self.from_cache = False
        self.fault_report = None
        #: failed runs so far (bounded by ``spec.max_retries``)
        self.retries = 0
        #: Checkpoint to seed the next dispatch from (retry / recovery)
        self.resume_from = None
        #: service-clock instant before which a retry must not dispatch
        #: (exponential backoff); None = dispatchable immediately
        self.not_before_ms: Optional[float] = None
        #: why the job was quarantined (None unless state QUARANTINED)
        self.quarantine_reason: Optional[str] = None
        #: GraphSnapshot pinning the graph version the job computes
        #: against (acquired at submit, released at a terminal state)
        self.snapshot = None
        #: did this dispatch seed from a previous fixpoint (incremental
        #: re-convergence after a mutation) instead of a cold start?
        self.warm_started = False

    @property
    def snapshot_version(self) -> Optional[int]:
        return self.snapshot.version if self.snapshot is not None else None

    def release_snapshot(self) -> None:
        """Idempotently drop the job's version pin."""
        if self.snapshot is not None:
            self.snapshot.release()

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED, QUARANTINED)

    @property
    def values(self):
        return self.result.values if self.result is not None else None

    @property
    def latency_ms(self) -> Optional[float]:
        """Submit-to-finish latency on the service clock."""
        if self.finished_ms is None:
            return None
        return self.finished_ms - self.submitted_ms

    @property
    def queue_ms(self) -> Optional[float]:
        if self.started_ms is None:
            return None
        return self.started_ms - self.submitted_ms

    def describe(self) -> Dict[str, Any]:
        """Plain-dict record for traces and CLI reporting."""
        spec = self.spec
        return {
            "job_id": self.job_id,
            "tenant": spec.tenant,
            "graph": spec.graph,
            "algorithm": spec.algorithm,
            "params": dict(spec.params),
            "engine": spec.engine,
            "priority": spec.priority,
            "max_iterations": spec.max_iterations,
            "state": self.state,
            "from_cache": self.from_cache,
            "submitted_ms": round(self.submitted_ms, 6),
            "queue_ms": (round(self.queue_ms, 6)
                         if self.queue_ms is not None else None),
            "latency_ms": (round(self.latency_ms, 6)
                           if self.latency_ms is not None else None),
            "consumed_ms": round(self.consumed_ms, 6),
            "slices": self.slices,
            "error": self.error,
            "deadline_ms": spec.deadline_ms,
            "retries": self.retries,
            "quarantine_reason": self.quarantine_reason,
            "snapshot_version": self.snapshot_version,
            "warm_started": self.warm_started,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Job(#{self.job_id} {self.spec.tenant}: "
                f"{self.spec.algorithm}@{self.spec.graph} {self.state})")
