"""The serving layer: a resident, multi-tenant GX-Plug deployment.

Where :func:`repro.api.deploy` is a one-shot (build, run, tear down),
this package keeps the middleware warm: graphs stay loaded in a
versioned :class:`GraphStore`, tenant jobs queue through admission
control, a fair-share scheduler time-slices the daemon pool across
them at superstep granularity, and a version-keyed :class:`ResultCache`
answers repeated queries at lookup cost.  :class:`GraphService` is the
facade tying the four pieces together.

The service is crash-safe when given a journal path: the write-ahead
:class:`JobJournal` records every lifecycle transition, and
``GraphService.recover(path)`` rebuilds a crashed service by idempotent
replay, resuming in-flight jobs from their last durable checkpoint.

:class:`GraphServiceServer` puts the service on a socket (JSONL over
TCP, versioned frames, session leases, graceful drain) and
:class:`GraphClient` is its fault-tolerant counterpart (timeouts,
backoff reconnects, heartbeats, idempotent resubmit).
"""

from .cache import CACHE_LOOKUP_MS, CachedResult, ResultCache, params_fingerprint
from .job import ALGORITHMS as JOB_ALGORITHMS
from .job import (
    CANCELLED,
    DONE,
    ENGINES as JOB_ENGINES,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    STATES,
    Job,
    JobSpec,
)
from .journal import (
    JOURNAL_VERSION,
    JobJournal,
    JournalState,
    read_journal,
    replay_journal,
)
from .client import GraphClient
from .queue import AdmissionControl, JobQueue, ResourceUsage
from .scheduler import FairShareLedger, FairShareScheduler, RunningJob
from .service import GraphService
from .store import GraphSnapshot, GraphStore, StoredGraph
from .wire import (
    FRAME_SCHEMA,
    PROTOCOL_VERSION,
    GraphServiceServer,
    WireCounters,
    validate_frame,
)

__all__ = [
    "GraphService",
    "GraphStore",
    "GraphSnapshot",
    "StoredGraph",
    "ResultCache",
    "CachedResult",
    "CACHE_LOOKUP_MS",
    "params_fingerprint",
    "JobSpec",
    "Job",
    "JOB_ALGORITHMS",
    "JOB_ENGINES",
    "STATES",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "QUARANTINED",
    "JobJournal",
    "JournalState",
    "JOURNAL_VERSION",
    "read_journal",
    "replay_journal",
    "AdmissionControl",
    "JobQueue",
    "ResourceUsage",
    "FairShareScheduler",
    "FairShareLedger",
    "RunningJob",
    "GraphServiceServer",
    "GraphClient",
    "WireCounters",
    "PROTOCOL_VERSION",
    "FRAME_SCHEMA",
    "validate_frame",
]
