"""Admission control and the pending-job queue.

Admission is budgeted in the two currencies a serving deployment
actually runs out of:

* **memory** — resident bytes of attached graphs, counted *once* per
  graph no matter how many jobs share it (that sharing is the graph
  store's raison d'être).  A job whose graph is already attached by a
  running job is memory-free to admit.
* **daemons** — every running job plugs a full middleware (one daemon
  per accelerator) into the cluster, so concurrency is bounded by the
  daemon pool: ``daemon_budget // daemons_per_job`` jobs at once.

Jobs that can never fit — their graph alone busts the memory budget,
or one job needs more daemons than exist — are rejected at submit time
with :class:`~repro.errors.AdmissionError` instead of deadlocking the
queue.  Jobs that merely cannot fit *now* wait.

On top of the feasibility budgets sits **overload protection**: a max
queue depth, per-tenant pending caps, and deadline-aware admission
(a job whose deadline cannot be met given the current backlog's
estimated wait is refused up front).  Every refusal is a *shed* with a
recorded reason — load is dropped loudly, never silently.

Dequeue order is strict priority, FIFO within a priority class, with
one refinement: a job that fits may overtake a higher-priority job
that does not (backfilling), so a big job waiting for memory never
starves small ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..errors import AdmissionError, ServeError
from .job import CANCELLED, Job


@dataclass
class ResourceUsage:
    """What the running set holds right now (service-computed)."""

    memory_bytes: int = 0
    daemons: int = 0
    running: int = 0
    #: graph keys currently attached — jobs on these are memory-free
    attached_graphs: Set[str] = field(default_factory=set)


class AdmissionControl:
    """Budget checks; ``None`` budgets are unlimited."""

    def __init__(self, memory_budget_bytes: Optional[int] = None,
                 daemon_budget: Optional[int] = None,
                 max_running: Optional[int] = None,
                 daemons_per_job: int = 0,
                 max_queue_depth: Optional[int] = None,
                 max_pending_per_tenant: Optional[int] = None) -> None:
        for name, value in (("memory_budget_bytes", memory_budget_bytes),
                            ("daemon_budget", daemon_budget),
                            ("max_running", max_running),
                            ("max_queue_depth", max_queue_depth),
                            ("max_pending_per_tenant",
                             max_pending_per_tenant)):
            if value is not None and value <= 0:
                raise ServeError(f"{name} must be positive, got {value}")
        self.memory_budget_bytes = memory_budget_bytes
        self.daemon_budget = daemon_budget
        self.max_running = max_running
        self.daemons_per_job = daemons_per_job
        self.max_queue_depth = max_queue_depth
        self.max_pending_per_tenant = max_pending_per_tenant
        self.deferrals = 0
        self.rejections = 0
        #: overload/deadline refusals, with their recorded reasons
        self.sheds = 0
        self.shed_reasons: List[str] = []

    def shed(self, job: Job, reason: str) -> AdmissionError:
        """Record an overload refusal and build its error (not raised
        here — the caller journals the shed first)."""
        self.sheds += 1
        self.shed_reasons.append(
            f"job #{job.job_id} ({job.spec.tenant}): {reason}")
        del self.shed_reasons[:-50]        # keep the tail bounded
        return AdmissionError(
            f"job #{job.job_id} ({job.spec.tenant}) shed: {reason}")

    def overload_reason(self, job: Job, pending: List[Job],
                        running: int) -> Optional[str]:
        """Why admitting ``job`` would overload the service (None = ok).

        ``pending`` is the current queue contents; ``running`` the
        running-set size (a tenant's running jobs don't count against
        its *pending* cap).
        """
        if (self.max_queue_depth is not None
                and len(pending) >= self.max_queue_depth):
            return (f"queue depth {len(pending)}/"
                    f"{self.max_queue_depth} (overload)")
        if self.max_pending_per_tenant is not None:
            mine = sum(1 for p in pending
                       if p.spec.tenant == job.spec.tenant)
            if mine >= self.max_pending_per_tenant:
                return (f"tenant {job.spec.tenant!r} has {mine}/"
                        f"{self.max_pending_per_tenant} jobs pending")
        return None

    def deadline_reason(self, job: Job,
                        estimated_wait_ms: Optional[float]
                        ) -> Optional[str]:
        """Refuse a deadline the backlog already makes unmeetable.

        ``estimated_wait_ms`` is the service's queue-wait estimate
        (None when it has no completed-job history yet — then nothing
        is refused: shedding on a guess would be worse than queueing).
        """
        deadline = job.spec.deadline_ms
        if deadline is None or estimated_wait_ms is None:
            return None
        if estimated_wait_ms > deadline:
            return (f"deadline {deadline:g} ms unmeetable: estimated "
                    f"queue wait {estimated_wait_ms:.3f} ms")
        return None

    def check_feasible(self, job: Job, graph_bytes: int) -> None:
        """Raise :class:`AdmissionError` if ``job`` can never run.

        Judged against an idle service: the graph alone within the
        memory budget, one job's daemons within the daemon budget.
        """
        if (self.memory_budget_bytes is not None
                and graph_bytes > self.memory_budget_bytes):
            self.rejections += 1
            raise AdmissionError(
                f"job #{job.job_id} ({job.spec.tenant}): graph "
                f"{job.spec.graph!r} needs {graph_bytes} bytes but the "
                f"memory budget is {self.memory_budget_bytes}")
        if (self.daemon_budget is not None
                and self.daemons_per_job > self.daemon_budget):
            self.rejections += 1
            raise AdmissionError(
                f"job #{job.job_id} ({job.spec.tenant}): needs "
                f"{self.daemons_per_job} daemons but the budget is "
                f"{self.daemon_budget}")

    def defer_reason(self, job: Job, graph_bytes: int,
                     usage: ResourceUsage) -> Optional[str]:
        """Why ``job`` cannot start *right now* (``None`` = admit)."""
        if (self.max_running is not None
                and usage.running >= self.max_running):
            return (f"{usage.running}/{self.max_running} "
                    f"concurrent jobs running")
        if self.daemon_budget is not None:
            needed = usage.daemons + self.daemons_per_job
            if needed > self.daemon_budget:
                return (f"daemon pool exhausted "
                        f"({usage.daemons}/{self.daemon_budget} in use)")
        if (self.memory_budget_bytes is not None
                and job.spec.graph not in usage.attached_graphs):
            needed = usage.memory_bytes + graph_bytes
            if needed > self.memory_budget_bytes:
                return (f"memory budget exhausted ({usage.memory_bytes}"
                        f"/{self.memory_budget_bytes} bytes attached)")
        return None


class JobQueue:
    """Pending jobs: strict priority, FIFO within a class, backfilled."""

    def __init__(self, admission: AdmissionControl) -> None:
        self.admission = admission
        self._pending: List[Job] = []
        self.last_defer_reason: Optional[str] = None

    def push(self, job: Job) -> None:
        self._pending.append(job)
        # stable sort: priority desc, then submit order (job ids ascend)
        self._pending.sort(key=lambda j: (-j.spec.priority, j.job_id))

    def cancel(self, job_id: int) -> Optional[Job]:
        """Pull a pending job out of the queue; returns it if found."""
        for i, job in enumerate(self._pending):
            if job.job_id == job_id:
                del self._pending[i]
                job.state = CANCELLED
                return job
        return None

    def pop_admissible(self, usage: ResourceUsage,
                       graph_bytes: Dict[str, int],
                       now_ms: Optional[float] = None) -> Optional[Job]:
        """Highest-priority job that fits now; backfills past misfits.

        ``graph_bytes`` maps each pending job's graph key to its
        resident size.  Records the head-of-queue defer reason in
        :attr:`last_defer_reason` for observability.  When ``now_ms``
        is given, jobs still inside their retry backoff window
        (``job.not_before_ms``) are skipped over.
        """
        self.last_defer_reason = None
        for i, job in enumerate(self._pending):
            if (now_ms is not None and job.not_before_ms is not None
                    and job.not_before_ms > now_ms):
                if i == 0:
                    self.last_defer_reason = (
                        f"job #{job.job_id}: in retry backoff until "
                        f"{job.not_before_ms:.3f} ms")
                continue
            reason = self.admission.defer_reason(
                job, graph_bytes[job.spec.graph], usage)
            if reason is None:
                del self._pending[i]
                return job
            if i == 0:
                self.last_defer_reason = (f"job #{job.job_id}: {reason}")
            self.admission.deferrals += 1
        return None

    def next_not_before(self, now_ms: float) -> Optional[float]:
        """Earliest future backoff release among pending jobs, so an
        otherwise-idle service can advance its clock straight to it."""
        future = [j.not_before_ms for j in self._pending
                  if j.not_before_ms is not None
                  and j.not_before_ms > now_ms]
        return min(future) if future else None

    def jobs(self) -> List[Job]:
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def stats(self) -> Dict[str, Any]:
        return {
            "pending": len(self._pending),
            "deferrals": self.admission.deferrals,
            "rejections": self.admission.rejections,
            "sheds": self.admission.sheds,
            "shed_reasons": list(self.admission.shed_reasons),
            "last_defer_reason": self.last_defer_reason,
        }
