"""Robust client for the serving layer's JSONL-over-TCP protocol.

:class:`GraphClient` is the other half of :mod:`repro.serve.wire`: it
owns every client-side failure policy the ISSUE's failure-mode matrix
needs, so callers see only "the answer" or a typed
:class:`~repro.errors.WireError`:

* **per-request timeouts** — every round trip has a deadline; a silent
  server yields :class:`~repro.errors.WireTimeout`, never a hang;
* **reconnect with exponential backoff + jitter** — a dropped or
  refused connection is retried on a doubling schedule with seeded
  jitter (deterministic in tests, decorrelated in fleets); the delays
  actually slept are recorded on ``last_backoff_schedule`` and carried
  by :class:`~repro.errors.WireUnavailable` when the budget runs out;
* **session resume** — the client re-``hello``\\ s with its previous
  session id after every reconnect, and transparently re-hellos when
  the server answers ``no-session`` (lease lapsed / server restarted);
* **heartbeat leases** — a daemon thread pings inside the lease period
  so an idle client is not reaped as half-open;
* **idempotent resubmit** — ops are retried across reconnects only
  when that is safe: ``submit`` joins the retry-safe set only when the
  caller supplies an ``idempotency_key``, in which case the journal
  dedupes the replay and the client simply learns the original job id.

Overload and drain refusals surface as :class:`~repro.errors.WireShed`
with the server's ``retry_after_ms`` hint; :meth:`submit` can honour
it automatically (``retries=``), turning shed-then-admit into one call.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import (ServeError, WireError, WireProtocolError, WireShed,
                      WireTimeout, WireUnavailable)
from .job import JobSpec
from .wire import MAX_FRAME_BYTES, PROTOCOL_VERSION, encode_frame


class GraphClient:
    """Fault-tolerant client for a :class:`GraphServiceServer`.

    Thread-compatible: one lock serialises round trips, so the
    heartbeat thread and the caller never interleave frames.  ``watch``
    streams are read under the same lock one frame at a time, parking
    unrelated pushed events in a buffer.
    """

    def __init__(self, host: str, port: int, *, client_name: str = "client",
                 timeout_s: float = 5.0, lease_ms: float = 30_000.0,
                 connect_attempts: int = 5, backoff_base_s: float = 0.05,
                 backoff_max_s: float = 2.0, jitter_seed: int = 0,
                 heartbeat: bool = True, sleep=time.sleep) -> None:
        if timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive, got {timeout_s}")
        if connect_attempts < 1:
            raise ServeError(f"connect_attempts must be >= 1, "
                             f"got {connect_attempts}")
        self.host = host
        self.port = port
        self.client_name = client_name
        self.timeout_s = float(timeout_s)
        self.lease_ms = float(lease_ms)
        self.connect_attempts = int(connect_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self._jitter = random.Random(jitter_seed)
        self._sleep = sleep
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self._rbuf = b""
        self._next_req = 1
        self.session_id: Optional[str] = None
        #: pushed {"event": ...} frames read while waiting for a
        #: response; drained by :meth:`events` / :meth:`watch`
        self._events: deque = deque()
        #: delays (s) slept during the most recent reconnect cycle
        self.last_backoff_schedule: Tuple[float, ...] = ()
        #: client-side robustness counters (mirrors server WireCounters)
        self.reconnects = 0
        self.retried_ops = 0
        self.rehellos = 0
        self.sheds_seen = 0
        self.timeouts = 0
        self._closed = False
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None
        self.connect()
        if heartbeat:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, name="wire-heartbeat",
                daemon=True)
            self._hb_thread.start()

    # -- connection management -----------------------------------------------------------

    def connect(self) -> None:
        """(Re)connect and (re)establish the session, with backoff.

        Raises :class:`WireUnavailable` — carrying the backoff schedule
        that was actually applied — once ``connect_attempts`` direct
        attempts all fail.
        """
        with self._lock:
            self._teardown_socket()
            schedule: List[float] = []
            last_error: Optional[Exception] = None
            for attempt in range(self.connect_attempts):
                try:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout_s)
                    sock.settimeout(self.timeout_s)
                    self._sock = sock
                    self._rbuf = b""
                    self._hello()
                    self.last_backoff_schedule = tuple(schedule)
                    return
                except (OSError, WireError) as exc:
                    last_error = exc
                    self._teardown_socket()
                    if attempt + 1 >= self.connect_attempts:
                        break
                    delay = min(self.backoff_base_s * (2 ** attempt),
                                self.backoff_max_s)
                    # full jitter: decorrelates a reconnect stampede
                    delay *= 0.5 + self._jitter.random()
                    schedule.append(delay)
                    self._sleep(delay)
            self.last_backoff_schedule = tuple(schedule)
            raise WireUnavailable(
                f"server {self.host}:{self.port} unreachable after "
                f"{self.connect_attempts} attempts "
                f"(last error: {last_error})",
                backoff_schedule=schedule)

    def _hello(self) -> None:
        doc: Dict[str, Any] = {"client": self.client_name,
                               "lease_ms": self.lease_ms}
        if self.session_id is not None:
            doc["session"] = self.session_id
        resp = self._roundtrip_once("hello", doc)
        self.session_id = resp["session"]
        self.session_resumed = resp.get("resumed", False)
        self.server_draining = resp.get("draining", False)

    def _teardown_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None
        self._rbuf = b""

    def close(self) -> None:
        """Stop the heartbeat and close the socket (idempotent)."""
        self._closed = True
        self._hb_stop.set()
        if self._hb_thread is not None and \
                self._hb_thread is not threading.current_thread():
            self._hb_thread.join(timeout=2.0)
        with self._lock:
            self._teardown_socket()

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def retarget(self, host: str, port: int) -> None:
        """Point the client at a restarted/moved server and reconnect."""
        with self._lock:
            self.host = host
            self.port = port
            self.connect()

    # -- framing -------------------------------------------------------------------------

    def _send_frame(self, doc: Dict[str, Any]) -> None:
        assert self._sock is not None
        self._sock.sendall(encode_frame(doc))

    def _read_frame(self, deadline: float) -> Dict[str, Any]:
        assert self._sock is not None
        while b"\n" not in self._rbuf:
            budget = deadline - time.monotonic()
            if budget <= 0:
                self.timeouts += 1
                raise WireTimeout(
                    f"no response within {self.timeout_s:.3f}s")
            self._sock.settimeout(budget)
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                self.timeouts += 1
                raise WireTimeout(
                    f"no response within {self.timeout_s:.3f}s") from None
            if not data:
                raise ConnectionResetError("server closed the connection")
            self._rbuf += data
            if len(self._rbuf) > MAX_FRAME_BYTES:
                raise WireProtocolError("oversized frame from server")
        line, self._rbuf = self._rbuf.split(b"\n", 1)
        try:
            frame = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireProtocolError(
                f"unparseable frame from server: {exc}") from None
        if not isinstance(frame, dict):
            raise WireProtocolError(
                f"non-object frame from server: {frame!r}")
        return frame

    def _roundtrip_once(self, op: str, fields: Dict[str, Any]
                        ) -> Dict[str, Any]:
        """One request/response cycle on the live socket; no retry."""
        req = self._next_req
        self._next_req += 1
        doc = {"op": op, "v": PROTOCOL_VERSION, "req": req}
        doc.update(fields)
        self._send_frame(doc)
        deadline = time.monotonic() + self.timeout_s
        while True:
            frame = self._read_frame(deadline)
            if "event" in frame:
                self._events.append(frame)
                continue
            if frame.get("re") != req:
                # stale response from before a timeout; drop it
                continue
            if frame.get("ok"):
                return frame
            self._raise_error(frame)

    def _raise_error(self, frame: Dict[str, Any]) -> None:
        code = frame.get("code", "error")
        message = frame.get("error", "request failed")
        if code == "shed":
            self.sheds_seen += 1
            raise WireShed(message,
                           retry_after_ms=frame.get("retry_after_ms", 0.0),
                           draining=frame.get("draining", False))
        if code == "no-session":
            raise _SessionLost(message)
        if code in ("bad-frame", "bad-json", "frame-too-large"):
            raise WireProtocolError(f"[{code}] {message}")
        raise ServeError(f"[{code}] {message}")

    def _request(self, op: str, fields: Dict[str, Any], *,
                 retry_safe: bool) -> Dict[str, Any]:
        """Round trip with session injection and reconnect-on-drop.

        ``retry_safe`` ops are replayed after a reconnect; unsafe ones
        (a submit without an idempotency key) surface the break to the
        caller, who cannot know whether the op landed.
        """
        with self._lock:
            if self._closed:
                raise WireError("client is closed")
            attempts = 0
            while True:
                if self._sock is None:
                    self.reconnects += 1
                    self.connect()
                try:
                    if "session" in fields:
                        fields["session"] = self.session_id
                    return self._roundtrip_once(op, fields)
                except _SessionLost:
                    # server forgot us (restart / lease lapse): a new
                    # hello is always safe, then replay if allowed
                    self.rehellos += 1
                    self.session_id = None
                    self._hello()
                    if not retry_safe:
                        raise WireError(
                            f"session lost mid-{op}; op is not "
                            f"retry-safe") from None
                except (OSError, ConnectionError, WireTimeout):
                    self._teardown_socket()
                    if not retry_safe or attempts >= 1:
                        raise
                attempts += 1
                self.retried_ops += 1

    # -- public ops ----------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request("ping", {"session": self.session_id},
                             retry_safe=True)

    def _heartbeat_loop(self) -> None:
        # renew well inside the lease; /3 leaves two chances before
        # the reaper's verdict
        interval = max(self.lease_ms / 3000.0, 0.05)
        while not self._hb_stop.wait(interval):
            try:
                with self._lock:
                    if self._closed or self._sock is None:
                        continue
                    self._roundtrip_once(
                        "ping", {"session": self.session_id})
            except WireError:
                continue  # next caller op will reconnect
            except (OSError, ConnectionError):
                with self._lock:
                    self._teardown_socket()

    def submit(self, spec: JobSpec, *,
               idempotency_key: Optional[str] = None,
               retries: int = 0) -> Dict[str, Any]:
        """Submit a job; returns ``{job_id, state, deduped}``.

        With an ``idempotency_key`` the submit is retry-safe: replays
        after a dropped connection dedupe server-side to one executed
        job.  ``retries`` > 0 additionally honours shed responses by
        sleeping the server's ``retry_after_ms`` hint and resubmitting
        (drain sheds are never retried — the server is going away).
        """
        fields = {"session": self.session_id, "job": spec.to_doc()}
        if idempotency_key is not None:
            fields["idempotency_key"] = idempotency_key
        attempts = 0
        while True:
            try:
                return self._request("submit", dict(fields),
                                     retry_safe=idempotency_key is not None)
            except WireShed as exc:
                if exc.draining or attempts >= retries:
                    raise
                attempts += 1
                self._sleep(max(exc.retry_after_ms, 1.0) / 1000.0)

    def mutate(self, graph: str, batch, *,
               idempotency_key: Optional[str] = None,
               retries: int = 0) -> Dict[str, Any]:
        """Mutate a resident graph; returns the server's summary
        ``{graph, batch_id, from_version, version, changes, deduped}``.

        ``batch`` is a :class:`~repro.graph.mutations.MutationBatch` or
        its ``to_doc()`` mapping.  Mirrors :meth:`submit`'s safety
        contract: with an ``idempotency_key`` the op is retry-safe —
        a replayed batch after a dropped connection applies exactly
        once, the retry learning the original outcome (``deduped``).
        Without a key the batch's content fingerprint still dedupes
        server-side, but a connection break surfaces to the caller.
        ``retries`` > 0 honours shed responses by sleeping the
        server's ``retry_after_ms`` hint (never on drain sheds).
        """
        doc = batch if isinstance(batch, dict) else batch.to_doc()
        fields = {"session": self.session_id, "graph": graph,
                  "batch": doc}
        if idempotency_key is not None:
            fields["idempotency_key"] = idempotency_key
        attempts = 0
        while True:
            try:
                return self._request(
                    "mutate", dict(fields),
                    retry_safe=idempotency_key is not None)
            except WireShed as exc:
                if exc.draining or attempts >= retries:
                    raise
                attempts += 1
                self._sleep(max(exc.retry_after_ms, 1.0) / 1000.0)

    def poll(self, job_id: int, *, values: bool = False) -> Dict[str, Any]:
        """One job's state doc; ``values=True`` adds result values."""
        resp = self._request("poll", {"session": self.session_id,
                                      "job_id": job_id,
                                      "values": values},
                             retry_safe=True)
        return resp["job"]

    def result_values(self, job_id: int) -> np.ndarray:
        """A done job's values as the dtype they were computed in."""
        doc = self.poll(job_id, values=True)
        if doc["state"] != "done":
            raise ServeError(f"job {job_id} is {doc['state']!r}, "
                             f"not done")
        return np.asarray(doc["values"],
                          dtype=doc.get("values_dtype", "float64"))

    def wait(self, job_id: int, *, poll_interval_s: float = 0.02,
             timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        while True:
            doc = self.poll(job_id)
            if doc["state"] in ("done", "failed", "cancelled",
                                "quarantined"):
                return doc
            if deadline is not None and time.monotonic() > deadline:
                self.timeouts += 1
                raise WireTimeout(
                    f"job {job_id} not terminal within {timeout_s}s "
                    f"(last state {doc['state']!r})")
            self._sleep(poll_interval_s)

    def watch(self, job_id: int, *, timeout_s: Optional[float] = None
              ) -> Iterator[Dict[str, Any]]:
        """Yield pushed state-change events until the job is terminal.

        Falls back to :meth:`wait` semantics on reconnect: if the
        stream breaks, the watch is re-armed on the new connection (the
        registration is retry-safe) and no terminal event is lost —
        the re-watch answers terminally if the job finished meanwhile.
        """
        overall = (None if timeout_s is None
                   else time.monotonic() + timeout_s)
        while True:
            resp = self._request("watch", {"session": self.session_id,
                                           "job_id": job_id},
                                 retry_safe=True)
            if resp.get("terminal"):
                yield {"event": "job", "job_id": job_id,
                       "state": resp["job"]["state"],
                       "slices": resp["job"]["slices"],
                       "terminal": True}
                return
            try:
                for event in self._stream_events(job_id, overall):
                    yield event
                    if event.get("terminal"):
                        return
            except (OSError, ConnectionError, WireTimeout):
                with self._lock:
                    self._teardown_socket()
                if overall is not None and time.monotonic() > overall:
                    raise WireTimeout(
                        f"watch on job {job_id} exceeded {timeout_s}s"
                    ) from None
                # loop: reconnect + re-arm the watch

    def _stream_events(self, job_id: int, overall: Optional[float]
                       ) -> Iterator[Dict[str, Any]]:
        while True:
            event = None
            with self._lock:
                for i, buffered in enumerate(self._events):
                    if buffered.get("job_id") == job_id:
                        del self._events[i]
                        event = buffered
                        break
                if event is None:
                    if self._sock is None:
                        raise ConnectionResetError("connection lost")
                    budget = self.timeout_s
                    if overall is not None:
                        budget = min(budget, overall - time.monotonic())
                        if budget <= 0:
                            raise WireTimeout("watch timed out")
                    frame = self._read_frame(time.monotonic() + budget)
                    if "event" not in frame:
                        continue  # stray response (heartbeat); drop
                    if frame.get("event") == "draining":
                        self.server_draining = True
                        continue
                    if frame.get("event") in ("bye", "expired"):
                        raise ConnectionResetError(
                            f"server said {frame['event']}")
                    if frame.get("job_id") != job_id:
                        self._events.append(frame)
                        continue
                    event = frame
            yield event

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self._request("cancel", {"session": self.session_id,
                                        "job_id": job_id},
                             retry_safe=True)

    def stats(self) -> Dict[str, Any]:
        """Service metrics + recovery stats + server wire counters."""
        resp = self._request("stats", {"session": self.session_id},
                             retry_safe=True)
        return {"metrics": resp["metrics"], "recovery": resp["recovery"],
                "wire": resp["wire"]}

    def drain(self, mode: str = "finish") -> Dict[str, Any]:
        return self._request("drain", {"session": self.session_id,
                                       "mode": mode},
                             retry_safe=True)

    def client_stats(self) -> Dict[str, Any]:
        """The client's own robustness counters (for trace JSON)."""
        return {"reconnects": self.reconnects,
                "retried_ops": self.retried_ops,
                "rehellos": self.rehellos,
                "sheds_seen": self.sheds_seen,
                "timeouts": self.timeouts,
                "last_backoff_schedule": list(self.last_backoff_schedule)}


class _SessionLost(WireError):
    """Internal: server answered ``no-session``; re-hello and retry."""
