"""Result cache: memoized answers keyed on graph version + query.

A serving deployment sees the same queries over and over — dashboards
refresh the same PageRank, every tenant asks for connected components
of the catalog graph.  Because the whole simulation is deterministic,
a repeated query on an unchanged graph is *guaranteed* to produce
byte-identical values, so the service can answer it from memory at
lookup cost instead of re-running the engine.

The key is ``(graph key, graph version, algorithm, params hash)``:

* the **graph version** comes from the :class:`~repro.serve.store
  .GraphStore` and bumps on every reload, so stale answers can never
  be served after the data changes;
* the **params hash** is a canonical fingerprint of the algorithm's
  parameters (plus engine and iteration cap — anything that can change
  the answer), order-independent and tuple/list-agnostic so the same
  query spelled differently still hits.

Entries are LRU-evicted at a fixed capacity and every get/put deep-
copies the value array, so cached answers are immune to caller-side
mutation — a cache hit is byte-identical to the recompute, always.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..engines.base import RunResult
from ..errors import ServeError

#: Simulated ms charged for probing the cache and copying out a hit —
#: the serving layer's "fast path" cost, orders of magnitude below any
#: real engine run.
CACHE_LOOKUP_MS = 0.05

#: (graph key, graph version, algorithm name, params fingerprint)
CacheKey = Tuple[str, int, str, str]


def params_fingerprint(params: Mapping[str, Any]) -> str:
    """Canonical, order-independent digest of a parameter mapping.

    Mappings are sorted by key, tuples become lists, numpy scalars
    become Python scalars — so ``{"sources": (0, 1)}`` and
    ``{"sources": [0, 1]}`` fingerprint identically, as do dicts built
    in different insertion orders.
    """

    def canon(value: Any) -> Any:
        if isinstance(value, Mapping):
            return {str(k): canon(value[k]) for k in sorted(value)}
        if isinstance(value, (list, tuple)):
            return [canon(v) for v in value]
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        return value

    blob = json.dumps(canon(dict(params)), sort_keys=True,
                      separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CachedResult:
    """A memoized answer: the values plus enough provenance to report.

    ``compute_ms`` is the simulated cost of the run that produced the
    entry — what a cache hit just saved.
    """

    values: np.ndarray
    iterations: int
    converged: bool
    compute_ms: float
    engine: str
    algorithm: str


class ResultCache:
    """LRU cache of :class:`CachedResult` with hit/miss accounting."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key(graph_key: str, graph_version: int, algorithm: str,
            params: Mapping[str, Any]) -> CacheKey:
        return (graph_key, graph_version, algorithm,
                params_fingerprint(params))

    def get(self, key: CacheKey) -> Optional[CachedResult]:
        """Look up, refresh recency, and return a defensive copy."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return CachedResult(entry.values.copy(), entry.iterations,
                            entry.converged, entry.compute_ms,
                            entry.engine, entry.algorithm)

    def put(self, key: CacheKey, result: RunResult) -> None:
        """Memoize a finished run, evicting least-recently-used entries."""
        entry = CachedResult(result.values.copy(), result.iterations,
                             result.converged, result.total_ms,
                             result.engine_name, result.algorithm_name)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def put_entry(self, key: CacheKey, entry: CachedResult) -> bool:
        """Install an already-built entry if the key is absent.

        The journal-recovery path: replaying a ``finished`` record must
        be idempotent, so an entry that is already present (an earlier
        replay, or a fresher recompute) is left untouched.  Returns
        True if the entry was installed.
        """
        if key in self._entries:
            return False
        self._entries[key] = CachedResult(
            entry.values.copy(), entry.iterations, entry.converged,
            entry.compute_ms, entry.engine, entry.algorithm)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return True

    def invalidate_graph(self, graph_key: str, *,
                         keep_versions=None) -> int:
        """Drop entries for ``graph_key``, eagerly freeing capacity.

        Version-miss alone is not enough: dead-version entries could
        never be hit again (the version is part of the key), so leaving
        them to LRU churn fills the cache with garbage.  Called on
        reload (drop everything) and on mutation, where
        ``keep_versions`` preserves entries still reachable — the new
        latest version and any version pinned by an in-flight
        snapshot.  Every drop counts as an invalidation.
        """
        keep = frozenset(keep_versions or ())
        stale = [k for k in self._entries
                 if k[0] == graph_key and k[1] not in keep]
        for k in stale:
            del self._entries[k]
        self.invalidations += len(stale)
        return len(stale)

    def entries_for(self, graph_key: str, version: int):
        """Live ``(key, entry)`` pairs for one graph version.

        The mutation path harvests these as warm-start seeds before
        invalidating the version: a cached fixpoint for version N is
        exactly the seed an incremental re-convergence on N+1 wants.
        """
        return [(k, v) for k, v in self._entries.items()
                if k[0] == graph_key and k[1] == version]

    def keys(self):
        """Current keys, least- to most-recently used."""
        return list(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries
