"""Fair-share time slicing of the daemon pool at superstep granularity.

The engines' :meth:`~repro.engines.base.IterativeEngine.run_stepwise`
generator yields after every superstep (and every rollback), which
turns a whole engine run into a sequence of resumable quanta.  The
scheduler multiplexes the admitted jobs over those quanta with
**stride scheduling**: each job accrues virtual time at a rate
inversely proportional to its priority weight, and every slice goes
to the runnable job with the smallest virtual time.  Over any window,
a priority-2 tenant receives twice the simulated service of a
priority-1 tenant — proportional share, not strict preemption, so
low-priority work still drains.

Isolation falls out of the architecture rather than being bolted on:
every job runs its *own* middleware (agents, daemons, transport,
fault injector) over its *own* cluster build, sharing only the
immutable graph partitions from the store.  A fault injected into one
tenant's job crashes that job's daemons, triggers that job's
rollbacks — and merely shows up to everyone else as queueing delay,
never as corrupted values or a stalled stepper.

Per-tenant accounting (the :class:`FairShareLedger`) records who got
how much simulated service, so fairness is auditable after a soak.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .job import Job


class RunningJob:
    """An admitted job bound to its engine stepper and middleware."""

    def __init__(self, job: Job, middleware, engine, stepper,
                 cache_key=None) -> None:
        self.job = job
        self.middleware = middleware
        self.engine = engine
        self.stepper = stepper
        self.cache_key = cache_key
        #: False once singleflight waiters timed out and handed off —
        #: new identical queries must not park behind this leader again
        self.coalesce = True
        self.weight = float(job.spec.priority)
        #: simulated ms charged to this job so far (real service time)
        self.charged_ms = 0.0
        #: scheduling clock: charged time plus the join-time offset
        self.virtual_ms = 0.0

    @property
    def vtime(self) -> float:
        """Weighted virtual time — the stride-scheduling sort key."""
        return self.virtual_ms / self.weight


class FairShareScheduler:
    """Min-virtual-time picker over the running set."""

    def __init__(self) -> None:
        self._running: List[RunningJob] = []

    @property
    def running(self) -> List[RunningJob]:
        return list(self._running)

    def __len__(self) -> int:
        return len(self._running)

    def add(self, rj: RunningJob) -> None:
        """Admit a job to the running set.

        The newcomer starts at the running set's minimum virtual time
        (scaled by its weight) rather than zero, so a late arrival
        cannot monopolize the pool to "catch up" on service it never
        queued for.
        """
        if self._running:
            floor = min(r.vtime for r in self._running)
            rj.virtual_ms = floor * rj.weight
        self._running.append(rj)

    def remove(self, rj: RunningJob) -> None:
        self._running.remove(rj)

    def pick(self) -> Optional[RunningJob]:
        """The next job to receive a superstep slice.

        Deterministic: minimum vtime, job id breaking ties.
        """
        if not self._running:
            return None
        return min(self._running, key=lambda r: (r.vtime, r.job.job_id))

    def find(self, job_id: int) -> Optional[RunningJob]:
        for rj in self._running:
            if rj.job.job_id == job_id:
                return rj
        return None


class FairShareLedger:
    """Per-tenant service accounting: who consumed what, auditable."""

    def __init__(self) -> None:
        self._tenants: Dict[str, Dict[str, Any]] = {}

    def _row(self, tenant: str) -> Dict[str, Any]:
        return self._tenants.setdefault(
            tenant, {"consumed_ms": 0.0, "slices": 0, "jobs_finished": 0,
                     "cache_hits": 0})

    def charge(self, tenant: str, ms: float, slices: int = 1) -> None:
        row = self._row(tenant)
        row["consumed_ms"] += ms
        row["slices"] += slices

    def finish(self, tenant: str, from_cache: bool = False) -> None:
        row = self._row(tenant)
        row["jobs_finished"] += 1
        if from_cache:
            row["cache_hits"] += 1

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {t: dict(row, consumed_ms=round(row["consumed_ms"], 6))
                for t, row in sorted(self._tenants.items())}

    def share_of(self, tenant: str) -> float:
        """Fraction of all charged service time this tenant received."""
        total = sum(r["consumed_ms"] for r in self._tenants.values())
        if total == 0.0:
            return 0.0
        return self._tenants.get(tenant, {"consumed_ms": 0.0})[
            "consumed_ms"] / total
