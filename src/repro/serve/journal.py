"""Durable write-ahead journal for the serving layer's job lifecycle.

The :class:`~repro.serve.service.GraphService` of PR 6 kept every queued
and in-flight job in process memory: a crash of the serving loop lost
the queue, the running steppers and the result cache all at once.  This
module gives the service a **write-ahead journal** in the
recovery-by-replay shape GraphX uses for lineage (PAPERS.md): every job
lifecycle transition is appended to a JSONL log *before* the service
acts on it, bulk state (delta checkpoints of in-flight vertex tables,
finished results) lands in an npz sidecar directory next to the log,
and ``GraphService.recover()`` rebuilds the whole service by idempotent
replay — finished jobs re-serve from the result cache, in-flight jobs
resume from their last durable checkpoint instead of recomputing from
iteration 0.

Record kinds (one JSON object per line, ``rec`` discriminates)::

    service_start   cluster spec + service budgets (first line)
    graph_loaded    {key, dataset, version}; reloads append again
    mutation        {key, batch_id, from_version, to_version, file}
    submitted       {job_id, spec, submitted_ms, snapshot_version}
    admitted        {job_id, resume_iteration}
    slice           {job_id, iteration} — one per superstep quantum
    checkpointed    {job_id, iteration, file} — durable resume point
    finished        {job_id, from_cache, cache_key, file}
    failed          {job_id, error, reason}
    retry           {job_id, attempt, backoff_ms, resume_iteration}
    quarantined     {job_id, reason}
    cancelled       {job_id}
    shed            {tenant, reason} — overload/deadline admission refusals
    idempotency     {key, job_id} — client-supplied exactly-once submit key
    shutdown        {clean: true, reason} — drain() clean-shutdown marker

The ``idempotency`` record is appended immediately *before* its job's
``submitted`` record, so a crash between the two leaves an orphan key
(a key whose job was never submitted); replay drops orphans — the
submit never took effect, so a client resubmitting under that key must
run, not dedupe against a ghost.

Every record also carries ``now_ms`` (the service clock at append time)
so a replay can restore clock continuity.  Appends are flushed line by
line and sidecar files are written via ``os.replace`` so a kill between
any two operations never leaves a torn record — a partially written
trailing line is detected and ignored by :func:`read_journal`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ServeError
from ..fault.checkpoint import Checkpoint

#: Journal format version, recorded in the ``service_start`` record.
#: v2 added the ``idempotency`` record and the shutdown ``reason``
#: field; v3 added ``mutation`` records (with npz batch sidecars) and
#: the ``snapshot_version`` field on ``submitted``.  v1/v2 journals
#: replay unchanged — every addition is optional.
JOURNAL_VERSION = 3

#: Record kinds a journal may contain (the wire vocabulary).
RECORD_KINDS = (
    "service_start", "graph_loaded", "mutation", "submitted", "admitted",
    "slice", "checkpointed", "finished", "failed", "retry", "quarantined",
    "cancelled", "shed", "idempotency", "shutdown",
)

#: Terminal job record kinds — replay stops tracking a job after one.
TERMINAL_KINDS = ("finished", "failed", "quarantined", "cancelled")


def _jsonify(value: Any) -> Any:
    """Recursively coerce a value into plain JSON types.

    Tuples become lists and numpy scalars become Python scalars, so a
    journaled spec round-trips through ``json`` without a custom
    encoder; ``JobSpec.build_algorithm`` already re-tuples lists.
    """
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


class JobJournal:
    """Append-only JSONL lifecycle log plus an npz state sidecar dir.

    The journal file holds small metadata records; bulk arrays (delta
    checkpoints of in-flight jobs, finished result values) live in
    ``<path>.d/`` and are referenced by filename, mirroring the
    metadata-WAL / bulk-snapshot split of real serving systems.
    """

    def __init__(self, path: str, *, fresh: bool = False) -> None:
        self.path = str(path)
        self.state_dir = self.path + ".d"
        os.makedirs(self.state_dir, exist_ok=True)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._f = open(self.path, "w" if fresh else "a", encoding="utf-8")
        self.records_written = 0

    # -- appending ---------------------------------------------------------

    def append(self, rec: str, now_ms: float, **fields: Any) -> None:
        """Durably append one lifecycle record."""
        if rec not in RECORD_KINDS:
            raise ServeError(f"unknown journal record kind {rec!r}")
        if self._f.closed:
            raise ServeError(f"journal {self.path!r} is closed")
        doc = {"rec": rec, "now_ms": round(float(now_ms), 6)}
        doc.update(_jsonify(fields))
        self._f.write(json.dumps(doc, sort_keys=True) + "\n")
        self._f.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()

    @property
    def closed(self) -> bool:
        return self._f.closed

    # -- bulk state sidecars -----------------------------------------------

    def _write_npz(self, name: str, arrays: Dict[str, np.ndarray]) -> str:
        """Atomically write an npz sidecar; returns the bare filename."""
        final = os.path.join(self.state_dir, name)
        tmp = final + ".tmp"
        with open(tmp, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, final)
        return name

    def save_checkpoint(self, job_id: int, ckpt: Checkpoint) -> str:
        """Persist a job's latest delta-reconstructed checkpoint.

        Overwrites the previous checkpoint for the job — recovery only
        ever resumes from the newest durable state.
        """
        return self._write_npz(
            f"job-{job_id}-ckpt.npz",
            {"iteration": np.asarray(ckpt.iteration, dtype=np.int64),
             "values": ckpt.values, "active": ckpt.active})

    def load_checkpoint(self, job_id: int) -> Optional[Checkpoint]:
        path = os.path.join(self.state_dir, f"job-{job_id}-ckpt.npz")
        if not os.path.exists(path):
            return None
        with np.load(path) as doc:
            return Checkpoint(iteration=int(doc["iteration"]),
                              values=doc["values"].copy(),
                              active=doc["active"].copy(),
                              cost_ms=0.0)

    def save_result(self, job_id: int, values: np.ndarray,
                    iterations: int, converged: bool, compute_ms: float,
                    engine: str, algorithm: str) -> str:
        """Persist a finished job's answer for replay re-serving."""
        return self._write_npz(
            f"job-{job_id}-result.npz",
            {"values": np.asarray(values),
             "iterations": np.asarray(int(iterations), dtype=np.int64),
             "converged": np.asarray(bool(converged)),
             "compute_ms": np.asarray(float(compute_ms)),
             "engine": np.asarray(engine),
             "algorithm": np.asarray(algorithm)})

    def save_mutation(self, seq: int, batch) -> str:
        """Persist a mutation batch's arrays for journal replay."""
        return self._write_npz(
            f"mutation-{seq}.npz",
            {"add_src": batch.add_src, "add_dst": batch.add_dst,
             "add_weights": batch.add_weights,
             "remove_src": batch.remove_src,
             "remove_dst": batch.remove_dst,
             "update_src": batch.update_src,
             "update_dst": batch.update_dst,
             "update_weights": batch.update_weights,
             "add_vertices": np.asarray(batch.add_vertices,
                                        dtype=np.int64),
             "remove_vertices": batch.remove_vertices})

    def load_mutation(self, name: str):
        """Rehydrate a journaled mutation batch sidecar."""
        from ..graph.mutations import MutationBatch
        path = os.path.join(self.state_dir, name)
        if not os.path.exists(path):
            raise ServeError(
                f"journal references missing mutation sidecar {name!r}")
        with np.load(path) as doc:
            return MutationBatch(
                add_src=doc["add_src"], add_dst=doc["add_dst"],
                add_weights=doc["add_weights"],
                remove_src=doc["remove_src"],
                remove_dst=doc["remove_dst"],
                update_src=doc["update_src"],
                update_dst=doc["update_dst"],
                update_weights=doc["update_weights"],
                add_vertices=int(doc["add_vertices"]),
                remove_vertices=doc["remove_vertices"])

    def load_result(self, job_id: int):
        """The journaled answer as a :class:`~repro.serve.cache
        .CachedResult` (None if the sidecar is missing)."""
        from .cache import CachedResult
        path = os.path.join(self.state_dir, f"job-{job_id}-result.npz")
        if not os.path.exists(path):
            return None
        with np.load(path) as doc:
            return CachedResult(values=doc["values"].copy(),
                                iterations=int(doc["iterations"]),
                                converged=bool(doc["converged"]),
                                compute_ms=float(doc["compute_ms"]),
                                engine=str(doc["engine"]),
                                algorithm=str(doc["algorithm"]))


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a journal file into its records, oldest first.

    A torn trailing line (the service was killed mid-append) is
    silently dropped; a torn line anywhere *else* is corruption and
    raises — replay must never skip committed history.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as exc:
        raise ServeError(f"cannot read journal {path!r}: {exc}") from None
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn trailing append from the crash
            raise ServeError(
                f"journal {path!r} is corrupt at line {i + 1}")
        if not isinstance(doc, dict) or "rec" not in doc:
            raise ServeError(
                f"journal {path!r} line {i + 1} is not a record")
        records.append(doc)
    return records


@dataclass
class JobReplay:
    """Everything replay learned about one journaled job."""

    job_id: int
    spec_doc: Dict[str, Any]
    submitted_ms: float = 0.0
    state: str = "pending"
    error: Optional[str] = None
    quarantine_reason: Optional[str] = None
    from_cache: bool = False
    cache_key: Optional[Tuple] = None
    retries: int = 0
    #: highest journaled superstep (the progress watermark)
    last_iteration: int = 0
    #: superstep of the newest durable checkpoint (None = none taken)
    checkpoint_iteration: Optional[int] = None
    result_file: Optional[str] = None
    finished_ms: Optional[float] = None
    consumed_ms: float = 0.0
    slices: int = 0
    #: graph version the job was pinned to at submit (None: pre-v3)
    snapshot_version: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "quarantined", "cancelled")


@dataclass
class JournalState:
    """The outcome of replaying a journal: service + per-job state."""

    meta: Optional[Dict[str, Any]] = None
    #: (key, dataset) graph loads in journal order (reloads repeat)
    graph_loads: List[Tuple[str, Optional[str]]] = field(
        default_factory=list)
    #: interleaved graph history in journal order: ("load", doc) and
    #: ("mutation", doc) events — recovery replays these in sequence so
    #: store versions land exactly where the journal says they were
    graph_events: List[Tuple[str, Dict[str, Any]]] = field(
        default_factory=list)
    #: mutation records in journal order (a subset of graph_events)
    mutations: List[Dict[str, Any]] = field(default_factory=list)
    jobs: Dict[int, JobReplay] = field(default_factory=dict)
    clean_shutdown: bool = False
    #: why the clean shutdown happened ("drain", "sigterm", ...)
    shutdown_reason: Optional[str] = None
    now_ms: float = 0.0
    sheds: int = 0
    #: client idempotency key -> job id (exactly-once submit dedupe)
    idempotency: Dict[str, int] = field(default_factory=dict)

    @property
    def unfinished(self) -> List[JobReplay]:
        """Jobs the crash left pending or in flight, submit order."""
        return [j for j in sorted(self.jobs.values(),
                                  key=lambda j: j.job_id)
                if not j.terminal]


def replay_journal(records: List[Dict[str, Any]]) -> JournalState:
    """Fold a record stream into the final per-job lifecycle state.

    Replay is a pure fold — no service is touched — and idempotent by
    construction: the same records always produce the same state.
    """
    state = JournalState()
    for doc in records:
        rec = doc["rec"]
        state.now_ms = max(state.now_ms, float(doc.get("now_ms", 0.0)))
        if rec == "service_start":
            state.meta = doc
            continue
        if rec == "graph_loaded":
            state.graph_loads.append((doc["key"], doc.get("dataset")))
            state.graph_events.append(("load", doc))
            continue
        if rec == "mutation":
            state.mutations.append(doc)
            state.graph_events.append(("mutation", doc))
            continue
        if rec == "shutdown":
            state.clean_shutdown = bool(doc.get("clean", False))
            state.shutdown_reason = doc.get("reason")
            continue
        if rec == "shed":
            state.sheds += 1
            continue
        if rec == "idempotency":
            state.idempotency[str(doc["key"])] = int(doc["job_id"])
            continue
        job_id = int(doc["job_id"])
        if rec == "submitted":
            sv = doc.get("snapshot_version")
            state.jobs[job_id] = JobReplay(
                job_id=job_id, spec_doc=doc["spec"],
                submitted_ms=float(doc.get("submitted_ms", 0.0)),
                snapshot_version=int(sv) if sv is not None else None)
            continue
        job = state.jobs.get(job_id)
        if job is None:
            raise ServeError(
                f"journal records {rec!r} for job #{job_id} before its "
                f"submitted record")
        if rec == "admitted":
            job.state = "running"
        elif rec == "slice":
            job.last_iteration = max(job.last_iteration,
                                     int(doc["iteration"]))
            job.slices += 1
        elif rec == "checkpointed":
            job.checkpoint_iteration = int(doc["iteration"])
        elif rec == "retry":
            job.retries = int(doc["attempt"])
            job.state = "pending"
        elif rec == "finished":
            job.state = "done"
            job.from_cache = bool(doc.get("from_cache", False))
            key = doc.get("cache_key")
            job.cache_key = tuple(key) if key is not None else None
            job.result_file = doc.get("file")
            job.finished_ms = float(doc["now_ms"])
            job.consumed_ms = float(doc.get("consumed_ms", 0.0))
        elif rec == "failed":
            job.state = "failed"
            job.error = doc.get("error")
            job.finished_ms = float(doc["now_ms"])
        elif rec == "quarantined":
            job.state = "quarantined"
            job.quarantine_reason = doc.get("reason")
            job.error = doc.get("error", doc.get("reason"))
            job.finished_ms = float(doc["now_ms"])
        elif rec == "cancelled":
            job.state = "cancelled"
            job.finished_ms = float(doc["now_ms"])
        else:  # pragma: no cover - read_journal validated kinds
            raise ServeError(f"unknown journal record kind {rec!r}")
    # a crash between an idempotency append and its submitted append
    # leaves an orphan key: the submit never took effect, so the key
    # must not dedupe a resubmit against a job that does not exist
    state.idempotency = {key: job_id
                         for key, job_id in state.idempotency.items()
                         if job_id in state.jobs}
    return state
