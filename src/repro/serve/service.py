"""The serving facade: a resident GX-Plug deployment answering jobs.

``deploy()`` is a one-shot: build a cluster, plug the middleware in,
run one algorithm, tear it down.  :class:`GraphService` is the
long-lived counterpart — one Python process holding graphs resident,
admitting queued tenant jobs under resource budgets, time-slicing the
daemon pool across them at superstep granularity, and memoizing
answers::

    svc = GraphService(ClusterSpec(nodes=2, gpus_per_node=1))
    svc.load_graph("wiki", dataset="wrn")
    job = svc.submit(JobSpec(graph="wiki", algorithm="pagerank",
                             tenant="alice"))
    svc.run()
    job.values, job.latency_ms, svc.cache.stats()

Everything stays deterministic: the service clock advances by exactly
the simulated cost of each slice, so latencies, queue waits and fair
shares are reproducible run over run — and a cache hit returns values
byte-identical to the recompute it saved.

Jobs are isolated by construction.  Each admitted job gets a private
cluster build (from the shared :class:`ClusterSpec`) and a private
middleware; only the immutable graph and its memoized partitions are
shared.  One tenant's injected crash burns that tenant's simulated
time through its own rollback path; everyone else's values are
untouched.

The service itself is crash-safe when given a ``journal`` path: every
lifecycle transition is appended to a write-ahead journal
(:mod:`repro.serve.journal`) *before* the service acts on it, and
:meth:`GraphService.recover` rebuilds a crashed service by idempotent
replay — finished jobs re-serve from the result cache, in-flight jobs
resume from their last durable checkpoint via the engines'
``run_stepwise(resume_from=...)`` entry point instead of recomputing
from iteration 0.  Per-job deadlines, bounded checkpoint-resume
retries with quarantine, overload shedding and a :meth:`drain`
lifecycle round out the resilience story.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..bench.trace import write_json
from ..core.config import ClusterSpec
from ..core.middleware import GXPlug
from ..engines.base import RunResult
from ..errors import GraphError, ReproError, ServeError
from ..graph import load_dataset
from ..graph.mutations import MutationBatch, plan_warm_start
from .cache import CACHE_LOOKUP_MS, ResultCache
from .job import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    Job,
    JobSpec,
)
from .journal import JOURNAL_VERSION, JobJournal, read_journal, replay_journal
from .queue import AdmissionControl, JobQueue, ResourceUsage
from .scheduler import FairShareLedger, FairShareScheduler, RunningJob
from .store import GraphStore


class GraphService:
    """Multi-tenant serving over one simulated cluster description."""

    def __init__(self, spec: Optional[ClusterSpec] = None, *,
                 memory_budget_mb: Optional[float] = None,
                 daemon_budget: Optional[int] = None,
                 max_running: Optional[int] = 4,
                 cache_entries: int = 64,
                 trace_dir: Optional[str] = None,
                 max_queue_depth: Optional[int] = None,
                 max_pending_per_tenant: Optional[int] = None,
                 waiter_timeout_ms: Optional[float] = None,
                 journal: Optional[str] = None,
                 journal_checkpoint_interval: int = 2) -> None:
        self.spec = spec if spec is not None else ClusterSpec()
        self.store = GraphStore()
        self.cache = ResultCache(cache_entries)
        daemons_per_job = self.spec.nodes * (
            self.spec.gpus_per_node + self.spec.cpus_per_node)
        budget_bytes = (None if memory_budget_mb is None
                        else int(memory_budget_mb * 1024 * 1024))
        self.admission = AdmissionControl(
            memory_budget_bytes=budget_bytes,
            daemon_budget=daemon_budget,
            max_running=max_running,
            daemons_per_job=daemons_per_job,
            max_queue_depth=max_queue_depth,
            max_pending_per_tenant=max_pending_per_tenant)
        self.queue = JobQueue(self.admission)
        self.scheduler = FairShareScheduler()
        self.ledger = FairShareLedger()
        self.trace_dir = trace_dir
        #: the service clock, simulated ms since service start
        self.now_ms = 0.0
        self._jobs: Dict[int, Job] = {}
        self._next_job_id = 1
        # request coalescing: cache key -> jobs waiting on the one
        # in-flight computation of that exact query
        self._waiters: Dict[Any, List[Job]] = {}
        #: when each waiter group first parked (hung-leader timeout)
        self._waiter_parked_ms: Dict[Any, float] = {}
        self.coalesced = 0
        #: singleflight hand-offs after a hung leader timed out
        self.handoffs = 0
        #: checkpoint-resume retries performed
        self.retries = 0
        #: True once :meth:`drain` started — new submissions are shed
        self.draining = False
        #: client idempotency key -> job id (exactly-once submits);
        #: journaled, so dedupe survives a crash + :meth:`recover`
        self._idempotency: Dict[str, int] = {}
        #: submits answered from the idempotency map instead of run
        self.deduped_submits = 0
        #: warm-start seeds harvested from cached fixpoints at mutation
        #: time: (graph key, algorithm, params fingerprint) ->
        #: (seed version, CachedResult).  In-memory only — a crash
        #: loses the seeds and the recovered service falls back to
        #: cold starts; values are unaffected either way.  Bounded as a
        #: small LRU (see :meth:`_warm_put`) and pruned whenever a
        #: key's mutation history is severed, so stale seeds can never
        #: chain-match a reloaded incarnation of the key.
        self._warm: Dict[Tuple[str, str, str], Tuple[int, Any]] = {}
        self._warm_cap = max(cache_entries, 8)
        #: jobs dispatched seeded from a previous fixpoint
        self.warm_starts = 0
        #: mutation batches applied (fresh) / answered from the log
        self.mutations_applied = 0
        self.deduped_mutations = 0
        #: journaled mutation batches :meth:`recover` could not re-apply
        self.skipped_mutations = 0
        self._mutation_seq = 0
        # drain/recover lifecycle guard: drain() must be idempotent and
        # safe to call from a signal handler or a second thread while
        # the serving loop (or a recovery) is mid-flight
        self._lifecycle = threading.RLock()
        self._drain_result: Optional[List[Job]] = None
        #: simulated ms a job waits for a singleflight leader before the
        #: group abandons it and recomputes (None = wait forever)
        if waiter_timeout_ms is not None and waiter_timeout_ms <= 0:
            raise ServeError(
                f"waiter_timeout_ms must be positive, "
                f"got {waiter_timeout_ms}")
        self.waiter_timeout_ms = waiter_timeout_ms
        # EWMA of completed engine-run service times, feeding the
        # deadline-aware admission's queue-wait estimate
        self._ewma_service_ms: Optional[float] = None
        #: checkpoint interval forced onto jobs that disabled
        #: checkpointing, when journaling — without a checkpoint there
        #: is nothing to resume from (costs change, values never do)
        self.journal_checkpoint_interval = journal_checkpoint_interval
        #: jobs re-queued by the last :meth:`recover` (observability)
        self.recovered_jobs = 0
        self.resumed_from_checkpoint = 0
        #: terminal jobs the last :meth:`recover` restored verbatim
        self.recovered_terminal = 0
        self.journal: Optional[JobJournal] = None
        if journal is not None:
            self.journal = JobJournal(journal)
            self.journal.append(
                "service_start", self.now_ms,
                version=JOURNAL_VERSION,
                cluster=self.spec.to_dict(),
                memory_budget_mb=memory_budget_mb,
                daemon_budget=daemon_budget,
                max_running=max_running,
                cache_entries=cache_entries,
                trace_dir=trace_dir,
                max_queue_depth=max_queue_depth,
                max_pending_per_tenant=max_pending_per_tenant,
                waiter_timeout_ms=waiter_timeout_ms,
                journal_checkpoint_interval=journal_checkpoint_interval)

    def _journal_append(self, rec: str, **fields: Any) -> None:
        if self.journal is not None and not self.journal.closed:
            self.journal.append(rec, self.now_ms, **fields)

    # -- graphs -------------------------------------------------------------------------

    def load_graph(self, key: str, graph=None, *,
                   dataset: Optional[str] = None):
        """Load or reload a graph; reloads invalidate cached answers."""
        entry = self.store.load(key, graph, dataset=dataset)
        # every load severs the key's warm-start history: a reload
        # replaces the graph wholesale, and a fresh load after an
        # unload restarts versioning at 1 — a stale seed left behind
        # could chain-match the new incarnation's mutation log and
        # warm-start a monotone algorithm from an unrelated fixpoint
        # (an invalid bound it can never recover from)
        self._prune_warm(key)
        if entry.version > 1:
            self.cache.invalidate_graph(key)
        self._journal_append("graph_loaded", key=key, dataset=dataset,
                             version=entry.version)
        return entry

    def unload_graph(self, key: str) -> None:
        """Evict a graph plus the service state that references it.

        Prefer this over calling ``svc.store.unload()`` directly: the
        store cannot see the service's per-key state, so a bare store
        unload would leave cached answers and harvested warm-start
        seeds behind — and a seed surviving into a later reload of the
        same key could warm-start against an unrelated graph.  Unloads
        are not journaled: a recover() of an older journal conservatively
        restores the key from its ``graph_loaded`` record.
        """
        self.store.unload(key)
        self.cache.invalidate_graph(key)
        self._prune_warm(key)

    def _warm_put(self, wkey: Tuple[str, str, str], version: int,
                  entry: Any) -> None:
        """Install a harvested seed, evicting the LRU past the cap."""
        self._warm.pop(wkey, None)
        self._warm[wkey] = (version, entry)
        while len(self._warm) > self._warm_cap:
            self._warm.pop(next(iter(self._warm)))

    def _prune_warm(self, key: str) -> None:
        """Drop every harvested seed for ``key`` (history severed)."""
        for wkey in [w for w in self._warm if w[0] == key]:
            del self._warm[wkey]

    def mutate(self, key: str, batch, *,
               idempotency_key: Optional[str] = None) -> Dict[str, Any]:
        """Apply a mutation batch to a resident graph, exactly once.

        ``batch`` is a :class:`~repro.graph.mutations.MutationBatch` or
        its ``to_doc()`` mapping.  The apply is copy-on-write: jobs
        pinned to the pre-mutation version keep computing against it
        (snapshot isolation) while submits after this call see the new
        version.  Idempotent by ``idempotency_key`` (defaulting to the
        batch's content fingerprint): re-sending an applied batch — a
        wire retry, a journal replay — answers from the mutation log
        without touching the graph.

        Before the old version's cached answers are invalidated they
        are harvested as warm-start seeds: the next submit of the same
        query on the mutated graph resumes from the previous fixpoint
        over the mutation's dirty frontier instead of iteration 0,
        when the algorithm declares an ``incremental`` policy.

        Returns a summary dict: graph, batch_id, from_version,
        version, changes, deduped.
        """
        if self.draining:
            raise ServeError("service is draining; mutation refused")
        if key not in self.store:
            raise ServeError(
                f"unknown graph {key!r}; loaded: {self.store.keys()}")
        if isinstance(batch, Mapping):
            batch = MutationBatch.from_doc(batch)
        if batch.is_empty:
            raise ServeError(f"empty mutation batch for graph {key!r}")
        bid = idempotency_key or batch.fingerprint()
        prior = self.store.log.applied(key, bid)
        if prior is not None:
            self.deduped_mutations += 1
            return {"graph": key, "batch_id": bid,
                    "from_version": prior.from_version,
                    "version": prior.to_version,
                    "changes": prior.batch.num_changes,
                    "deduped": True}
        pre_version = self.store.get(key).version
        # apply first, journal second: store.mutate() runs apply-time
        # validation (out-of-range ids, remove/update of a nonexistent
        # edge raise GraphError), and a batch that cannot apply must
        # never reach the journal — a journaled unappliable batch would
        # re-raise on every recover() replay and wedge recovery forever
        record = self.store.mutate(key, batch, bid)
        self.mutations_applied += 1
        # harvest the pre-version's cached fixpoints as warm-start
        # seeds before invalidating them: a cached answer for version N
        # is exactly the seed an incremental re-run on N+1 wants
        for ckey, entry in self.cache.entries_for(key, pre_version):
            self._warm_put((key, ckey[2], ckey[3]), pre_version, entry)
        if self.journal is not None and not self.journal.closed:
            # the applied batch lands durably before the success
            # response reaches the caller; a crash in the gap loses an
            # apply the client was never told about, so its idempotent
            # resubmit re-applies cleanly after recover()
            self._mutation_seq += 1
            name = self.journal.save_mutation(self._mutation_seq, batch)
            self._journal_append("mutation", key=key, batch_id=bid,
                                 from_version=record.from_version,
                                 to_version=record.to_version, file=name)
        # eager invalidation: dead-version entries could never be hit
        # again, so evict them now instead of letting them squat in the
        # LRU — keeping only versions still reachable (the new latest
        # plus anything pinned by an in-flight snapshot)
        keep = {record.to_version}
        keep.update(self.store.pinned_versions(key))
        self.cache.invalidate_graph(key, keep_versions=keep)
        return {"graph": key, "batch_id": bid,
                "from_version": record.from_version,
                "version": record.to_version,
                "changes": record.batch.num_changes,
                "deduped": False}

    # -- submission ---------------------------------------------------------------------

    def submit(self, spec: JobSpec, *,
               idempotency_key: Optional[str] = None) -> Job:
        """Queue a job; raises if it could never run — or would
        overload the service (queue depth, per-tenant cap, unmeetable
        deadline): those refusals are *sheds*, recorded with reasons.

        ``idempotency_key`` makes the submit exactly-once: a key that
        already maps to a job (in memory, or replayed from the journal
        after a crash) returns that job instead of running a duplicate.
        The mapping is journaled *before* the submitted record, so a
        resubmit after any crash window dedupes correctly: either the
        original submit committed (key + record present, dedupe) or it
        never happened (orphan key dropped at replay, this submit runs).
        Shed submits never consume the key — the client may retry.

        Returns the live :class:`Job` record — the caller keeps it and
        reads result/latency off it after :meth:`run`.
        """
        if idempotency_key is not None:
            if not isinstance(idempotency_key, str) or not idempotency_key:
                raise ServeError(
                    f"idempotency_key must be a non-empty string, "
                    f"got {idempotency_key!r}")
            existing = self._idempotency.get(idempotency_key)
            if existing is not None:
                self.deduped_submits += 1
                return self._jobs[existing]
        if spec.graph not in self.store:
            raise ServeError(
                f"unknown graph {spec.graph!r}; loaded: "
                f"{self.store.keys()}")
        job = Job(self._next_job_id, spec, submitted_ms=self.now_ms)
        self._next_job_id += 1
        if self.draining:
            err = self.admission.shed(job, "service is draining")
            self._journal_append("shed", tenant=spec.tenant,
                                 reason="service is draining")
            raise err
        self.admission.check_feasible(job, self.store.get(spec.graph).nbytes)
        reason = self.admission.overload_reason(
            job, self.queue.jobs(), running=len(self.scheduler))
        if reason is None:
            reason = self.admission.deadline_reason(
                job, self._estimate_wait_ms())
        if reason is not None:
            err = self.admission.shed(job, reason)
            self._journal_append("shed", tenant=spec.tenant, reason=reason)
            raise err
        if idempotency_key is not None:
            # write-ahead: the key lands before the submitted record;
            # replay drops the key if the crash split the pair
            self._journal_append("idempotency", key=idempotency_key,
                                 job_id=job.job_id)
            self._idempotency[idempotency_key] = job.job_id
        # snapshot isolation: pin the graph version this job will
        # compute against for its whole lifetime — mutations landing
        # after this instant go into versions the job never sees
        job.snapshot = self.store.snapshot(spec.graph)
        self._jobs[job.job_id] = job
        self._journal_append("submitted", job_id=job.job_id,
                             spec=spec.to_doc(),
                             submitted_ms=job.submitted_ms,
                             snapshot_version=job.snapshot.version)
        self.queue.push(job)
        return job

    def idempotent_job_id(self, key: str) -> Optional[int]:
        """The job id a client idempotency key maps to (None = fresh)."""
        return self._idempotency.get(key)

    def _estimate_wait_ms(self) -> Optional[float]:
        """Deterministic queue-wait estimate for deadline admission.

        EWMA of completed engine-run service times, scaled by the
        backlog over the concurrency the service can actually deliver.
        None until the first engine run completes — the service refuses
        nothing on zero history.
        """
        if self._ewma_service_ms is None:
            return None
        backlog = len(self.queue) + len(self.scheduler)
        if backlog == 0:
            return 0.0
        parallelism = self.admission.max_running or backlog
        return self._ewma_service_ms * backlog / max(1, min(parallelism,
                                                            backlog))

    def cancel(self, job_id: int) -> bool:
        """Cancel a pending or running job; True if anything changed."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id}")
        if job.finished:
            return False
        if job.state == PENDING:
            pulled = self.queue.cancel(job_id)
            if pulled is not None:
                pulled.finished_ms = self.now_ms
                pulled.release_snapshot()
                self._journal_append("cancelled", job_id=job_id)
                return True
            return False
        rj = self.scheduler.find(job_id)
        if rj is not None:
            rj.stepper.close()
            job.state = CANCELLED
            job.finished_ms = self.now_ms
            job.release_snapshot()
            self._journal_append("cancelled", job_id=job_id)
            self._teardown(rj)
            self._redispatch_waiters(rj.cache_key)
            return True
        # a coalesced waiter: parked behind an in-flight identical query
        for ckey, waiters in self._waiters.items():
            if job in waiters:
                waiters.remove(job)
                if not waiters:
                    del self._waiters[ckey]
                    self._waiter_parked_ms.pop(ckey, None)
                job.state = CANCELLED
                job.finished_ms = self.now_ms
                job.release_snapshot()
                self._journal_append("cancelled", job_id=job_id)
                self.store._detach(job.spec.graph)
                return True
        return False  # pragma: no cover - state machine guard

    # -- the scheduling loop ------------------------------------------------------------

    def step(self) -> bool:
        """One scheduling round: admit what fits, run one slice.

        Returns False when the service is idle (nothing pending,
        nothing running) — or already drained (a suspended service
        must not be driven again; recover its journal instead).
        """
        if self._drain_result is not None:
            return False
        while True:
            job = self.queue.pop_admissible(self._usage(),
                                            self._graph_bytes(),
                                            now_ms=self.now_ms)
            if job is None:
                break
            if self._deadline_blown(job):
                self._fail_before_start(job, "deadline exceeded while "
                                             "queued")
                continue
            self._dispatch(job)
        self._check_waiter_timeouts()
        rj = self.scheduler.pick()
        if rj is not None:
            self._slice(rj)
            return True
        if self._waiters:
            # wedge guard: waiters parked but no leader is running
            # (it died without serving them) — recompute instead of
            # waiting forever
            for ckey in list(self._waiters):
                if not any(r.cache_key == ckey
                           for r in self.scheduler.running):
                    self._redispatch_waiters(ckey)
            if self.scheduler.running:
                return True
        if len(self.queue):
            # nothing running and nothing admissible: if the head-of-
            # queue blockage is a retry backoff window, the idle service
            # jumps its clock to the release instant (virtual time —
            # nothing else would advance it)
            release = self.queue.next_not_before(self.now_ms)
            if release is not None:
                self.now_ms = release
                return True
            raise ServeError(  # pragma: no cover - feasibility guard
                f"admission deadlock: {len(self.queue)} pending jobs, "
                f"none admissible ({self.queue.last_defer_reason})")
        return False

    def run(self) -> List[Job]:
        """Drive the service until idle; returns all finished jobs."""
        while self.step():
            pass
        return [j for j in self._jobs.values() if j.finished]

    def drain(self, *, reason: str = "drain",
              finish_running: bool = True) -> List[Job]:
        """Graceful shutdown: refuse new submissions, journal a
        clean-shutdown marker recording ``reason``, close the journal.

        With ``finish_running=True`` (the default, the file-mode
        lifecycle) running jobs are driven to completion and pending
        ones are shed; a subsequent :meth:`recover` sees the clean
        marker and rebuilds a fully terminal service (replay is a
        no-op).  With ``finish_running=False`` (the socket server's
        SIGTERM path) in-flight and pending jobs are *suspended*
        instead: their steppers close, no terminal record is journaled,
        and a restart's :meth:`recover` re-queues them to resume from
        their last durable checkpoint — clients reconnect and poll the
        same job ids.

        Idempotent and thread-safe: a second call (from a signal
        handler, a second thread, or after the journal already closed)
        returns the first call's result without shedding or journaling
        anything twice.
        """
        with self._lifecycle:
            if self._drain_result is not None:
                return self._drain_result
            self.draining = True
            if finish_running:
                for job in list(self.queue.jobs()):
                    pulled = self.queue.cancel(job.job_id)
                    if pulled is None:  # pragma: no cover - race guard
                        continue
                    job.error = "shed: service draining"
                    job.finished_ms = self.now_ms
                    job.release_snapshot()
                    self.admission.sheds += 1
                    self.admission.shed_reasons.append(
                        f"job #{job.job_id} ({job.spec.tenant}): "
                        f"pending at drain")
                    self._journal_append("cancelled", job_id=job.job_id)
                finished = self.run()
            else:
                # suspend: close the live steppers (releasing daemons
                # and graph attachments) but journal nothing terminal —
                # the in-flight jobs stay "running"/"pending" in the
                # journal so recover() re-queues and resumes them
                for rj in list(self.scheduler.running):
                    rj.stepper.close()
                    self._teardown(rj)
                finished = [j for j in self._jobs.values() if j.finished]
            if self.journal is not None and not self.journal.closed:
                self.journal.append("shutdown", self.now_ms, clean=True,
                                    reason=reason)
                self.journal.close()
            self._drain_result = finished
            return finished

    # -- recovery -----------------------------------------------------------------------

    @classmethod
    def recover(cls, journal_path: str, *,
                graphs: Optional[Dict[str, Any]] = None,
                trace_dir: Optional[str] = None) -> "GraphService":
        """Rebuild a crashed service by replaying its journal.

        Reconstructs the service (cluster spec and budgets come from
        the journal's ``service_start`` record), reloads every graph in
        journal order, restores terminal jobs verbatim — finished jobs'
        answers re-enter the result cache from their npz sidecars, with
        no duplicate entries and no trace rewrites — and re-queues
        unfinished jobs seeded with their last durable checkpoint, so
        :meth:`run` continues them from the last journaled superstep
        instead of iteration 0.

        Replay appends nothing to the journal, so recovering the same
        journal twice (or recovering a cleanly drained one) is a no-op:
        identical state, untouched file.  ``graphs`` supplies graph
        objects for keys that were loaded without a dataset name;
        ``trace_dir`` overrides the journaled one.
        """
        records = read_journal(journal_path)
        state = replay_journal(records)
        meta = state.meta
        if meta is None:
            raise ServeError(
                f"journal {journal_path!r} has no service_start record")
        svc = cls(
            ClusterSpec(**meta["cluster"]),
            memory_budget_mb=meta.get("memory_budget_mb"),
            daemon_budget=meta.get("daemon_budget"),
            max_running=meta.get("max_running"),
            cache_entries=meta.get("cache_entries", 64),
            trace_dir=(trace_dir if trace_dir is not None
                       else meta.get("trace_dir")),
            max_queue_depth=meta.get("max_queue_depth"),
            max_pending_per_tenant=meta.get("max_pending_per_tenant"),
            waiter_timeout_ms=meta.get("waiter_timeout_ms"),
            journal=None,
            journal_checkpoint_interval=meta.get(
                "journal_checkpoint_interval", 2))
        jrn = JobJournal(journal_path)   # append mode: writes nothing
        mutated_keys = set()
        for kind, doc in state.graph_events:
            key = doc["key"]
            if kind == "mutation":
                # journaled batches replay exactly once (the store
                # dedupes by batch id); old versions are retained until
                # the re-queued jobs below re-pin what they still need
                batch = jrn.load_mutation(doc["file"])
                try:
                    svc.store.mutate(key, batch, doc["batch_id"],
                                     retain=True)
                except GraphError:
                    # defense in depth: the live path only journals
                    # batches that already applied, but a record from
                    # an older journal (or one straddling an unjournaled
                    # replace) may no longer fit the graph — skipping it
                    # beats wedging every future recover(); jobs pinned
                    # to unreachable versions fall back to latest below
                    svc.skipped_mutations += 1
                mutated_keys.add(key)
                continue
            if graphs is not None and key in graphs:
                graph = graphs[key]
            elif doc.get("dataset") is not None:
                graph = load_dataset(doc["dataset"])
            else:
                raise ServeError(
                    f"graph {key!r} was journaled without a dataset "
                    f"name; pass it via graphs={{{key!r}: <Graph>}}")
            if key in svc.store:
                # a journaled reload: replace() directly — the shim's
                # deprecation warning is for callers, not replay
                svc.store.replace(key, graph)
                svc.cache.invalidate_graph(key)
            else:
                svc.store.load(key, graph)
        svc._mutation_seq = len(state.mutations)
        svc.now_ms = state.now_ms
        svc._idempotency = dict(state.idempotency)
        for jr in sorted(state.jobs.values(), key=lambda j: j.job_id):
            spec = JobSpec.from_doc(jr.spec_doc)
            job = Job(jr.job_id, spec, submitted_ms=jr.submitted_ms)
            svc._jobs[job.job_id] = job
            svc._next_job_id = max(svc._next_job_id, jr.job_id + 1)
            job.retries = jr.retries
            if jr.state == "done":
                result = jrn.load_result(jr.job_id)
                if result is not None:
                    job.state = DONE
                    job.result = result
                    job.from_cache = jr.from_cache
                    job.finished_ms = jr.finished_ms
                    job.consumed_ms = jr.consumed_ms
                    job.slices = jr.slices
                    if (spec.use_cache and jr.cache_key is not None
                            and not jr.from_cache):
                        svc.cache.put_entry(jr.cache_key, result)
                    svc.recovered_terminal += 1
                    continue
                # finished record without its sidecar (should not
                # happen: the sidecar lands first) — recompute
                jr.state = "pending"
            elif jr.state == "failed":
                job.state = FAILED
                job.error = jr.error
                job.finished_ms = jr.finished_ms
                svc.recovered_terminal += 1
                continue
            elif jr.state == "quarantined":
                job.state = QUARANTINED
                job.error = jr.error
                job.quarantine_reason = jr.quarantine_reason
                job.finished_ms = jr.finished_ms
                svc.recovered_terminal += 1
                continue
            elif jr.state == "cancelled":
                job.state = CANCELLED
                job.finished_ms = jr.finished_ms
                svc.recovered_terminal += 1
                continue
            # pending or in flight at the crash: re-queue, seeded with
            # the last durable checkpoint if one was journaled, and
            # re-pinned to the graph version it was submitted against
            try:
                job.snapshot = svc.store.snapshot(
                    spec.graph, version=jr.snapshot_version)
            except ServeError:
                # pre-v3 journal, or a version the graph history can
                # no longer prove — fall back to the latest version
                job.snapshot = svc.store.snapshot(spec.graph)
            job.resume_from = jrn.load_checkpoint(jr.job_id)
            if job.resume_from is not None:
                svc.resumed_from_checkpoint += 1
            svc.recovered_jobs += 1
            svc.queue.push(job)
        for key in mutated_keys:
            # replayed ``finished`` records may have re-installed cache
            # entries for versions nothing can reach anymore
            keep = {svc.store.get(key).version}
            keep.update(svc.store.pinned_versions(key))
            svc.cache.invalidate_graph(key, keep_versions=keep)
        svc.store.gc()   # drop retained versions no recovered job pins
        svc.journal = jrn
        return svc

    # -- internals ----------------------------------------------------------------------

    def _graph_bytes(self) -> Dict[str, int]:
        return {key: self.store.get(key).nbytes
                for key in self.store.keys()}

    def _usage(self) -> ResourceUsage:
        attached = {key for key in self.store.keys()
                    if self.store.get(key).attached}
        return ResourceUsage(
            memory_bytes=self.store.attached_bytes(),
            daemons=len(self.scheduler) * self.admission.daemons_per_job,
            running=len(self.scheduler),
            attached_graphs=attached)

    def _deadline_blown(self, job: Job) -> bool:
        deadline = job.spec.deadline_ms
        return (deadline is not None
                and self.now_ms - job.submitted_ms > deadline)

    def _fail_before_start(self, job: Job, reason: str) -> None:
        """Terminal failure of a job that never (re)dispatched."""
        job.state = FAILED
        job.error = reason
        job.finished_ms = self.now_ms
        job.release_snapshot()
        self._journal_append("failed", job_id=job.job_id, error=reason)
        self._write_trace(job)

    def _dispatch(self, job: Job) -> None:
        """Start an admitted job: cache fast path or engine stepper."""
        spec = job.spec
        job.state = RUNNING
        if job.started_ms is None:
            job.started_ms = self.now_ms
        self.store._attach(spec.graph)
        if job.snapshot is None or job.snapshot.released:
            # jobs submitted before the snapshot API (or whose handle
            # was released by an earlier terminal path) pin late, at
            # the latest version — the pre-snapshot behavior
            job.snapshot = self.store.snapshot(spec.graph)
        snap = job.snapshot
        ckey = self.cache.key(spec.graph, snap.version, spec.algorithm,
                              spec.cache_params())
        self._journal_append(
            "admitted", job_id=job.job_id,
            resume_iteration=(job.resume_from.iteration
                              if job.resume_from is not None else 0))
        if spec.use_cache:
            hit = self.cache.get(ckey)
            if hit is not None:
                self._serve_from_cache(job, hit)
                return
            # singleflight: an identical query is already computing —
            # park this job and serve it from the leader's answer
            # instead of burning daemons on a duplicate run
            leader = next((r for r in self.scheduler.running
                           if r.cache_key == ckey and r.coalesce
                           and r.job.spec.use_cache), None)
            if leader is not None:
                self._waiters.setdefault(ckey, []).append(job)
                self._waiter_parked_ms.setdefault(ckey, self.now_ms)
                self.coalesced += 1
                return
        runtime = spec.runtime
        if (self.journal is not None
                and runtime.config.checkpoint_interval == 0
                and self.journal_checkpoint_interval > 0):
            # journaling needs periodic checkpoints to have a durable
            # resume point; the override changes simulated cost only,
            # never values
            runtime = runtime.with_(
                checkpoint_interval=self.journal_checkpoint_interval)
        cluster = self.spec.build()
        middleware = GXPlug(cluster, runtime)
        engine = self.store.build_engine(spec.graph, spec.engine_cls(),
                                         cluster, middleware,
                                         version=snap.version)
        algorithm = spec.build_algorithm()
        if job.resume_from is None:
            # incremental recompute: seed from the fixpoint a mutation
            # harvested out of the cache, when the algorithm declares a
            # warm-start policy and the version delta chain is provable
            wkey = (spec.graph, spec.algorithm, ckey[3])
            seeded = self._warm.get(wkey)
            if seeded is not None:
                self._warm[wkey] = self._warm.pop(wkey)  # LRU touch
                seed_version, seed = seeded
                effects = self.store.effects_between(
                    spec.graph, seed_version, snap.version)
                if effects is not None:
                    warm = plan_warm_start(algorithm, seed.values,
                                           effects, snap.graph)
                    if warm is not None:
                        job.resume_from = warm
                        job.warm_started = True
                        self.warm_starts += 1
        stepper = engine.run_stepwise(algorithm,
                                      spec.max_iterations,
                                      resume_from=job.resume_from)
        rj = RunningJob(job, middleware, engine, stepper, cache_key=ckey)
        self.scheduler.add(rj)

    def _slice(self, rj: RunningJob) -> None:
        """Resume one job for one superstep (or rollback) quantum."""
        job = rj.job
        try:
            event = next(rj.stepper)
        except StopIteration as stop:
            self._finish(rj, stop.value)
            return
        except ReproError as exc:
            self._fail(rj, exc)
            return
        self._charge(rj, event.sim_ms)
        job.slices += 1
        self._journal_append("slice", job_id=job.job_id,
                             iteration=event.iteration)
        if event.checkpointed and self.journal is not None:
            self._journal_checkpoint(rj)
        if self._deadline_blown(job):
            # terminal, never retried: the budget is gone either way
            rj.stepper.close()
            self._fail(rj, ServeError(
                f"deadline exceeded: {self.now_ms - job.submitted_ms:.3f}"
                f" ms elapsed of {job.spec.deadline_ms:g} ms budget"),
                retryable=False)

    def _journal_checkpoint(self, rj: RunningJob) -> None:
        """Externalize the engine's newest checkpoint as the job's
        durable resume point."""
        store = getattr(rj.engine, "checkpoint_store", None)
        ckpt = store.peek() if store is not None else None
        if ckpt is None:
            return
        name = self.journal.save_checkpoint(rj.job.job_id, ckpt)
        self._journal_append("checkpointed", job_id=rj.job.job_id,
                             iteration=ckpt.iteration, file=name)

    def _check_waiter_timeouts(self) -> None:
        """Hung-leader handoff: a waiter group that has been parked
        longer than ``waiter_timeout_ms`` abandons its leader and
        recomputes (the first waiter becomes the new leader)."""
        if self.waiter_timeout_ms is None:
            return
        for ckey in list(self._waiters):
            parked = self._waiter_parked_ms.get(ckey)
            if parked is None \
                    or self.now_ms - parked <= self.waiter_timeout_ms:
                continue
            leader = next((r for r in self.scheduler.running
                           if r.cache_key == ckey and r.coalesce), None)
            if leader is not None:
                leader.coalesce = False
            self.handoffs += 1
            self._redispatch_waiters(ckey)

    def _charge(self, rj: RunningJob, ms: float) -> None:
        rj.charged_ms += ms
        rj.virtual_ms += ms
        self._charge_job(rj.job, ms)

    def _charge_job(self, job: Job, ms: float) -> None:
        job.consumed_ms += ms
        self.ledger.charge(job.spec.tenant, ms)
        self.now_ms += ms

    def _serve_from_cache(self, job: Job, hit) -> None:
        """Complete an admitted job from a cached answer."""
        self._charge_job(job, CACHE_LOOKUP_MS)
        job.slices += 1
        job.from_cache = True
        job.result = hit
        job.state = DONE
        job.finished_ms = self.now_ms
        job.release_snapshot()
        self.ledger.finish(job.spec.tenant, from_cache=True)
        self.store._detach(job.spec.graph)
        if self.journal is not None:
            # the sidecar makes the job self-contained on recovery even
            # if the shared cache entry is evicted before a crash
            name = self.journal.save_result(
                job.job_id, hit.values, hit.iterations, hit.converged,
                hit.compute_ms, hit.engine, hit.algorithm)
            self._journal_append("finished", job_id=job.job_id,
                                 from_cache=True, cache_key=None,
                                 file=name,
                                 consumed_ms=job.consumed_ms)
        self._write_trace(job)

    def _finish(self, rj: RunningJob, result) -> None:
        job = rj.job
        # charge what the stepper never yielded as an event: setup
        # (connect) before the first superstep and any trailing drain
        # after the last — job.consumed_ms must equal result.total_ms
        extra = result.total_ms - rj.charged_ms
        if extra > 0:
            self._charge(rj, extra)
        job.result = result
        job.fault_report = rj.middleware.fault_report(result)
        job.state = DONE
        job.finished_ms = self.now_ms
        job.release_snapshot()
        if job.spec.use_cache:
            self.cache.put(rj.cache_key, result)
        self.ledger.finish(job.spec.tenant)
        ewma = self._ewma_service_ms
        self._ewma_service_ms = (result.total_ms if ewma is None
                                 else 0.5 * result.total_ms + 0.5 * ewma)
        self._teardown(rj)
        if self.journal is not None:
            name = self.journal.save_result(
                job.job_id, result.values, result.iterations,
                result.converged, result.total_ms, result.engine_name,
                result.algorithm_name)
            self._journal_append(
                "finished", job_id=job.job_id, from_cache=False,
                cache_key=(list(rj.cache_key) if job.spec.use_cache
                           else None),
                file=name, consumed_ms=job.consumed_ms)
        self._write_trace(job)
        for waiter in self._waiters.pop(rj.cache_key, []):
            hit = self.cache.get(rj.cache_key)
            self._serve_from_cache(waiter, hit)
        self._waiter_parked_ms.pop(rj.cache_key, None)

    def _fail(self, rj: RunningJob, exc: ReproError, *,
              retryable: bool = True) -> None:
        """A running job's engine raised: retry, quarantine, or fail.

        With a retry budget (``spec.max_retries``), the job goes back
        to the queue seeded with its last checkpoint and an exponential
        backoff window; a job that exhausts the budget is quarantined
        as poison — recorded reason, never retried again.  Deadline
        failures are terminal regardless (``retryable=False``).
        """
        job = rj.job
        reason = f"{type(exc).__name__}: {exc}"
        job.fault_report = rj.middleware.fault_report()
        if retryable and job.retries < job.spec.max_retries:
            job.retries += 1
            self.retries += 1
            backoff = (job.spec.retry_backoff_ms
                       * (2 ** (job.retries - 1)))
            store = getattr(rj.engine, "checkpoint_store", None)
            ckpt = store.peek() if store is not None else None
            if ckpt is not None:
                job.resume_from = ckpt
                if self.journal is not None:
                    name = self.journal.save_checkpoint(job.job_id, ckpt)
                    self._journal_append(
                        "checkpointed", job_id=job.job_id,
                        iteration=ckpt.iteration, file=name)
            job.state = PENDING
            job.not_before_ms = self.now_ms + backoff
            self._journal_append(
                "retry", job_id=job.job_id, attempt=job.retries,
                backoff_ms=backoff, error=reason,
                resume_iteration=(ckpt.iteration if ckpt is not None
                                  else 0))
            self._teardown(rj)
            self.queue.push(job)
            # coalesced waiters stay parked: the retry is still the
            # one in-flight computation of their query
            return
        if retryable and job.spec.max_retries > 0:
            job.state = QUARANTINED
            job.quarantine_reason = (
                f"poison: failed {job.retries + 1} times "
                f"(budget {job.spec.max_retries}); last error: {reason}")
            job.error = reason
            self._journal_append("quarantined", job_id=job.job_id,
                                 reason=job.quarantine_reason,
                                 error=reason)
        else:
            job.state = FAILED
            job.error = reason
            self._journal_append("failed", job_id=job.job_id,
                                 error=reason)
        job.finished_ms = self.now_ms
        job.release_snapshot()
        self._teardown(rj)
        self._write_trace(job)
        self._redispatch_waiters(rj.cache_key)

    def _redispatch_waiters(self, cache_key) -> None:
        """The leader died; its coalesced waiters compute themselves.

        The first re-dispatched waiter becomes the new leader, the
        rest coalesce behind it again.
        """
        waiters = self._waiters.pop(cache_key, [])
        self._waiter_parked_ms.pop(cache_key, None)
        for waiter in waiters:
            self.store._detach(waiter.spec.graph)
            self._dispatch(waiter)

    def _teardown(self, rj: RunningJob) -> None:
        self.scheduler.remove(rj)
        rj.middleware.disconnect_all()
        self.store._detach(rj.job.spec.graph)

    def _write_trace(self, job: Job) -> None:
        if self.trace_dir is None:
            return
        os.makedirs(self.trace_dir, exist_ok=True)
        path = os.path.join(self.trace_dir, f"job-{job.job_id}.json")
        if isinstance(job.result, RunResult):
            write_json(job.result, path,
                       cluster_spec=self.spec.to_dict(),
                       job=job.describe())
        else:
            doc = {"job": job.describe(),
                   "cluster_spec": self.spec.to_dict()}
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=2)

    # -- observability ------------------------------------------------------------------

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[Job]:
        out = [j for j in self._jobs.values()
               if (tenant is None or j.spec.tenant == tenant)
               and (state is None or j.state == state)]
        return sorted(out, key=lambda j: j.job_id)

    def job(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id}") from None

    def latency_percentiles(self, tenant: Optional[str] = None
                            ) -> Dict[str, float]:
        """p50/p99 submit-to-finish latency over completed jobs."""
        lats = [j.latency_ms for j in self.jobs(tenant, DONE)]
        if not lats:
            return {"p50": 0.0, "p99": 0.0, "count": 0}
        arr = np.asarray(lats)
        return {"p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99)),
                "count": len(lats)}

    def recovery_stats(self) -> Dict[str, int]:
        """Recovery counters for ``serve --json`` and the wire's
        ``stats`` frame: jobs restored by the last :meth:`recover`
        (terminal + re-queued), in-flight jobs re-queued, checkpoint
        resumes, and singleflight hung-leader handoffs."""
        return {
            "recovered": self.recovered_terminal + self.recovered_jobs,
            "requeued": self.recovered_jobs,
            "resumed": self.resumed_from_checkpoint,
            "handoffs": self.handoffs,
        }

    def metrics(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for j in self._jobs.values():
            by_state[j.state] = by_state.get(j.state, 0) + 1
        return {
            "now_ms": round(self.now_ms, 6),
            "jobs": by_state,
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "coalesced": self.coalesced,
            "handoffs": self.handoffs,
            "retries": self.retries,
            "draining": self.draining,
            "deduped_submits": self.deduped_submits,
            "mutations": self.mutations_applied,
            "deduped_mutations": self.deduped_mutations,
            "skipped_mutations": self.skipped_mutations,
            "warm_starts": self.warm_starts,
            "recovered_jobs": self.recovered_jobs,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            # the recovery story in one block: jobs restored from the
            # journal (terminal + re-queued), re-queued in-flight jobs,
            # checkpoint resumes, and singleflight hung-leader handoffs
            "recovery": self.recovery_stats(),
            "store": self.store.stats(),
            "tenants": self.ledger.snapshot(),
            "latency": self.latency_percentiles(),
        }
