"""The serving facade: a resident GX-Plug deployment answering jobs.

``deploy()`` is a one-shot: build a cluster, plug the middleware in,
run one algorithm, tear it down.  :class:`GraphService` is the
long-lived counterpart — one Python process holding graphs resident,
admitting queued tenant jobs under resource budgets, time-slicing the
daemon pool across them at superstep granularity, and memoizing
answers::

    svc = GraphService(ClusterSpec(nodes=2, gpus_per_node=1))
    svc.load_graph("wiki", dataset="wrn")
    job = svc.submit(JobSpec(graph="wiki", algorithm="pagerank",
                             tenant="alice"))
    svc.run()
    job.values, job.latency_ms, svc.cache.stats()

Everything stays deterministic: the service clock advances by exactly
the simulated cost of each slice, so latencies, queue waits and fair
shares are reproducible run over run — and a cache hit returns values
byte-identical to the recompute it saved.

Jobs are isolated by construction.  Each admitted job gets a private
cluster build (from the shared :class:`ClusterSpec`) and a private
middleware; only the immutable graph and its memoized partitions are
shared.  One tenant's injected crash burns that tenant's simulated
time through its own rollback path; everyone else's values are
untouched.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

import numpy as np

from ..bench.trace import write_json
from ..core.config import ClusterSpec
from ..core.middleware import GXPlug
from ..engines.base import RunResult
from ..errors import ReproError, ServeError
from .cache import CACHE_LOOKUP_MS, ResultCache
from .job import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    Job,
    JobSpec,
)
from .queue import AdmissionControl, JobQueue, ResourceUsage
from .scheduler import FairShareLedger, FairShareScheduler, RunningJob
from .store import GraphStore


class GraphService:
    """Multi-tenant serving over one simulated cluster description."""

    def __init__(self, spec: Optional[ClusterSpec] = None, *,
                 memory_budget_mb: Optional[float] = None,
                 daemon_budget: Optional[int] = None,
                 max_running: Optional[int] = 4,
                 cache_entries: int = 64,
                 trace_dir: Optional[str] = None) -> None:
        self.spec = spec if spec is not None else ClusterSpec()
        self.store = GraphStore()
        self.cache = ResultCache(cache_entries)
        daemons_per_job = self.spec.nodes * (
            self.spec.gpus_per_node + self.spec.cpus_per_node)
        budget_bytes = (None if memory_budget_mb is None
                        else int(memory_budget_mb * 1024 * 1024))
        self.admission = AdmissionControl(
            memory_budget_bytes=budget_bytes,
            daemon_budget=daemon_budget,
            max_running=max_running,
            daemons_per_job=daemons_per_job)
        self.queue = JobQueue(self.admission)
        self.scheduler = FairShareScheduler()
        self.ledger = FairShareLedger()
        self.trace_dir = trace_dir
        #: the service clock, simulated ms since service start
        self.now_ms = 0.0
        self._jobs: Dict[int, Job] = {}
        self._next_job_id = 1
        # request coalescing: cache key -> jobs waiting on the one
        # in-flight computation of that exact query
        self._waiters: Dict[Any, List[Job]] = {}
        self.coalesced = 0

    # -- graphs -------------------------------------------------------------------------

    def load_graph(self, key: str, graph=None, *,
                   dataset: Optional[str] = None):
        """Load or reload a graph; reloads invalidate cached answers."""
        entry = self.store.load(key, graph, dataset=dataset)
        if entry.version > 1:
            self.cache.invalidate_graph(key)
        return entry

    # -- submission ---------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue a job; raises if it could never run.

        Returns the live :class:`Job` record — the caller keeps it and
        reads result/latency off it after :meth:`run`.
        """
        if spec.graph not in self.store:
            raise ServeError(
                f"unknown graph {spec.graph!r}; loaded: "
                f"{self.store.keys()}")
        job = Job(self._next_job_id, spec, submitted_ms=self.now_ms)
        self._next_job_id += 1
        self.admission.check_feasible(job, self.store.get(spec.graph).nbytes)
        self._jobs[job.job_id] = job
        self.queue.push(job)
        return job

    def cancel(self, job_id: int) -> bool:
        """Cancel a pending or running job; True if anything changed."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id}")
        if job.finished:
            return False
        if job.state == PENDING:
            pulled = self.queue.cancel(job_id)
            if pulled is not None:
                pulled.finished_ms = self.now_ms
                return True
            return False
        rj = self.scheduler.find(job_id)
        if rj is not None:
            rj.stepper.close()
            job.state = CANCELLED
            job.finished_ms = self.now_ms
            self._teardown(rj)
            self._redispatch_waiters(rj.cache_key)
            return True
        # a coalesced waiter: parked behind an in-flight identical query
        for ckey, waiters in self._waiters.items():
            if job in waiters:
                waiters.remove(job)
                if not waiters:
                    del self._waiters[ckey]
                job.state = CANCELLED
                job.finished_ms = self.now_ms
                self.store.detach(job.spec.graph)
                return True
        return False  # pragma: no cover - state machine guard

    # -- the scheduling loop ------------------------------------------------------------

    def step(self) -> bool:
        """One scheduling round: admit what fits, run one slice.

        Returns False when the service is idle (nothing pending,
        nothing running).
        """
        while True:
            job = self.queue.pop_admissible(self._usage(),
                                            self._graph_bytes())
            if job is None:
                break
            self._dispatch(job)
        rj = self.scheduler.pick()
        if rj is not None:
            self._slice(rj)
            return True
        if len(self.queue):  # pragma: no cover - feasibility guard
            # check_feasible() guarantees any job can run on an idle
            # service, so an empty running set always admits something
            raise ServeError(
                f"admission deadlock: {len(self.queue)} pending jobs, "
                f"none admissible ({self.queue.last_defer_reason})")
        return False

    def run(self) -> List[Job]:
        """Drive the service until idle; returns all finished jobs."""
        while self.step():
            pass
        return [j for j in self._jobs.values() if j.finished]

    # -- internals ----------------------------------------------------------------------

    def _graph_bytes(self) -> Dict[str, int]:
        return {key: self.store.get(key).nbytes
                for key in self.store.keys()}

    def _usage(self) -> ResourceUsage:
        attached = {key for key in self.store.keys()
                    if self.store.get(key).attached}
        return ResourceUsage(
            memory_bytes=self.store.attached_bytes(),
            daemons=len(self.scheduler) * self.admission.daemons_per_job,
            running=len(self.scheduler),
            attached_graphs=attached)

    def _dispatch(self, job: Job) -> None:
        """Start an admitted job: cache fast path or engine stepper."""
        spec = job.spec
        job.state = RUNNING
        if job.started_ms is None:
            job.started_ms = self.now_ms
        entry = self.store.attach(spec.graph)
        ckey = self.cache.key(spec.graph, entry.version, spec.algorithm,
                              spec.cache_params())
        if spec.use_cache:
            hit = self.cache.get(ckey)
            if hit is not None:
                self._serve_from_cache(job, hit)
                return
            # singleflight: an identical query is already computing —
            # park this job and serve it from the leader's answer
            # instead of burning daemons on a duplicate run
            leader = next((r for r in self.scheduler.running
                           if r.cache_key == ckey
                           and r.job.spec.use_cache), None)
            if leader is not None:
                self._waiters.setdefault(ckey, []).append(job)
                self.coalesced += 1
                return
        cluster = self.spec.build()
        middleware = GXPlug(cluster, spec.runtime)
        engine = self.store.build_engine(spec.graph, spec.engine_cls(),
                                         cluster, middleware)
        stepper = engine.run_stepwise(spec.build_algorithm(),
                                      spec.max_iterations)
        rj = RunningJob(job, middleware, engine, stepper, cache_key=ckey)
        self.scheduler.add(rj)

    def _slice(self, rj: RunningJob) -> None:
        """Resume one job for one superstep (or rollback) quantum."""
        job = rj.job
        try:
            event = next(rj.stepper)
        except StopIteration as stop:
            self._finish(rj, stop.value)
            return
        except ReproError as exc:
            self._fail(rj, exc)
            return
        self._charge(rj, event.sim_ms)
        job.slices += 1

    def _charge(self, rj: RunningJob, ms: float) -> None:
        rj.charged_ms += ms
        rj.virtual_ms += ms
        self._charge_job(rj.job, ms)

    def _charge_job(self, job: Job, ms: float) -> None:
        job.consumed_ms += ms
        self.ledger.charge(job.spec.tenant, ms)
        self.now_ms += ms

    def _serve_from_cache(self, job: Job, hit) -> None:
        """Complete an admitted job from a cached answer."""
        self._charge_job(job, CACHE_LOOKUP_MS)
        job.slices += 1
        job.from_cache = True
        job.result = hit
        job.state = DONE
        job.finished_ms = self.now_ms
        self.ledger.finish(job.spec.tenant, from_cache=True)
        self.store.detach(job.spec.graph)
        self._write_trace(job)

    def _finish(self, rj: RunningJob, result) -> None:
        job = rj.job
        # charge what the stepper never yielded as an event: setup
        # (connect) before the first superstep and any trailing drain
        # after the last — job.consumed_ms must equal result.total_ms
        extra = result.total_ms - rj.charged_ms
        if extra > 0:
            self._charge(rj, extra)
        job.result = result
        job.fault_report = rj.middleware.fault_report(result)
        job.state = DONE
        job.finished_ms = self.now_ms
        if job.spec.use_cache:
            self.cache.put(rj.cache_key, result)
        self.ledger.finish(job.spec.tenant)
        self._teardown(rj)
        self._write_trace(job)
        for waiter in self._waiters.pop(rj.cache_key, []):
            hit = self.cache.get(rj.cache_key)
            self._serve_from_cache(waiter, hit)

    def _fail(self, rj: RunningJob, exc: ReproError) -> None:
        job = rj.job
        job.state = FAILED
        job.error = f"{type(exc).__name__}: {exc}"
        job.finished_ms = self.now_ms
        job.fault_report = rj.middleware.fault_report()
        self._teardown(rj)
        self._write_trace(job)
        self._redispatch_waiters(rj.cache_key)

    def _redispatch_waiters(self, cache_key) -> None:
        """The leader died; its coalesced waiters compute themselves.

        The first re-dispatched waiter becomes the new leader, the
        rest coalesce behind it again.
        """
        for waiter in self._waiters.pop(cache_key, []):
            self.store.detach(waiter.spec.graph)
            self._dispatch(waiter)

    def _teardown(self, rj: RunningJob) -> None:
        self.scheduler.remove(rj)
        rj.middleware.disconnect_all()
        self.store.detach(rj.job.spec.graph)

    def _write_trace(self, job: Job) -> None:
        if self.trace_dir is None:
            return
        os.makedirs(self.trace_dir, exist_ok=True)
        path = os.path.join(self.trace_dir, f"job-{job.job_id}.json")
        if isinstance(job.result, RunResult):
            write_json(job.result, path,
                       cluster_spec=self.spec.to_dict(),
                       job=job.describe())
        else:
            doc = {"job": job.describe(),
                   "cluster_spec": self.spec.to_dict()}
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=2)

    # -- observability ------------------------------------------------------------------

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[Job]:
        out = [j for j in self._jobs.values()
               if (tenant is None or j.spec.tenant == tenant)
               and (state is None or j.state == state)]
        return sorted(out, key=lambda j: j.job_id)

    def job(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id}") from None

    def latency_percentiles(self, tenant: Optional[str] = None
                            ) -> Dict[str, float]:
        """p50/p99 submit-to-finish latency over completed jobs."""
        lats = [j.latency_ms for j in self.jobs(tenant, DONE)]
        if not lats:
            return {"p50": 0.0, "p99": 0.0, "count": 0}
        arr = np.asarray(lats)
        return {"p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99)),
                "count": len(lats)}

    def metrics(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for j in self._jobs.values():
            by_state[j.state] = by_state.get(j.state, 0) + 1
        return {
            "now_ms": round(self.now_ms, 6),
            "jobs": by_state,
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "coalesced": self.coalesced,
            "store": self.store.stats(),
            "tenants": self.ledger.snapshot(),
            "latency": self.latency_percentiles(),
        }
