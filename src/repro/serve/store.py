"""Shared graph store: load once, serve many, mutate without draining.

In a one-shot ``deploy()`` workflow every run reloads and repartitions
its graph — fine for a benchmark, ruinous for a service where dozens
of tenant jobs query the same few graphs.  The store keeps each graph
resident under a caller-chosen key and hands out **versioned snapshot
handles**:

* **snapshots** — :meth:`GraphStore.snapshot` returns a frozen,
  version-pinned :class:`GraphSnapshot` a job holds for its lifetime.
  Mutations and replacements never touch a pinned version: in-flight
  jobs keep computing against the graph they started on (snapshot
  isolation) while new submits see the latest version.
* **mutations** — :meth:`GraphStore.mutate` applies a
  :class:`~repro.graph.mutations.MutationBatch` copy-on-write: the key
  moves to ``version + 1``, the pre-mutation graph is retained only
  while snapshots pin it, and the batch is recorded in a
  :class:`~repro.graph.mutations.MutationLog` (idempotent by batch id,
  so a replayed batch applies exactly once).
* **partition deltas** — partitioning is the expensive prefix of every
  engine build.  A mutation carries every memoized partition of the
  pre-mutation version forward by reusing its master assignment (new
  vertices joining round-robin) and re-slicing edges in one vectorized
  pass — no full repartition, counted in ``partition_deltas``.
* **partition memoization** — as before, the
  :class:`~repro.graph.partition.PartitionedGraph` is cached per
  ``(key, version, engine, nodes)`` and rebound into fresh engine
  instances; partitions are shared read-only.

``attach``/``detach`` and reload-via-:meth:`load` survive as
deprecation shims that warn and route through the snapshot surface
bit-identically; running-job accounting (admission budgets) uses the
internal ``_attach``/``_detach`` counters underneath.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..cluster import Cluster
from ..errors import ServeError
from ..graph import Graph, load_dataset
from ..graph.mutations import (MutationBatch, MutationLog, MutationRecord)
from ..graph.partition import PartitionedGraph, _build_from_edge_owners


@dataclass
class StoredGraph:
    """One resident graph: the latest version plus serving bookkeeping."""

    key: str
    graph: Graph
    version: int = 1
    #: jobs currently attached (running against this graph)
    attached: int = 0
    #: lifetime attach count, across all versions
    total_attaches: int = 0

    @property
    def nbytes(self) -> int:
        """Resident bytes of the CSR arrays (the admission currency)."""
        g = self.graph
        return int(g.indptr.nbytes + g.src.nbytes + g.dst.nbytes
                   + g.weights.nbytes)


class GraphSnapshot:
    """A frozen, version-pinned view of a stored graph.

    The handle owns one pin on ``(key, version)``: the store retains
    that version's graph (and memoized partitions) until every pin is
    released.  Use as a context manager or call :meth:`release`
    explicitly; release is idempotent.
    """

    __slots__ = ("key", "version", "graph", "_store", "_released")

    def __init__(self, store: "GraphStore", key: str, version: int,
                 graph: Graph) -> None:
        self._store = store
        self.key = key
        self.version = version
        self.graph = graph
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._store._release_pin(self.key, self.version)

    def build_engine(self, engine_cls, cluster: Cluster, middleware=None):
        """Engine over this pinned version (memoized partitions)."""
        if self._released:
            raise ServeError(
                f"snapshot of {self.key!r} v{self.version} was released")
        return self._store.build_engine(self.key, engine_cls, cluster,
                                        middleware, version=self.version)

    def __enter__(self) -> "GraphSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "released" if self._released else "pinned"
        return (f"GraphSnapshot({self.key!r}, v{self.version}, "
                f"{self.graph.num_vertices} vertices, {state})")


class GraphStore:
    """Registry of loaded, versioned graphs + memoized partitions."""

    def __init__(self) -> None:
        self._graphs: Dict[str, StoredGraph] = {}
        # (key, version, engine name, num_nodes) -> PartitionedGraph
        self._partitions: Dict[Tuple[str, int, str, int],
                               PartitionedGraph] = {}
        #: superseded versions still reachable: (key, version) -> Graph
        self._retained: Dict[Tuple[str, int], Graph] = {}
        #: live snapshot pins per (key, version)
        self._pins: Dict[Tuple[str, int], int] = {}
        #: legacy attach() shims hold their snapshot here
        self._legacy_snaps: Dict[str, list] = {}
        self.log = MutationLog()
        self.partition_hits = 0
        self.partition_builds = 0
        self.partition_deltas = 0
        self.mutations = 0
        self.snapshots_taken = 0

    # -- loading ------------------------------------------------------------------------

    def load(self, key: str, graph: Optional[Graph] = None, *,
             dataset: Optional[str] = None) -> StoredGraph:
        """Load (or reload) a graph under ``key``.

        Pass exactly one of ``graph`` (an in-memory :class:`Graph`) or
        ``dataset`` (a :func:`~repro.graph.load_dataset` name).

        Loading a *new* key is the normal path.  Loading an *existing*
        key is the deprecated reload shim: it warns, keeps the legacy
        refusal while jobs are attached, and then routes through
        :meth:`replace` (same version bump, same partition drop).
        """
        if (graph is None) == (dataset is None):
            raise ServeError(
                "pass exactly one of graph= or dataset= to load()")
        if graph is None:
            graph = load_dataset(dataset)
        entry = self._graphs.get(key)
        if entry is None:
            entry = StoredGraph(key, graph)
            self._graphs[key] = entry
            return entry
        if entry.attached:
            raise ServeError(
                f"graph {key!r} has {entry.attached} attached job(s); "
                f"drain them before reloading")
        warnings.warn(
            "reloading via GraphStore.load() is deprecated; use "
            "store.replace(key, graph) (wholesale) or "
            "store.mutate(key, batch) (incremental) — in-flight jobs "
            "keep their pinned GraphSnapshot instead of blocking the "
            "reload", DeprecationWarning, stacklevel=2)
        return self.replace(key, graph)

    def replace(self, key: str, graph: Graph) -> StoredGraph:
        """Wholesale-swap ``key`` to ``graph`` as a new version.

        The mutation chain for the key is severed (a replace is not a
        delta, so warm starts across it are impossible); pinned old
        versions stay readable through their snapshots, unpinned ones
        are dropped along with their partitions.
        """
        entry = self.get(key)
        old_version = entry.version
        if self._pins.get((key, old_version), 0) > 0:
            self._retained[(key, old_version)] = entry.graph
        entry.graph = graph
        entry.version += 1
        self.log.drop(key)
        self._drop_unpinned_partitions(key)
        return entry

    def unload(self, key: str) -> None:
        """Evict a graph (and its partitions); refused while in use."""
        entry = self.get(key)
        if entry.attached:
            raise ServeError(
                f"graph {key!r} has {entry.attached} attached job(s); "
                f"drain them before unloading")
        pinned = sum(n for (k, _v), n in self._pins.items() if k == key)
        if pinned:
            raise ServeError(
                f"graph {key!r} has {pinned} pinned snapshot(s); "
                f"release them before unloading")
        del self._graphs[key]
        self._partitions = {k: v for k, v in self._partitions.items()
                            if k[0] != key}
        self._retained = {k: v for k, v in self._retained.items()
                          if k[0] != key}
        self.log.drop(key)

    # -- mutation -----------------------------------------------------------------------

    def mutate(self, key: str,
               batch: Union[MutationBatch, Mapping[str, Any]],
               batch_id: Optional[str] = None, *,
               retain: bool = False) -> MutationRecord:
        """Apply a mutation batch copy-on-write; returns the record.

        Idempotent by ``batch_id`` (defaulting to the batch's content
        fingerprint): re-applying an already-applied id returns the
        original record without touching the graph — the exactly-once
        guarantee journal replay and wire retries lean on.  With
        ``retain=True`` the pre-mutation graph is kept even when
        nothing pins it yet (journal recovery pins jobs *after*
        replaying mutations).
        """
        entry = self.get(key)
        if isinstance(batch, Mapping):
            batch = MutationBatch.from_doc(batch)
        if batch.is_empty:
            raise ServeError(f"empty mutation batch for graph {key!r}")
        bid = batch_id or batch.fingerprint()
        prior = self.log.applied(key, bid)
        if prior is not None:
            return prior
        new_graph, effect = batch.apply(entry.graph)
        old_version, old_graph = entry.version, entry.graph
        record = MutationRecord(batch_id=bid, from_version=old_version,
                                to_version=old_version + 1, batch=batch,
                                effect=effect)
        if retain or self._pins.get((key, old_version), 0) > 0:
            self._retained[(key, old_version)] = old_graph
        entry.graph = new_graph
        entry.version += 1
        self.log.record(key, record)
        self.mutations += 1

        # partition delta: carry the old version's memoized partitions
        # forward — surviving edges keep their previous placement (so
        # per-node float summation order, hence values, are preserved
        # bit-for-bit), added edges land on their source's master, new
        # vertices join round-robin.  One vectorized re-slice, no full
        # repartition.
        old_pkeys = [k for k in self._partitions
                     if k[0] == key and k[1] == old_version]
        for pkey in old_pkeys:
            pg = self._partitions[pkey]
            num_nodes = pkey[3]
            grown = np.arange(old_graph.num_vertices,
                              new_graph.num_vertices,
                              dtype=np.int64) % num_nodes
            master_of = np.concatenate([pg.master_of, grown])
            old_owner = np.empty(old_graph.num_edges, dtype=np.int64)
            for part in pg.parts:
                old_owner[part.edge_ids] = part.node_id
            origin = effect.edge_origin
            if old_graph.num_edges:
                owner = np.where(origin >= 0,
                                 old_owner[np.clip(origin, 0, None)],
                                 master_of[new_graph.src])
            else:
                # np.where evaluates both branches eagerly: with a
                # zero-edge old graph even the never-selected index
                # into the empty old_owner would raise — every edge in
                # the new graph is freshly added, so place them all on
                # their source's master
                owner = master_of[new_graph.src]
            self._partitions[(key, entry.version, pkey[2], num_nodes)] = \
                _build_from_edge_owners(new_graph, master_of, owner,
                                        pg.strategy,
                                        num_partitions=len(pg.parts))
            self.partition_deltas += 1
            if (key, old_version) not in self._retained:
                del self._partitions[pkey]
        return record

    def effects_between(self, key: str, from_version: int,
                        to_version: int):
        """Delta chain between two versions (``None`` if unprovable)."""
        return self.log.effects_between(key, from_version, to_version)

    # -- snapshots ----------------------------------------------------------------------

    def snapshot(self, key: str,
                 version: Optional[int] = None) -> GraphSnapshot:
        """Pin ``(key, version)`` (default: latest) and return a handle."""
        entry = self.get(key)
        v = entry.version if version is None else int(version)
        graph = self._version_graph(key, v)
        self._pins[(key, v)] = self._pins.get((key, v), 0) + 1
        self.snapshots_taken += 1
        return GraphSnapshot(self, key, v, graph)

    def pinned_versions(self, key: str):
        """Versions of ``key`` currently pinned by live snapshots."""
        return {v for (k, v), n in self._pins.items() if k == key and n}

    def _version_graph(self, key: str, version: int) -> Graph:
        entry = self.get(key)
        if version == entry.version:
            return entry.graph
        graph = self._retained.get((key, version))
        if graph is None:
            raise ServeError(
                f"graph {key!r} version {version} is no longer "
                f"retained (latest is v{entry.version})")
        return graph

    def _release_pin(self, key: str, version: int) -> None:
        count = self._pins.get((key, version), 0)
        if count <= 1:
            self._pins.pop((key, version), None)
        else:
            self._pins[(key, version)] = count - 1
        self._maybe_gc(key, version)

    def _maybe_gc(self, key: str, version: int) -> None:
        """Drop a superseded version once nothing pins it."""
        if self._pins.get((key, version)):
            return
        entry = self._graphs.get(key)
        if entry is not None and entry.version == version:
            return  # the latest version always stays
        self._retained.pop((key, version), None)
        for pkey in [k for k in self._partitions
                     if k[0] == key and k[1] == version]:
            del self._partitions[pkey]

    def gc(self) -> None:
        """Drop every unpinned superseded version (post-recovery sweep)."""
        for key, version in list(self._retained):
            self._maybe_gc(key, version)

    def _drop_unpinned_partitions(self, key: str) -> None:
        self._partitions = {
            k: v for k, v in self._partitions.items()
            if k[0] != key or (key, k[1]) in self._retained}

    # -- lookup -------------------------------------------------------------------------

    def get(self, key: str) -> StoredGraph:
        entry = self._graphs.get(key)
        if entry is None:
            raise ServeError(
                f"unknown graph {key!r}; loaded: {sorted(self._graphs)}")
        return entry

    def keys(self):
        return sorted(self._graphs)

    def __contains__(self, key: str) -> bool:
        return key in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._graphs.values())

    def retained_bytes(self) -> int:
        """Bytes held by superseded-but-pinned versions."""
        return sum(
            int(g.indptr.nbytes + g.src.nbytes + g.dst.nbytes
                + g.weights.nbytes)
            for g in self._retained.values())

    def attached_bytes(self) -> int:
        """Bytes of graphs with at least one attached job.

        Shared-once accounting: ten jobs on one graph cost its bytes
        once — that is the whole point of the shared store.
        """
        return sum(e.nbytes for e in self._graphs.values() if e.attached)

    # -- attach lifecycle ---------------------------------------------------------------

    def _attach(self, key: str) -> StoredGraph:
        """Running-job accounting (admission budgets); not a pin."""
        entry = self.get(key)
        entry.attached += 1
        entry.total_attaches += 1
        return entry

    def _detach(self, key: str) -> None:
        entry = self.get(key)
        if entry.attached <= 0:
            raise ServeError(f"graph {key!r} is not attached")
        entry.attached -= 1

    def attach(self, key: str) -> StoredGraph:
        """Deprecated: hold a :meth:`snapshot` instead.

        The shim routes through the snapshot surface (so the current
        version stays pinned exactly as a job's snapshot would pin it)
        and keeps the attach counters bit-identical to the old
        behavior.
        """
        warnings.warn(
            "GraphStore.attach() is deprecated; hold a "
            "store.snapshot(key) handle instead (release() when done)",
            DeprecationWarning, stacklevel=2)
        snap = self.snapshot(key)
        self._legacy_snaps.setdefault(key, []).append(snap)
        return self._attach(key)

    def detach(self, key: str) -> None:
        """Deprecated counterpart of :meth:`attach`.

        A legacy detach is anonymous — the caller never identifies
        *which* attach it undoes — so the shim releases the oldest
        outstanding legacy snapshot (FIFO: the longest-held, hence
        oldest-versioned, pin goes first).  Interleaving legacy
        attach/detach with :meth:`mutate` therefore has approximate
        pin accounting across versions; hold a real
        :class:`GraphSnapshot` and ``release()`` it for exact pinning.
        """
        warnings.warn(
            "GraphStore.detach() is deprecated; release() the "
            "GraphSnapshot you hold instead",
            DeprecationWarning, stacklevel=2)
        self._detach(key)
        snaps = self._legacy_snaps.get(key)
        if snaps:
            snaps.pop(0).release()

    # -- engine construction ------------------------------------------------------------

    def build_engine(self, key: str, engine_cls, cluster: Cluster,
                     middleware=None, *, version: Optional[int] = None):
        """Build an engine over the stored graph, reusing partitions.

        On the first build for ``(key, version, engine, nodes)`` the
        engine's own :meth:`build` partitions the graph and the result
        is memoized; later builds construct a fresh engine instance
        around the memoized partition — per-job engine state, shared
        immutable partition.  ``version`` defaults to the latest;
        version-pinned jobs pass their snapshot's version.
        """
        entry = self.get(key)
        v = entry.version if version is None else int(version)
        graph = self._version_graph(key, v)
        pkey = (key, v, engine_cls.name, cluster.num_nodes)
        pgraph = self._partitions.get(pkey)
        if pgraph is not None:
            self.partition_hits += 1
            return engine_cls(pgraph, cluster, middleware)
        engine = engine_cls.build(graph, cluster, middleware)
        self._partitions[pkey] = engine.pgraph
        self.partition_builds += 1
        return engine

    def stats(self) -> Dict[str, Any]:
        return {
            "graphs": {k: {"version": e.version, "attached": e.attached,
                           "bytes": e.nbytes,
                           "total_attaches": e.total_attaches}
                       for k, e in sorted(self._graphs.items())},
            "total_bytes": self.total_bytes(),
            "retained_bytes": self.retained_bytes(),
            "retained_versions": len(self._retained),
            "pinned_snapshots": sum(self._pins.values()),
            "mutations": self.mutations,
            "snapshots": self.snapshots_taken,
            "partitions": len(self._partitions),
            "partition_hits": self.partition_hits,
            "partition_builds": self.partition_builds,
            "partition_deltas": self.partition_deltas,
        }
