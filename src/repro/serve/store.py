"""Shared graph store: load once, serve many.

In a one-shot ``deploy()`` workflow every run reloads and repartitions
its graph — fine for a benchmark, ruinous for a service where dozens
of tenant jobs query the same few graphs.  The store keeps each graph
resident under a caller-chosen key and lets jobs *attach* by key:

* **versioning** — reloading a key bumps its version; the result cache
  keys on ``(key, version, ...)`` so answers computed against stale
  data can never be served after a reload;
* **attach counting** — a graph with attached (running) jobs refuses
  to reload under them; the service drains jobs first;
* **partition memoization** — partitioning is the expensive prefix of
  every engine build, and it depends only on the graph, the engine's
  strategy and the node count.  The store caches the
  :class:`~repro.graph.partition.PartitionedGraph` per
  ``(key, version, engine, nodes)`` and rebinds it into fresh engine
  instances.  Partitions are shared read-only: engines never mutate
  their bound partition (mid-run rebalancing builds a *new* one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..cluster import Cluster
from ..errors import ServeError
from ..graph import Graph, load_dataset
from ..graph.partition import PartitionedGraph


@dataclass
class StoredGraph:
    """One resident graph: the data plus serving bookkeeping."""

    key: str
    graph: Graph
    version: int = 1
    #: jobs currently attached (running against this graph)
    attached: int = 0
    #: lifetime attach count, across all versions
    total_attaches: int = 0

    @property
    def nbytes(self) -> int:
        """Resident bytes of the CSR arrays (the admission currency)."""
        g = self.graph
        return int(g.indptr.nbytes + g.src.nbytes + g.dst.nbytes
                   + g.weights.nbytes)


class GraphStore:
    """Registry of loaded, versioned graphs + memoized partitions."""

    def __init__(self) -> None:
        self._graphs: Dict[str, StoredGraph] = {}
        # (key, version, engine name, num_nodes) -> PartitionedGraph
        self._partitions: Dict[Tuple[str, int, str, int],
                               PartitionedGraph] = {}
        self.partition_hits = 0
        self.partition_builds = 0

    # -- loading ------------------------------------------------------------------------

    def load(self, key: str, graph: Optional[Graph] = None, *,
             dataset: Optional[str] = None) -> StoredGraph:
        """Load (or reload) a graph under ``key``.

        Pass exactly one of ``graph`` (an in-memory :class:`Graph`) or
        ``dataset`` (a :func:`~repro.graph.load_dataset` name).
        Reloading an existing key bumps its version and drops the
        key's memoized partitions; it is refused while jobs are
        attached.
        """
        if (graph is None) == (dataset is None):
            raise ServeError(
                "pass exactly one of graph= or dataset= to load()")
        if graph is None:
            graph = load_dataset(dataset)
        entry = self._graphs.get(key)
        if entry is None:
            entry = StoredGraph(key, graph)
            self._graphs[key] = entry
            return entry
        if entry.attached:
            raise ServeError(
                f"graph {key!r} has {entry.attached} attached job(s); "
                f"drain them before reloading")
        entry.graph = graph
        entry.version += 1
        self._partitions = {k: v for k, v in self._partitions.items()
                            if k[0] != key}
        return entry

    def unload(self, key: str) -> None:
        """Evict a graph (and its partitions); refused while attached."""
        entry = self.get(key)
        if entry.attached:
            raise ServeError(
                f"graph {key!r} has {entry.attached} attached job(s); "
                f"drain them before unloading")
        del self._graphs[key]
        self._partitions = {k: v for k, v in self._partitions.items()
                            if k[0] != key}

    # -- lookup -------------------------------------------------------------------------

    def get(self, key: str) -> StoredGraph:
        entry = self._graphs.get(key)
        if entry is None:
            raise ServeError(
                f"unknown graph {key!r}; loaded: {sorted(self._graphs)}")
        return entry

    def keys(self):
        return sorted(self._graphs)

    def __contains__(self, key: str) -> bool:
        return key in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._graphs.values())

    def attached_bytes(self) -> int:
        """Bytes of graphs with at least one attached job.

        Shared-once accounting: ten jobs on one graph cost its bytes
        once — that is the whole point of the shared store.
        """
        return sum(e.nbytes for e in self._graphs.values() if e.attached)

    # -- attach lifecycle ---------------------------------------------------------------

    def attach(self, key: str) -> StoredGraph:
        entry = self.get(key)
        entry.attached += 1
        entry.total_attaches += 1
        return entry

    def detach(self, key: str) -> None:
        entry = self.get(key)
        if entry.attached <= 0:
            raise ServeError(f"graph {key!r} is not attached")
        entry.attached -= 1

    # -- engine construction ------------------------------------------------------------

    def build_engine(self, key: str, engine_cls, cluster: Cluster,
                     middleware=None):
        """Build an engine over the stored graph, reusing partitions.

        On the first build for ``(key, version, engine, nodes)`` the
        engine's own :meth:`build` partitions the graph and the result
        is memoized; later builds construct a fresh engine instance
        around the memoized partition — per-job engine state, shared
        immutable partition.
        """
        entry = self.get(key)
        pkey = (key, entry.version, engine_cls.name, cluster.num_nodes)
        pgraph = self._partitions.get(pkey)
        if pgraph is not None:
            self.partition_hits += 1
            return engine_cls(pgraph, cluster, middleware)
        engine = engine_cls.build(entry.graph, cluster, middleware)
        self._partitions[pkey] = engine.pgraph
        self.partition_builds += 1
        return engine

    def stats(self) -> Dict[str, Any]:
        return {
            "graphs": {k: {"version": e.version, "attached": e.attached,
                           "bytes": e.nbytes,
                           "total_attaches": e.total_attaches}
                       for k, e in sorted(self._graphs.items())},
            "total_bytes": self.total_bytes(),
            "partitions": len(self._partitions),
            "partition_hits": self.partition_hits,
            "partition_builds": self.partition_builds,
        }
