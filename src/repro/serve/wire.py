"""JSONL-over-TCP wire protocol for the serving layer.

PR 7 made the :class:`~repro.serve.service.GraphService` crash-safe on
disk; this module puts it on the network, mirroring the ``submit`` /
``serve`` file handoff as a socket protocol so clients and the server
can evolve — and fail — independently, which is GX-Plug's decoupling
story applied to the serving boundary.

The protocol is newline-delimited JSON: every frame is one JSON object
on one line.  Requests carry ``op`` (the verb), ``v`` (the protocol
version), ``req`` (a client-chosen id echoed back as ``re`` so
responses can be matched under pipelining), and op-specific fields.
The schema is versioned and **eagerly validated**: an unknown op, a
missing or mistyped field, an unknown field, or a version mismatch is
answered with an error frame naming the violation — never a closed
socket, never a silently-ignored field.

Request ops::

    hello    {client, session?, lease_ms?}  open or resume a session
    ping     {session}                      heartbeat: renew the lease
    submit   {session, job, idempotency_key?}   queue a job
    mutate   {session, graph, batch, idempotency_key?}  mutate a graph
    poll     {session, job_id, values?}     job state (+ values if done)
    watch    {session, job_id}              stream state-change events
    cancel   {session, job_id}              cancel pending/running job
    stats    {session}                      service metrics + wire counters
    drain    {session, mode}                graceful shutdown

Responses are ``{re, ok: true, ...}`` or ``{re, ok: false, code,
error, ...}``; overload refusals use ``code: "shed"`` and carry
``retry_after_ms`` (the server's backlog-derived resubmit hint) plus
``draining`` — load is turned away with a schedule, never a reset
socket.  The server also pushes unsolicited ``{"event": ...}`` frames:
``job`` state changes to watchers, ``draining`` to everyone when a
graceful shutdown starts, ``expired`` when a session's lease lapses.

**Sessions and leases.**  A client opens a session with ``hello`` and
keeps it alive by heartbeating (any valid frame renews the lease, but
``ping`` exists for idle clients).  A session whose lease lapses is
reaped — its connections are closed — which is how the server sheds
half-open connections from crashed clients; the session's *jobs* are
untouched (job identity is the journal's business, not the socket's).
A reconnecting client presents its session id in ``hello`` and resumes
it if still live.

**Exactly-once submits.**  A client that loses its connection mid-
submit cannot know whether the submit landed, so it resubmits under
the same ``idempotency_key``; the service journals the key before the
submitted record, so the resubmit dedupes to the original job — across
reconnects *and* across a server crash + recover.

**Graceful drain.**  SIGTERM (or a ``drain`` frame) broadcasts
``draining``, answers in-flight requests, journals a clean shutdown
with its reason, and closes; with ``mode: "now"`` in-flight jobs are
suspended at their last checkpoint and resume after restart +
``--recover``, with clients reconnecting to the same job ids.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import AdmissionError, ReproError, ServeError, WireProtocolError
from .job import JobSpec
from .service import GraphService

#: Wire protocol version; ``hello`` negotiates it eagerly.
PROTOCOL_VERSION = 1

#: Fallback resubmit hint (ms) when the service has no latency history.
DEFAULT_RETRY_AFTER_MS = 100.0

#: Default session lease; a session silent this long (no frame on any
#: of its connections) is reaped as half-open.
DEFAULT_LEASE_MS = 30_000.0

#: Hard cap on one frame's length — a peer that streams an unbounded
#: line is cut off instead of ballooning the read buffer.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_STR = (str,)
_NUM = (int, float)
_INT = (int,)
_DICT = (dict,)

#: op -> {field: (allowed types, required)}.  ``op``/``v``/``req`` are
#: common to every request and validated separately.
FRAME_SCHEMA: Dict[str, Dict[str, Tuple[tuple, bool]]] = {
    "hello": {"client": (_STR, True), "session": (_STR, False),
              "lease_ms": (_NUM, False)},
    "ping": {"session": (_STR, True)},
    "submit": {"session": (_STR, True), "job": (_DICT, True),
               "idempotency_key": (_STR, False)},
    "mutate": {"session": (_STR, True), "graph": (_STR, True),
               "batch": (_DICT, True), "idempotency_key": (_STR, False)},
    "poll": {"session": (_STR, True), "job_id": (_INT, True),
             "values": ((bool,), False)},
    "watch": {"session": (_STR, True), "job_id": (_INT, True)},
    "cancel": {"session": (_STR, True), "job_id": (_INT, True)},
    "stats": {"session": (_STR, True)},
    "drain": {"session": (_STR, True), "mode": (_STR, False)},
}

#: ops a client may retry blindly after a dropped connection (submit
#: joins them only when it carries an idempotency key).
RETRY_SAFE_OPS = frozenset(
    ("hello", "ping", "poll", "watch", "cancel", "stats", "drain"))


def validate_frame(doc: Any) -> str:
    """Eagerly validate one request frame; returns its op.

    Raises :class:`~repro.errors.WireProtocolError` naming the first
    violation: not an object, unknown/missing op, wrong protocol
    version, missing or mistyped required field, or an unknown field
    (typos fail loudly instead of being ignored).
    """
    if not isinstance(doc, dict):
        raise WireProtocolError(f"frame is not an object: {doc!r}")
    op = doc.get("op")
    if op not in FRAME_SCHEMA:
        raise WireProtocolError(
            f"unknown op {op!r}; one of {sorted(FRAME_SCHEMA)}")
    version = doc.get("v")
    if version != PROTOCOL_VERSION:
        raise WireProtocolError(
            f"protocol version mismatch: frame says {version!r}, "
            f"server speaks {PROTOCOL_VERSION}")
    if not isinstance(doc.get("req"), int):
        raise WireProtocolError(f"{op}: 'req' must be an int request id")
    schema = FRAME_SCHEMA[op]
    for name, (types, required) in schema.items():
        if name not in doc:
            if required:
                raise WireProtocolError(f"{op}: missing field {name!r}")
            continue
        value = doc[name]
        if not isinstance(value, types) or isinstance(value, bool) \
                and bool not in types:
            raise WireProtocolError(
                f"{op}: field {name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}")
    unknown = set(doc) - set(schema) - {"op", "v", "req"}
    if unknown:
        raise WireProtocolError(f"{op}: unknown fields {sorted(unknown)}")
    return op


def encode_frame(doc: Dict[str, Any]) -> bytes:
    return (json.dumps(doc) + "\n").encode("utf-8")


class _UnknownSession(ServeError):
    """Internal: frame referenced a session the server doesn't hold.

    Mapped to the ``no-session`` error code, which tells a client its
    lease lapsed or the server restarted — re-``hello`` and retry.
    """


class WireCounters:
    """Connection/session/frame counters, surfaced in ``stats``."""

    FIELDS = ("connections_accepted", "connections_closed",
              "sessions_opened", "sessions_resumed", "sessions_reaped",
              "frames_in", "frames_out", "bad_frames",
              "deduped_submits", "sheds_sent", "watch_events")

    def __init__(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}


class _Session:
    """One client's lease-kept identity across reconnects."""

    def __init__(self, session_id: str, client: str, lease_ms: float,
                 now: float) -> None:
        self.session_id = session_id
        self.client = client
        self.lease_ms = lease_ms
        self.last_seen = now
        #: job ids this session submitted (observability only)
        self.job_ids: List[int] = []

    def expired(self, now: float) -> bool:
        return (now - self.last_seen) * 1000.0 > self.lease_ms


class _Conn:
    """One accepted socket with its read/write buffers and watches."""

    def __init__(self, sock: socket.socket, addr, now: float) -> None:
        self.sock = sock
        self.addr = addr
        self.rbuf = b""
        self.wbuf = b""
        self.session: Optional[_Session] = None
        self.opened = now
        self.last_seen = now
        #: job_id -> last pushed (state, slices) snapshot, None before
        #: the first event
        self.watches: Dict[int, Optional[Tuple[str, int]]] = {}


class GraphServiceServer:
    """Serve a :class:`GraphService` over JSONL-on-TCP.

    Single-threaded by design: one selectors loop interleaves socket
    I/O with ``service.step()`` bursts, so the service object is only
    ever touched from the serving thread and stays as deterministic as
    in file mode.  :meth:`request_drain` and :meth:`crash` are the only
    cross-thread entry points (they just set events).

    ``auto_step=False`` freezes the scheduling loop — frames are still
    answered but no job makes progress; tests use it to build
    deterministic backlogs (e.g. to exercise overload sheds).
    """

    def __init__(self, service: GraphService, host: str = "127.0.0.1",
                 port: int = 0, *, lease_ms: float = DEFAULT_LEASE_MS,
                 step_burst: int = 8, select_interval_s: float = 0.02,
                 auto_step: bool = True,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 crash_after_steps: Optional[int] = None,
                 clock=time.monotonic) -> None:
        if lease_ms <= 0:
            raise ServeError(f"lease_ms must be positive, got {lease_ms}")
        self.service = service
        self.lease_ms = float(lease_ms)
        self.step_burst = int(step_burst)
        self.select_interval_s = float(select_interval_s)
        self.auto_step = auto_step
        self.max_frame_bytes = int(max_frame_bytes)
        self.clock = clock
        #: chaos hook: die (as :meth:`crash`) after exactly this many
        #: successful scheduling rounds — the soak's deterministic kill
        self.crash_after_steps = crash_after_steps
        #: scheduling rounds this server generation has run
        self.steps_taken = 0
        self.counters = WireCounters()
        self._sessions: Dict[str, _Session] = {}
        self._next_session = 1
        self._conns: Dict[socket.socket, _Conn] = {}
        self._sel = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self._listener.setblocking(False)
        #: the bound (host, port) — port 0 resolves here
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._sel.register(self._listener, selectors.EVENT_READ)
        self._stop = threading.Event()
        self._crashed = threading.Event()
        self._drain_reason: Optional[str] = None
        self._drain_mode = "finish"
        self._drained = False

    # -- lifecycle (cross-thread safe: flags only) ---------------------------------------

    def request_drain(self, reason: str = "drain",
                      mode: str = "finish") -> None:
        """Ask the serving loop to drain and exit.

        ``mode="finish"`` runs in-flight jobs to completion first (the
        wire ``drain`` frame's default); ``mode="now"`` suspends them
        at their last durable checkpoint so a restarted server's
        ``recover()`` resumes them — the SIGTERM path.
        """
        if mode not in ("finish", "now"):
            raise ServeError(f"drain mode must be 'finish' or 'now', "
                             f"got {mode!r}")
        self._drain_mode = mode
        self._drain_reason = reason

    def crash(self) -> None:
        """Simulate a server crash: stop the loop abruptly — no drain,
        no goodbye frames, nothing journaled beyond what the
        write-ahead journal already holds.  The chaos soak's kill."""
        self._crashed.set()
        self._stop.set()

    def serve_in_thread(self, name: str = "wire-server"
                        ) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (tests/soaks)."""
        thread = threading.Thread(target=self.serve_forever, name=name,
                                  daemon=True)
        thread.start()
        return thread

    # -- the serving loop ----------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`request_drain` or :meth:`crash`."""
        try:
            while not self._stop.is_set():
                if self._drain_reason is not None:
                    self._graceful_drain()
                    return
                self._pump_io()
                self._reap_half_open()
                if self.auto_step:
                    self._step_service()
                    self._push_watch_events()
        finally:
            self._close_all(abrupt=self._crashed.is_set())

    def _pump_io(self) -> None:
        timeout = (0.0 if self._service_busy() and self.auto_step
                   else self.select_interval_s)
        for key, mask in self._sel.select(timeout):
            if key.fileobj is self._listener:
                self._accept()
                continue
            conn = self._conns.get(key.fileobj)
            if conn is None:  # pragma: no cover - unregister race
                continue
            if mask & selectors.EVENT_READ:
                self._read(conn)
            if mask & selectors.EVENT_WRITE and conn.sock in self._conns:
                self._flush(conn)

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:  # pragma: no cover - listener closed
                return
            sock.setblocking(False)
            conn = _Conn(sock, addr, self.clock())
            self._conns[sock] = conn
            self._sel.register(sock, selectors.EVENT_READ)
            self.counters.connections_accepted += 1

    def _read(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            self._close(conn)
            return
        conn.rbuf += data
        if len(conn.rbuf) > self.max_frame_bytes:
            self.counters.bad_frames += 1
            self._send(conn, {"ok": False, "code": "frame-too-large",
                              "error": f"frame exceeds "
                                       f"{self.max_frame_bytes} bytes"})
            self._close(conn)
            return
        while b"\n" in conn.rbuf:
            line, conn.rbuf = conn.rbuf.split(b"\n", 1)
            if line.strip():
                self._handle_line(conn, line)
                if conn.sock not in self._conns:
                    return  # the frame closed the connection

    def _handle_line(self, conn: _Conn, line: bytes) -> None:
        self.counters.frames_in += 1
        conn.last_seen = self.clock()
        try:
            doc = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.counters.bad_frames += 1
            self._send(conn, {"ok": False, "code": "bad-json",
                              "error": f"unparseable frame: {exc}"})
            return
        req = doc.get("req") if isinstance(doc, dict) else None
        try:
            op = validate_frame(doc)
        except WireProtocolError as exc:
            self.counters.bad_frames += 1
            self._send(conn, {"re": req if isinstance(req, int) else None,
                              "ok": False, "code": "bad-frame",
                              "error": str(exc),
                              "v": PROTOCOL_VERSION})
            return
        handler = getattr(self, f"_op_{op}")
        try:
            resp = handler(conn, doc)
        except _UnknownSession as exc:
            resp = {"ok": False, "code": "no-session", "error": str(exc)}
        except ReproError as exc:
            resp = {"ok": False, "code": "serve-error",
                    "error": f"{type(exc).__name__}: {exc}"}
        resp.setdefault("ok", True)
        resp["re"] = doc["req"]
        resp["v"] = PROTOCOL_VERSION
        self._send(conn, resp)

    # -- op handlers ---------------------------------------------------------------------

    def _require_session(self, conn: _Conn, doc: Dict[str, Any]
                         ) -> _Session:
        sess = self._sessions.get(doc["session"])
        if sess is None:
            raise _UnknownSession(
                f"unknown session {doc['session']!r} (lease expired "
                f"or server restarted; hello again)")
        sess.last_seen = self.clock()
        conn.session = sess
        return sess

    def _op_hello(self, conn: _Conn, doc: Dict[str, Any]
                  ) -> Dict[str, Any]:
        lease_ms = float(doc.get("lease_ms", self.lease_ms))
        if lease_ms <= 0:
            return {"ok": False, "code": "bad-frame",
                    "error": f"lease_ms must be positive, got {lease_ms}"}
        wanted = doc.get("session")
        resumed = wanted is not None and wanted in self._sessions
        if resumed:
            sess = self._sessions[wanted]
            sess.last_seen = self.clock()
            sess.lease_ms = lease_ms
            self.counters.sessions_resumed += 1
        else:
            session_id = f"s{self._next_session}"
            self._next_session += 1
            sess = _Session(session_id, doc["client"], lease_ms,
                            self.clock())
            self._sessions[session_id] = sess
            self.counters.sessions_opened += 1
        conn.session = sess
        return {"session": sess.session_id, "resumed": resumed,
                "lease_ms": sess.lease_ms,
                "draining": self._drain_reason is not None
                or self.service.draining}

    def _op_ping(self, conn: _Conn, doc: Dict[str, Any]
                 ) -> Dict[str, Any]:
        sess = self._require_session(conn, doc)
        return {"session": sess.session_id, "lease_ms": sess.lease_ms}

    def _retry_after_ms(self) -> float:
        estimate = self.service._estimate_wait_ms()
        if estimate is None or estimate <= 0:
            return DEFAULT_RETRY_AFTER_MS
        return float(estimate)

    def _op_submit(self, conn: _Conn, doc: Dict[str, Any]
                   ) -> Dict[str, Any]:
        sess = self._require_session(conn, doc)
        if self._drain_reason is not None or self.service.draining:
            self.counters.sheds_sent += 1
            return {"ok": False, "code": "shed", "draining": True,
                    "retry_after_ms": self._retry_after_ms(),
                    "error": "service is draining"}
        key = doc.get("idempotency_key")
        if key is not None:
            existing = self.service.idempotent_job_id(key)
            if existing is not None:
                self.service.deduped_submits += 1
                self.counters.deduped_submits += 1
                job = self.service.job(existing)
                return {"job_id": job.job_id, "state": job.state,
                        "deduped": True}
        try:
            # the wire carries the journal's lossless spec form, so a
            # job means the same thing submitted locally or remotely
            spec = JobSpec.from_doc(doc["job"])
        except (ServeError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "code": "bad-job",
                    "error": f"bad job spec: {exc}"}
        try:
            job = self.service.submit(spec, idempotency_key=key)
        except AdmissionError as exc:
            self.counters.sheds_sent += 1
            return {"ok": False, "code": "shed", "draining": False,
                    "retry_after_ms": self._retry_after_ms(),
                    "error": str(exc)}
        sess.job_ids.append(job.job_id)
        return {"job_id": job.job_id, "state": job.state,
                "deduped": False}

    def _op_mutate(self, conn: _Conn, doc: Dict[str, Any]
                   ) -> Dict[str, Any]:
        sess = self._require_session(conn, doc)
        if self._drain_reason is not None or self.service.draining:
            self.counters.sheds_sent += 1
            return {"ok": False, "code": "shed", "draining": True,
                    "retry_after_ms": self._retry_after_ms(),
                    "error": "service is draining"}
        try:
            # the wire carries the batch's to_doc() form; the service
            # dedupes by idempotency key (or content fingerprint), so a
            # retried frame after a dropped connection applies once
            summary = self.service.mutate(
                doc["graph"], doc["batch"],
                idempotency_key=doc.get("idempotency_key"))
        except ReproError as exc:
            return {"ok": False, "code": "bad-batch",
                    "error": f"{type(exc).__name__}: {exc}"}
        if summary["deduped"]:
            self.counters.deduped_submits += 1
        return dict(summary)

    def _job_doc(self, job, include_values: bool) -> Dict[str, Any]:
        doc = job.describe()
        if include_values and job.state == "done" \
                and job.values is not None:
            # json round-trips float64 exactly (repr is shortest-
            # roundtrip), so values survive the wire bit-identically
            doc["values"] = job.values.tolist()
            doc["values_dtype"] = str(job.values.dtype)
        return doc

    def _op_poll(self, conn: _Conn, doc: Dict[str, Any]
                 ) -> Dict[str, Any]:
        self._require_session(conn, doc)
        job = self.service.job(doc["job_id"])
        return {"job": self._job_doc(job, doc.get("values", False))}

    def _op_watch(self, conn: _Conn, doc: Dict[str, Any]
                  ) -> Dict[str, Any]:
        self._require_session(conn, doc)
        job = self.service.job(doc["job_id"])
        if job.finished:
            # nothing will change: answer terminally, register nothing
            return {"job": self._job_doc(job, False), "terminal": True}
        conn.watches[job.job_id] = (job.state, job.slices)
        return {"job": self._job_doc(job, False), "terminal": False}

    def _op_cancel(self, conn: _Conn, doc: Dict[str, Any]
                   ) -> Dict[str, Any]:
        self._require_session(conn, doc)
        changed = self.service.cancel(doc["job_id"])
        job = self.service.job(doc["job_id"])
        return {"cancelled": changed, "state": job.state}

    def _op_stats(self, conn: _Conn, doc: Dict[str, Any]
                  ) -> Dict[str, Any]:
        self._require_session(conn, doc)
        return {"metrics": self.service.metrics(),
                "recovery": self.service.recovery_stats(),
                "wire": self.wire_stats()}

    def _op_drain(self, conn: _Conn, doc: Dict[str, Any]
                  ) -> Dict[str, Any]:
        self._require_session(conn, doc)
        mode = doc.get("mode", "finish")
        try:
            self.request_drain(reason="drain frame", mode=mode)
        except ServeError as exc:
            return {"ok": False, "code": "bad-frame", "error": str(exc)}
        return {"draining": True, "mode": mode}

    # -- service stepping and notifications ----------------------------------------------

    def _service_busy(self) -> bool:
        svc = self.service
        return bool(len(svc.queue) or len(svc.scheduler) or svc._waiters)

    def _step_service(self) -> None:
        for _ in range(self.step_burst):
            if not self._service_busy():
                return
            try:
                if not self.service.step():
                    return
            except ReproError:  # pragma: no cover - service invariant
                return
            self.steps_taken += 1
            if self.crash_after_steps is not None \
                    and self.steps_taken >= self.crash_after_steps:
                self.crash()
                return

    def _push_watch_events(self) -> None:
        for conn in list(self._conns.values()):
            if not conn.watches:
                continue
            for job_id in list(conn.watches):
                job = self.service._jobs.get(job_id)
                if job is None:  # pragma: no cover - cancelled+purged
                    del conn.watches[job_id]
                    continue
                snap = (job.state, job.slices)
                if snap == conn.watches[job_id]:
                    continue
                conn.watches[job_id] = snap
                event = {"event": "job", "job_id": job_id,
                         "state": job.state, "slices": job.slices,
                         "from_cache": job.from_cache,
                         "terminal": job.finished}
                if job.finished:
                    event["error"] = job.error
                    del conn.watches[job_id]
                self.counters.watch_events += 1
                self._send(conn, event)
                if conn.session is not None:
                    # a live watch is a heartbeat: the client is
                    # blocked reading, not gone
                    conn.session.last_seen = self.clock()

    def _reap_half_open(self) -> None:
        now = self.clock()
        expired = [sid for sid, sess in self._sessions.items()
                   if sess.expired(now)]
        for sid in expired:
            sess = self._sessions.pop(sid)
            self.counters.sessions_reaped += 1
            for conn in [c for c in self._conns.values()
                         if c.session is sess]:
                self._send(conn, {"event": "expired",
                                  "session": sess.session_id})
                self._flush(conn)
                self._close(conn)
        # connections that never said hello get the same patience
        for conn in [c for c in self._conns.values()
                     if c.session is None]:
            if (now - conn.last_seen) * 1000.0 > self.lease_ms:
                self._close(conn)

    def _graceful_drain(self) -> None:
        reason = self._drain_reason or "drain"
        for conn in list(self._conns.values()):
            self._send(conn, {"event": "draining", "reason": reason,
                              "mode": self._drain_mode})
            self._flush(conn)
        self.service.drain(reason=reason,
                           finish_running=self._drain_mode == "finish")
        self._drained = True
        # answer anything that raced in while draining, then push the
        # final job states to watchers and say goodbye
        self._pump_io()
        self._push_watch_events()
        for conn in list(self._conns.values()):
            self._send(conn, {"event": "bye", "reason": reason})
            self._flush(conn)
        self._close_all(abrupt=False)
        self._stop.set()

    # -- plumbing ------------------------------------------------------------------------

    def _send(self, conn: _Conn, doc: Dict[str, Any]) -> None:
        if conn.sock not in self._conns:
            return
        conn.wbuf += encode_frame(doc)
        self.counters.frames_out += 1
        self._flush(conn)
        if conn.sock in self._conns and conn.wbuf:
            self._sel.modify(conn.sock,
                             selectors.EVENT_READ | selectors.EVENT_WRITE)

    def _flush(self, conn: _Conn) -> None:
        while conn.wbuf:
            try:
                sent = conn.sock.send(conn.wbuf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close(conn)
                return
            conn.wbuf = conn.wbuf[sent:]
        if conn.sock in self._conns:
            self._sel.modify(conn.sock, selectors.EVENT_READ)

    def _close(self, conn: _Conn) -> None:
        if conn.sock not in self._conns:
            return
        del self._conns[conn.sock]
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        self.counters.connections_closed += 1

    def _close_all(self, abrupt: bool) -> None:
        for conn in list(self._conns.values()):
            if not abrupt:
                self._flush(conn)
            self._close(conn)
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._sel.close()

    def wire_stats(self) -> Dict[str, Any]:
        """Connection/session counters for ``stats`` and trace JSON."""
        stats = self.counters.as_dict()
        stats["sessions_live"] = len(self._sessions)
        stats["connections_live"] = len(self._conns)
        stats["protocol_version"] = PROTOCOL_VERSION
        stats["draining"] = (self._drain_reason is not None
                             or self.service.draining)
        return stats
