"""Upper systems: GraphX-like (BSP/JVM) and PowerGraph-like (GAS/native)."""

from .async_engine import AsyncEngine
from .base import IterationStats, IterativeEngine, RunResult, StepEvent
from .graphx import GraphXEngine, jvm_runtime_for
from .jni import (
    NAIVE_JNI,
    OPTIMIZED_JNI,
    JNIConfig,
    improvement_factor,
)
from .powergraph import PowerGraphEngine

__all__ = [
    "IterativeEngine",
    "IterationStats",
    "RunResult",
    "StepEvent",
    "GraphXEngine",
    "PowerGraphEngine",
    "AsyncEngine",
    "JNIConfig",
    "NAIVE_JNI",
    "OPTIMIZED_JNI",
    "improvement_factor",
    "jvm_runtime_for",
]
