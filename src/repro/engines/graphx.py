"""GraphX-like upper system: BSP / vertex-centric on a JVM runtime.

Models GraphX [2] as the paper uses it: Pregel-style BSP supersteps
(call order Gen -> Merge -> Apply), hash edge-cut partitioning by default,
and a JVM host runtime whose boundary costs come from the JNI transmitter
simulation (§IV-B1).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..cluster.cluster import Cluster
from ..cluster.node import JVM_RUNTIME, HostRuntime
from ..core.middleware import GXPlug
from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph, hash_partition
from .base import IterativeEngine
from .jni import JNIConfig, OPTIMIZED_JNI


def jvm_runtime_for(jni: JNIConfig) -> HostRuntime:
    """A JVM host runtime whose k1/k3 reflect the given JNI configuration."""
    per_entity = jni.ms_per_entity()
    return replace(
        JVM_RUNTIME,
        download_ms_per_entity=per_entity,
        upload_ms_per_entity=per_entity,
    )


class GraphXEngine(IterativeEngine):
    """BSP vertex-centric engine on the JVM (GraphX stand-in)."""

    model = "bsp"
    name = "graphx"
    edge_scan = "full"  # Spark materializes the full triplet view

    def __init__(self, pgraph: PartitionedGraph, cluster: Cluster,
                 middleware: Optional[GXPlug] = None,
                 jni: JNIConfig = OPTIMIZED_JNI) -> None:
        super().__init__(pgraph, cluster, middleware)
        self.jni = jni

    @classmethod
    def build(cls, graph: Graph, cluster: Cluster,
              middleware: Optional[GXPlug] = None,
              shares=None) -> "GraphXEngine":
        """Partition ``graph`` GraphX-style (hash) and build the engine."""
        pgraph = hash_partition(graph, cluster.num_nodes, shares=shares)
        return cls(pgraph, cluster, middleware)
