"""Asynchronous computation model (§IV-A1's third model).

The paper's middleware is "adaptable to various graph computation models,
such [as] BSP, GAS, and asynchronous model" — the last in the tradition
of GraphLab [32], which "allows asynchronous computation and dynamic
asynchronous scheduling".

:class:`AsyncEngine` runs nodes continuously on their own partitions
(the combined-local-iteration machinery), synchronizing only when
cross-partition messages accumulate.  This is only sound for monotone,
replay-safe algorithms (SSSP, BFS, CC, widest path, ...); the engine
rejects anything else, and it needs the middleware (asynchrony lives in
the agents — a bare host engine is superstep-driven by construction).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.cluster import Cluster
from ..core.middleware import GXPlug
from ..core.template import AlgorithmTemplate
from ..errors import EngineError
from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph, clustering_partition
from .base import IterativeEngine


class AsyncEngine(IterativeEngine):
    """GraphLab-style asynchronous execution over GX-Plug agents."""

    model = "async"
    name = "async"
    force_async = True
    edge_scan = "frontier"

    def __init__(self, pgraph: PartitionedGraph, cluster: Cluster,
                 middleware: Optional[GXPlug] = None) -> None:
        if middleware is None:
            raise EngineError(
                "the asynchronous model runs inside the middleware's "
                "agents; plug a GXPlug instance"
            )
        super().__init__(pgraph, cluster, middleware)

    @classmethod
    def build(cls, graph: Graph, cluster: Cluster,
              middleware: Optional[GXPlug] = None,
              shares=None, seed: int = 0) -> "AsyncEngine":
        """Partition with the locality-preserving clustering strategy
        (asynchrony profits from partition-local structure)."""
        pgraph = clustering_partition(graph, cluster.num_nodes,
                                      shares=shares, seed=seed)
        return cls(pgraph, cluster, middleware)

    def run_stepwise(self, algorithm: AlgorithmTemplate,
                     max_iterations: Optional[int] = None, *,
                     resume_from=None):
        # the guard lives on the stepwise form so both run() and an
        # external scheduler driving run_stepwise() directly hit it
        if not algorithm.monotone:
            raise EngineError(
                f"{algorithm.name!r} is not replay-safe (monotone): the "
                f"asynchronous model only supports idempotent-semiring "
                f"algorithms; use GraphXEngine/PowerGraphEngine"
            )
        return super().run_stepwise(algorithm,
                                    max_iterations=max_iterations,
                                    resume_from=resume_from)
