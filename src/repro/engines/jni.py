"""JNI transmitter and data packager simulation (§IV-B1).

GraphX runs on the JVM, so every byte the middleware moves crosses the
JNI boundary.  Naively invoking JVM methods per element "incurs
significant transmission lags"; the paper's JNI transmitter batches
transfers through POSIX shared memory and the data packager reorganizes
bits in place, together yielding "about 3 to 10 times of improvement ...
compared to direct target function invoking".

This module models that boundary as a per-entity cost with three
configurations; the GraphX engine derives its runtime k1/k3 from the
optimized one, and a dedicated bench reproduces the 3-10x claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EngineError

#: per-entity cost of a naive JNI callback round trip (ms)
NAIVE_JNI_MS_PER_ENTITY = 0.0045
#: fixed cost of establishing one JNI batch call (ms)
JNI_BATCH_SETUP_MS = 0.02


@dataclass(frozen=True)
class JNIConfig:
    """Which §IV-B1 techniques are enabled on the JVM boundary."""

    #: batch many entities into one native call through POSIX shm
    batched_transfer: bool = True
    #: bit-organized in-place format conversion (data packager)
    data_packager: bool = True
    #: entities per batch when batching is on
    batch_size: int = 4096

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise EngineError(f"batch_size must be >= 1, got "
                              f"{self.batch_size}")

    def transfer_ms(self, num_entities: int) -> float:
        """Simulated cost of moving ``num_entities`` across the boundary."""
        if num_entities < 0:
            raise EngineError(f"negative entity count {num_entities}")
        if num_entities == 0:
            return 0.0
        if not self.batched_transfer:
            # one JNI callback per entity
            cost = num_entities * NAIVE_JNI_MS_PER_ENTITY
        else:
            batches = -(-num_entities // self.batch_size)
            per_entity = NAIVE_JNI_MS_PER_ENTITY / 2.5
            cost = batches * JNI_BATCH_SETUP_MS + num_entities * per_entity
        if not self.data_packager:
            # extra copy for format transformation between JVM objects and
            # native layouts
            cost *= 1.8
        return cost

    def ms_per_entity(self, typical_batch: int = 100_000) -> float:
        """Effective per-entity slope at a representative transfer size."""
        return self.transfer_ms(typical_batch) / typical_batch


#: the naive baseline (direct target function invoking)
NAIVE_JNI = JNIConfig(batched_transfer=False, data_packager=False)

#: the paper's optimized JNI transmitter + data packager
OPTIMIZED_JNI = JNIConfig(batched_transfer=True, data_packager=True)


def improvement_factor(num_entities: int = 100_000) -> float:
    """How much the transmitter+packager beat naive invocation.

    The paper reports "about 3 to 10 times"; the bench asserts this.
    """
    naive = NAIVE_JNI.transfer_ms(num_entities)
    optimized = OPTIMIZED_JNI.transfer_ms(num_entities)
    return naive / optimized
