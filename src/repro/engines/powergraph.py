"""PowerGraph-like upper system: GAS on a native runtime with vertex cuts.

Models PowerGraph [3]: Gather-Apply-Scatter iteration (the middleware call
order becomes Merge -> Apply -> Gen, §IV-B2), greedy vertex-cut
partitioning, and master/mirror replica synchronization — updated master
values must propagate to every mirror, which is the extra sync payload
this engine adds on top of the shared core.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.cluster import Cluster
from ..core.middleware import GXPlug
from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph, greedy_vertex_cut
from .base import IterativeEngine


class PowerGraphEngine(IterativeEngine):
    """GAS engine with vertex-cut replicas (PowerGraph stand-in)."""

    model = "gas"
    name = "powergraph"
    edge_scan = "frontier"  # GAS gathers only at active vertices

    @classmethod
    def build(cls, graph: Graph, cluster: Cluster,
              middleware: Optional[GXPlug] = None,
              shares=None) -> "PowerGraphEngine":
        """Partition ``graph`` PowerGraph-style (greedy vertex cut)."""
        pgraph = greedy_vertex_cut(graph, cluster.num_nodes, shares=shares)
        return cls(pgraph, cluster, middleware)

    # -- GAS-specific costs -------------------------------------------------------

    def _mirror_sync_cells(self, changed: np.ndarray, width: int) -> int:
        """Changed masters push their new value to every mirror replica."""
        if changed.size == 0:
            return 0
        extra_replicas = self._replica_count[changed] - 1
        return int(extra_replicas.sum()) * width

    def _scatter_cost_ms(self, node_id: int, changed_here: int) -> float:
        """The scatter step activates neighbours of changed vertices.

        Charged as one more (small) device/host pass proportional to the
        number of changed vertices on the node.
        """
        if changed_here == 0:
            return 0.0
        if self._node_accelerated(node_id):
            agent = self.middleware.agent_for(node_id)
            return agent.request_scatter(changed_here)
        runtime = self.cluster.nodes[node_id].runtime
        return runtime.compute.kernel_ms(changed_here)
