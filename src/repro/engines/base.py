"""The iterative distributed engine core shared by GraphX and PowerGraph.

One :class:`IterativeEngine` drives the BSP/GAS iteration over a
partitioned graph on a simulated cluster, either computing on the nodes'
host runtimes ("GraphX"/"PowerGraph" bars of Fig. 8) or delegating the
per-node computation to plugged GX-Plug agents ("CPU+"/"GPU+" bars).

Per iteration:

1. **Edge computation** — every node processes its active local triplets
   (MSGGen + block-local MSGMerge).  Nodes run in parallel, so the
   iteration pays the slowest node (the workload-balancing objective of
   §III-C).
2. **Global merge** — partial message sets combine associatively; each
   master node receives the messages addressed to its vertices.
3. **Apply** — every node folds its masters' messages into the vertex
   table (MSGApply), again in parallel.
4. **Synchronization** — unless synchronization skipping (§III-B3) proves
   no inter-node traffic is needed, the engine pays the network collective
   plus the data uploads (trimmed by lazy uploading, §III-B2b) and
   invalidates agent cache entries made stale by foreign updates.

Simulated results are *real*: the engine's values equal the algorithm's
single-machine reference bit-for-bit, which the integration tests assert
for every engine/config combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.cluster import Cluster
from ..core.balance import (
    balancing_factors,
    cluster_coefficients,
    estimate_coefficients,
    link_adjusted_coefficients,
    network_coefficients,
    rebalanced_shares,
)
from ..core.config import MiddlewareConfig
from ..core.middleware import GXPlug
from ..core.sync_skip import SkipDetector
from ..core.template import AlgorithmTemplate, MessageSet
from ..errors import AcceleratorsExhausted, EngineError, NodeUnreachable
from ..fault.checkpoint import CheckpointStore
from ..graph.partition import PartitionedGraph, partition

#: simulated bytes per float64 payload cell crossing the network
BYTES_PER_CELL = 8
#: simulated bytes per vertex id in the global query queue broadcast
BYTES_PER_ID = 8

#: Rollback budget floor: every rollback permanently degrades at least one
#: node to its host path, so a run can need at most one per node (the
#: effective limit is ``max(MAX_ROLLBACKS, num_nodes)``).
MAX_ROLLBACKS = 8

#: The hot-path phases whose wall-clock time the engine accounts
#: (``time.perf_counter`` deltas; see ``repro.bench.hotpath``).
WALL_PHASES = ("gen", "merge", "apply", "sync", "cache")


@dataclass
class IterationStats:
    """Everything recorded about one engine superstep."""

    index: int
    active_edges: int
    compute_ms: float            # slowest node's edge pass
    apply_ms: float              # slowest node's apply
    sync_ms: float               # global synchronization (0 when skipped)
    skipped: bool
    changed_vertices: int
    uploads: int                 # vertex values shipped at sync time
    cache_hits: int = 0
    cache_misses: int = 0
    node_compute_ms: List[float] = field(default_factory=list)
    #: entities (triplets) each node processed, aligned with
    #: ``node_compute_ms`` — the (d_j, T_j) pairs online Lemma-2
    #: re-estimation feeds into ``estimate_coefficients``
    node_entities: List[int] = field(default_factory=list)
    #: computation iterations this superstep absorbed (>1 when
    #: synchronization skipping let nodes keep iterating locally)
    local_iterations: int = 1
    # fault-tolerance telemetry (repro.fault)
    faults_injected: int = 0     # plan events armed for this superstep
    retries: int = 0             # backoff retries spent recovering it
    recoveries: int = 0          # daemon recoveries (respawn cycles)
    checkpoint_ms: float = 0.0   # snapshot cost charged after it
    # network-transport telemetry (repro.cluster.network)
    retransmits: int = 0         # collective fragments re-sent
    dup_drops: int = 0           # duplicate deliveries deduped by seqno
    net_wasted_ms: float = 0.0   # recovery overhead inside sync_ms

    @property
    def total_ms(self) -> float:
        return (self.compute_ms + self.apply_ms + self.sync_ms
                + self.checkpoint_ms)


@dataclass(frozen=True)
class StepEvent:
    """One scheduling quantum of a stepwise engine run.

    Yielded by :meth:`IterativeEngine.run_stepwise` after every completed
    superstep (``kind == "superstep"``) and after every checkpoint
    rollback (``kind == "rollback"``), so an external scheduler — the
    serving layer's time-slicer — can interleave several runs at
    superstep granularity and attribute every simulated millisecond to
    the job that spent it.
    """

    kind: str                  # "superstep" | "rollback"
    iteration: int             # engine iteration after this quantum
    sim_ms: float              # simulated ms this quantum charged
    converged: bool = False    # True on the final superstep of a run
    #: True when this quantum saved a checkpoint — the signal the
    #: serving layer uses to externalize a fresh durable resume point
    checkpointed: bool = False


@dataclass
class RunResult:
    """Outcome of one engine run."""

    values: np.ndarray
    iterations: int
    total_ms: float
    setup_ms: float
    converged: bool
    stats: List[IterationStats]
    breakdown: Dict[str, float]      # middleware / device / engine ms
    engine_name: str
    algorithm_name: str
    skipped_iterations: int = 0
    #: checkpoint rollbacks taken after unrecoverable node faults
    rollbacks: int = 0
    #: simulated ms burned on supersteps discarded by rollbacks
    wasted_ms: float = 0.0
    #: nodes that finished the run on their host (CPU) compute path
    degraded_nodes: List[int] = field(default_factory=list)
    #: Lemma-2 repartitions triggered by node degradation
    rebalance_events: int = 0
    #: simulated ms spent exchanging partitions during rebalances
    rebalance_ms: float = 0.0
    #: run totals from the resilient transport (0 without it)
    retransmits: int = 0
    dup_drops: int = 0
    net_wasted_ms: float = 0.0
    #: delta-snapshot cost hidden inside compute windows by speculative
    #: checkpointing (0 unless ``speculative_checkpoint`` is on)
    checkpoint_hidden_ms: float = 0.0
    # gray-failure tolerance (repro.fault.straggler)
    #: soft straggler verdicts issued by the detector during the run
    straggler_verdicts: int = 0
    #: speculative block re-executions where the backup finished first
    speculative_wins: int = 0
    #: speculative re-executions whose backup work was discarded
    speculative_losses: int = 0
    #: simulated device ms burned on losing copies (both directions)
    speculative_wasted_ms: float = 0.0
    #: busy leases that outlived their cost-model phase budget
    budget_overruns: int = 0
    #: (node, superstep) coefficient observations folded into the online
    #: Lemma-2 estimate
    coeff_updates: int = 0
    #: Lemma-2 repartitions triggered by estimated-share divergence
    #: (no degradation involved; disjoint from ``rebalance_events``)
    online_rebalances: int = 0
    #: slow-uplink verdicts issued by the per-link straggler detector
    link_verdicts: int = 0
    #: simulated ms of link gray-fault inflation charged by the transport
    link_slow_ms: float = 0.0
    #: *wall-clock* seconds this run burned, total and split by phase
    #: (gen / merge / apply / sync / cache).  Orthogonal to every
    #: simulated-ms figure: simulated time models the hardware, wall
    #: time measures this Python implementation's hot path.
    wall_total_s: float = 0.0
    wall_s: Dict[str, float] = field(default_factory=dict)
    # event-loop telemetry across every agent pass scheduler
    #: resume events popped (identical under both scheduler cores)
    sched_events: int = 0
    #: cohort batches the event loop executed (== events under the
    #: per-event oracle; smaller under ``batch_events``)
    sched_batches: int = 0
    #: largest same-timestamp cohort executed in one loop iteration
    sched_max_batch: int = 0
    #: peak number of pending events in any pass's event heap
    sched_heap_peak: int = 0

    @property
    def computation_iterations(self) -> int:
        """Total computation iterations, counting the locally combined
        ones that synchronization skipping hid from the upper system."""
        return sum(s.local_iterations for s in self.stats)

    @property
    def middleware_ratio(self) -> float:
        """Fig. 14's metric: middleware time / whole-system time."""
        if self.total_ms <= 0:
            return 0.0
        return self.breakdown.get("middleware", 0.0) / self.total_ms

    def summary(self) -> str:
        return (f"{self.engine_name}/{self.algorithm_name}: "
                f"{self.iterations} iterations, "
                f"{self.total_ms:.1f} ms simulated "
                f"({self.skipped_iterations} syncs skipped)")


class IterativeEngine:
    """Distributed iteration driver over a partitioned graph."""

    #: "bsp" (Gen -> Merge -> Apply) or "gas" (Merge -> Apply -> Gen).
    model = "bsp"
    name = "engine"

    #: Asynchronous engines force the combined-local-iteration path for
    #: every (monotone) run, independent of the skip toggle.
    force_async = False

    #: "full": every superstep materializes the whole local triplet view
    #: (GraphX/Spark behaviour — what makes synchronization caching pay
    #: off 2-3x there, Fig. 11(a)); "frontier": only edges of active
    #: vertices are gathered (PowerGraph behaviour).
    edge_scan = "frontier"

    def __init__(self, pgraph: PartitionedGraph, cluster: Cluster,
                 middleware: Optional[GXPlug] = None) -> None:
        if pgraph.num_partitions != cluster.num_nodes:
            raise EngineError(
                f"{pgraph.num_partitions} partitions for "
                f"{cluster.num_nodes} nodes"
            )
        if middleware is not None and middleware.cluster is not cluster:
            raise EngineError("middleware was built for a different cluster")
        self.cluster = cluster
        self.middleware = middleware
        self.graph = pgraph.graph
        #: wall-clock seconds by hot-path phase, reset at every run()
        self.wall_s: Dict[str, float] = dict.fromkeys(WALL_PHASES, 0.0)
        self._bind_partition(pgraph)

    def _bind_partition(self, pgraph: PartitionedGraph) -> None:
        """Adopt ``pgraph`` and rebuild the per-partition index state.

        Called at construction and again when post-degradation
        rebalancing swaps in a repartitioned graph mid-run.
        """
        self.pgraph = pgraph
        # per-vertex replica counts (vertex-cut mirror sync volumes)
        counts = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for part in pgraph.parts:
            counts[part.referenced] += 1
        self._replica_count = np.maximum(counts, 1)
        self._master_sets = [
            np.zeros(self.graph.num_vertices, dtype=bool)
            for _ in pgraph.parts
        ]
        for part in pgraph.parts:
            self._master_sets[part.node_id][part.masters] = True
        # stored_local[v]: are all of v's out-edges stored on v's master?
        # (always true for edge-cut-by-source; false for vertex-cut
        # replicas).  Vertices violating it must be re-activated globally
        # after a combined-local superstep.
        stored_local = np.ones(self.graph.num_vertices, dtype=bool)
        for part in pgraph.parts:
            foreign_src = part.src[pgraph.master_of[part.src]
                                   != part.node_id]
            stored_local[foreign_src] = False
        self._stored_local = stored_local

    # -- configuration hooks (overridden by GraphX / PowerGraph) --------------------

    @property
    def config(self) -> Optional[MiddlewareConfig]:
        return self.middleware.config if self.middleware else None

    def _mirror_sync_cells(self, changed: np.ndarray, width: int) -> int:
        """Extra sync payload for replica/mirror propagation (GAS only)."""
        return 0

    def _scatter_cost_ms(self, node_id: int, changed_here: int) -> float:
        """Extra per-node cost of the scatter/activation step (GAS only)."""
        return 0.0

    # -- main loop ----------------------------------------------------------------------

    def run(self, algorithm: AlgorithmTemplate,
            max_iterations: Optional[int] = None, *,
            resume_from=None) -> RunResult:
        """Run ``algorithm`` to convergence (or the iteration cap)."""
        stepper = self.run_stepwise(algorithm, max_iterations,
                                    resume_from=resume_from)
        while True:
            try:
                next(stepper)
            except StopIteration as stop:
                return stop.value

    def run_stepwise(self, algorithm: AlgorithmTemplate,
                     max_iterations: Optional[int] = None, *,
                     resume_from=None):
        """Generator form of :meth:`run`: yields a :class:`StepEvent`
        after every superstep (and rollback) and returns the final
        :class:`RunResult` as the generator's return value.

        Driving the generator to exhaustion is exactly :meth:`run` —
        bit-identical values, stats and costs.  Suspending between
        yields lets the serving layer time-slice the daemon pool across
        several concurrent jobs at superstep granularity.

        ``resume_from`` — a :class:`~repro.fault.checkpoint.Checkpoint`
        (anything with ``iteration``/``values``/``active``): instead of
        ``algorithm.init_state``, the run is seeded from that snapshot
        and continues at the *absolute* iteration it captures.  Because
        engine state is fully determined by ``(values, active,
        iteration)``, a resumed run reproduces the tail of the original
        bit-for-bit; ``RunResult.iterations`` stays absolute while
        ``stats`` covers only the supersteps actually re-executed.
        """
        wall_start = perf_counter()
        self.wall_s = dict.fromkeys(WALL_PHASES, 0.0)
        g = self.graph
        n = g.num_vertices
        state = algorithm.init_state(g)
        values, active = state.values, state.active
        width = values.shape[1] if values.ndim > 1 else 1
        cap = max_iterations if max_iterations is not None \
            else algorithm.default_max_iterations

        mw = self.middleware
        use_skip = bool(mw and mw.config.sync_skip)
        use_lazy = bool(mw and mw.config.lazy_upload)
        # monotone algorithms get the combined-local-iteration form of
        # synchronization skipping; others keep the strict detector.
        # An asynchronous engine forces the combined path outright.
        use_async = (use_skip or self.force_async) and algorithm.monotone
        detector = SkipDetector(self.pgraph) if (use_skip and
                                                 not use_async) else None

        setup_ms = 0.0
        if mw is not None and not mw.connected:
            setup_ms = mw.connect_all()

        # setup (daemon spawn + device init) is a one-time deployment
        # cost; it gets its own bucket so the Fig. 14 ratio reflects the
        # iterative processing the paper measures on long-running jobs.
        breakdown = {"middleware": 0.0, "device": 0.0, "engine": 0.0,
                     "setup": setup_ms}
        stats: List[IterationStats] = []
        total_ms = setup_ms
        converged = False
        iteration = 0
        if resume_from is not None:
            seeded = np.asarray(resume_from.values)
            if seeded.shape != values.shape:
                # a checkpoint or warm start from a different graph
                # version (or algorithm arity) can never be resumed —
                # better to refuse than to compute garbage
                raise EngineError(
                    f"resume_from values shape {seeded.shape} does not "
                    f"match the graph's state shape {values.shape}")
            values = np.array(resume_from.values, copy=True)
            active = np.array(resume_from.active, copy=True)
            iteration = int(resume_from.iteration)

        # fault tolerance: periodic vertex-table checkpoints plus the
        # iteration-0 state, so an unrecoverable node fault rolls the run
        # back to the last consistent superstep instead of failing it.
        store: Optional[CheckpointStore] = None
        origin = None
        if mw is not None:
            if mw.config.checkpoint_interval > 0:
                store = CheckpointStore(
                    mw.config.checkpoint_interval,
                    ms_per_cell=mw.config.checkpoint_ms_per_cell,
                    fixed_ms=mw.config.checkpoint_fixed_ms)
                if resume_from is not None:
                    # the resume point is already durable: install it as
                    # the free full base so a mid-run rollback can reach
                    # it before the first own checkpoint falls due
                    store.seed(iteration, values, active)
            if mw.config.degrade_to_host:
                origin = (values.copy(), active.copy())
            if any(a.degraded for a in mw.agents.values()):
                use_async = False  # degraded nodes force the strict path
        # external resume/peek handle for the serving layer (journal,
        # checkpoint-resume retries); None when checkpointing is off
        self.checkpoint_store = store
        rollbacks = 0
        wasted_ms = 0.0
        rebalance_events = 0
        rebalance_ms = 0.0
        rebalanced_for: set = set()
        # online Lemma-2 re-estimation (gray-failure response): track an
        # EWMA estimate of the per-node c_j from observed (d_j, T_j)
        # pairs; when the estimated optimal shares drift far enough from
        # the current partition, repartition without degrading anyone.
        scfg = mw.config.straggler if mw is not None else None
        reestimate = bool(scfg is not None and scfg.enabled
                          and scfg.reestimate)
        coeff_est: Optional[np.ndarray] = None
        fold_links = bool(reestimate and self.cluster.topology is not None)
        if reestimate:
            coeff_est = np.asarray(
                cluster_coefficients(self.cluster.nodes),
                dtype=np.float64)
        last_online_reb = -(10 ** 9)
        online_rebalances = 0
        coeff_updates = 0
        # vertices touched since the last checkpoint, for delta snapshots
        changed_accum: List[np.ndarray] = []
        # speculative checkpointing: delta writes issued behind the
        # barrier ride the next superstep's compute window; only their
        # overflow is charged (full snapshots stay synchronous).
        speculative = bool(mw is not None and store is not None
                           and mw.config.speculative_checkpoint)
        pending_ckpt_ms = 0.0
        hidden_ckpt_ms = 0.0

        while iteration < cap:
            step_ms0 = total_ms
            faults = mw.arm_faults(iteration) if mw is not None else 0
            before = self._fault_counters()
            net_before = self._net_counters()
            try:
                if use_async:
                    step = self._run_superstep_combined(
                        iteration, algorithm, values, active, width,
                        use_lazy, breakdown)
                else:
                    step = self._run_iteration(
                        iteration, algorithm, values, active, width,
                        detector, use_lazy, breakdown)
            except (AcceleratorsExhausted, NodeUnreachable) as failure:
                if (isinstance(failure, NodeUnreachable)
                        and not mw.config.degrade_to_host):
                    raise
                if isinstance(failure, NodeUnreachable):
                    # the watchdog's partition verdict: write the node's
                    # accelerators off and fall back to its host path
                    mw.agent_for(failure.node_id).degraded = True
                rollbacks += 1
                if rollbacks > max(MAX_ROLLBACKS, self.cluster.num_nodes):
                    raise EngineError(
                        f"{rollbacks} rollbacks without progress"
                    ) from failure
                if pending_ckpt_ms:
                    # the in-flight speculative delta must land before the
                    # restore can replay it; its window is gone, so the
                    # write charges in full.
                    total_ms += pending_ckpt_ms
                    breakdown["engine"] += pending_ckpt_ms
                    pending_ckpt_ms = 0.0
                failed_ms = getattr(failure, "elapsed_ms", 0.0)
                if not failed_ms and failure.__cause__ is not None:
                    failed_ms = getattr(failure.__cause__, "elapsed_ms",
                                        0.0)
                target, values, active, restore_ms = self._rollback(
                    store, origin, failure)
                wasted_ms += (sum(s.total_ms for s in stats[target:])
                              + failed_ms + restore_ms)
                del stats[target:]
                total_ms += failed_ms + restore_ms
                breakdown["engine"] += failed_ms + restore_ms
                iteration = target
                use_async = False  # the degraded node computes host-side
                changed_accum = []  # the store forces a full snapshot next
                if mw.config.rebalance_on_degrade:
                    newly_down = (set(mw.degraded_nodes())
                                  - rebalanced_for)
                    if newly_down:
                        reb_ms = self._rebalance(width)
                        rebalanced_for |= set(mw.degraded_nodes())
                        rebalance_events += 1
                        rebalance_ms += reb_ms
                        total_ms += reb_ms
                        breakdown["engine"] += reb_ms
                        if detector is not None:
                            detector = SkipDetector(self.pgraph)
                yield StepEvent("rollback", iteration,
                                total_ms - step_ms0)
                continue
            it_stats, values, active, changed_total, changed_ids = step
            after = self._fault_counters()
            net_after = self._net_counters()
            it_stats.faults_injected = faults
            it_stats.retries = after[0] - before[0]
            it_stats.recoveries = after[1] - before[1]
            it_stats.retransmits = net_after[0] - net_before[0]
            it_stats.dup_drops = net_after[1] - net_before[1]
            it_stats.net_wasted_ms = net_after[2] - net_before[2]
            stats.append(it_stats)
            iteration += 1
            if pending_ckpt_ms:
                # drain the previous superstep's speculative delta
                # against this superstep's compute window
                hidden = min(pending_ckpt_ms, it_stats.compute_ms)
                hidden_ckpt_ms += hidden
                it_stats.checkpoint_ms += pending_ckpt_ms - hidden
                pending_ckpt_ms = 0.0
            if changed_ids.size:
                changed_accum.append(changed_ids)
            took_checkpoint = store is not None and store.due(iteration)
            if took_checkpoint:
                changed = (np.concatenate(changed_accum) if changed_accum
                           else np.empty(0, dtype=np.int64))
                save_ms = store.save(
                    iteration, values, active, changed=changed)
                if speculative and store.last_save_was_delta:
                    pending_ckpt_ms += save_ms
                else:
                    it_stats.checkpoint_ms += save_ms
                changed_accum = []
            total_ms += it_stats.total_ms
            if (reestimate and it_stats.active_edges > 0
                    and it_stats.retries == 0
                    and it_stats.recoveries == 0
                    and not mw.degraded_nodes()
                    and getattr(mw, "straggler", None) is not None
                    and (mw.straggler.flagged
                         or mw.straggler.flagged_links)):
                # fold this superstep's observed (d_j, T_j) pairs into
                # the coefficient estimate.  Contaminated supersteps
                # (retries, recoveries) and degraded clusters are
                # skipped — degradation has its own rebalance path —
                # and so are supersteps with no flagged straggler:
                # benign coefficient noise (cache warmth, frontier
                # shape) must never repartition a healthy run, which
                # is what keeps the fault-free path bit-identical.
                obs = {part.node_id: (e, t) for part, t, e in
                       zip(self.pgraph.parts, it_stats.node_compute_ms,
                           it_stats.node_entities)}
                coeff_est = estimate_coefficients(obs, coeff_est,
                                                  alpha=scfg.ewma_alpha)
                coeff_updates += sum(1 for e, t in obs.values()
                                     if e > 0 and t > 0)
                if fold_links:
                    # fold each node's wire slope, inflated by the
                    # detector's per-link EWMA for flagged uplinks, so
                    # a slow cross-rack link shifts the optimum exactly
                    # the way a slow daemon does.  The bytes-per-entity
                    # conversion uses this superstep's *observed* sync
                    # payload, so locality / lazy uploading / combined
                    # iterations keep the wire slope honest.
                    bytes_per_entity = (
                        it_stats.uploads * width * BYTES_PER_CELL
                        / max(it_stats.active_edges, 1))
                    link_net = network_coefficients(
                        self.cluster.topology, bytes_per_entity)
                    sdet = mw.straggler
                    inflations = np.array(
                        [sdet.link_inflation(j) if sdet.is_slow_link(j)
                         else 1.0
                         for j in range(self.cluster.num_nodes)],
                        dtype=np.float64)
                    est_shares = balancing_factors(
                        link_adjusted_coefficients(
                            coeff_est, link_net, inflations))
                else:
                    est_shares = balancing_factors(coeff_est)
                sizes = np.zeros(self.cluster.num_nodes)
                for part in self.pgraph.parts:
                    sizes[part.node_id] = part.src.size
                if sizes.sum() > 0:
                    current = sizes / sizes.sum()
                    divergence = 0.5 * float(
                        np.abs(est_shares - current).sum())
                    if (divergence > scfg.share_divergence
                            and iteration - last_online_reb
                            >= scfg.rebalance_cooldown):
                        # Lemma 2 says the optimum moved: repartition to
                        # the estimated shares (shifting load *off* the
                        # straggling node) without writing anyone off
                        reb_ms = self._repartition_to(est_shares, width)
                        last_online_reb = iteration
                        online_rebalances += 1
                        rebalance_ms += reb_ms
                        total_ms += reb_ms
                        breakdown["engine"] += reb_ms
                        if detector is not None:
                            detector = SkipDetector(self.pgraph)
            if algorithm.is_converged(changed_total, iteration):
                converged = True
            yield StepEvent("superstep", iteration, total_ms - step_ms0,
                            converged, checkpointed=took_checkpoint)
            if converged:
                break

        if pending_ckpt_ms:
            # the job is over: the last speculative write has no compute
            # window left to hide behind and charges in full.
            if stats:
                stats[-1].checkpoint_ms += pending_ckpt_ms
            total_ms += pending_ckpt_ms
        net_totals = self._net_counters()
        det = getattr(mw, "straggler", None) if mw is not None else None
        sched_counters = (mw.scheduler_counters() if mw is not None
                          and hasattr(mw, "scheduler_counters")
                          else {})
        return RunResult(
            values=values,
            iterations=iteration,
            total_ms=total_ms,
            setup_ms=setup_ms,
            converged=converged,
            stats=stats,
            breakdown=breakdown,
            engine_name=self.name,
            algorithm_name=algorithm.name,
            skipped_iterations=(
                sum(1 for s in stats if s.skipped)
                + sum(s.local_iterations - 1 for s in stats)),
            rollbacks=rollbacks,
            wasted_ms=wasted_ms,
            degraded_nodes=(mw.degraded_nodes() if mw is not None else []),
            rebalance_events=rebalance_events,
            rebalance_ms=rebalance_ms,
            retransmits=net_totals[0],
            dup_drops=net_totals[1],
            net_wasted_ms=net_totals[2],
            checkpoint_hidden_ms=hidden_ckpt_ms,
            straggler_verdicts=len(det.verdicts) if det else 0,
            speculative_wins=det.speculative_wins if det else 0,
            speculative_losses=det.speculative_losses if det else 0,
            speculative_wasted_ms=(det.speculative_wasted_ms
                                   if det else 0.0),
            budget_overruns=det.budget_overruns if det else 0,
            coeff_updates=coeff_updates,
            online_rebalances=online_rebalances,
            link_verdicts=det.link_verdicts if det else 0,
            link_slow_ms=(mw.transport.link_slow_ms
                          if mw is not None and mw.transport is not None
                          else 0.0),
            wall_total_s=perf_counter() - wall_start,
            wall_s=dict(self.wall_s),
            sched_events=sched_counters.get("sched_events", 0),
            sched_batches=sched_counters.get("sched_batches", 0),
            sched_max_batch=sched_counters.get("sched_max_batch", 0),
            sched_heap_peak=sched_counters.get("sched_heap_peak", 0),
        )

    # -- fault tolerance ---------------------------------------------------------------

    def _fault_counters(self) -> Tuple[int, int]:
        """(retries, recoveries) summed across agents, for per-superstep
        deltas in the iteration stats."""
        mw = self.middleware
        if mw is None:
            return (0, 0)
        return (sum(a.retries for a in mw.agents.values()),
                sum(a.recoveries for a in mw.agents.values()))

    def _network(self):
        """Where collectives run: the resilient transport when the
        middleware carries one, else the cluster's topology (or flat
        network model) cost substrate."""
        mw = self.middleware
        if mw is not None and mw.transport is not None:
            return mw.transport
        return self.cluster.collectives

    def _net_counters(self) -> Tuple[int, int, float]:
        """(retransmits, dup_drops, net_wasted_ms) transport totals, for
        per-superstep deltas in the iteration stats."""
        mw = self.middleware
        if mw is None or mw.transport is None:
            return (0, 0, 0.0)
        t = mw.transport
        return (t.retransmits, t.dup_drops, t.net_wasted_ms)

    def _rebalance(self, width: int) -> float:
        """Repartition for the cluster's post-degradation capacities.

        Lemma 2 holds for whatever coefficients the cluster currently
        has, so after a node falls back to its host path the optimal
        shares shift away from it (§III-C).  Recomputes the shares with
        the degraded node's accelerators written off and repartitions.
        """
        shares = rebalanced_shares(self.cluster.nodes,
                                   self.middleware.degraded_nodes())
        return self._repartition_to(shares, width)

    def _repartition_to(self, shares, width: int) -> float:
        """Repartition the graph to new Lemma-2 ``shares`` mid-run.

        Shared by degradation rebalancing and online re-estimation:
        repartitions with the run's own strategy, rebinds the engine's
        partition state, flushes agent caches (their rows describe the
        old layout) and returns the simulated cost of shipping the
        masters that moved.
        """
        mw = self.middleware
        old_master_of = self.pgraph.master_of
        pgraph = partition(self.graph, self.cluster.num_nodes,
                           self.pgraph.strategy, shares=shares)
        changed = pgraph.master_of != old_master_of
        moved = int(np.count_nonzero(changed))
        moved_by_node = None
        if self.cluster.topology is not None:
            # price the migration over the links the rows actually
            # cross: each moved master uploads at its *new* node
            counts = np.bincount(pgraph.master_of[changed],
                                 minlength=self.cluster.num_nodes)
            moved_by_node = [float(c) * width * BYTES_PER_CELL
                             for c in counts]
        self._bind_partition(pgraph)
        for agent in mw.agents.values():
            agent.flush_cache()
        # the moved masters' rows cross the network as one collective
        return self.cluster.repartition_cost_ms(
            moved * width * BYTES_PER_CELL, network=self._network(),
            moved_by_node=moved_by_node)

    def _rollback(self, store: Optional[CheckpointStore], origin,
                  failure: AcceleratorsExhausted):
        """Restore the last consistent superstep after a node degraded.

        Returns ``(target_iteration, values, active, restore_ms)``.  Agent
        caches are flushed — they hold values from the discarded future.
        """
        if store is not None and store.latest is not None:
            ckpt = store.restore()
            target, vals, act = ckpt.iteration, ckpt.values, ckpt.active
            restore_ms = ckpt.cost_ms
        elif origin is not None:
            target, restore_ms = 0, 0.0
            vals, act = origin[0].copy(), origin[1].copy()
        else:  # pragma: no cover - degrade_to_host always records origin
            raise failure
        for agent in self.middleware.agents.values():
            agent.flush_cache()
        return target, vals, act, restore_ms

    def _node_accelerated(self, node_id: int) -> bool:
        """Does this node still compute through its agent's accelerators?"""
        mw = self.middleware
        return mw is not None and not mw.agent_for(node_id).degraded

    # -- one iteration ---------------------------------------------------------------------

    def _run_iteration(self, index: int, algorithm: AlgorithmTemplate,
                       values: np.ndarray, active: np.ndarray, width: int,
                       detector: Optional[SkipDetector], use_lazy: bool,
                       breakdown: Dict[str, float]):
        g = self.graph
        n = g.num_vertices
        mw = self.middleware

        # -- 1. per-node edge computation (parallel: pay the max) ------------
        partials: Dict[int, MessageSet] = {}
        node_ms: List[float] = []
        node_entities: List[int] = []
        hits = misses = 0
        active_edges = 0
        crit_mw_ms = 0.0      # middleware share on the critical node
        crit_dev_ms = 0.0     # device share on the critical node
        crit_host_ms = 0.0    # host share (degraded nodes) on it
        crit_total = -1.0
        force_frontier = algorithm.requires_frontier_scan
        wall0 = perf_counter()
        for part in self.pgraph.parts:
            src, dst, w = self._select_edges(part, active, force_frontier)
            d = int(src.size)
            active_edges += d
            node_entities.append(d)
            if self._node_accelerated(part.node_id):
                agent = mw.agent_for(part.node_id)
                res = agent.edge_pass(src, dst, w, values, algorithm)
                partials[part.node_id] = res.partial
                node_ms.append(res.elapsed_ms)
                hits += res.cache_hits
                misses += res.cache_misses
                if res.elapsed_ms > crit_total:
                    crit_total = res.elapsed_ms
                    mw_busy = (
                        res.breakdown.get("middleware.download", 0.0)
                        + res.breakdown.get("middleware.upload", 0.0)
                        + res.breakdown.get("middleware.init", 0.0))
                    crit_mw_ms = min(mw_busy, res.elapsed_ms)
                    crit_dev_ms = res.elapsed_ms - crit_mw_ms
                    crit_host_ms = 0.0
            else:
                # no middleware, or the node degraded to its CPU baseline
                # path after exhausting its accelerators
                partial, host_ms = self._host_edge_pass(
                    part.node_id, src, dst, w, values, algorithm)
                partials[part.node_id] = partial
                node_ms.append(host_ms)
                if mw is not None and host_ms > crit_total:
                    crit_total = host_ms
                    crit_mw_ms = crit_dev_ms = 0.0
                    crit_host_ms = host_ms
        self.wall_s["gen"] += perf_counter() - wall0
        compute_ms = max(node_ms) if node_ms else 0.0
        if mw is not None:
            breakdown["middleware"] += max(crit_mw_ms, 0.0)
            breakdown["device"] += max(crit_dev_ms, 0.0)
            breakdown["engine"] += crit_host_ms
        else:
            breakdown["engine"] += compute_ms

        # -- 2. global merge ---------------------------------------------------
        wall0 = perf_counter()
        combined = algorithm.combine_many(
            [partials[node_id] for node_id in sorted(partials)])
        self.wall_s["merge"] += perf_counter() - wall0

        # -- 3. apply at masters (parallel) --------------------------------------
        wall0 = perf_counter()
        apply_times: List[float] = []
        changed_by_node: Dict[int, np.ndarray] = {}
        new_values = values
        for part in self.pgraph.parts:
            own = self._master_sets[part.node_id]
            if combined.size:
                sel = own[combined.ids]
                merged_here = MessageSet(combined.ids[sel],
                                         combined.data[sel])
            else:
                merged_here = algorithm.empty_messages()
            if self._node_accelerated(part.node_id):
                agent = mw.agent_for(part.node_id)
                cand, changed, cost = agent.request_apply(
                    new_values, merged_here, algorithm)
            else:
                cand, changed = algorithm.msg_apply(new_values, merged_here)
                cost = self._host_apply_ms(part.node_id, merged_here.size)
            changed = changed[own[changed]] if changed.size else changed
            if changed.size:
                new_values = new_values.copy() if new_values is values \
                    else new_values
                new_values[changed] = cand[changed]
            changed_by_node[part.node_id] = changed
            if mw is not None:
                cost += self._scatter_cost_ms(part.node_id, changed.size)
            apply_times.append(cost)
        apply_ms = max(apply_times) if apply_times else 0.0
        values = new_values
        self.wall_s["apply"] += perf_counter() - wall0
        if mw is not None:
            # apply is dominated by transfer bookkeeping; split half/half
            breakdown["middleware"] += apply_ms * 0.5
            breakdown["device"] += apply_ms * 0.5
            wall0 = perf_counter()
            for part in self.pgraph.parts:
                agent = mw.agent_for(part.node_id)
                if not agent.degraded:
                    agent.note_master_updates(
                        values, changed_by_node[part.node_id], algorithm)
            self.wall_s["cache"] += perf_counter() - wall0
        else:
            breakdown["engine"] += apply_ms

        all_changed = (np.concatenate(list(changed_by_node.values()))
                       if changed_by_node else np.empty(0, dtype=np.int64))
        changed_total = int(all_changed.size)

        # -- 4. frontier for the next iteration -----------------------------------
        active = algorithm.next_active(g, all_changed, n)

        # -- 5. synchronization (or skip) --------------------------------------------
        skipped = False
        sync_ms = 0.0
        uploads = 0
        if detector is not None and detector.can_skip(partials,
                                                      changed_by_node):
            skipped = True
        else:
            wall0 = perf_counter()
            try:
                sync_ms, uploads, needed_by_node = self._sync_cost(
                    changed_by_node, active, width, use_lazy)
            except NodeUnreachable as verdict:
                # the whole superstep is discarded with the failed sync
                verdict.elapsed_ms = (compute_ms + apply_ms
                                      + verdict.wasted_ms)
                raise
            finally:
                self.wall_s["sync"] += perf_counter() - wall0
            breakdown["engine"] += sync_ms
            if mw is not None:
                wall0 = perf_counter()
                self._settle_caches(changed_by_node, needed_by_node,
                                    values, algorithm)
                self.wall_s["cache"] += perf_counter() - wall0

        return (IterationStats(
            index=index,
            active_edges=active_edges,
            compute_ms=compute_ms,
            apply_ms=apply_ms,
            sync_ms=sync_ms,
            skipped=skipped,
            changed_vertices=changed_total,
            uploads=uploads,
            cache_hits=hits,
            cache_misses=misses,
            node_compute_ms=node_ms,
            node_entities=node_entities,
        ), values, active, changed_total, all_changed)

    # -- combined local iterations (synchronization skipping, §III-B3) ---------------

    def _run_superstep_combined(self, index: int,
                                algorithm: AlgorithmTemplate,
                                values: np.ndarray, active: np.ndarray,
                                width: int, use_lazy: bool,
                                breakdown: Dict[str, float]):
        """One superstep where every node iterates locally to quiescence.

        The §III-B3 mechanism for monotone algorithms: a node applies the
        messages addressed to its own masters immediately and keeps
        iterating ("multiple computation iterations can be equivalent to
        a logically combined iteration"); messages addressed to foreign
        masters are buffered and delivered at one global synchronization
        when all nodes are locally quiescent.
        """
        g = self.graph
        n = g.num_vertices
        mw = self.middleware
        node_ms: List[float] = []
        node_apply_ms: List[float] = []
        node_entities: List[int] = []
        hits = misses = 0
        active_edges = 0
        max_sub = 0
        crit_mw_ms = crit_dev_ms = 0.0
        crit_total = -1.0
        foreign_parts: List[MessageSet] = []
        foreign_cells = [0] * self.cluster.num_nodes
        local_changed_parts: List[np.ndarray] = []
        pending_parts: List[np.ndarray] = []
        new_values = values.copy()

        for part in self.pgraph.parts:
            own = self._master_sets[part.node_id]
            agent = mw.agent_for(part.node_id)
            local_active = active.copy()
            t_compute = 0.0
            t_apply = 0.0
            t_entities = 0
            sub = 0
            changed_accum: List[np.ndarray] = []
            mw_ms = dev_ms = 0.0
            depth_cap = max(1, mw.config.skip_max_local_iterations)
            pending: np.ndarray = np.empty(0, dtype=np.int64)
            while True:
                # combined local iterations always run frontier-driven:
                # the upper system (and its full triplet view) is not
                # involved between skipped syncs — nodes iterate from
                # agent-local data (§III-B3)
                sel = local_active[part.src]
                src = part.src[sel]
                if src.size == 0:
                    break
                dst = part.dst[sel]
                w = part.weights[sel]
                if sub == 0:
                    active_edges += int(src.size)
                t_entities += int(src.size)
                wall0 = perf_counter()
                res = agent.edge_pass(src, dst, w, new_values, algorithm)
                self.wall_s["gen"] += perf_counter() - wall0
                t_compute += res.elapsed_ms
                hits += res.cache_hits
                misses += res.cache_misses
                mw_busy = (res.breakdown.get("middleware.download", 0.0)
                           + res.breakdown.get("middleware.upload", 0.0)
                           + res.breakdown.get("middleware.init", 0.0))
                mw_busy = min(mw_busy, res.elapsed_ms)
                mw_ms += mw_busy
                dev_ms += res.elapsed_ms - mw_busy
                sub += 1
                partial = res.partial
                if partial.size == 0:
                    break
                own_sel = own[partial.ids]
                local_part = MessageSet(partial.ids[own_sel],
                                        partial.data[own_sel])
                foreign_part = MessageSet(partial.ids[~own_sel],
                                          partial.data[~own_sel])
                if foreign_part.size:
                    foreign_parts.append(foreign_part)
                    foreign_cells[part.node_id] += int(foreign_part.size)
                if local_part.size == 0:
                    break
                wall0 = perf_counter()
                cand, changed, cost = agent.request_apply(
                    new_values, local_part, algorithm)
                self.wall_s["apply"] += perf_counter() - wall0
                t_apply += cost
                changed = changed[own[changed]] if changed.size else changed
                if changed.size == 0:
                    break
                new_values[changed] = cand[changed]
                wall0 = perf_counter()
                agent.note_master_updates(new_values, changed, algorithm)
                self.wall_s["cache"] += perf_counter() - wall0
                changed_accum.append(changed)
                if sub >= depth_cap:
                    # depth bound reached: hand the unfinished frontier to
                    # the next superstep instead of fast-forwarding on
                    pending = changed
                    break
                local_active = np.zeros(n, dtype=bool)
                local_active[changed] = True
            if pending.size:
                pending_parts.append(pending)
            node_ms.append(t_compute)
            node_apply_ms.append(t_apply)
            node_entities.append(t_entities)
            max_sub = max(max_sub, sub)
            if t_compute + t_apply > crit_total:
                crit_total = t_compute + t_apply
                crit_dev_ms = dev_ms
                crit_mw_ms = mw_ms
            if changed_accum:
                local_changed_parts.append(np.concatenate(changed_accum))

        compute_ms = max(node_ms) if node_ms else 0.0
        apply_ms = max(node_apply_ms) if node_apply_ms else 0.0
        breakdown["middleware"] += max(crit_mw_ms, 0.0) + apply_ms * 0.5
        breakdown["device"] += max(crit_dev_ms, 0.0) + apply_ms * 0.5

        # -- global sync: deliver the buffered foreign messages -------------
        sync_changed: List[np.ndarray] = []
        changed_by_node: Dict[int, np.ndarray] = {}
        sync_ms = 0.0
        uploads = 0
        wall0 = perf_counter()
        foreign_buffer = algorithm.combine_many(foreign_parts)
        self.wall_s["merge"] += perf_counter() - wall0
        skipped = foreign_buffer.size == 0
        if not skipped:
            wall1 = perf_counter()
            uploads = foreign_buffer.size
            payload_bytes = (uploads * width * BYTES_PER_CELL
                             + self._mirror_sync_cells(
                                 foreign_buffer.ids, width)
                             * BYTES_PER_CELL)
            try:
                sync_ms = self._network().sync_ms(
                    self.cluster.num_nodes, payload_bytes,
                    bytes_by_node=[c * width * BYTES_PER_CELL
                                   for c in foreign_cells])
            except NodeUnreachable as verdict:
                # the whole superstep is discarded with the failed sync
                verdict.elapsed_ms = (compute_ms + apply_ms
                                      + verdict.wasted_ms)
                raise
            sync_ms += max(node.runtime.sync_fixed_ms
                           for node in self.cluster.nodes)
            apply_sync: List[float] = []
            for part in self.pgraph.parts:
                own = self._master_sets[part.node_id]
                sel = own[foreign_buffer.ids]
                merged_here = MessageSet(foreign_buffer.ids[sel],
                                         foreign_buffer.data[sel])
                if merged_here.size == 0:
                    changed_by_node[part.node_id] = np.empty(
                        0, dtype=np.int64)
                    continue
                agent = mw.agent_for(part.node_id)
                cand, changed, cost = agent.request_apply(
                    new_values, merged_here, algorithm)
                apply_sync.append(cost)
                changed = changed[own[changed]] if changed.size else changed
                if changed.size:
                    new_values[changed] = cand[changed]
                    agent.note_master_updates(new_values, changed,
                                              algorithm)
                    sync_changed.append(changed)
                changed_by_node[part.node_id] = changed
            if apply_sync:
                sync_ms += max(apply_sync)
            breakdown["engine"] += sync_ms
            self.wall_s["sync"] += perf_counter() - wall1
            wall1 = perf_counter()
            self._invalidate_foreign(changed_by_node)
            for part in self.pgraph.parts:
                agent = mw.agent_for(part.node_id)
                if not agent.degraded:
                    agent.settle_dirty()
            self.wall_s["cache"] += perf_counter() - wall1

        # frontier: vertices changed by the sync, frontiers left
        # unfinished by the depth bound, plus local changes whose
        # out-edges are stored on other nodes (vertex-cut replicas)
        frontier_parts = list(sync_changed) + pending_parts
        for changed in local_changed_parts:
            cross = changed[~self._stored_local[changed]]
            if cross.size:
                frontier_parts.append(cross)
        all_changed = (np.concatenate(frontier_parts) if frontier_parts
                       else np.empty(0, dtype=np.int64))
        active = algorithm.next_active(g, all_changed, n)
        if all_changed.size == 0:
            active = np.zeros(n, dtype=bool)

        changed_total = int(all_changed.size)
        # every vertex whose value actually moved this superstep (the
        # frontier above is a subset) — what a delta checkpoint must cover
        ckpt_parts = local_changed_parts + sync_changed
        ckpt_changed = (np.concatenate(ckpt_parts) if ckpt_parts
                        else np.empty(0, dtype=np.int64))
        return (IterationStats(
            index=index,
            active_edges=active_edges,
            compute_ms=compute_ms,
            apply_ms=apply_ms,
            sync_ms=sync_ms,
            skipped=skipped,
            changed_vertices=changed_total,
            uploads=uploads,
            cache_hits=hits,
            cache_misses=misses,
            node_compute_ms=node_ms,
            node_entities=node_entities,
            local_iterations=max(max_sub, 1),
        ), new_values, active, changed_total, ckpt_changed)

    def _select_edges(self, part, active: np.ndarray,
                      force_frontier: bool = False):
        """The edges a node processes this round, per the scan policy.

        A full scan still requires at least one active local source —
        a node whose partition is entirely quiescent does no work.
        Event-message algorithms force frontier scans everywhere.
        """
        sel = active[part.src]
        if (self.edge_scan == "full" and not force_frontier
                and sel.any()):
            return part.src, part.dst, part.weights
        return part.src[sel], part.dst[sel], part.weights[sel]

    # -- host-mode cost hooks --------------------------------------------------------

    def _host_edge_pass(self, node_id: int, src: np.ndarray,
                        dst: np.ndarray, w: np.ndarray,
                        values: np.ndarray,
                        algorithm: AlgorithmTemplate
                        ) -> Tuple[MessageSet, float]:
        runtime = self.cluster.nodes[node_id].runtime
        if src.size == 0:
            return algorithm.empty_messages(), 0.0
        msgs = algorithm.msg_gen(src, dst, w, values)
        partial = algorithm.msg_merge(dst, msgs)
        cost = runtime.compute.kernel_ms(src.size)
        cost += runtime.apply_ms_per_entity * partial.size
        return partial, cost

    def _host_apply_ms(self, node_id: int, num_messages: int) -> float:
        runtime = self.cluster.nodes[node_id].runtime
        if num_messages == 0:
            return 0.0
        return runtime.compute.kernel_ms(num_messages)

    # -- synchronization ----------------------------------------------------------------

    def _sync_cost(self, changed_by_node: Dict[int, np.ndarray],
                   next_active: np.ndarray, width: int,
                   use_lazy: bool
                   ) -> Tuple[float, int, Dict[int, np.ndarray]]:
        """Network + upload cost of the inter-iteration synchronization.

        Returns ``(sync_ms, uploads, needed_by_node)``; the query lists
        are reused for Algorithm 3's delivery step (cache refresh).
        """
        num_nodes = self.cluster.num_nodes
        network = self._network()

        # which vertices does each node need next iteration? (query lists)
        needed_by_node: Dict[int, np.ndarray] = {}
        if use_lazy:
            for part in self.pgraph.parts:
                sel = next_active[part.src]
                needed_by_node[part.node_id] = np.unique(part.src[sel])

        upload_total = 0
        slowest_upload = 0.0
        query_bytes = 0
        upload_bytes = [0.0] * num_nodes
        for part in self.pgraph.parts:
            changed = changed_by_node.get(part.node_id,
                                          np.empty(0, dtype=np.int64))
            if use_lazy:
                foreign_needs = [ids for node, ids in needed_by_node.items()
                                 if node != part.node_id]
                if foreign_needs:
                    queried = np.unique(np.concatenate(foreign_needs))
                    to_upload = np.intersect1d(changed, queried,
                                               assume_unique=False)
                else:
                    to_upload = np.empty(0, dtype=np.int64)
                query_bytes += needed_by_node[part.node_id].size * \
                    BYTES_PER_ID
            else:
                to_upload = changed
            count = int(to_upload.size)
            upload_total += count
            upload_bytes[part.node_id] = count * width * BYTES_PER_CELL
            runtime = self.cluster.nodes[part.node_id].runtime
            slowest_upload = max(
                slowest_upload, runtime.upload_ms_per_entity * count)

        payload_cells = upload_total * width
        payload_cells += self._mirror_sync_cells(
            np.concatenate(list(changed_by_node.values()))
            if changed_by_node else np.empty(0, dtype=np.int64), width)
        payload_bytes = payload_cells * BYTES_PER_CELL

        sync_ms = network.sync_ms(num_nodes, payload_bytes,
                                  bytes_by_node=upload_bytes)
        if use_lazy:
            sync_ms += network.broadcast_ms(num_nodes, query_bytes)
        sync_ms += max(node.runtime.sync_fixed_ms
                       for node in self.cluster.nodes)
        sync_ms += slowest_upload
        return sync_ms, upload_total, needed_by_node

    def _settle_caches(self, changed_by_node: Dict[int, np.ndarray],
                       needed_by_node: Dict[int, np.ndarray],
                       values: np.ndarray,
                       algorithm: AlgorithmTemplate) -> None:
        """Post-sync cache maintenance on every agent.

        Under lazy uploading (Algorithm 3) the global data queue delivers
        each agent the queried vertices' fresh values, so foreign changes
        the node asked for are *refreshed* in place (their delivery was
        already charged as sync payload); foreign changes it did not
        query are invalidated and will be re-downloaded on demand.
        """
        mw = self.middleware
        for part in self.pgraph.parts:
            agent = mw.agent_for(part.node_id)
            if agent.degraded:
                continue
            agent.settle_dirty()
            foreign = [ids for node, ids in changed_by_node.items()
                       if node != part.node_id]
            if not foreign:
                continue
            stale = np.concatenate(foreign)
            if stale.size == 0:
                continue
            needed = needed_by_node.get(part.node_id)
            if needed is not None and needed.size:
                delivered = np.intersect1d(stale, needed)
                agent.refresh_cache(delivered, values, algorithm)
                remaining = np.setdiff1d(stale, delivered)
            else:
                remaining = stale
            if remaining.size:
                agent.invalidate_cache(remaining)

    def _invalidate_foreign(self, changed_by_node: Dict[int, np.ndarray]
                            ) -> None:
        """Foreign updates stale out the other agents' cache entries."""
        mw = self.middleware
        for part in self.pgraph.parts:
            foreign = [ids for node, ids in changed_by_node.items()
                       if node != part.node_id]
            if not foreign:
                continue
            stale = np.concatenate(foreign)
            if stale.size and not mw.agent_for(part.node_id).degraded:
                mw.agent_for(part.node_id).invalidate_cache(stale)
