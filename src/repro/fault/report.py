"""Observability for the fault subsystem: one aggregated report per run.

Pulls together what the injector scheduled, what the agents survived,
and what the engine had to roll back, so a single object answers "what
happened to this job, fault-wise".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class FaultReport:
    """Aggregated fault/recovery counters for one middleware's lifetime."""

    faults_injected: int = 0
    injected_by_kind: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    recovered_passes: int = 0
    daemon_respawns: int = 0
    heartbeat_verdicts: int = 0
    rollbacks: int = 0
    wasted_ms: float = 0.0
    degraded_nodes: List[int] = field(default_factory=list)
    # network-transport layer (repro.cluster.network)
    retransmits: int = 0
    dup_drops: int = 0
    collective_fallbacks: int = 0
    partition_verdicts: int = 0
    net_wasted_ms: float = 0.0
    rebalance_events: int = 0
    rebalance_ms: float = 0.0
    # gray-failure layer (repro.fault.straggler)
    straggler_verdicts: int = 0
    straggler_recoveries: int = 0
    budget_overruns: int = 0
    speculative_wins: int = 0
    speculative_losses: int = 0
    speculative_wasted_ms: float = 0.0
    coeff_updates: int = 0
    online_rebalances: int = 0
    # link-level gray failures (topology-aware transport + detector)
    link_verdicts: int = 0
    link_recoveries: int = 0
    link_slow_ms: float = 0.0

    @property
    def clean(self) -> bool:
        """True when nothing fault-related happened at all.

        Passive observation (heartbeats, coefficient estimation) never
        dirties a run; any *response* — a retry, a verdict, a respawn,
        a rollback, a rebalance, a speculation — does.
        """
        return (self.faults_injected == 0 and self.retries == 0
                and self.rollbacks == 0 and not self.degraded_nodes
                and self.retransmits == 0 and self.dup_drops == 0
                and self.collective_fallbacks == 0
                and self.partition_verdicts == 0
                and self.heartbeat_verdicts == 0
                and self.daemon_respawns == 0
                and self.rebalance_events == 0
                and self.straggler_verdicts == 0
                and self.speculative_wins + self.speculative_losses == 0
                and self.online_rebalances == 0
                and self.link_verdicts == 0
                and self.link_slow_ms == 0.0)

    def summary(self) -> str:
        if self.clean:
            return "fault report: clean run (no faults, no recoveries)"
        kinds = ", ".join(f"{k}={n}" for k, n in
                          sorted(self.injected_by_kind.items()))
        degraded = (", degraded nodes " +
                    str(self.degraded_nodes) if self.degraded_nodes else "")
        net = ""
        if (self.retransmits or self.dup_drops
                or self.collective_fallbacks or self.partition_verdicts):
            net = (f", net: {self.retransmits} retransmits, "
                   f"{self.dup_drops} dup drops, "
                   f"{self.collective_fallbacks} collective fallbacks, "
                   f"{self.partition_verdicts} partition verdicts "
                   f"({self.net_wasted_ms:.1f} ms wasted)")
        rebalance = (f", {self.rebalance_events} rebalances "
                     f"({self.rebalance_ms:.1f} ms)"
                     if self.rebalance_events else "")
        gray = ""
        if (self.straggler_verdicts or self.speculative_wins
                or self.speculative_losses or self.online_rebalances):
            gray = (f", gray: {self.straggler_verdicts} straggler "
                    f"verdicts ({self.straggler_recoveries} recovered), "
                    f"speculation {self.speculative_wins}W/"
                    f"{self.speculative_losses}L "
                    f"({self.speculative_wasted_ms:.1f} ms wasted), "
                    f"{self.online_rebalances} online rebalances "
                    f"from {self.coeff_updates} coefficient updates")
        links = ""
        if self.link_verdicts or self.link_slow_ms:
            links = (f", links: {self.link_verdicts} slow-uplink "
                     f"verdicts ({self.link_recoveries} recovered, "
                     f"{self.link_slow_ms:.1f} ms inflated)")
        return (f"fault report: {self.faults_injected} injected "
                f"({kinds or 'none'}), {self.retries} retries, "
                f"{self.recovered_passes} recovered passes, "
                f"{self.daemon_respawns} respawns, "
                f"{self.rollbacks} rollbacks "
                f"({self.wasted_ms:.1f} ms wasted){net}{rebalance}{gray}"
                f"{links}{degraded}")


def fault_report(middleware, result=None) -> FaultReport:
    """Build a :class:`FaultReport` from a middleware (and optionally the
    :class:`~repro.engines.base.RunResult` that carries rollback info)."""
    report = FaultReport()
    injector = getattr(middleware, "injector", None)
    if injector is not None:
        report.faults_injected = injector.injected
        report.injected_by_kind = dict(injector.injected_by_kind)
    for node_id in sorted(middleware.agents):
        agent = middleware.agents[node_id]
        report.retries += agent.retries
        report.recovered_passes += agent.recovered_passes
        report.heartbeat_verdicts += agent.heartbeat_verdicts
        for daemon in agent.daemons:
            report.daemon_respawns += daemon.respawns
        if agent.degraded:
            report.degraded_nodes.append(node_id)
    transport = getattr(middleware, "transport", None)
    if transport is not None:
        report.retransmits = transport.retransmits
        report.dup_drops = transport.dup_drops
        report.collective_fallbacks = transport.collective_fallbacks
        report.partition_verdicts = transport.partition_verdicts
        report.net_wasted_ms = transport.net_wasted_ms
        report.link_slow_ms = transport.link_slow_ms
    detector = getattr(middleware, "straggler", None)
    if detector is not None:
        report.straggler_verdicts = len(detector.verdicts)
        report.straggler_recoveries = detector.recoveries
        report.budget_overruns = detector.budget_overruns
        report.speculative_wins = detector.speculative_wins
        report.speculative_losses = detector.speculative_losses
        report.speculative_wasted_ms = detector.speculative_wasted_ms
        report.link_verdicts = detector.link_verdicts
        report.link_recoveries = detector.link_recoveries
    if result is not None:
        report.rollbacks = getattr(result, "rollbacks", 0)
        report.wasted_ms = getattr(result, "wasted_ms", 0.0)
        report.rebalance_events = getattr(result, "rebalance_events", 0)
        report.rebalance_ms = getattr(result, "rebalance_ms", 0.0)
        report.coeff_updates = getattr(result, "coeff_updates", 0)
        report.online_rebalances = getattr(result, "online_rebalances", 0)
    return report
