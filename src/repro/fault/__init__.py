"""Fault-tolerance subsystem: injection, detection, retry, and recovery.

Four layers, wired through the middleware stack:

* **injection** (:mod:`~repro.fault.inject`) — deterministic, seedable
  fault plans (daemon crash, hang, shm corruption, message drop/delay)
  armed superstep by superstep via ``MiddlewareConfig.fault_plan``;
* **detection** (:mod:`~repro.fault.monitor`) — per-daemon heartbeats
  with busy leases on the simulated clock; a watchdog process turns
  silence into :class:`~repro.errors.DaemonDead` verdicts;
* **retry** (:mod:`~repro.fault.retry`) — exponential backoff for
  transient faults, daemon respawn re-attaching shared memory;
* **recovery** (:mod:`~repro.fault.checkpoint`) — periodic vertex-table
  checkpoints (full or incremental deltas) so engines roll back to the
  last consistent superstep, with graceful degradation to the host
  (CPU) path when a node's accelerators are exhausted;
* **network** (:mod:`~repro.cluster.network`) — the resilient transport
  that survives the inter-node fault kinds (``net_drop`` / ``net_delay``
  / ``net_dup`` / ``sync_fail`` / ``node_partition``) with acks,
  sequence-number dedupe, retransmission and p2p fallback, escalating
  partitioned nodes through :class:`~repro.fault.monitor.CollectiveMonitor`
  verdicts to rollback, degradation and Lemma-2 rebalancing;
* **gray failures** (:mod:`~repro.fault.straggler`) — EWMA straggler
  detection for pairs that heartbeat but run slow (``slowdown`` /
  ``shm_slow`` / ``flaky_slowdown``), answered by speculative block
  re-execution and online Lemma-2 re-estimation instead of verdicts.
"""

from .checkpoint import Checkpoint, CheckpointDelta, CheckpointStore
from .inject import (
    ALL_KINDS,
    CRASH,
    FLAKY_SLOWDOWN,
    GRAY_KINDS,
    HANG,
    KINDS,
    LINK_FLAKY,
    LINK_KINDS,
    LINK_SLOW,
    MESSAGE_DELAY,
    MESSAGE_DROP,
    NET_DELAY,
    NET_DROP,
    NET_DUP,
    NETWORK_KINDS,
    NODE_PARTITION,
    SHM_CORRUPTION,
    SHM_SLOW,
    SLOWDOWN,
    STALL_KINDS,
    SYNC_FAIL,
    TO_AGENT,
    TO_DAEMON,
    TRANSPORT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .monitor import CAT_MONITOR, CollectiveMonitor, HeartbeatMonitor
from .report import FaultReport, fault_report
from .retry import RetryPolicy
from .straggler import PHASES, StragglerDetector

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "HeartbeatMonitor",
    "CollectiveMonitor",
    "RetryPolicy",
    "Checkpoint",
    "CheckpointDelta",
    "CheckpointStore",
    "FaultReport",
    "fault_report",
    "CRASH",
    "HANG",
    "SHM_CORRUPTION",
    "MESSAGE_DROP",
    "MESSAGE_DELAY",
    "NET_DROP",
    "NET_DELAY",
    "NET_DUP",
    "SYNC_FAIL",
    "NODE_PARTITION",
    "SLOWDOWN",
    "SHM_SLOW",
    "FLAKY_SLOWDOWN",
    "LINK_SLOW",
    "LINK_FLAKY",
    "KINDS",
    "NETWORK_KINDS",
    "GRAY_KINDS",
    "LINK_KINDS",
    "TRANSPORT_KINDS",
    "ALL_KINDS",
    "STALL_KINDS",
    "TO_AGENT",
    "TO_DAEMON",
    "CAT_MONITOR",
    "StragglerDetector",
    "PHASES",
]
