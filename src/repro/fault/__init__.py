"""Fault-tolerance subsystem: injection, detection, retry, and recovery.

Four layers, wired through the middleware stack:

* **injection** (:mod:`~repro.fault.inject`) — deterministic, seedable
  fault plans (daemon crash, hang, shm corruption, message drop/delay)
  armed superstep by superstep via ``MiddlewareConfig.fault_plan``;
* **detection** (:mod:`~repro.fault.monitor`) — per-daemon heartbeats
  with busy leases on the simulated clock; a watchdog process turns
  silence into :class:`~repro.errors.DaemonDead` verdicts;
* **retry** (:mod:`~repro.fault.retry`) — exponential backoff for
  transient faults, daemon respawn re-attaching shared memory;
* **recovery** (:mod:`~repro.fault.checkpoint`) — periodic vertex-table
  checkpoints so engines roll back to the last consistent superstep,
  with graceful degradation to the host (CPU) path when a node's
  accelerators are exhausted.
"""

from .checkpoint import Checkpoint, CheckpointStore
from .inject import (
    CRASH,
    HANG,
    KINDS,
    MESSAGE_DELAY,
    MESSAGE_DROP,
    SHM_CORRUPTION,
    STALL_KINDS,
    TO_AGENT,
    TO_DAEMON,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .monitor import CAT_MONITOR, HeartbeatMonitor
from .report import FaultReport, fault_report
from .retry import RetryPolicy

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "HeartbeatMonitor",
    "RetryPolicy",
    "Checkpoint",
    "CheckpointStore",
    "FaultReport",
    "fault_report",
    "CRASH",
    "HANG",
    "SHM_CORRUPTION",
    "MESSAGE_DROP",
    "MESSAGE_DELAY",
    "KINDS",
    "STALL_KINDS",
    "TO_AGENT",
    "TO_DAEMON",
    "CAT_MONITOR",
]
